//! The per-bank SRAM write buffer of Sun et al. (HPCA'09), the paper's
//! Section 4.4 comparison point ("BUFF-20").
//!
//! Writes complete into a small SRAM buffer at SRAM speed; the buffer
//! drains into the STT-RAM array when the bank is idle. Every access
//! pays a detection cycle, reads search the buffer in parallel with the
//! array, and an in-progress drain write may be preempted by a read.

use std::collections::VecDeque;

/// A pending buffered write (block address only; the simulator tracks
/// timing, not data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferedWrite {
    /// Block-aligned address.
    pub addr: u64,
}

/// A bounded FIFO write buffer.
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    entries: VecDeque<BufferedWrite>,
    capacity: usize,
    /// Writes absorbed at SRAM speed.
    pub absorbed: u64,
    /// Writes that found the buffer full and went to the array.
    pub overflows: u64,
    /// Reads that hit a buffered write.
    pub read_hits: u64,
    /// Drain writes started.
    pub drains: u64,
    /// Drains aborted by a preempting read.
    pub preemptions: u64,
}

impl WriteBuffer {
    /// Creates a buffer of `capacity` entries (20 in the paper).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "write buffer needs at least one entry");
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            absorbed: 0,
            overflows: 0,
            read_hits: 0,
            drains: 0,
            preemptions: 0,
        }
    }

    /// Buffered entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when no more writes can be absorbed.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Absorbs a write; returns `false` (and counts an overflow) when
    /// full — the caller must write the array directly.
    ///
    /// A write to an address already buffered coalesces into the
    /// existing entry (the slot's data is overwritten in place), so the
    /// buffer never holds two entries for one address and a coalescing
    /// write can never overflow.
    pub fn absorb(&mut self, addr: u64) -> bool {
        if self.entries.iter().any(|e| e.addr == addr) {
            self.absorbed += 1;
            return true;
        }
        if self.is_full() {
            self.overflows += 1;
            return false;
        }
        self.entries.push_back(BufferedWrite { addr });
        self.absorbed += 1;
        true
    }

    /// Searches the buffer for a read (performed in parallel with the
    /// array probe).
    pub fn read_probe(&mut self, addr: u64) -> bool {
        let hit = self.entries.iter().any(|e| e.addr == addr);
        if hit {
            self.read_hits += 1;
        }
        hit
    }

    /// Takes the oldest entry to start draining it into the array.
    pub fn start_drain(&mut self) -> Option<BufferedWrite> {
        let e = self.entries.pop_front();
        if e.is_some() {
            self.drains += 1;
        }
        e
    }

    /// Puts back a drain aborted by a preempting read.
    ///
    /// The buffer may have changed while the drain was in flight, so
    /// the entry cannot be re-inserted unconditionally: a write to the
    /// same address absorbed meanwhile supersedes the aborted drain
    /// (re-inserting would duplicate the address), and if absorbed
    /// writes filled the buffer the partially drained line is treated
    /// as committed to the array (re-inserting would exceed
    /// `capacity`). In both cases the entry is dropped.
    pub fn abort_drain(&mut self, entry: BufferedWrite) {
        self.preemptions += 1;
        if self.entries.iter().any(|e| e.addr == entry.addr) || self.is_full() {
            return;
        }
        self.entries.push_front(entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorbs_until_full() {
        let mut b = WriteBuffer::new(2);
        assert!(b.absorb(0x100));
        assert!(b.absorb(0x200));
        assert!(b.is_full());
        assert!(!b.absorb(0x300));
        assert_eq!(b.absorbed, 2);
        assert_eq!(b.overflows, 1);
    }

    #[test]
    fn reads_hit_buffered_writes() {
        let mut b = WriteBuffer::new(4);
        b.absorb(0x100);
        assert!(b.read_probe(0x100));
        assert!(!b.read_probe(0x200));
        assert_eq!(b.read_hits, 1);
    }

    #[test]
    fn drain_is_fifo_and_abortable() {
        let mut b = WriteBuffer::new(4);
        b.absorb(0x100);
        b.absorb(0x200);
        let d = b.start_drain().unwrap();
        assert_eq!(d.addr, 0x100);
        b.abort_drain(d);
        assert_eq!(b.preemptions, 1);
        // Aborted entry drains first again.
        assert_eq!(b.start_drain().unwrap().addr, 0x100);
        assert_eq!(b.start_drain().unwrap().addr, 0x200);
        assert!(b.start_drain().is_none());
    }

    #[test]
    fn absorb_coalesces_duplicate_addresses() {
        let mut b = WriteBuffer::new(2);
        assert!(b.absorb(0x100));
        assert!(b.absorb(0x100));
        assert_eq!(b.len(), 1, "second write coalesces into the entry");
        assert_eq!(b.absorbed, 2);
        assert!(!b.is_full());
        assert!(b.absorb(0x200));
        // Coalescing writes still succeed even when the buffer is full.
        assert!(b.absorb(0x200));
        assert_eq!(b.overflows, 0);
        assert!(!b.absorb(0x300));
        assert_eq!(b.overflows, 1);
    }

    #[test]
    fn abort_drain_coalesces_with_a_write_absorbed_mid_drain() {
        let mut b = WriteBuffer::new(4);
        b.absorb(0x100);
        b.absorb(0x200);
        let d = b.start_drain().unwrap();
        assert_eq!(d.addr, 0x100);
        // The same address is written again while the drain is in
        // flight; the aborted entry is superseded, not re-inserted.
        assert!(b.absorb(0x100));
        b.abort_drain(d);
        assert_eq!(b.preemptions, 1);
        assert_eq!(b.len(), 2);
        assert_eq!(b.start_drain().unwrap().addr, 0x200);
        assert_eq!(b.start_drain().unwrap().addr, 0x100);
        assert!(b.start_drain().is_none());
    }

    #[test]
    fn abort_drain_respects_capacity() {
        let mut b = WriteBuffer::new(2);
        b.absorb(0x100);
        b.absorb(0x200);
        let d = b.start_drain().unwrap();
        // A new write fills the freed slot while the drain is in
        // flight; re-inserting the aborted entry would exceed capacity,
        // so it is treated as committed to the array instead.
        assert!(b.absorb(0x300));
        assert!(b.is_full());
        b.abort_drain(d);
        assert_eq!(b.preemptions, 1);
        assert_eq!(b.len(), 2);
        assert_eq!(b.start_drain().unwrap().addr, 0x200);
        assert_eq!(b.start_drain().unwrap().addr, 0x300);
    }
}
