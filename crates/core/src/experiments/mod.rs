//! Experiment definitions regenerating every table and figure of the
//! paper's evaluation section (see `DESIGN.md` for the index).
//!
//! Each module defines one [`Experiment`](crate::sweep::Experiment) —
//! a declarative grid of simulation cells plus an `assemble` step that
//! folds the per-cell [`RunMetrics`](crate::metrics::RunMetrics) into
//! the figure's result type — and keeps a `run(scale)` free function
//! that executes it through a [`SweepRunner`](crate::sweep::SweepRunner)
//! configured from the environment (`SNOC_THREADS` workers,
//! `SNOC_PROGRESS=0` to silence progress lines).
//!
//! ```no_run
//! use snoc_core::experiments::{fig7, Scale};
//! use snoc_core::observer::ProgressObserver;
//! use snoc_core::sweep::SweepRunner;
//!
//! // The one-liner:
//! let quick = fig7::run(Scale::Quick);
//! // The same sweep with explicit control:
//! let full = SweepRunner::new()
//!     .threads(8)
//!     .observer(ProgressObserver::new())
//!     .run(&fig7::Fig7, Scale::Full);
//! assert_eq!(quick.rows[0].app, full.rows[0].app);
//! ```
//!
//! Result types implement [`std::fmt::Display`] (the paper's
//! rows/series as text) and [`Rows`](crate::report::Rows) (the same
//! numbers as labelled series for CSV dumps). [`Scale`] trades cycles
//! for fidelity so one experiment serves both the quick smoke/bench
//! paths and the full `repro-*` reproductions. Results are identical
//! for any worker count: cells are deterministic functions of their
//! spec and come back in grid order.

pub mod ablations;
pub mod fig10;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig3;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod scaling;
pub mod table2;
pub mod table3;

use snoc_common::config::SystemConfig;

/// How long each simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few thousand cycles per run: for smoke tests and benches.
    Quick,
    /// The full evaluation lengths used by the `repro-*` binaries.
    Full,
}

impl Scale {
    /// `(warmup, measure)` cycles.
    pub fn cycles(self) -> (u64, u64) {
        match self {
            Scale::Quick => (500, 3_000),
            Scale::Full => (2_000, 16_000),
        }
    }

    /// Applies the scale to a configuration.
    pub fn apply(self, cfg: SystemConfig) -> SystemConfig {
        let (warmup, measure) = self.cycles();
        cfg.rebuild().cycles(warmup, measure).build()
    }

    /// Caps an application list for quick runs.
    pub fn take_apps<'a>(self, apps: &'a [&'a str]) -> &'a [&'a str] {
        match self {
            Scale::Quick => &apps[..apps.len().min(3)],
            Scale::Full => apps,
        }
    }
}

/// Renders a normalized value the way the paper's bar charts read.
pub(crate) fn norm(v: f64, base: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        v / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_differ() {
        assert!(Scale::Quick.cycles().1 < Scale::Full.cycles().1);
        let cfg = Scale::Quick.apply(SystemConfig::default());
        assert_eq!(cfg.measure_cycles, 3_000);
    }

    #[test]
    fn quick_caps_app_lists() {
        let apps = ["a", "b", "c", "d", "e"];
        assert_eq!(Scale::Quick.take_apps(&apps).len(), 3);
        assert_eq!(Scale::Full.take_apps(&apps).len(), 5);
    }

    #[test]
    fn norm_guards_zero() {
        assert_eq!(norm(1.0, 0.0), 0.0);
        assert_eq!(norm(3.0, 2.0), 1.5);
    }
}
