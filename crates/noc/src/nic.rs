//! The network interface (NI) at every node.
//!
//! The NI fragments outbound packets into flits and injects them into
//! the local input port of its router (one flit per cycle, respecting
//! credits), and reassembles inbound flits from the ejection buffers
//! into packets delivered through a bounded outbox. A bounded outbox is
//! what lets a busy bank push back into the network — the paper's
//! "queued at the network interface" behaviour.
//!
//! The NI also implements the endpoint half of the window-based
//! congestion estimator: when a request carrying a timestamp is
//! delivered at a bank, the NI immediately sends a 1-flit
//! [`PacketKind::TagAck`] back to the tagging parent.

use crate::arena::Arena;
use crate::packet::{Flit, Packet, PacketKind, TrafficClass};
use crate::router::Router;
use crate::workspace::NocWorkspace;
use snoc_common::geom::{Coord, Direction};
use snoc_common::ids::PacketId;
use snoc_common::Cycle;
use std::collections::VecDeque;

/// The classes, in injection arbitration order.
const CLASSES: [TrafficClass; 3] = [
    TrafficClass::Request,
    TrafficClass::Coherence,
    TrafficClass::Response,
];

fn class_idx(c: TrafficClass) -> usize {
    match c {
        TrafficClass::Request => 0,
        TrafficClass::Coherence => 1,
        TrafficClass::Response => 2,
    }
}

/// A packet being fragmented into one local input VC.
#[derive(Debug, Clone)]
struct InjectBinding {
    packet: PacketId,
    next_seq: u16,
    total: u16,
}

/// An event produced while draining ejection buffers.
#[derive(Debug)]
pub enum DeliveryEvent {
    /// A window-based estimator ack reached the tagging parent; carries
    /// the original tag so the estimator can close the sample.
    TagAck(crate::packet::WbTag, Cycle),
}

/// The network interface of one node.
#[derive(Debug)]
pub struct Nic {
    coord: Coord,
    vcs: usize,
    data_flits: usize,
    inject_queues: [VecDeque<PacketId>; 3],
    bindings: Vec<Option<InjectBinding>>,
    credits: Vec<u8>,
    inject_rr: usize,
    /// Per-VC ejection buffers (credit-matched to the router's local
    /// output port).
    eject: Vec<VecDeque<Flit>>,
    /// Total flits across `eject` (O(1) idle check for the drain path).
    eject_buffered: usize,
    /// Packets waiting to inject: queued plus bound (O(1) backlog).
    backlog: usize,
    outbox: VecDeque<PacketId>,
    outbox_cap: usize,
    /// Delivered packet count.
    pub delivered: u64,
    /// Injected packet count.
    pub injected: u64,
}

impl Nic {
    /// Creates the NI for a node whose router has `vcs` VCs of `depth`
    /// flits. `outbox_cap` bounds assembled-but-unconsumed packets.
    pub fn new(
        coord: Coord,
        vcs: usize,
        depth: usize,
        data_flits: usize,
        outbox_cap: usize,
    ) -> Self {
        Self {
            coord,
            vcs,
            data_flits,
            inject_queues: Default::default(),
            bindings: vec![None; vcs],
            credits: vec![depth as u8; vcs],
            inject_rr: 0,
            eject: (0..vcs).map(|_| VecDeque::new()).collect(),
            eject_buffered: 0,
            backlog: 0,
            outbox: VecDeque::new(),
            outbox_cap,
            delivered: 0,
            injected: 0,
        }
    }

    /// This NI's position.
    pub fn coord(&self) -> Coord {
        self.coord
    }

    /// Returns the NI to its just-constructed state (empty queues and
    /// bindings, full credits, zeroed counters and round-robin
    /// pointer) while keeping the queue allocations. `depth` is the
    /// VC buffer depth the NI was built with (it is not stored); a
    /// reset NI is observably identical to a fresh [`Nic::new`] with
    /// the same geometry.
    pub fn reset(&mut self, depth: usize) {
        for q in &mut self.inject_queues {
            q.clear();
        }
        self.bindings.fill(None);
        self.credits.fill(depth as u8);
        self.inject_rr = 0;
        for q in &mut self.eject {
            q.clear();
        }
        self.eject_buffered = 0;
        self.backlog = 0;
        self.outbox.clear();
        self.delivered = 0;
        self.injected = 0;
    }

    /// Queues a packet for injection.
    pub fn enqueue(&mut self, id: PacketId, class: TrafficClass) {
        self.inject_queues[class_idx(class)].push_back(id);
        self.backlog += 1;
    }

    /// Packets waiting in injection queues (all classes), queued or
    /// bound to an injection VC.
    pub fn inject_backlog(&self) -> usize {
        self.backlog
    }

    /// Returns `credits` slots for a local input VC (called when the
    /// router forwards injected flits).
    pub fn return_credit(&mut self, vc: usize, credits: u8) {
        self.credits[vc] += credits;
    }

    /// One injection cycle: bind waiting packets to free local input
    /// VCs of their class, then send one flit from a bound VC with
    /// credit, round-robin. Returns `true` if a flit entered the
    /// router (so the caller can wake it).
    ///
    /// Runs against a shared `&Arena` so every partition of the
    /// sharded stepper can inject concurrently: instead of stamping
    /// `injected_at` in place, the id of a packet whose head flit
    /// entered the router this cycle is pushed to `stamps`, and the
    /// network stamps the batch after the partition barrier (nothing
    /// reads `injected_at` until delivery, so the deferral is
    /// unobservable).
    pub fn inject_step(
        &mut self,
        router: &mut Router,
        ws: &mut NocWorkspace,
        arena: &Arena,
        now: Cycle,
        router_stages: u64,
        stamps: &mut Vec<PacketId>,
    ) -> bool {
        // Bind queue heads to free VCs in their class partition.
        for (ci, class) in CLASSES.iter().enumerate() {
            while let Some(&head) = self.inject_queues[ci].front() {
                let range = class.vc_range(self.vcs);
                let free = range.clone().find(|&v| self.bindings[v].is_none());
                let Some(v) = free else { break };
                let total = arena.get(head).kind.flits(self.data_flits) as u16;
                self.bindings[v] = Some(InjectBinding {
                    packet: head,
                    next_seq: 0,
                    total,
                });
                self.inject_queues[ci].pop_front();
            }
        }

        // Send one flit (local port bandwidth: one flit per cycle).
        let start = self.inject_rr;
        for off in 1..=self.vcs {
            let v = (start + off) % self.vcs;
            let Some(binding) = self.bindings[v].as_mut() else {
                continue;
            };
            if self.credits[v] == 0 {
                continue;
            }
            let seq = binding.next_seq;
            let total = binding.total;
            let pid = binding.packet;
            if seq == 0 {
                stamps.push(pid);
                self.injected += 1;
            }
            let flit = Flit {
                packet: pid,
                seq,
                head: seq == 0,
                tail: seq + 1 == total,
                ready_at: now + router_stages,
            };
            router.accept(ws, Direction::Local.port(), v, flit);
            self.credits[v] -= 1;
            binding.next_seq += 1;
            if binding.next_seq == total {
                self.bindings[v] = None;
                self.backlog -= 1;
            }
            self.inject_rr = v;
            return true;
        }
        false
    }

    /// Accepts an ejected flit from the router's local output port.
    pub fn accept_eject(&mut self, vc: usize, flit: Flit) {
        self.eject[vc].push_back(flit);
        self.eject_buffered += 1;
    }

    /// Flits buffered across all ejection VCs.
    pub fn eject_buffered(&self) -> usize {
        self.eject_buffered
    }

    /// Drains ejection buffers, assembling packets into the outbox.
    ///
    /// Appends to the caller-provided sinks instead of allocating:
    /// `credits` receives per-VC credits to return to the router's
    /// local output port, `events` receives estimator events. When the
    /// ejection buffers are empty this returns immediately without
    /// touching either sink. Assembled [`PacketKind::TagAck`]s are
    /// consumed here; tagged bank requests trigger an automatic ack
    /// injection.
    pub fn drain_eject(
        &mut self,
        arena: &mut Arena,
        now: Cycle,
        credits: &mut Vec<(usize, u8)>,
        events: &mut Vec<DeliveryEvent>,
    ) {
        if self.eject_buffered == 0 {
            return;
        }
        for v in 0..self.vcs {
            let mut returned = 0u8;
            while let Some(front) = self.eject[v].front() {
                if front.tail {
                    let pid = front.packet;
                    let kind = arena.get(pid).kind;
                    let internal = kind == PacketKind::TagAck;
                    if !internal {
                        // Endpoint half of the WB estimator: ack a
                        // tagged request the moment its tail flit
                        // reaches the interface, so the sample
                        // measures network transit, not the bank's
                        // service backlog behind a full outbox.
                        let p = arena.get_mut(pid);
                        if let (Some(tag), true) = (p.wb_tag.take(), p.kind.is_bank_request()) {
                            let mut ack =
                                Packet::new(PacketKind::TagAck, self.coord, tag.parent, 0, 0);
                            ack.wb_tag = Some(tag);
                            let ack_id = arena.insert(ack);
                            self.enqueue(ack_id, TrafficClass::Response);
                        }
                    }
                    if !internal && self.outbox.len() >= self.outbox_cap {
                        break; // back-pressure: leave the tail buffered
                    }
                    self.eject[v].pop_front();
                    self.eject_buffered -= 1;
                    returned += 1;
                    let p = arena.get_mut(pid);
                    p.ejected_at = now;
                    if internal {
                        let packet = arena.take(pid);
                        if let Some(tag) = packet.wb_tag {
                            events.push(DeliveryEvent::TagAck(tag, now));
                        }
                    } else {
                        self.outbox.push_back(pid);
                        self.delivered += 1;
                    }
                } else {
                    self.eject[v].pop_front();
                    self.eject_buffered -= 1;
                    returned += 1;
                }
            }
            if returned > 0 {
                credits.push((v, returned));
            }
        }
    }

    /// Takes all assembled packets out of the outbox.
    pub fn pop_delivered(&mut self, arena: &mut Arena) -> Vec<Packet> {
        self.outbox.drain(..).map(|id| arena.take(id)).collect()
    }

    /// Takes at most `max` assembled packets out of the outbox
    /// (endpoint-side admission control: what stays puts back-pressure
    /// on the network).
    pub fn pop_delivered_up_to(&mut self, arena: &mut Arena, max: usize) -> Vec<Packet> {
        let n = max.min(self.outbox.len());
        self.outbox.drain(..n).map(|id| arena.take(id)).collect()
    }

    /// Assembled packets waiting in the outbox.
    pub fn outbox_len(&self) -> usize {
        self.outbox.len()
    }

    /// Flits buffered in the per-VC ejection queue (audit
    /// instrumentation: credit-matched to the router's local port).
    pub fn eject_depth(&self, vc: usize) -> usize {
        self.eject[vc].len()
    }

    /// Remaining credits for a local input VC (audit instrumentation).
    pub fn inject_credits(&self, vc: usize) -> u8 {
        self.credits[vc]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::WbTag;
    use snoc_common::geom::Layer;
    use snoc_common::ids::BankId;

    fn coord() -> Coord {
        Coord::new(1, 1, Layer::Cache)
    }

    fn mk() -> (Nic, Router, NocWorkspace, Arena) {
        let nic = Nic::new(coord(), 6, 5, 8, 4);
        let router = Router::new(0, coord(), 6, 5, vec![]);
        (nic, router, NocWorkspace::new(1, 6, 5), Arena::new())
    }

    /// `inject_step` plus the post-barrier stamp application the
    /// network performs, so tests see `injected_at` as before.
    fn inject(
        nic: &mut Nic,
        router: &mut Router,
        ws: &mut NocWorkspace,
        arena: &mut Arena,
        now: Cycle,
        router_stages: u64,
    ) -> bool {
        let mut stamps = Vec::new();
        let sent = nic.inject_step(router, ws, arena, now, router_stages, &mut stamps);
        for pid in stamps {
            arena.get_mut(pid).injected_at = now;
        }
        sent
    }

    fn drain(
        nic: &mut Nic,
        arena: &mut Arena,
        now: Cycle,
    ) -> (Vec<(usize, u8)>, Vec<DeliveryEvent>) {
        let mut credits = Vec::new();
        let mut events = Vec::new();
        nic.drain_eject(arena, now, &mut credits, &mut events);
        (credits, events)
    }

    fn request(arena: &mut Arena) -> PacketId {
        let p = Packet::new(
            PacketKind::BankRead,
            coord(),
            Coord::new(3, 3, Layer::Cache),
            0x80,
            7,
        );
        arena.insert(p)
    }

    #[test]
    fn injects_one_flit_per_cycle() {
        // Give the NI a deep credit pool so the buffer never limits it.
        let mut nic = Nic::new(coord(), 6, 16, 8, 4);
        let mut router = Router::new(0, coord(), 6, 16, vec![]);
        let mut ws = NocWorkspace::new(1, 6, 16);
        let mut arena = Arena::new();
        let p = Packet::new(
            PacketKind::Writeback,
            coord(),
            Coord::new(3, 3, Layer::Cache),
            0,
            0,
        );
        let id = arena.insert(p);
        nic.enqueue(id, TrafficClass::Request);
        for cycle in 0..8 {
            inject(&mut nic, &mut router, &mut ws, &mut arena, cycle, 2);
            assert_eq!(
                router.buffered_flits(&ws),
                cycle as usize + 1,
                "one flit per cycle"
            );
        }
        inject(&mut nic, &mut router, &mut ws, &mut arena, 8, 2);
        assert_eq!(router.buffered_flits(&ws), 9, "writeback is 9 flits");
        assert_eq!(arena.get(id).injected_at, 0);
        assert_eq!(nic.injected, 1);
        assert_eq!(nic.inject_backlog(), 0);
    }

    #[test]
    fn injection_respects_credits() {
        let (mut nic, mut router, mut ws, mut arena) = mk();
        let p = Packet::new(
            PacketKind::Writeback,
            coord(),
            Coord::new(3, 3, Layer::Cache),
            0,
            0,
        );
        let id = arena.insert(p);
        nic.enqueue(id, TrafficClass::Request);
        // Only 5 credits per VC: the 6th flit stalls until a credit
        // returns.
        for cycle in 0..9 {
            inject(&mut nic, &mut router, &mut ws, &mut arena, cycle, 2);
        }
        assert_eq!(router.buffered_flits(&ws), 5);
        // The router forwards two flits downstream, freeing the buffer
        // slots whose credits flow back to the NI.
        let lane = ws.lane(0, Direction::Local.port(), 0);
        ws.pop_front(0, lane);
        ws.pop_front(0, lane);
        nic.return_credit(0, 2);
        inject(&mut nic, &mut router, &mut ws, &mut arena, 9, 2);
        inject(&mut nic, &mut router, &mut ws, &mut arena, 10, 2);
        assert_eq!(router.buffered_flits(&ws), 5, "two more flits entered");
    }

    #[test]
    fn classes_bind_disjoint_vcs() {
        let (mut nic, mut router, mut ws, mut arena) = mk();
        let req = request(&mut arena);
        let rsp = arena.insert(Packet::new(PacketKind::Ack, coord(), coord(), 0, 0));
        nic.enqueue(req, TrafficClass::Request);
        nic.enqueue(rsp, TrafficClass::Response);
        inject(&mut nic, &mut router, &mut ws, &mut arena, 0, 2);
        inject(&mut nic, &mut router, &mut ws, &mut arena, 1, 2);
        // Request lands in VC 0..2, response in VC 4..6.
        assert_eq!(router.input_vc(&ws, Direction::Local.port(), 0).len(), 1);
        let rsp_vcs: usize = (4..6)
            .map(|v| router.input_vc(&ws, Direction::Local.port(), v).len())
            .sum();
        assert_eq!(rsp_vcs, 1);
    }

    #[test]
    fn eject_assembles_and_returns_credits() {
        let (mut nic, _router, _ws, mut arena) = mk();
        let id = request(&mut arena);
        for flit in Flit::sequence(id, 1) {
            nic.accept_eject(4, flit);
        }
        let (credits, events) = drain(&mut nic, &mut arena, 50);
        assert_eq!(credits, vec![(4, 1)]);
        assert!(events.is_empty());
        let delivered = nic.pop_delivered(&mut arena);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].ejected_at, 50);
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn outbox_backpressure_stalls_tail_flits() {
        let (mut nic, _router, _ws, mut arena) = mk();
        // Fill the outbox to its cap of 4.
        for _ in 0..5 {
            let id = request(&mut arena);
            for flit in Flit::sequence(id, 1) {
                nic.accept_eject(0, flit);
            }
        }
        let (credits, _) = drain(&mut nic, &mut arena, 1);
        assert_eq!(credits, vec![(0, 4)], "fifth tail stays buffered");
        assert_eq!(nic.outbox_len(), 4);
        nic.pop_delivered(&mut arena);
        let (credits, _) = drain(&mut nic, &mut arena, 2);
        assert_eq!(credits, vec![(0, 1)]);
    }

    #[test]
    fn tagged_request_triggers_an_ack() {
        let (mut nic, mut router, mut ws, mut arena) = mk();
        let id = request(&mut arena);
        let parent = Coord::new(3, 3, Layer::Cache);
        arena.get_mut(id).wb_tag = Some(WbTag {
            stamp: 42,
            parent,
            child: BankId::new(9),
        });
        for flit in Flit::sequence(id, 1) {
            nic.accept_eject(0, flit);
        }
        let (_, events) = drain(&mut nic, &mut arena, 10);
        assert!(events.is_empty(), "ack is sent, not an event at the child");
        // The ack is queued for injection in the response class.
        assert_eq!(nic.inject_backlog(), 1);
        inject(&mut nic, &mut router, &mut ws, &mut arena, 11, 2);
        let v = TrafficClass::Response.vc_range(6).start;
        assert_eq!(router.input_vc(&ws, Direction::Local.port(), v).len(), 1);
    }

    #[test]
    fn eject_buffered_counter_tracks_per_vc_depths_exactly() {
        // The O(1) early-out in `drain_eject` hinges on the counter: it
        // must equal the summed per-VC depths after every mutation,
        // reaching zero exactly when all VCs are empty — a phantom
        // non-zero count would burn cycles, a phantom zero would strand
        // buffered flits forever.
        use snoc_common::rng::SimRng;
        let (mut nic, _router, _ws, mut arena) = mk();
        let mut rng = SimRng::for_stream(0x41C, 0);
        fn check(nic: &Nic) {
            let total: usize = (0..6).map(|v| nic.eject_depth(v)).sum();
            assert_eq!(nic.eject_buffered(), total, "counter out of sync");
        }
        for step in 0..500u64 {
            if rng.chance(0.6) {
                let id = request(&mut arena);
                let vc = rng.below(6);
                for flit in Flit::sequence(id, 1 + rng.below(4)) {
                    nic.accept_eject(vc, flit);
                    check(&nic);
                }
            } else {
                drain(&mut nic, &mut arena, step);
                check(&nic);
                nic.pop_delivered(&mut arena);
            }
        }
        // Drain to empty: with the outbox popped between passes, every
        // pass with flits buffered must make progress.
        while nic.eject_buffered() > 0 {
            let before = nic.eject_buffered();
            drain(&mut nic, &mut arena, 1_000);
            nic.pop_delivered(&mut arena);
            check(&nic);
            assert!(nic.eject_buffered() < before, "drain made no progress");
        }
        // Draining while empty is a strict no-op: no credits, no events.
        let (credits, events) = drain(&mut nic, &mut arena, 2_000);
        assert!(credits.is_empty() && events.is_empty());
        assert_eq!(arena.live(), 0, "every packet was assembled and taken");
    }

    #[test]
    fn tagack_is_consumed_internally() {
        let (mut nic, _router, _ws, mut arena) = mk();
        let parent = coord();
        let mut ack = Packet::new(
            PacketKind::TagAck,
            Coord::new(3, 3, Layer::Cache),
            parent,
            0,
            0,
        );
        ack.wb_tag = Some(WbTag {
            stamp: 7,
            parent,
            child: BankId::new(9),
        });
        let id = arena.insert(ack);
        for flit in Flit::sequence(id, 1) {
            nic.accept_eject(5, flit);
        }
        let (credits, events) = drain(&mut nic, &mut arena, 99);
        assert_eq!(credits, vec![(5, 1)]);
        assert_eq!(events.len(), 1);
        match &events[0] {
            DeliveryEvent::TagAck(tag, when) => {
                assert_eq!(tag.stamp, 7);
                assert_eq!(*when, 99);
            }
        }
        assert_eq!(nic.outbox_len(), 0, "tag acks never reach the endpoint");
        assert_eq!(arena.live(), 0);
    }
}
