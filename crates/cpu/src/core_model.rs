//! The out-of-order core: instruction window, issue and in-order
//! commit.

use crate::stream::{Instr, InstructionStream};
use snoc_common::config::CoreConfig;
use snoc_common::ids::CoreId;
use snoc_common::Cycle;
use std::collections::VecDeque;

/// The memory system's answer to an issued load/store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Issue {
    /// The access completes at the given cycle (e.g. an L1 hit).
    Done(Cycle),
    /// The access is outstanding; [`OooCore::complete`] will be called
    /// with the token.
    Pending,
    /// The memory system cannot accept the access now (MSHRs full);
    /// the core retries next cycle.
    Retry,
}

/// The core's window-side view of the memory hierarchy.
pub trait MemPort {
    /// Issues a memory access. `token` identifies the window entry for
    /// [`OooCore::complete`]; `now` is the current cycle.
    fn issue(&mut self, core: CoreId, addr: u64, is_write: bool, token: u64, now: Cycle) -> Issue;
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    token: u64,
    ready_at: Option<Cycle>,
}

/// Core statistics.
#[derive(Debug, Clone, Default)]
pub struct CoreStats {
    /// Instructions committed in total.
    pub committed: u64,
    /// Memory instructions issued.
    pub mem_ops: u64,
    /// Cycles fetch stalled on a full window.
    pub window_full_stalls: u64,
    /// Issue retries (MSHRs full).
    pub retries: u64,
}

/// One out-of-order core.
#[derive(Debug)]
pub struct OooCore {
    id: CoreId,
    cfg: CoreConfig,
    window: VecDeque<Entry>,
    next_token: u64,
    stalled: Option<Instr>,
    /// Statistics.
    pub stats: CoreStats,
}

impl OooCore {
    /// Creates a core.
    pub fn new(id: CoreId, cfg: CoreConfig) -> Self {
        Self {
            id,
            cfg,
            window: VecDeque::with_capacity(cfg.window_entries),
            next_token: 0,
            stalled: None,
            stats: CoreStats::default(),
        }
    }

    /// This core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Total committed instructions.
    pub fn committed(&self) -> u64 {
        self.stats.committed
    }

    /// Occupied window entries.
    pub fn window_occupancy(&self) -> usize {
        self.window.len()
    }

    /// Marks the memory access `token` complete; the instruction may
    /// commit from `now` on.
    pub fn complete(&mut self, token: u64, now: Cycle) {
        if let Some(e) = self.window.iter_mut().find(|e| e.token == token) {
            e.ready_at = Some(now);
        }
    }

    /// One pipeline cycle: commit up to `width` ready instructions in
    /// order, then fetch/issue up to `width` new ones (at most
    /// `mem_ops_per_cycle` memory operations).
    pub fn tick<S: InstructionStream + ?Sized, P: MemPort + ?Sized>(
        &mut self,
        now: Cycle,
        stream: &mut S,
        port: &mut P,
    ) {
        // In-order commit.
        let mut committed = 0;
        while committed < self.cfg.width {
            match self.window.front() {
                Some(e) if e.ready_at.map(|r| r <= now).unwrap_or(false) => {
                    self.window.pop_front();
                    self.stats.committed += 1;
                    committed += 1;
                }
                _ => break,
            }
        }

        // Fetch / dispatch / issue.
        let mut fetched = 0;
        let mut mem_issued = 0;
        while fetched < self.cfg.width {
            if self.window.len() >= self.cfg.window_entries {
                self.stats.window_full_stalls += 1;
                break;
            }
            let instr = match self.stalled.take() {
                Some(i) => i,
                None => stream.next_instr(),
            };
            if instr.is_mem() {
                if mem_issued >= self.cfg.mem_ops_per_cycle {
                    self.stalled = Some(instr);
                    break;
                }
                let token = self.next_token;
                let addr = instr.addr().expect("memory instruction has an address");
                match port.issue(self.id, addr, instr.is_write(), token, now) {
                    Issue::Done(at) => {
                        self.window.push_back(Entry {
                            token,
                            ready_at: Some(at),
                        });
                    }
                    Issue::Pending => {
                        self.window.push_back(Entry {
                            token,
                            ready_at: None,
                        });
                    }
                    Issue::Retry => {
                        self.stats.retries += 1;
                        self.stalled = Some(instr);
                        break;
                    }
                }
                self.next_token += 1;
                self.stats.mem_ops += 1;
                mem_issued += 1;
            } else {
                let token = self.next_token;
                self.next_token += 1;
                self.window.push_back(Entry {
                    token,
                    ready_at: Some(now + 1),
                });
            }
            fetched += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::PatternStream;

    struct FixedLatency(u64);
    impl MemPort for FixedLatency {
        fn issue(&mut self, _: CoreId, _: u64, _: bool, _: u64, now: Cycle) -> Issue {
            Issue::Done(now + self.0)
        }
    }

    struct NeverReplies {
        issued: Vec<u64>,
    }
    impl MemPort for NeverReplies {
        fn issue(&mut self, _: CoreId, _: u64, _: bool, token: u64, _: Cycle) -> Issue {
            self.issued.push(token);
            Issue::Pending
        }
    }

    fn run(core: &mut OooCore, stream: &mut dyn InstructionStream, port: &mut dyn MemPort, n: u64) {
        for now in 0..n {
            core.tick(now, stream, port);
        }
    }

    #[test]
    fn compute_only_reaches_width_ipc() {
        let mut core = OooCore::new(CoreId::new(0), CoreConfig::default());
        let mut s = PatternStream::new(vec![Instr::NonMem]);
        let mut p = FixedLatency(0);
        run(&mut core, &mut s, &mut p, 1000);
        let ipc = core.committed() as f64 / 1000.0;
        assert!(ipc > 1.95, "ipc {ipc}");
    }

    #[test]
    fn fast_memory_sustains_high_ipc() {
        let mut core = OooCore::new(CoreId::new(0), CoreConfig::default());
        let mut s = PatternStream::new(vec![
            Instr::NonMem,
            Instr::NonMem,
            Instr::NonMem,
            Instr::Load { addr: 64 },
        ]);
        let mut p = FixedLatency(2); // L1-hit speed
        run(&mut core, &mut s, &mut p, 2000);
        let ipc = core.committed() as f64 / 2000.0;
        assert!(ipc > 1.8, "ipc {ipc}");
    }

    #[test]
    fn slow_memory_fills_the_window_and_throttles_ipc() {
        let mut core = OooCore::new(CoreId::new(0), CoreConfig::default());
        let mut s = PatternStream::new(vec![Instr::NonMem, Instr::Load { addr: 64 }]);
        let mut p = FixedLatency(400);
        run(&mut core, &mut s, &mut p, 4000);
        let ipc = core.committed() as f64 / 4000.0;
        // Every second instruction waits ~400 cycles; the 128-entry
        // window can hold ~64 outstanding loads: ipc ~= 128/400 = 0.32.
        assert!(ipc < 0.5, "ipc {ipc}");
        assert!(ipc > 0.1, "window overlap should still help: {ipc}");
        assert!(core.stats.window_full_stalls > 0);
    }

    #[test]
    fn pending_completion_unblocks_commit() {
        let mut core = OooCore::new(CoreId::new(0), CoreConfig::default());
        let mut s = PatternStream::new(vec![Instr::Load { addr: 64 }]);
        let mut p = NeverReplies { issued: Vec::new() };
        core.tick(0, &mut s, &mut p);
        assert_eq!(core.committed(), 0);
        assert_eq!(p.issued.len(), 1);
        core.complete(p.issued[0], 5);
        core.tick(6, &mut s, &mut p);
        assert_eq!(core.committed(), 1);
    }

    #[test]
    fn one_memory_op_per_cycle() {
        let mut core = OooCore::new(CoreId::new(0), CoreConfig::default());
        let mut s = PatternStream::new(vec![Instr::Load { addr: 64 }]);
        let mut p = FixedLatency(1);
        core.tick(0, &mut s, &mut p);
        assert_eq!(core.stats.mem_ops, 1, "second load of the pair must wait");
        core.tick(1, &mut s, &mut p);
        assert_eq!(core.stats.mem_ops, 2);
    }

    #[test]
    fn retry_keeps_the_instruction() {
        struct RetryOnce {
            retried: bool,
        }
        impl MemPort for RetryOnce {
            fn issue(&mut self, _: CoreId, _: u64, _: bool, _: u64, now: Cycle) -> Issue {
                if self.retried {
                    Issue::Done(now + 1)
                } else {
                    self.retried = true;
                    Issue::Retry
                }
            }
        }
        let mut core = OooCore::new(CoreId::new(0), CoreConfig::default());
        let mut s = PatternStream::new(vec![Instr::Store { addr: 64 }]);
        let mut p = RetryOnce { retried: false };
        core.tick(0, &mut s, &mut p);
        assert_eq!(core.stats.retries, 1);
        assert_eq!(core.stats.mem_ops, 0);
        core.tick(1, &mut s, &mut p);
        assert_eq!(core.stats.mem_ops, 1);
    }

    #[test]
    fn commits_in_order() {
        // A slow load followed by fast compute: nothing commits until
        // the load returns.
        let mut core = OooCore::new(CoreId::new(0), CoreConfig::default());
        let mut issued = NeverReplies { issued: Vec::new() };
        let mut s = PatternStream::new(vec![
            Instr::Load { addr: 64 },
            Instr::NonMem,
            Instr::NonMem,
            Instr::NonMem,
        ]);
        for now in 0..50 {
            core.tick(now, &mut s, &mut issued);
        }
        assert_eq!(core.committed(), 0, "head of window blocks commit");
        core.complete(issued.issued[0], 50);
        core.tick(51, &mut s, &mut issued);
        assert!(core.committed() >= 1);
    }
}
