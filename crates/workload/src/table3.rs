//! The 42-application characterization of Table 3.

use crate::profile::{BenchmarkProfile, Burstiness, Suite};

use Burstiness::{High, Low};
use Suite::{Parsec, Server, Spec};

macro_rules! profiles {
    ($(($name:literal, $suite:expr, $l1:expr, $l2:expr, $w:expr, $r:expr, $b:expr)),+ $(,)?) => {
        &[$(BenchmarkProfile {
            name: $name,
            suite: $suite,
            l1_mpki: $l1,
            l2_mpki: $l2,
            l2_wpki: $w,
            l2_rpki: $r,
            bursty: $b,
        }),+]
    };
}

/// All 42 rows of Table 3, in the paper's order.
pub const TABLE3: &[BenchmarkProfile] = profiles![
    ("tpcc", Server, 51.47, 6.06, 40.9, 10.57, High),
    ("sjas", Server, 41.54, 4.48, 35.06, 6.48, High),
    ("sap", Server, 29.91, 3.84, 23.57, 6.15, High),
    ("sjbb", Server, 25.52, 7.01, 19.42, 6.09, High),
    ("sclust", Parsec, 29.28, 8.34, 15.23, 14.05, High),
    ("vips", Parsec, 13.51, 8.07, 6.61, 6.89, High),
    ("canneal", Parsec, 12.8, 5.47, 6.52, 6.27, Low),
    ("dedup", Parsec, 12.8, 4.59, 7.42, 5.36, High),
    ("ferret", Parsec, 11.62, 9.16, 6.39, 5.22, Low),
    ("facesim", Parsec, 10.62, 6.82, 6.15, 4.46, Low),
    ("swptns", Parsec, 5.47, 6.35, 2.46, 3.00, Low),
    ("bscls", Parsec, 5.29, 3.73, 2.80, 2.48, Low),
    ("bdtrk", Parsec, 5.62, 5.71, 2.81, 2.81, Low),
    ("rtrce", Parsec, 5.65, 4.98, 3.62, 2.03, Low),
    ("x264", Parsec, 4.17, 4.62, 1.87, 2.29, Low),
    ("fldnmt", Parsec, 4.89, 4.41, 2.68, 2.2, Low),
    ("frqmn", Parsec, 2.29, 3.96, 1.31, 0.98, Low),
    ("gems", Spec, 104.04, 94.62, 0.8, 103.23, Low),
    ("mcf", Spec, 99.81, 64.47, 5.45, 94.37, Low),
    ("soplex", Spec, 48.54, 16.88, 19.59, 28.95, Low),
    ("cactus", Spec, 43.81, 15.64, 18.65, 25.16, Low),
    ("lbm", Spec, 36.49, 18.88, 30.76, 5.73, High),
    ("hmmer", Spec, 34.36, 3.31, 12.5, 21.86, High),
    ("xalan", Spec, 29.7, 21.07, 3.02, 26.68, Low),
    ("leslie", Spec, 26.09, 18.06, 7.65, 18.45, Low),
    ("sphinx3", Spec, 25.55, 10.91, 0.97, 24.58, High),
    ("gobmk", Spec, 22.81, 8.68, 8.02, 14.79, High),
    ("astar", Spec, 20.03, 4.21, 6.11, 13.92, Low),
    ("bzip2", Spec, 19.29, 10.02, 2.66, 16.63, High),
    ("milc", Spec, 19.12, 18.67, 0.05, 19.06, Low),
    ("libqntm", Spec, 12.5, 12.5, 0.0, 12.5, Low),
    ("omnet", Spec, 10.92, 10.15, 0.25, 10.67, Low),
    ("povray", Spec, 9.63, 7.86, 0.88, 8.75, High),
    ("gcc", Spec, 9.39, 8.51, 0.06, 9.34, High),
    ("namd", Spec, 8.85, 5.11, 0.65, 8.19, High),
    ("gromacs", Spec, 5.36, 3.18, 0.32, 5.05, High),
    ("tonto", Spec, 5.26, 0.55, 3.52, 1.74, High),
    ("h264", Spec, 4.81, 2.74, 2.03, 2.78, High),
    ("dealII", Spec, 4.41, 2.36, 0.35, 4.06, High),
    ("sjeng", Spec, 3.93, 2.0, 0.92, 3.01, Low),
    ("wrf", Spec, 1.8, 0.75, 0.88, 0.92, Low),
    ("calculix", Spec, 0.33, 0.23, 0.03, 0.29, Low),
];

/// All profiles.
pub fn all() -> &'static [BenchmarkProfile] {
    TABLE3
}

/// Looks a profile up by its Table 3 name.
pub fn by_name(name: &str) -> Option<&'static BenchmarkProfile> {
    TABLE3.iter().find(|p| p.name == name)
}

/// The profiles of one suite.
pub fn suite(s: Suite) -> impl Iterator<Item = &'static BenchmarkProfile> {
    TABLE3.iter().filter(move |p| p.suite == s)
}

/// The application subsets shown in the paper's figures.
pub mod figures {
    /// Server apps of Figure 6 (top panel).
    pub const FIG6_SERVER: &[&str] = &["sap", "sjbb", "tpcc", "sjas"];
    /// PARSEC apps of Figure 6 (middle panel).
    pub const FIG6_PARSEC: &[&str] = &[
        "ferret", "facesim", "vips", "canneal", "dedup", "sclust", "bscls", "bdtrk", "fldnmt",
        "frqmn", "rtrce", "swptns", "x264",
    ];
    /// SPEC apps of Figure 6 (bottom panel).
    pub const FIG6_SPEC: &[&str] = &[
        "soplex", "cactus", "lbm", "hmmer", "gobmk", "milc", "libqntm", "gems", "mcf", "xalan",
        "leslie", "omnet", "povray",
    ];
    /// Apps of the Figure 3 histograms.
    pub const FIG3: &[&str] = &[
        "ferret", "facesim", "sclust", "x264", "libqntm", "lbm", "sphinx3", "hmmer", "sap", "sjas",
        "tpcc", "sjbb",
    ];
    /// Apps of the Figure 7 latency breakdown.
    pub const FIG7: &[&str] = &["sap", "sjbb", "sclust", "lbm", "hmmer"];
    /// Apps of the Figure 14 write-buffer comparison.
    pub const FIG14: &[&str] = &["tpcc", "sjas", "sclust", "lbm"];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_42_applications() {
        assert_eq!(TABLE3.len(), 42);
        assert_eq!(suite(Server).count(), 4);
        assert_eq!(suite(Parsec).count(), 13);
        assert_eq!(suite(Spec).count(), 25);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = TABLE3.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 42);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("lbm").unwrap().l2_wpki, 30.76);
        assert!(by_name("doom").is_none());
    }

    #[test]
    fn l2_accesses_equal_l1_misses_for_every_row() {
        // Table 3's internal consistency: every L1 miss becomes an L2
        // read or an L2 write.
        for p in TABLE3 {
            let sum = p.l2_rpki + p.l2_wpki;
            // Within 5%: the paper's own rounding leaves e.g.
            // calculix at 0.32 vs 0.33.
            assert!(
                (sum - p.l1_mpki).abs() / p.l1_mpki < 0.05,
                "{}: rpki+wpki = {} vs l1mpki = {}",
                p.name,
                sum,
                p.l1_mpki
            );
        }
    }

    #[test]
    fn figure_subsets_resolve() {
        for name in figures::FIG3
            .iter()
            .chain(figures::FIG6_SERVER)
            .chain(figures::FIG6_PARSEC)
            .chain(figures::FIG6_SPEC)
            .chain(figures::FIG7)
            .chain(figures::FIG14)
        {
            assert!(by_name(name).is_some(), "unknown figure app {name}");
        }
    }

    #[test]
    fn server_apps_are_write_intensive() {
        for p in suite(Server) {
            assert!(p.is_write_intensive(), "{}", p.name);
        }
    }

    #[test]
    fn miss_ratios_are_valid() {
        for p in TABLE3 {
            let r = p.l2_miss_ratio();
            assert!((0.0..=1.0).contains(&r), "{}: {r}", p.name);
        }
    }
}
