//! Figure 9: weighted speedup and instruction throughput for the
//! multiprogrammed case studies (Case-1, Case-2, and the aggregate of
//! the 32 Case-3 mixes), normalized to SRAM-64TSB.

use crate::experiments::{norm, Scale};
use crate::metrics::weighted_speedup;
use crate::report::Rows;
use crate::scenario::Scenario;
use crate::sweep::{CellResult, Experiment, RunSpec, SweepRunner};
use crate::system::{DriveMode, System};
use snoc_workload::mixes::{self, Workload};
use std::collections::HashMap;
use std::fmt;

/// Normalized (weighted speedup, instruction throughput) per scenario.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Case label.
    pub name: String,
    /// One (WS, IT) pair per [`Scenario::ALL`] entry, normalized to
    /// the SRAM baseline.
    pub normalized: Vec<(f64, f64)>,
}

/// The figure: Case-1, Case-2, Case-3 aggregate.
#[derive(Debug, Clone)]
pub struct Fig9Result {
    /// The three panels.
    pub cases: Vec<CaseResult>,
}

/// The case panels at this scale: `(label, workloads)` in presentation
/// order. Deterministic, so grid and assemble agree.
fn cases(scale: Scale) -> Vec<(&'static str, Vec<Workload>)> {
    let cores = 64;
    let all3 = mixes::case3(cores, 0xC0FFEE);
    let subset: Vec<Workload> = match scale {
        Scale::Quick => all3.into_iter().step_by(8).collect(), // 4 mixes
        Scale::Full => all3,
    };
    vec![
        ("Case-1", vec![mixes::case1(cores)]),
        ("Case-2", vec![mixes::case2(cores)]),
        ("Case-3 (aggregate)", subset),
    ]
}

/// The deduplicated "alone" cells: each distinct `(app, scenario)`
/// pair across all case workloads, in first-appearance order. Eq. 2's
/// `IPC_alone` comes from one copy of the app on an otherwise idle
/// machine.
fn alone_keys(scale: Scale) -> Vec<(&'static str, usize)> {
    let mut keys = Vec::new();
    for (_, workloads) in cases(scale) {
        for w in &workloads {
            for sc_idx in 0..Scenario::ALL.len() {
                for p in w.distinct() {
                    if !keys.contains(&(p.name, sc_idx)) {
                        keys.push((p.name, sc_idx));
                    }
                }
            }
        }
    }
    keys
}

/// The case studies as one grid: every shared mix × scenario run,
/// followed by the deduplicated alone runs that anchor Eq. 2/3.
pub struct Fig9;

impl Experiment for Fig9 {
    type Output = Fig9Result;

    fn name(&self) -> &str {
        "fig9"
    }

    fn grid(&self, scale: Scale) -> Vec<RunSpec> {
        let mut grid = Vec::new();
        for (label, workloads) in cases(scale) {
            for (wi, w) in workloads.iter().enumerate() {
                for (sc_idx, sc) in Scenario::ALL.iter().enumerate() {
                    grid.push(RunSpec::mixed(
                        format!("{label}[{wi}]/{}", sc.name()),
                        scale.apply(Scenario::ALL[sc_idx].config()),
                        w.clone(),
                        DriveMode::Profile,
                    ));
                }
            }
        }
        for (app, sc_idx) in alone_keys(scale) {
            grid.push(RunSpec::mixed(
                format!("alone/{app}/{}", Scenario::ALL[sc_idx].name()),
                scale.apply(Scenario::ALL[sc_idx].config()),
                Workload::solo(app, 64).expect("known app"),
                DriveMode::Profile,
            ));
        }
        grid
    }

    fn assemble(&self, scale: Scale, cells: Vec<CellResult>) -> Fig9Result {
        let cases = cases(scale);
        let shared_cells: usize = cases
            .iter()
            .map(|(_, ws)| ws.len() * Scenario::ALL.len())
            .sum();
        let alone: HashMap<(&'static str, usize), f64> = alone_keys(scale)
            .into_iter()
            .zip(&cells[shared_cells..])
            .map(|(key, cell)| (key, cell.metrics().ipc(0)))
            .collect();

        let mut out = Vec::new();
        let mut cursor = 0;
        for (label, workloads) in cases {
            let mut raw = vec![(0.0, 0.0); Scenario::ALL.len()];
            for w in &workloads {
                for (sc_idx, acc) in raw.iter_mut().enumerate() {
                    let m = cells[cursor].metrics();
                    debug_assert_eq!(cells[cursor].index, cursor);
                    cursor += 1;
                    let apps = w.distinct();
                    let shared: Vec<f64> = apps
                        .iter()
                        .map(|p| m.ipc_of_cores(&w.cores_running(p.name)))
                        .collect();
                    let alone_ipcs: Vec<f64> =
                        apps.iter().map(|p| alone[&(p.name, sc_idx)]).collect();
                    acc.0 += weighted_speedup(&shared, &alone_ipcs);
                    acc.1 += m.instruction_throughput();
                }
            }
            let base = raw[0];
            out.push(CaseResult {
                name: label.to_string(),
                normalized: raw
                    .iter()
                    .map(|&(ws, it)| (norm(ws, base.0), norm(it, base.1)))
                    .collect(),
            });
        }
        Fig9Result { cases: out }
    }
}

/// Runs the three case studies through the [`SweepRunner`].
pub fn run(scale: Scale) -> Fig9Result {
    SweepRunner::from_env().run(&Fig9, scale)
}

/// Caches each application's "alone" IPC per scenario (its solo run
/// under the same configuration). Retained for direct measurements
/// outside the sweep (Figure 10's tests and ad-hoc probes).
pub struct AloneCache {
    scale: Scale,
    cache: HashMap<(&'static str, usize), f64>,
}

impl AloneCache {
    /// Creates an empty cache.
    pub fn new(scale: Scale) -> Self {
        Self {
            scale,
            cache: HashMap::new(),
        }
    }

    /// The IPC of one copy of `app` on an otherwise idle machine under
    /// scenario `sc` (Eq. 2's `IPC_alone`).
    pub fn alone_ipc(&mut self, app: &'static str, sc_idx: usize) -> f64 {
        if let Some(&v) = self.cache.get(&(app, sc_idx)) {
            return v;
        }
        let w = Workload::solo(app, 64).expect("known app");
        let cfg = self.scale.apply(Scenario::ALL[sc_idx].config());
        let m = System::new(cfg, &w, DriveMode::Profile).run();
        let v = m.ipc(0);
        self.cache.insert((app, sc_idx), v);
        v
    }
}

/// Raw (WS, IT) for one workload under one scenario (direct, not
/// through the sweep).
pub fn measure(w: &Workload, sc_idx: usize, scale: Scale, alone: &mut AloneCache) -> (f64, f64) {
    let cfg = scale.apply(Scenario::ALL[sc_idx].config());
    let m = System::new(cfg, w, DriveMode::Profile).run();
    let apps = w.distinct();
    let shared: Vec<f64> = apps
        .iter()
        .map(|p| m.ipc_of_cores(&w.cores_running(p.name)))
        .collect();
    let alone_ipcs: Vec<f64> = apps
        .iter()
        .map(|p| alone.alone_ipc(p.name, sc_idx))
        .collect();
    (
        weighted_speedup(&shared, &alone_ipcs),
        m.instruction_throughput(),
    )
}

impl fmt::Display for Fig9Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 9: weighted speedup (WS) and instruction throughput (IT),\nnormalized to SRAM-64TSB"
        )?;
        for c in &self.cases {
            writeln!(f, "--- {} ---", c.name)?;
            write!(f, "{:4}", "")?;
            for sc in Scenario::ALL {
                write!(f, " {:>14}", sc.name())?;
            }
            writeln!(f)?;
            write!(f, "{:4}", "WS")?;
            for (ws, _) in &c.normalized {
                write!(f, " {:>14.3}", ws)?;
            }
            writeln!(f)?;
            write!(f, "{:4}", "IT")?;
            for (_, it) in &c.normalized {
                write!(f, " {:>14.3}", it)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl Rows for Fig9Result {
    fn header(&self) -> Vec<String> {
        Scenario::ALL.iter().map(|s| s.name().to_string()).collect()
    }

    fn rows(&self) -> Vec<(String, Vec<f64>)> {
        let mut out = Vec::new();
        for c in &self.cases {
            out.push((
                format!("{}/WS", c.name),
                c.normalized.iter().map(|p| p.0).collect(),
            ));
            out.push((
                format!("{}/IT", c.name),
                c.normalized.iter().map(|p| p.1).collect(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case2_weighted_speedup_is_normalized() {
        let mut alone = AloneCache::new(Scale::Quick);
        let w = mixes::case2(64);
        let (ws, it) = measure(&w, 0, Scale::Quick, &mut alone);
        // Four applications: WS is bounded by 4 (and positive).
        assert!(ws > 0.5 && ws < 6.0, "ws {ws}");
        assert!(it > 0.0);
    }

    #[test]
    fn alone_cache_reuses_runs() {
        let mut alone = AloneCache::new(Scale::Quick);
        let a = alone.alone_ipc("lbm", 0);
        let b = alone.alone_ipc("lbm", 0);
        assert_eq!(a, b);
        assert_eq!(alone.cache.len(), 1);
    }

    #[test]
    fn grid_covers_shared_then_alone_cells() {
        let grid = Fig9.grid(Scale::Quick);
        let shared = 6 * Scenario::ALL.len(); // case1 + case2 + 4 mixes
        assert!(grid.len() > shared, "alone cells follow the shared runs");
        assert!(grid[0].label.starts_with("Case-1"));
        assert!(grid[shared].label.starts_with("alone/"));
        // Alone keys are deduplicated.
        let keys = alone_keys(Scale::Quick);
        let set: std::collections::HashSet<_> = keys.iter().collect();
        assert_eq!(set.len(), keys.len());
    }
}
