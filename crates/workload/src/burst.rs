//! The two-state (ON/OFF) burst modulator.
//!
//! Table 3 classifies applications as bursty or not "based on latency
//! between 2 consecutive requests to a L2 bank". The modulator scales
//! the instantaneous L2 access probability up during ON phases and
//! down during OFF phases while keeping the long-run average equal to
//! the Table 3 rate, and concentrates ON-phase traffic on a small set
//! of hot banks — reproducing the post-write clustering of Figure 3.

use crate::profile::Burstiness;
use snoc_common::rng::SimRng;

/// Parameters of one burstiness class.
#[derive(Debug, Clone, Copy)]
struct BurstParams {
    on_mean: u32,
    off_mean: u32,
    gain_on: f64,
    hot_banks: usize,
}

impl BurstParams {
    fn of(class: Burstiness) -> Self {
        match class {
            // 25% duty cycle at 2.2x: g_off = (1 - 0.25*2.2)/0.75 = 0.6.
            // Calibrated so the "delayable" fraction (arrivals within
            // the 33-cycle write window) lands near the paper's 27%
            // ceiling for the most bursty applications.
            Burstiness::High => BurstParams {
                on_mean: 150,
                off_mean: 450,
                gain_on: 2.2,
                hot_banks: 6,
            },
            // 25% duty cycle at 1.15x: g_off = 0.95. Weak clustering:
            // low-bursty applications sit near the paper's ~4-18%.
            Burstiness::Low => BurstParams {
                on_mean: 150,
                off_mean: 450,
                gain_on: 1.15,
                hot_banks: 16,
            },
        }
    }

    fn gain_off(&self) -> f64 {
        let duty = self.on_mean as f64 / (self.on_mean + self.off_mean) as f64;
        (1.0 - duty * self.gain_on) / (1.0 - duty)
    }
}

/// The modulator state for one core's stream.
///
/// Hot banks during ON phases are drawn from an *application-level*
/// popularity ranking (a permutation seeded by the application, not
/// the core): the 64 copies/threads of one program contend for the
/// same banks, which is what creates the post-write request clusters
/// of Figure 3. The ranking window rotates slowly so hot banks change
/// across program phases.
#[derive(Debug, Clone)]
pub struct BurstModulator {
    params: BurstParams,
    on: bool,
    remaining: u32,
    banks: usize,
    /// Application-shared bank popularity ranking.
    ranking: Vec<u16>,
    /// Fraction of ON-phase picks drawn from the shared ranking
    /// (higher for multi-threaded applications sharing data).
    shared_frac: f64,
    /// This core's private hot set, re-drawn each burst.
    private_hot: Vec<u16>,
    /// Instruction ticks, for the slow rotation of the hot window.
    ticks: u64,
}

/// Instructions per hot-window rotation step.
const ROTATION_PERIOD: u64 = 768;

impl BurstModulator {
    /// Creates a modulator for `class` over `banks` destination banks.
    /// `app_tag` seeds the application-shared bank ranking (pass the
    /// same value for every core running the same application).
    pub fn new(
        class: Burstiness,
        banks: usize,
        rng: &mut SimRng,
        app_tag: u64,
        shared_frac: f64,
    ) -> Self {
        let params = BurstParams::of(class);
        // Fisher-Yates permutation from an app-only stream so all
        // cores of one application share the ranking.
        let mut app_rng = SimRng::for_stream(app_tag, 0xBA_4C);
        let mut ranking: Vec<u16> = (0..banks as u16).collect();
        for i in (1..banks).rev() {
            ranking.swap(i, app_rng.below(i + 1));
        }
        let mut m = Self {
            params,
            on: false,
            remaining: 0,
            banks,
            ranking,
            shared_frac,
            private_hot: Vec::new(),
            ticks: 0,
        };
        m.enter_phase(false, rng);
        m
    }

    fn enter_phase(&mut self, on: bool, rng: &mut SimRng) {
        self.on = on;
        let mean = if on {
            self.params.on_mean
        } else {
            self.params.off_mean
        };
        self.remaining = mean / 2 + rng.below(mean as usize) as u32 + 1;
        if on {
            self.private_hot = (0..self.params.hot_banks)
                .map(|_| rng.below(self.banks) as u16)
                .collect();
        }
    }

    /// Advances one instruction slot; returns the current rate
    /// multiplier.
    pub fn tick(&mut self, rng: &mut SimRng) -> f64 {
        self.ticks += 1;
        if self.remaining == 0 {
            let next = !self.on;
            self.enter_phase(next, rng);
        }
        self.remaining -= 1;
        if self.on {
            self.params.gain_on
        } else {
            self.params.gain_off()
        }
    }

    /// `true` during an ON phase.
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Picks a destination bank: during ON phases, a mix of the
    /// application's shared hot window (cross-core contention) and a
    /// private per-burst hot set; uniform otherwise.
    pub fn pick_bank(&mut self, rng: &mut SimRng) -> u16 {
        if self.on {
            if rng.chance(self.shared_frac) {
                let window = self.params.hot_banks;
                let rot = (self.ticks / ROTATION_PERIOD) as usize * window;
                let idx = (rot + rng.below(window)) % self.banks;
                self.ranking[idx]
            } else if !self.private_hot.is_empty() {
                self.private_hot[rng.below(self.private_hot.len())]
            } else {
                rng.below(self.banks) as u16
            }
        } else {
            rng.below(self.banks) as u16
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_run_average_gain_is_one() {
        for class in [Burstiness::High, Burstiness::Low] {
            let mut rng = SimRng::for_stream(1, 0);
            let mut m = BurstModulator::new(class, 64, &mut rng, 7, 0.3);
            let n = 600_000;
            let sum: f64 = (0..n).map(|_| m.tick(&mut rng)).sum();
            let avg = sum / n as f64;
            assert!((avg - 1.0).abs() < 0.05, "{class:?}: average gain {avg}");
        }
    }

    #[test]
    fn high_burst_gain_exceeds_low() {
        assert!(
            BurstParams::of(Burstiness::High).gain_on > BurstParams::of(Burstiness::Low).gain_on
        );
    }

    #[test]
    fn on_phase_concentrates_banks() {
        let mut rng = SimRng::for_stream(2, 0);
        let mut m = BurstModulator::new(Burstiness::High, 64, &mut rng, 7, 1.0);
        // Force into an ON phase.
        while !m.is_on() {
            m.tick(&mut rng);
        }
        let mut banks = std::collections::HashSet::new();
        for _ in 0..100 {
            banks.insert(m.pick_bank(&mut rng));
        }
        assert!(banks.len() <= 6, "hot set bounds ON-phase banks: {banks:?}");
    }

    #[test]
    fn off_phase_spreads_banks() {
        let mut rng = SimRng::for_stream(3, 0);
        let mut m = {
            let mut m = BurstModulator::new(Burstiness::High, 64, &mut rng, 7, 1.0);
            assert!(!m.is_on(), "starts OFF");
            m.tick(&mut rng);
            m
        };
        let mut banks = std::collections::HashSet::new();
        for _ in 0..400 {
            banks.insert(m.pick_bank(&mut rng));
        }
        assert!(
            banks.len() > 30,
            "OFF phase is near-uniform: {}",
            banks.len()
        );
    }

    #[test]
    fn cores_of_one_app_share_hot_banks() {
        // Two cores (different rngs), same app tag, both forced into
        // an ON phase at tick 0: their hot windows must coincide.
        let collect = |core_seed: u64, tag: u64| {
            let mut rng = SimRng::for_stream(core_seed, 0);
            let mut m = BurstModulator::new(Burstiness::High, 64, &mut rng, tag, 1.0);
            while !m.is_on() {
                m.tick(&mut rng);
            }
            let mut banks = std::collections::HashSet::new();
            for _ in 0..200 {
                banks.insert(m.pick_bank(&mut rng));
            }
            banks
        };
        let a = collect(1, 42);
        let b = collect(2, 42);
        assert_eq!(a, b, "same app -> same hot banks");
        let c = collect(1, 43);
        assert_ne!(a, c, "different app -> different ranking");
    }

    #[test]
    fn phases_alternate() {
        let mut rng = SimRng::for_stream(4, 0);
        let mut m = BurstModulator::new(Burstiness::High, 64, &mut rng, 7, 1.0);
        let mut transitions = 0;
        let mut last = m.is_on();
        for _ in 0..20_000 {
            m.tick(&mut rng);
            if m.is_on() != last {
                transitions += 1;
                last = m.is_on();
            }
        }
        assert!(transitions >= 10, "phases must alternate: {transitions}");
    }
}
