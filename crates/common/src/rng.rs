//! Deterministic random-number helpers.
//!
//! Every stochastic component of the simulator draws from a
//! [`SimRng`] derived from the master seed and a *stream label*, so
//! adding components never perturbs the random streams of existing ones
//! and identical `(config, seed)` pairs replay bit-for-bit.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The simulator's random-number generator.
///
/// A thin wrapper over a seeded [`SmallRng`] with the handful of draws
/// the workload generator needs.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator for a named stream under a master seed.
    ///
    /// The same `(seed, stream)` pair always yields the same sequence.
    pub fn for_stream(seed: u64, stream: u64) -> Self {
        // SplitMix64 over (seed, stream) decorrelates the streams.
        let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        };
        let mut bytes = [0u8; 32];
        for chunk in bytes.chunks_exact_mut(8) {
            chunk.copy_from_slice(&next().to_le_bytes());
        }
        Self { inner: SmallRng::from_seed(bytes) }
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// A Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.random::<f64>() < p
        }
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        self.inner.random_range(0..bound)
    }

    /// A geometric draw: number of failures before the first success
    /// with success probability `p`, capped at `cap`.
    pub fn geometric(&mut self, p: f64, cap: usize) -> usize {
        let p = p.clamp(1e-9, 1.0);
        let mut n = 0;
        while n < cap && !self.chance(p) {
            n += 1;
        }
        n
    }

    /// A raw 64-bit draw.
    pub fn bits(&mut self) -> u64 {
        self.inner.random()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream_replays() {
        let mut a = SimRng::for_stream(42, 7);
        let mut b = SimRng::for_stream(42, 7);
        for _ in 0..100 {
            assert_eq!(a.bits(), b.bits());
        }
    }

    #[test]
    fn different_streams_decorrelate() {
        let mut a = SimRng::for_stream(42, 7);
        let mut b = SimRng::for_stream(42, 8);
        let same = (0..64).filter(|_| a.bits() == b.bits()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::for_stream(1, 1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn below_is_in_range() {
        let mut r = SimRng::for_stream(3, 3);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn unit_is_in_range() {
        let mut r = SimRng::for_stream(5, 5);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn geometric_respects_cap() {
        let mut r = SimRng::for_stream(9, 9);
        for _ in 0..100 {
            assert!(r.geometric(0.01, 5) <= 5);
        }
    }
}
