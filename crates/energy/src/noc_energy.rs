//! Per-event router and link energies, Orion-style, at 32 nm / 1 V.
//!
//! The paper synthesized its router in Verilog and took power numbers
//! from Orion; absolute values are not critical for Figure 8 (uncore
//! energy is leakage-dominated), but the orders of magnitude are kept
//! realistic for a 128-bit flit at 32 nm.

/// Per-event energies in nJ for one router/link of the mesh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocEnergyModel {
    /// Writing one flit into an input buffer.
    pub buffer_write_nj: f64,
    /// Reading a flit out of the buffer plus crossing the crossbar.
    pub switch_traversal_nj: f64,
    /// Arbitration (VA+SA) per granted flit.
    pub arbitration_nj: f64,
    /// Driving one flit over a 1 mm 128-bit in-layer link.
    pub lateral_link_nj: f64,
    /// Driving one flit through a TSV bundle (much shorter wire).
    pub vertical_link_nj: f64,
    /// Router leakage per cycle (all buffers, crossbar, control), nJ.
    pub router_leakage_nj_per_cycle: f64,
}

impl NocEnergyModel {
    /// The 32 nm model used throughout the reproduction.
    pub fn at_32nm() -> Self {
        Self {
            buffer_write_nj: 0.006,
            switch_traversal_nj: 0.009,
            arbitration_nj: 0.001,
            lateral_link_nj: 0.004,
            vertical_link_nj: 0.001,
            router_leakage_nj_per_cycle: 0.0008,
        }
    }

    /// Dynamic energy of the network given event counts.
    pub fn dynamic_nj(
        &self,
        buffer_writes: u64,
        switch_traversals: u64,
        lateral_flits: u64,
        vertical_flits: u64,
    ) -> f64 {
        buffer_writes as f64 * self.buffer_write_nj
            + switch_traversals as f64 * (self.switch_traversal_nj + self.arbitration_nj)
            + lateral_flits as f64 * self.lateral_link_nj
            + vertical_flits as f64 * self.vertical_link_nj
    }

    /// Leakage of `routers` routers over `cycles` cycles.
    pub fn leakage_nj(&self, routers: usize, cycles: u64) -> f64 {
        routers as f64 * cycles as f64 * self.router_leakage_nj_per_cycle
    }
}

impl Default for NocEnergyModel {
    fn default() -> Self {
        Self::at_32nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_hop_energy_is_sub_tenth_nanojoule() {
        // A flit hop = buffer write + switch + arbitration + link:
        // tens of pJ at 32 nm.
        let m = NocEnergyModel::at_32nm();
        let hop = m.buffer_write_nj + m.switch_traversal_nj + m.arbitration_nj + m.lateral_link_nj;
        assert!(hop > 0.005 && hop < 0.1, "hop energy {hop} nJ");
    }

    #[test]
    fn dynamic_energy_is_linear_in_events() {
        let m = NocEnergyModel::at_32nm();
        let one = m.dynamic_nj(1, 1, 1, 1);
        let ten = m.dynamic_nj(10, 10, 10, 10);
        assert!((ten - 10.0 * one).abs() < 1e-12);
        assert_eq!(m.dynamic_nj(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn tsv_cheaper_than_lateral_link() {
        let m = NocEnergyModel::at_32nm();
        assert!(m.vertical_link_nj < m.lateral_link_nj);
    }

    #[test]
    fn leakage_scales_with_routers_and_time() {
        let m = NocEnergyModel::at_32nm();
        assert_eq!(
            m.leakage_nj(128, 1000),
            128.0 * 1000.0 * m.router_leakage_nj_per_cycle
        );
    }
}
