//! Long-running sweep service over a Unix-domain socket.
//!
//! Server mode (the default) binds `--socket` and serves the
//! newline-delimited JSON protocol of `snoc_core::serve` until a client
//! sends `{"op":"shutdown"}`:
//!
//! ```text
//! snoc-serve --socket /tmp/snoc.sock --threads 2 --cache-dir .snoc-cache
//! ```
//!
//! Client mode sends one request line and prints every response line to
//! stdout (exiting 1 if the server reports an error), which is all a
//! shell script needs to drive the service:
//!
//! ```text
//! snoc-serve --socket /tmp/snoc.sock \
//!   --request '{"op":"submit","wait":true,"experiment":"fig6","scale":"quick"}'
//! snoc-serve --socket /tmp/snoc.sock --shutdown
//! ```
//!
//! Parsing is strict in the `repro-perf` mould: an unknown or
//! misspelled flag aborts with exit code 2 before any socket is bound,
//! any file touched, or any request sent.

use snoc_core::serve::json::Json;
use snoc_core::serve::{ServeOptions, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::Shutdown;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

struct Cli {
    socket: Option<PathBuf>,
    threads: usize,
    cache: bool,
    cache_dir: Option<PathBuf>,
    verbose: bool,
    /// One-shot client request line; `None` means server mode.
    request: Option<String>,
}

const USAGE: &str = "usage: snoc-serve --socket <path> \
 [--threads <n>] [--no-cache] [--cache-dir <dir>] [--verbose] \
 [--request <json-line> | --shutdown | --ping]";

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        socket: None,
        threads: 1,
        cache: true,
        cache_dir: None,
        verbose: false,
        request: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => {
                cli.socket = Some(
                    args.next()
                        .ok_or("--socket requires a path operand")?
                        .into(),
                );
            }
            "--threads" => {
                let v = args.next().ok_or("--threads requires a count")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--threads: `{v}` is not a count"))?;
                if n == 0 {
                    return Err("--threads: must be at least 1".into());
                }
                cli.threads = n;
            }
            "--no-cache" => cli.cache = false,
            "--cache-dir" => {
                cli.cache_dir = Some(
                    args.next()
                        .ok_or("--cache-dir requires a directory operand")?
                        .into(),
                );
            }
            "--verbose" => cli.verbose = true,
            "--request" => {
                cli.request = Some(args.next().ok_or("--request requires a JSON line")?);
            }
            "--shutdown" => cli.request = Some(r#"{"op":"shutdown"}"#.to_string()),
            "--ping" => cli.request = Some(r#"{"op":"ping"}"#.to_string()),
            _ => return Err(format!("unrecognized argument `{arg}`")),
        }
    }
    if cli.socket.is_none() {
        return Err("--socket is required".into());
    }
    Ok(cli)
}

fn main() {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let socket = cli.socket.expect("validated above");

    match cli.request {
        Some(line) => client(&socket, &line),
        None => {
            let mut opts = ServeOptions::new(socket);
            opts.threads = cli.threads;
            opts.cache = cli.cache;
            opts.cache_dir = cli.cache_dir;
            opts.verbose = cli.verbose;
            match Server::start(opts) {
                Ok(server) => server.wait(),
                Err(e) => {
                    eprintln!("error: could not start server: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}

/// Sends one request line, streams every response line to stdout, and
/// exits 1 if the server reported an error on any of them.
fn client(socket: &std::path::Path, line: &str) {
    let mut stream = match UnixStream::connect(socket) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: could not connect to {}: {e}", socket.display());
            std::process::exit(1);
        }
    };
    let reader = BufReader::new(match stream.try_clone() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    });
    if writeln!(stream, "{line}")
        .and_then(|()| stream.flush())
        .is_err()
        || stream.shutdown(Shutdown::Write).is_err()
    {
        eprintln!("error: could not send request");
        std::process::exit(1);
    }
    let mut failed = false;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for response in reader.lines() {
        let response = match response {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: connection lost: {e}");
                std::process::exit(1);
            }
        };
        if Json::parse(&response)
            .ok()
            .and_then(|v| v.get("ok").and_then(Json::as_bool))
            == Some(false)
        {
            failed = true;
        }
        let _ = writeln!(out, "{response}");
    }
    if failed {
        std::process::exit(1);
    }
}
