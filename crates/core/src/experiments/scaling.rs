//! Scaling study: the paper's design points re-run at larger meshes
//! and deeper stacks.
//!
//! The paper evaluates one geometry — an 8x8 mesh per layer, 64 banks,
//! 4 regions. With the geometry generalized, this experiment re-runs a
//! representative scenario subset at three design points:
//!
//! * `8x8-K4-L1` — the paper's CMP (the baseline sanity anchor),
//! * `16x16-K16-L1` — a 256-core / 256-bank CMP with 16 regions,
//! * `16x16-K16-L2` — the same floorplan with two stacked cache dies
//!   (double the L2 capacity, one extra TSV hop per bank access),
//!   after MemPool-3D-style vertical scaling.
//!
//! Reported per (point, scenario): per-core IPC, throughput normalized
//! to the same point's SRAM-64TSB baseline, mean uncore round trip and
//! uncore energy per core. Normalizing within each point keeps the
//! columns comparable across geometries: the interesting question is
//! whether the 4-TSB + bank-aware design *keeps* its win as the mesh
//! and stack grow, not how a 256-core chip compares to a 64-core one.

use crate::experiments::{norm, Scale};
use crate::report::Rows;
use crate::scenario::Scenario;
use crate::sweep::{CellResult, Experiment, RunSpec, SweepRunner};
use snoc_workload::table3;
use std::fmt;

/// One mesh / region-count / stack-depth design point.
#[derive(Debug, Clone, Copy)]
pub struct GeomPoint {
    /// Row label (`8x8-K4-L1` style).
    pub name: &'static str,
    /// Mesh width per layer.
    pub width: u8,
    /// Mesh height per layer.
    pub height: u8,
    /// Cache-layer region count.
    pub regions: usize,
    /// Stacked cache dies.
    pub cache_layers: usize,
}

/// The studied design points.
pub const POINTS: [GeomPoint; 3] = [
    GeomPoint {
        name: "8x8-K4-L1",
        width: 8,
        height: 8,
        regions: 4,
        cache_layers: 1,
    },
    GeomPoint {
        name: "16x16-K16-L1",
        width: 16,
        height: 16,
        regions: 16,
        cache_layers: 1,
    },
    GeomPoint {
        name: "16x16-K16-L2",
        width: 16,
        height: 16,
        regions: 16,
        cache_layers: 2,
    },
];

/// The scenario subset: both 64-TSB anchors, the unmanaged 4-TSB
/// network and the paper's recommended WB design.
pub const SCENARIOS: [Scenario; 4] = [
    Scenario::Sram64Tsb,
    Scenario::SttRam64Tsb,
    Scenario::SttRam4Tsb,
    Scenario::SttRam4TsbWb,
];

/// The application list at this scale (one high-traffic app per suite
/// at Full; a single app at Quick keeps the 16x16 debug cells cheap).
pub fn apps(scale: Scale) -> &'static [&'static str] {
    match scale {
        Scale::Quick => &["sap"],
        Scale::Full => &["sap", "sclust", "lbm", "hmmer"],
    }
}

/// One (point, scenario) measurement, averaged over the app list.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Design-point label.
    pub point: &'static str,
    /// Scenario label.
    pub scenario: &'static str,
    /// Mean per-core IPC.
    pub ipc_per_core: f64,
    /// Throughput normalized to the same point's SRAM-64TSB.
    pub normalized: f64,
    /// Mean uncore round-trip latency in cycles.
    pub uncore_latency: f64,
    /// Mean uncore energy per core in nJ.
    pub energy_nj_per_core: f64,
}

/// The study: one row per (design point, scenario).
#[derive(Debug, Clone)]
pub struct ScalingResult {
    /// Rows in `POINTS` x `SCENARIOS` order.
    pub rows: Vec<ScalingRow>,
}

impl ScalingResult {
    /// Rows of one design point.
    pub fn point<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a ScalingRow> + 'a {
        self.rows.iter().filter(move |r| r.point == name)
    }
}

/// The scaling-study experiment.
pub struct Scaling;

impl Experiment for Scaling {
    type Output = ScalingResult;

    fn name(&self) -> &str {
        "scaling"
    }

    fn grid(&self, scale: Scale) -> Vec<RunSpec> {
        let apps = apps(scale);
        POINTS
            .iter()
            .flat_map(|pt| {
                SCENARIOS.iter().flat_map(move |sc| {
                    apps.iter().map(move |name| {
                        let p = table3::by_name(name).expect("known app");
                        let cfg = scale.apply(sc.config_at(
                            pt.width,
                            pt.height,
                            pt.regions,
                            pt.cache_layers,
                        ));
                        RunSpec::homogeneous(format!("{}/{}/{name}", pt.name, sc.name()), cfg, p)
                    })
                })
            })
            .collect()
    }

    fn assemble(&self, scale: Scale, cells: Vec<CellResult>) -> ScalingResult {
        let apps = apps(scale);
        let per_cell = apps.len();
        assert_eq!(
            cells.len(),
            POINTS.len() * SCENARIOS.len() * per_cell,
            "one cell per point x scenario x app"
        );
        let mut rows = Vec::new();
        for (pi, pt) in POINTS.iter().enumerate() {
            let cores = (pt.width as usize) * (pt.height as usize);
            // App-averaged throughput per scenario, for the
            // within-point normalization (SCENARIOS[0] is SRAM-64TSB).
            let avg = |si: usize, f: &dyn Fn(&crate::metrics::RunMetrics) -> f64| -> f64 {
                let base = (pi * SCENARIOS.len() + si) * per_cell;
                let sum: f64 = cells[base..base + per_cell]
                    .iter()
                    .map(|c| f(c.metrics()))
                    .sum();
                sum / per_cell as f64
            };
            let base_tp = avg(0, &|m| m.instruction_throughput());
            for (si, sc) in SCENARIOS.iter().enumerate() {
                let tp = avg(si, &|m| m.instruction_throughput());
                rows.push(ScalingRow {
                    point: pt.name,
                    scenario: sc.name(),
                    ipc_per_core: tp / cores as f64,
                    normalized: norm(tp, base_tp),
                    uncore_latency: avg(si, &|m| m.uncore_latency()),
                    energy_nj_per_core: avg(si, &|m| m.uncore_energy_nj()) / cores as f64,
                });
            }
        }
        ScalingResult { rows }
    }
}

/// Runs the study through the [`SweepRunner`].
pub fn run(scale: Scale) -> ScalingResult {
    SweepRunner::from_env().run(&Scaling, scale)
}

impl fmt::Display for ScalingResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Scaling study: design points at larger meshes and deeper stacks\n(normalized within each point to its SRAM-64TSB baseline)"
        )?;
        writeln!(
            f,
            "{:14} {:>14} {:>10} {:>8} {:>12} {:>14}",
            "point", "scenario", "ipc/core", "norm", "uncore-lat", "energy/core-nJ"
        )?;
        for pt in &POINTS {
            for r in self.point(pt.name) {
                writeln!(
                    f,
                    "{:14} {:>14} {:>10.4} {:>8.3} {:>12.2} {:>14.2}",
                    r.point,
                    r.scenario,
                    r.ipc_per_core,
                    r.normalized,
                    r.uncore_latency,
                    r.energy_nj_per_core
                )?;
            }
        }
        Ok(())
    }
}

impl Rows for ScalingResult {
    fn header(&self) -> Vec<String> {
        [
            "ipc_per_core",
            "normalized",
            "uncore_latency",
            "energy_nj_per_core",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    fn rows(&self) -> Vec<(String, Vec<f64>)> {
        self.rows
            .iter()
            .map(|r| {
                (
                    format!("{}/{}", r.point, r.scenario),
                    vec![
                        r.ipc_per_core,
                        r.normalized,
                        r.uncore_latency,
                        r.energy_nj_per_core,
                    ],
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_every_point_and_scenario() {
        let g = Scaling.grid(Scale::Quick);
        assert_eq!(g.len(), POINTS.len() * SCENARIOS.len());
        assert!(g[0].label.starts_with("8x8-K4-L1/SRAM-64TSB"));
        let last = &g[g.len() - 1];
        assert!(last.label.starts_with("16x16-K16-L2/MRAM-4TSB-WB"));
        assert_eq!(last.cfg.cores(), 256);
        assert_eq!(last.cfg.regions, 16);
        assert_eq!(last.cfg.mem.cache_layers, 2);
        assert_eq!(last.cfg.geometry().tsb_nodes().len(), 16);
    }
}
