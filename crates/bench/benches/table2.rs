//! Criterion bench for Table 2: prints the regenerated table and
//! times the analytic model.
use criterion::{criterion_group, criterion_main, Criterion};
use snoc_core::experiments::table2;

fn bench(c: &mut Criterion) {
    println!("{}", table2::run());
    c.bench_function("table2/cacti_lite", |b| b.iter(table2::run));
}

criterion_group!(benches, bench);
criterion_main!(benches);
