//! A dependency-free micro-benchmark harness.
//!
//! The registry is unreachable in the offline build environments this
//! repository targets, so the `benches/` binaries time themselves with
//! this Criterion-lite shim instead of pulling `criterion`: warm up,
//! run timed batches until a time budget is spent, report mean /
//! best / worst per iteration.
//!
//! Besides the stdout line, every completed benchmark is recorded in a
//! process-wide registry; when `SNOC_BENCH_JSON=<path>` is set the
//! registry is re-serialized to that path after each benchmark, so a
//! bench binary leaves a machine-readable trajectory behind without
//! any of the benches having to know about files.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Process-wide record of every benchmark timed so far.
static RECORDS: Mutex<Vec<(String, Timing)>> = Mutex::new(Vec::new());

/// One benchmark's timing summary.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Iterations measured.
    pub iters: u64,
    /// Mean wall-clock per iteration.
    pub mean: Duration,
    /// Fastest single iteration.
    pub best: Duration,
    /// Slowest single iteration.
    pub worst: Duration,
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Times `f` under the default budget (300 ms warm-up, 3 s measure)
/// and prints a `name  mean ... (best ... worst ..., N iters)` line.
pub fn bench<R>(name: &str, f: impl FnMut() -> R) -> Timing {
    bench_with(name, Duration::from_millis(300), Duration::from_secs(3), f)
}

/// [`bench`] with explicit warm-up and measurement budgets.
///
/// Warm-up and measurement are a single sampling loop: any iteration
/// that *starts* inside the warm-up window is discarded from every
/// statistic. The discard matters most for `worst` — the first few
/// iterations of a cold process (lazy allocation, cold caches, CPU
/// frequency ramp) can run hundreds of times slower than steady state,
/// and a `worst` that records the warm-up transient instead of the
/// steady-state tail is noise, not signal.
pub fn bench_with<R>(
    name: &str,
    warmup: Duration,
    measure: Duration,
    mut f: impl FnMut() -> R,
) -> Timing {
    let start = Instant::now();
    let mut iters = 0u64;
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    let mut worst = Duration::ZERO;
    loop {
        let t0 = Instant::now();
        let warming = t0.duration_since(start) < warmup;
        std::hint::black_box(f());
        let dt = t0.elapsed();
        if warming {
            continue;
        }
        iters += 1;
        total += dt;
        best = best.min(dt);
        worst = worst.max(dt);
        if total >= measure {
            break;
        }
    }
    let timing = Timing {
        iters,
        mean: total / iters.max(1) as u32,
        best,
        worst,
    };
    println!(
        "{name:48} {:>10}/iter  (best {:>10}, worst {:>10}, {} iters)",
        fmt_duration(timing.mean),
        fmt_duration(timing.best),
        fmt_duration(timing.worst),
        timing.iters
    );
    record(name, timing);
    timing
}

/// Appends `(name, timing)` to the process-wide registry and, when
/// `SNOC_BENCH_JSON` names a path, rewrites that file with the full
/// registry so far. A benchmark re-run under the same name replaces
/// its previous record.
fn record(name: &str, timing: Timing) {
    let mut records = RECORDS.lock().unwrap();
    if let Some(slot) = records.iter_mut().find(|(n, _)| n == name) {
        slot.1 = timing;
    } else {
        records.push((name.to_string(), timing));
    }
    if let Ok(path) = std::env::var("SNOC_BENCH_JSON") {
        if !path.is_empty() {
            if let Err(e) = std::fs::write(&path, to_json(&records)) {
                eprintln!("warning: failed to write {path}: {e}");
            }
        }
    }
}

/// A copy of every benchmark recorded so far in this process.
pub fn recorded() -> Vec<(String, Timing)> {
    RECORDS.lock().unwrap().clone()
}

/// Serializes benchmark records into the `snoc-bench/1` JSON schema.
pub fn to_json(records: &[(String, Timing)]) -> String {
    let mut out = String::from("{\n  \"schema\": \"snoc-bench/1\",\n  \"benches\": [\n");
    for (i, (name, t)) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": {}, \"iters\": {}, \"mean_ns\": {}, \"best_ns\": {}, \"worst_ns\": {}}}{}\n",
            json_string(name),
            t.iters,
            t.mean.as_nanos(),
            t.best.as_nanos(),
            t.worst.as_nanos(),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a `snoc-bench/1` document produced by [`to_json`] back into
/// records. Tolerates extra numeric fields (as written by `repro-perf`)
/// but is not a general JSON parser.
pub fn from_json(doc: &str) -> Vec<(String, Timing)> {
    let mut out = Vec::new();
    for line in doc.lines() {
        let line = line.trim();
        if !line.starts_with('{') || !line.contains("\"name\"") {
            continue;
        }
        let name = match extract_string(line, "name") {
            Some(n) => n,
            None => continue,
        };
        let field = |k: &str| extract_u64(line, k);
        let (Some(iters), Some(mean), Some(best), Some(worst)) = (
            field("iters"),
            field("mean_ns"),
            field("best_ns"),
            field("worst_ns"),
        ) else {
            continue;
        };
        out.push((
            name,
            Timing {
                iters,
                mean: Duration::from_nanos(mean),
                best: Duration::from_nanos(best),
                worst: Duration::from_nanos(worst),
            },
        ));
    }
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn extract_string(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn extract_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_is_positive_and_ordered() {
        let mut x = 0u64;
        let t = bench_with(
            "harness/self-test",
            Duration::from_millis(1),
            Duration::from_millis(20),
            || {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                x
            },
        );
        assert!(t.iters > 0);
        assert!(t.best <= t.mean && t.mean <= t.worst);
    }

    #[test]
    fn json_round_trips_records() {
        let records = vec![
            (
                "kernels/network_step".to_string(),
                Timing {
                    iters: 836,
                    mean: Duration::from_nanos(3_590_123),
                    best: Duration::from_nanos(3_040_456),
                    worst: Duration::from_nanos(9_150_789),
                },
            ),
            (
                "odd \"name\"\\path".to_string(),
                Timing {
                    iters: 1,
                    mean: Duration::from_nanos(5),
                    best: Duration::from_nanos(5),
                    worst: Duration::from_nanos(5),
                },
            ),
        ];
        let doc = to_json(&records);
        let parsed = from_json(&doc);
        assert_eq!(parsed.len(), records.len());
        // The escaped name survives serialization even though the naive
        // parser stops at the first quote; the plain name round-trips.
        assert_eq!(parsed[0].0, records[0].0);
        for ((_, a), (_, b)) in parsed.iter().zip(&records).take(1) {
            assert_eq!(a.iters, b.iters);
            assert_eq!(a.mean, b.mean);
            assert_eq!(a.best, b.best);
            assert_eq!(a.worst, b.worst);
        }
        assert!(doc.contains("\"schema\": \"snoc-bench/1\""));
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
