//! Run-time invariant auditing for the NoC.
//!
//! The simulator's figures are only as trustworthy as its conservation
//! laws: a silently dropped, duplicated or over-held packet corrupts
//! every latency number downstream. [`NetAuditor`] is an optional
//! checker, wired through [`crate::Network::step`], that verifies
//! once per cycle:
//!
//! * **Packet conservation** — every packet handed to `inject` is
//!   either still in flight or was delivered exactly once; no packet
//!   outlives a configurable age bound (deadlock/livelock watchdog).
//!   Packet identity is the monotonic [`crate::Packet::uid`], immune
//!   to arena slot recycling.
//! * **Credit/flit conservation** — for every link, the upstream
//!   output VC's remaining credits plus the downstream input VC's
//!   occupancy equal the buffer depth (credits returned can never
//!   exceed credits consumed), and each router's per-router buffered
//!   counter in the [`crate::workspace::NocWorkspace`] matches the sum
//!   of its VC occupancies — read through the same `VcRef`/`PortRef`
//!   lane handles the allocator sweeps.
//! * **Hold work-conservation** (Section 3.5) — a packet held at a
//!   parent router is released by `max_hold`, and a bank is not left
//!   idle while a request for it sits held with a free output VC
//!   available. Holds that persist only because allocation genuinely
//!   cannot proceed (no free/credited VC downstream) are legitimate
//!   back-pressure, so a violation requires the escape route to stay
//!   open for [`AuditConfig::hold_strike_limit`] consecutive cycles.
//!
//! Enable it with [`AuditConfig`] in
//! [`crate::NetworkParams::audit`] or via the `SNOC_AUDIT`
//! environment variable (`1`/`true`/`on` to collect violations,
//! `panic` to abort on the first one; `SNOC_AUDIT_MAX_AGE` overrides
//! the age bound).

use crate::network::Network;
use crate::packet::PacketKind;
use snoc_common::geom::Direction;
use snoc_common::Cycle;
use std::collections::HashMap;

/// Configuration of the invariant auditor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditConfig {
    /// A live packet older than this many cycles is reported as a
    /// probable deadlock/livelock victim.
    pub max_age: Cycle,
    /// Consecutive cycles an unjustified hold must persist, with a
    /// free and credited output VC available, before it is reported.
    /// Absorbs the one-cycle lag between a VC freeing up and the next
    /// allocation pass.
    pub hold_strike_limit: u32,
    /// Panic on the first violation instead of collecting them.
    pub panic_on_violation: bool,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self {
            max_age: 50_000,
            hold_strike_limit: 8,
            panic_on_violation: false,
        }
    }
}

impl AuditConfig {
    /// Reads the `SNOC_AUDIT` / `SNOC_AUDIT_MAX_AGE` environment
    /// hooks: `None` when auditing is off.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("SNOC_AUDIT").ok()?;
        let mut cfg = match raw.to_ascii_lowercase().as_str() {
            "1" | "true" | "on" => Self::default(),
            "panic" => Self {
                panic_on_violation: true,
                ..Self::default()
            },
            _ => return None,
        };
        if let Some(age) = std::env::var("SNOC_AUDIT_MAX_AGE")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            cfg.max_age = age;
        }
        Some(cfg)
    }
}

/// The outcome of an audited run.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Total invariant violations observed.
    pub violations: u64,
    /// Human-readable descriptions of the first violations (capped).
    pub samples: Vec<String>,
    /// Cycles the auditor actually checked.
    pub checked_cycles: u64,
}

impl AuditReport {
    /// Cap on retained violation descriptions.
    const SAMPLE_CAP: usize = 32;

    /// `true` when no invariant was violated over a non-empty run.
    pub fn clean(&self) -> bool {
        self.violations == 0 && self.checked_cycles > 0
    }
}

/// Lifecycle state of one offered, not-yet-delivered packet.
#[derive(Debug, Clone, Copy)]
struct Tracked {
    offered_at: Cycle,
    /// Cycle of the last arena scan that saw this packet live.
    last_seen: Cycle,
    over_age_reported: bool,
}

/// The per-network invariant checker.
#[derive(Debug)]
pub struct NetAuditor {
    cfg: AuditConfig,
    /// Offered-but-undelivered packets by uid.
    tracked: HashMap<u64, Tracked>,
    offered: u64,
    delivered: u64,
    /// Per input VC (flat `router * PORTS * vcs + port * vcs + vc`):
    /// the held packet uid and its consecutive-strike count.
    strikes: Vec<(u64, u32)>,
    report: AuditReport,
}

impl NetAuditor {
    /// Creates an auditor.
    pub fn new(cfg: AuditConfig) -> Self {
        Self {
            cfg,
            tracked: HashMap::new(),
            offered: 0,
            delivered: 0,
            strikes: Vec::new(),
            report: AuditReport::default(),
        }
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &AuditReport {
        &self.report
    }

    fn violation(&mut self, now: Cycle, msg: std::fmt::Arguments<'_>) {
        self.report.violations += 1;
        let line = format!("cycle {now}: {msg}");
        if self.cfg.panic_on_violation {
            panic!("NoC audit violation at {line}");
        }
        if self.report.samples.len() < AuditReport::SAMPLE_CAP {
            self.report.samples.push(line);
        }
    }

    /// Records a packet handed to [`Network::inject`].
    pub fn note_offered(&mut self, uid: u64, now: Cycle) {
        self.offered += 1;
        let prev = self.tracked.insert(
            uid,
            Tracked {
                offered_at: now,
                last_seen: now,
                over_age_reported: false,
            },
        );
        if prev.is_some() {
            self.violation(now, format_args!("packet uid {uid} offered twice"));
        }
    }

    /// Records a packet handed back by the delivery drain.
    pub fn note_delivered(&mut self, uid: u64, now: Cycle) {
        self.delivered += 1;
        if self.tracked.remove(&uid).is_none() {
            self.violation(
                now,
                format_args!("packet uid {uid} delivered but never offered (or delivered twice)"),
            );
        }
    }

    /// Runs every invariant against the network's end-of-cycle state.
    pub fn audit_cycle(&mut self, net: &Network) {
        let now = net.now();
        self.check_packets(net, now);
        self.check_credits(net, now);
        self.check_holds(net, now);
        self.report.checked_cycles += 1;
    }

    /// Packet conservation: offered = in-flight + delivered, nothing
    /// vanishes, nothing outlives the age bound.
    fn check_packets(&mut self, net: &Network, now: Cycle) {
        let mut untracked: Vec<u64> = Vec::new();
        let mut over_age: Vec<u64> = Vec::new();
        for p in net.arena.iter_live() {
            match self.tracked.get_mut(&p.uid) {
                Some(t) => {
                    t.last_seen = now;
                    if !t.over_age_reported && now.saturating_sub(t.offered_at) > self.cfg.max_age {
                        t.over_age_reported = true;
                        over_age.push(p.uid);
                    }
                }
                // Tag acks are generated and consumed inside the
                // network and never pass through `inject`.
                None if p.kind == PacketKind::TagAck => {}
                None => untracked.push(p.uid),
            }
        }
        for uid in untracked {
            self.violation(
                now,
                format_args!("live packet uid {uid} was never offered to inject"),
            );
        }
        for uid in over_age {
            let age = self.cfg.max_age;
            self.violation(
                now,
                format_args!("packet uid {uid} alive past the {age}-cycle age bound"),
            );
        }
        let vanished: Vec<u64> = self
            .tracked
            .iter()
            .filter(|(_, t)| t.last_seen != now)
            .map(|(&uid, _)| uid)
            .collect();
        for uid in vanished {
            self.tracked.remove(&uid);
            self.violation(
                now,
                format_args!("packet uid {uid} vanished without being delivered"),
            );
        }
        if self.offered != self.delivered + self.tracked.len() as u64 {
            let (o, d, l) = (self.offered, self.delivered, self.tracked.len());
            self.violation(
                now,
                format_args!("conservation broke: offered {o} != delivered {d} + in-flight {l}"),
            );
        }
    }

    /// Credit/flit conservation: on every link the upstream credits
    /// plus downstream occupancy equal the buffer depth, and the
    /// routers' buffered-flit caches are exact.
    fn check_credits(&mut self, net: &Network, now: Cycle) {
        let mesh = net.mesh();
        let depth = net.params().noc.vc_depth;
        let ws = net.ws_view();
        for (idx, r) in net.routers.iter().enumerate() {
            let vcs = r.vcs();
            let coord = r.coord();
            for dir in Direction::ALL {
                for vc in 0..vcs {
                    let credits = r.credits(net.shard(idx), dir, vc) as usize;
                    let (occupied, what) = if dir == Direction::Local {
                        (net.nics[idx].eject_depth(vc), "NI ejection")
                    } else {
                        match mesh.neighbour(coord, dir) {
                            Some(nb) => {
                                let d = ws.vc(net.ridx(nb), dir.arrival_port().port(), vc);
                                (d.len(), "link")
                            }
                            None => (0, "edge"),
                        }
                    };
                    if credits + occupied != depth {
                        self.violation(
                            now,
                            format_args!(
                                "{what} credit leak at {coord:?} {dir:?} vc {vc}: \
                                 {credits} credits + {occupied} buffered != depth {depth}"
                            ),
                        );
                    }
                }
            }
            // NI injection side of the local port.
            for vc in 0..vcs {
                let credits = net.nics[idx].inject_credits(vc) as usize;
                let occupied = ws.vc(idx, Direction::Local.port(), vc).len();
                if credits + occupied != depth {
                    self.violation(
                        now,
                        format_args!(
                            "NI injection credit leak at {coord:?} vc {vc}: \
                             {credits} credits + {occupied} buffered != depth {depth}"
                        ),
                    );
                }
            }
            let buffered: usize = (0..crate::router::PORTS)
                .flat_map(|p| (0..vcs).map(move |v| (p, v)))
                .map(|(p, v)| ws.vc(idx, p, v).len())
                .sum();
            if buffered != ws.buffered(idx) {
                let cached = ws.buffered(idx);
                self.violation(
                    now,
                    format_args!(
                        "buffered-flit cache at {coord:?} says {cached}, VCs hold {buffered}"
                    ),
                );
            }
        }
    }

    /// Hold work-conservation: a held packet with an open escape route
    /// must be released by `max_hold`, and never while its target bank
    /// is predicted idle at the packet's arrival.
    fn check_holds(&mut self, net: &Network, now: Cycle) {
        let vcs = net.params().noc.vcs_per_port;
        let needed = net.routers.len() * crate::router::PORTS * vcs;
        if self.strikes.len() != needed {
            self.strikes = vec![(0, 0); needed];
        }
        let max_hold = net.params().max_hold;
        let hold_slack = net.params().hold_slack;
        let ws = net.ws_view();
        let mut found: Vec<(usize, String)> = Vec::new();
        for (idx, r) in net.routers.iter().enumerate() {
            if r.children().is_empty() {
                continue;
            }
            for port in 0..crate::router::PORTS {
                for vc in 0..vcs {
                    let flat = (idx * crate::router::PORTS + port) * vcs + vc;
                    let q = ws.vc(idx, port, vc);
                    let (Some(since), Some(front)) = (q.held_since(), q.front()) else {
                        self.strikes[flat] = (0, 0);
                        continue;
                    };
                    let packet = net.arena.get(front.packet);
                    let (Some(bank), Some(arrival)) = (
                        packet.dest_bank(net.mesh()),
                        packet
                            .dest_bank(net.mesh())
                            .and_then(|b| r.arrival_estimate(b)),
                    ) else {
                        self.strikes[flat] = (0, 0);
                        continue;
                    };
                    let age = now.saturating_sub(since);
                    let over_limit = age >= max_hold;
                    let bank_idle = !r
                        .busy
                        .would_queue_with_slack(bank, now, arrival, hold_slack);
                    if !over_limit && !bank_idle {
                        // Legitimately held: the bank is still
                        // predicted busy and the cap is not reached.
                        self.strikes[flat] = (0, 0);
                        continue;
                    }
                    // The policy wants this packet released; that is
                    // only a violation while allocation could in fact
                    // proceed (flit ready, free credited VC towards
                    // its route).
                    let dir = net.routing.next_hop(r.coord(), packet);
                    let range = packet.kind.class().vc_range(vcs);
                    let escape =
                        front.ready_at <= now && r.has_free_credited_vc(net.shard(idx), dir, range);
                    if !escape {
                        self.strikes[flat] = (0, 0);
                        continue;
                    }
                    let uid = packet.uid;
                    let (held_uid, n) = self.strikes[flat];
                    let n = if held_uid == uid { n + 1 } else { 1 };
                    if n >= self.cfg.hold_strike_limit {
                        self.strikes[flat] = (uid, 0);
                        let coord = r.coord();
                        let what = if over_limit {
                            format!("held past max_hold {max_hold} (age {age})")
                        } else {
                            format!("held while bank {bank:?} is predicted idle")
                        };
                        found.push((
                            flat,
                            format!(
                                "packet uid {uid} at parent {coord:?} port {port} vc {vc} {what} \
                                 with a free output VC for {n} cycles"
                            ),
                        ));
                    } else {
                        self.strikes[flat] = (uid, n);
                    }
                }
            }
        }
        for (_, msg) in found {
            self.violation(now, format_args!("{msg}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_collects_instead_of_panicking() {
        let cfg = AuditConfig::default();
        assert!(!cfg.panic_on_violation);
        assert!(cfg.max_age > 0 && cfg.hold_strike_limit > 0);
    }

    #[test]
    fn report_counts_and_caps_samples() {
        let mut a = NetAuditor::new(AuditConfig::default());
        for uid in 0..40 {
            // Deliveries that were never offered are violations.
            a.note_delivered(uid, 5);
        }
        assert_eq!(a.report().violations, 40);
        assert_eq!(a.report().samples.len(), AuditReport::SAMPLE_CAP);
        assert!(!a.report().clean());
    }

    #[test]
    fn offer_then_deliver_is_clean() {
        let mut a = NetAuditor::new(AuditConfig::default());
        a.note_offered(1, 0);
        a.note_offered(2, 1);
        a.note_delivered(1, 10);
        a.note_delivered(2, 11);
        assert_eq!(a.report().violations, 0);
    }

    #[test]
    #[should_panic(expected = "NoC audit violation")]
    fn panic_mode_aborts_on_first_violation() {
        let mut a = NetAuditor::new(AuditConfig {
            panic_on_violation: true,
            ..AuditConfig::default()
        });
        a.note_delivered(7, 3);
    }
}
