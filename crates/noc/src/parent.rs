//! Parent/child mapping between routers and the banks they manage
//! (Section 3.4: "each router manages traffic for all two-hops-away
//! routers in the region").
//!
//! Because every request to bank `D` enters `D`'s region at the single
//! TSB node and then follows X-Y routing, the route to `D` is unique.
//! `D`'s *parent* is the router `H` hops before `D` on that route
//! (`H = 2` in the paper). Banks closer than `H` hops to the TSB are
//! managed by the core-layer router directly above the TSB, which sees
//! their requests before they descend.

use crate::regions::RegionMap;
use snoc_common::geom::{Coord, Direction, Layer, Mesh};
use snoc_common::ids::BankId;
use std::collections::HashMap;

/// A bank managed by some parent router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChildInfo {
    /// The managed bank.
    pub bank: BankId,
    /// Uncontended parent-to-bank delivery latency in cycles, used both
    /// to time releases of held packets and as the baseline subtracted
    /// from WB round-trip samples.
    pub base_latency: u64,
    /// First hop direction from the parent towards the bank (the port
    /// whose RCA estimate applies).
    pub first_hop: Direction,
    /// Number of network hops from parent to bank.
    pub hops: u32,
}

/// The complete parent/child mapping for one configuration.
#[derive(Debug, Clone)]
pub struct ParentMap {
    parent_of: Vec<Coord>,
    children_of: HashMap<Coord, Vec<ChildInfo>>,
}

impl ParentMap {
    /// Builds the mapping for re-ordering distance `hops` (the paper's
    /// `H`, default 2) given the region tiling.
    ///
    /// `router_stages` and `link_latency` parameterize the uncontended
    /// latency estimate: each hop costs `router_stages + link_latency`
    /// and delivery at the destination costs `router_stages + 1`
    /// (ejection).
    pub fn new(
        mesh: Mesh,
        regions: &RegionMap,
        hops: u32,
        router_stages: u64,
        link_latency: u64,
    ) -> Self {
        assert!(hops >= 1, "parent distance must be at least one hop");
        let per_hop = router_stages + link_latency;
        let delivery = router_stages + 1;
        let mut parent_of = Vec::with_capacity(mesh.nodes_per_layer());
        let mut children_of: HashMap<Coord, Vec<ChildInfo>> = HashMap::new();

        for node in mesh.nodes() {
            let bank = BankId::new(node.raw());
            let dest = mesh.coord(node, Layer::Cache);
            let tsb = mesh.coord(regions.tsb_for(node), Layer::Cache);
            let path = mesh.xy_path(tsb, dest); // excludes tsb, includes dest
            let dist = path.len() as u32;

            let (parent, child_hops) = if dist >= hops {
                // The node `hops` before the destination along the
                // unique TSB->dest X-Y route (the TSB node itself when
                // dist == hops).
                let idx = dist - hops; // index into [tsb, path...]
                let parent = if idx == 0 {
                    tsb
                } else {
                    path[idx as usize - 1]
                };
                (parent, hops)
            } else {
                // Too close to the TSB: managed from the core layer
                // router above the TSB (one vertical hop + the X-Y
                // remainder).
                (
                    Coord {
                        layer: Layer::Core,
                        ..tsb
                    },
                    dist + 1,
                )
            };

            let first_hop = if parent.layer == Layer::Core {
                Direction::Down
            } else {
                mesh.xy_step(parent, dest)
                    .expect("parent differs from child")
            };

            let info = ChildInfo {
                bank,
                base_latency: child_hops as u64 * per_hop + delivery,
                first_hop,
                hops: child_hops,
            };
            parent_of.push(parent);
            children_of.entry(parent).or_default().push(info);
        }

        Self {
            parent_of,
            children_of,
        }
    }

    /// The parent router coordinate for a bank.
    pub fn parent_of(&self, bank: BankId) -> Coord {
        self.parent_of[bank.index()]
    }

    /// The banks managed by a router, if it is a parent.
    pub fn children_of(&self, router: Coord) -> Option<&[ChildInfo]> {
        self.children_of.get(&router).map(Vec::as_slice)
    }

    /// The [`ChildInfo`] for `bank` if `router` is its parent.
    pub fn child_info(&self, router: Coord, bank: BankId) -> Option<&ChildInfo> {
        if self.parent_of(bank) != router {
            return None;
        }
        self.children_of
            .get(&router)
            .and_then(|cs| cs.iter().find(|c| c.bank == bank))
    }

    /// All parent routers.
    pub fn parents(&self) -> impl Iterator<Item = Coord> + '_ {
        self.children_of.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoc_common::config::TsbPlacement;
    use snoc_common::ids::NodeId;

    fn setup(hops: u32) -> (Mesh, ParentMap) {
        let mesh = Mesh::new(8, 8);
        let regions = RegionMap::new(mesh, 4, TsbPlacement::Corner);
        let map = ParentMap::new(mesh, &regions, hops, 2, 1);
        (mesh, map)
    }

    fn cache(mesh: Mesh, node: u16) -> Coord {
        mesh.coord(NodeId::new(node), Layer::Cache)
    }

    #[test]
    fn paper_example_node_91_manages_75_82_89() {
        // Paper chip nodes 91/75/82/89 = cache nodes 27/11/18/25.
        let (mesh, map) = setup(2);
        let parent = cache(mesh, 27);
        for chip in [75u16, 82, 89] {
            let bank = BankId::new(chip - 64);
            assert_eq!(map.parent_of(bank), parent, "chip node {chip}");
        }
        let kids = map.children_of(parent).unwrap();
        let mut ids: Vec<_> = kids.iter().map(|c| c.bank.index() + 64).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![75, 82, 89]);
    }

    #[test]
    fn paper_example_node_90_manages_74_81_88() {
        let (mesh, map) = setup(2);
        let parent = cache(mesh, 26); // chip node 90
        for chip in [74u16, 81, 88] {
            assert_eq!(
                map.parent_of(BankId::new(chip - 64)),
                parent,
                "chip node {chip}"
            );
        }
    }

    #[test]
    fn innermost_banks_are_managed_from_core_layer() {
        // Paper: chip nodes 83, 90, 91 (cache 19, 26, 27) are managed by
        // core-layer node 27 above the TSB.
        let (mesh, map) = setup(2);
        let core_parent = mesh.coord(NodeId::new(27), Layer::Core);
        for cache_node in [19u16, 26, 27] {
            assert_eq!(
                map.parent_of(BankId::new(cache_node)),
                core_parent,
                "cache {cache_node}"
            );
        }
        let kids = map.children_of(core_parent).unwrap();
        assert_eq!(kids.len(), 3);
    }

    #[test]
    fn every_bank_has_exactly_one_parent() {
        let (mesh, map) = setup(2);
        let total: usize = map
            .parents()
            .map(|p| map.children_of(p).unwrap().len())
            .sum();
        assert_eq!(total, mesh.nodes_per_layer());
    }

    #[test]
    fn base_latency_for_two_hops_matches_section_3_5() {
        // 2 hops * (2-stage router + 1-cycle link) + delivery (2 + 1).
        let (mesh, map) = setup(2);
        let parent = cache(mesh, 27);
        let info = map.child_info(parent, BankId::new(11)).unwrap();
        assert_eq!(info.hops, 2);
        assert_eq!(info.base_latency, 2 * 3 + 3);
    }

    #[test]
    fn first_hop_directions_follow_xy() {
        let (mesh, map) = setup(2);
        let parent = cache(mesh, 27); // (3,3)
                                      // chip 89 = cache 25 = (1,3): pure -x => West.
        assert_eq!(
            map.child_info(parent, BankId::new(25)).unwrap().first_hop,
            Direction::West
        );
        // chip 75 = cache 11 = (3,1): pure -y => South.
        assert_eq!(
            map.child_info(parent, BankId::new(11)).unwrap().first_hop,
            Direction::South
        );
        // chip 82 = cache 18 = (2,2): X first => West.
        assert_eq!(
            map.child_info(parent, BankId::new(18)).unwrap().first_hop,
            Direction::West
        );
        // Core-layer parents descend first.
        let core_parent = mesh.coord(NodeId::new(27), Layer::Core);
        assert_eq!(
            map.child_info(core_parent, BankId::new(27))
                .unwrap()
                .first_hop,
            Direction::Down
        );
    }

    #[test]
    fn h3_parents_have_more_children_than_h1() {
        // Figure 13: larger H means each parent sees more banks.
        let (_, map1) = setup(1);
        let (_, map3) = setup(3);
        let max1 = map1
            .parents()
            .map(|p| map1.children_of(p).unwrap().len())
            .max()
            .unwrap();
        let max3 = map3
            .parents()
            .map(|p| map3.children_of(p).unwrap().len())
            .max()
            .unwrap();
        assert!(
            max3 > max1,
            "H=3 max children {max3} should exceed H=1 {max1}"
        );
    }

    #[test]
    fn h1_parent_is_last_hop_router() {
        let (mesh, map) = setup(1);
        // chip 75 = cache 11 = (3,1); path from TSB (3,3): 91->83->75.
        // One hop before 75 is 83 = cache 19.
        assert_eq!(map.parent_of(BankId::new(11)), cache(mesh, 19));
    }
}
