//! Criterion bench for the design-choice ablations: prints the
//! quick-scale sweep once, then times one +1VC run.
use criterion::{criterion_group, criterion_main, Criterion};
use snoc_core::experiments::{ablations, Scale};
use snoc_core::scenario::plus_one_vc_config;
use snoc_core::system::System;
use snoc_workload::table3 as t3;

fn bench(c: &mut Criterion) {
    println!("{}", ablations::run(Scale::Quick));
    let app = t3::by_name("lbm").unwrap();
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("run/lbm/plus_one_vc", |b| {
        b.iter(|| System::homogeneous(Scale::Quick.apply(plus_one_vc_config()), app).run())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
