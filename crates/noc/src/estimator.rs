//! Congestion estimation between a parent router and its child banks
//! (Section 3.5): the Simplistic Scheme, Regional Congestion Awareness
//! and the Window-Based scheme.

use snoc_common::geom::{Coord, Direction};
use snoc_common::ids::BankId;
use snoc_common::Cycle;
use std::collections::HashMap;

/// Width of the RCA side wires and the WB timestamp (8 bits).
pub const STAMP_BITS: u32 = 8;
const STAMP_MASK: u64 = (1 << STAMP_BITS) - 1;

/// Wraps an absolute cycle to the `STAMP_BITS`-bit stamp carried in a
/// header flit.
pub fn stamp_of(cycle: Cycle) -> u8 {
    (cycle & STAMP_MASK) as u8
}

/// The elapsed cycles between a stamp and `now`, accounting for
/// wrap-around of the 8-bit counter. Ambiguity beyond one wrap is
/// unavoidable with a B-bit stamp; the paper's "additional minimal
/// logic" for counter saturation corresponds to this modular decode.
pub fn stamp_elapsed(stamp: u8, now: Cycle) -> Cycle {
    (now.wrapping_sub(stamp as u64)) & STAMP_MASK
}

/// Per-(parent, child) state for the window-based scheme.
#[derive(Debug, Clone, Default)]
struct WbChild {
    /// Requests forwarded since the last tag.
    since_tag: u32,
    /// Outstanding tag: (stamp, absolute send cycle).
    outstanding: Option<(u8, Cycle)>,
    /// Smoothed congestion estimate in cycles.
    estimate: Cycle,
}

/// Window-based congestion estimator state for one parent router.
#[derive(Debug, Clone, Default)]
pub struct WbEstimator {
    children: HashMap<BankId, WbChild>,
}

impl WbEstimator {
    /// Creates state for the given children.
    pub fn new(children: impl IntoIterator<Item = BankId>) -> Self {
        Self {
            children: children
                .into_iter()
                .map(|b| (b, WbChild::default()))
                .collect(),
        }
    }

    /// Called when the parent forwards a request to `child`. Returns
    /// `Some(stamp)` when this request should carry a timestamp (every
    /// `window`-th request, and only when no tag is outstanding).
    pub fn on_forward(&mut self, child: BankId, now: Cycle, window: u32) -> Option<u8> {
        let st = self.children.get_mut(&child)?;
        st.since_tag += 1;
        if st.since_tag >= window && st.outstanding.is_none() {
            st.since_tag = 0;
            let stamp = stamp_of(now);
            st.outstanding = Some((stamp, now));
            Some(stamp)
        } else {
            None
        }
    }

    /// Called when the tag acknowledgement for `child` arrives back at
    /// the parent. `base_one_way` is the uncontended parent->child
    /// latency; congestion = max(0, RTT/2 - base), smoothed 3:1
    /// towards the previous estimate. Returns the congestion sample the
    /// ack produced, or `None` when the ack was ignored (unknown child,
    /// no outstanding tag, or a stamp mismatch).
    pub fn on_ack(
        &mut self,
        child: BankId,
        stamp: u8,
        now: Cycle,
        base_one_way: Cycle,
    ) -> Option<Cycle> {
        let st = self.children.get_mut(&child)?;
        let (expected, sent_at) = st.outstanding?;
        if expected != stamp {
            return None;
        }
        st.outstanding = None;
        // The hardware only carries the 8-bit stamp, so the RTT must
        // come from the modular decode. Short RTTs decode exactly (the
        // wide `sent_at` is kept only to cross-check them); RTTs of 256
        // cycles or more alias into the bottom 8 bits — the decode
        // yields `rtt mod 256`, deliberately clamping ancient acks
        // instead of letting one huge sample swamp the smoothed
        // estimate.
        let elapsed = now.saturating_sub(sent_at);
        let elapsed = if elapsed < (1 << STAMP_BITS) {
            debug_assert_eq!(elapsed, stamp_elapsed(stamp, now));
            elapsed
        } else {
            stamp_elapsed(stamp, now)
        };
        let sample = (elapsed / 2).saturating_sub(base_one_way);
        // Jump on the first observation, then smooth 3:1.
        st.estimate = if st.estimate == 0 {
            sample
        } else {
            (3 * st.estimate + sample) / 4
        };
        Some(sample)
    }

    /// The current congestion estimate towards `child`, in cycles.
    pub fn estimate(&self, child: BankId) -> Cycle {
        self.children.get(&child).map(|s| s.estimate).unwrap_or(0)
    }

    /// Drops an outstanding tag that was never acknowledged within a
    /// timeout (lost to an evicted run); keeps estimates fresh.
    pub fn expire_stale(&mut self, now: Cycle, timeout: Cycle) {
        for st in self.children.values_mut() {
            if let Some((_, sent)) = st.outstanding {
                if now.saturating_sub(sent) > timeout {
                    st.outstanding = None;
                }
            }
        }
    }
}

/// Regional Congestion Awareness (after Gratz et al., HPCA'08).
///
/// Every router keeps one 8-bit congestion value per direction: an
/// equal-weight blend of the *downstream neighbour's* local buffer
/// occupancy and that neighbour's own propagated value in the same
/// direction, refreshed every cycle over dedicated side wires. A parent
/// reads the value along the first hop towards a child and scales it to
/// cycles.
#[derive(Debug, Clone)]
pub struct RcaState {
    /// `values[router][direction] = aggregated congestion (0..=255)`.
    values: Vec<[u8; 6]>,
    /// Double buffer for [`Self::propagate`]: the previous cycle's
    /// values are read from here while the new ones are written into
    /// `values`, avoiding a per-cycle allocation.
    scratch: Vec<[u8; 6]>,
}

/// The six propagating directions (all but `Local`).
const RCA_DIRS: [Direction; 6] = [
    Direction::East,
    Direction::West,
    Direction::North,
    Direction::South,
    Direction::Down,
    Direction::Up,
];

impl RcaState {
    /// Creates zeroed state for `routers` routers.
    pub fn new(routers: usize) -> Self {
        Self {
            values: vec![[0; 6]; routers],
            scratch: vec![[0; 6]; routers],
        }
    }

    /// The aggregated congestion value at `router` looking in `dir`.
    pub fn value(&self, router: usize, dir: Direction) -> u8 {
        self.values[router][Self::slot(dir)]
    }

    /// Converts an aggregated value into a cycle estimate: the value
    /// is a buffer-occupancy fraction of the downstream routers, so
    /// `fraction x per_hop_flits x hops` approximates the flits queued
    /// ahead along the path (one flit ~ one cycle of wait).
    /// `per_hop_flits` should be the per-port buffering (VCs x depth).
    pub fn estimate_cycles(
        &self,
        router: usize,
        dir: Direction,
        per_hop_flits: usize,
        hops: u32,
    ) -> Cycle {
        let frac = self.value(router, dir) as u64;
        frac * per_hop_flits as u64 * hops as u64 / 255
    }

    /// One propagation step. `occupancy(i)` must return router `i`'s
    /// local congestion as a 0..=255 fraction of buffer capacity;
    /// `neighbour(i, dir)` the downstream router index in `dir`, if
    /// any.
    pub fn propagate(
        &mut self,
        occupancy: impl Fn(usize) -> u8,
        neighbour: impl Fn(usize, Direction) -> Option<usize>,
    ) {
        std::mem::swap(&mut self.values, &mut self.scratch);
        let prev = &self.scratch;
        for i in 0..self.values.len() {
            for dir in RCA_DIRS {
                let slot = Self::slot(dir);
                self.values[i][slot] = match neighbour(i, dir) {
                    Some(n) => {
                        let local = occupancy(n) as u16;
                        let downstream = prev[n][slot] as u16;
                        // Round to nearest: truncating division would
                        // bias every hop downwards, and a downstream
                        // value of 1 could never propagate past one hop.
                        (local + downstream).div_ceil(2) as u8
                    }
                    None => 0,
                };
            }
        }
    }

    fn slot(dir: Direction) -> usize {
        match dir {
            Direction::East => 0,
            Direction::West => 1,
            Direction::North => 2,
            Direction::South => 3,
            Direction::Down => 4,
            Direction::Up => 5,
            Direction::Local => panic!("RCA does not propagate on the local port"),
        }
    }
}

/// The congestion-estimation scheme state for the whole network.
#[derive(Debug, Clone)]
pub enum EstimatorState {
    /// Simplistic Scheme: congestion assumed zero.
    Simple,
    /// Regional congestion awareness over side wires.
    Rca(RcaState),
    /// Window-based timestamps; one estimator per parent router.
    WindowBased(HashMap<Coord, WbEstimator>),
}

impl EstimatorState {
    /// A short display name matching the paper's scheme suffixes.
    pub fn name(&self) -> &'static str {
        match self {
            EstimatorState::Simple => "SS",
            EstimatorState::Rca(_) => "RCA",
            EstimatorState::WindowBased(_) => "WB",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_wrap_correctly() {
        assert_eq!(stamp_of(255), 255);
        assert_eq!(stamp_of(256), 0);
        assert_eq!(stamp_elapsed(stamp_of(250), 260), 10);
        assert_eq!(stamp_elapsed(stamp_of(10), 10), 0);
    }

    #[test]
    fn wb_tags_every_window_th_request() {
        let mut wb = WbEstimator::new([BankId::new(1)]);
        let mut tags = 0;
        for i in 0..250u64 {
            if wb.on_forward(BankId::new(1), i, 100).is_some() {
                tags += 1;
                // Acknowledge immediately so the next window can tag.
                assert!(wb.on_ack(BankId::new(1), stamp_of(i), i + 8, 4).is_some());
            }
        }
        assert_eq!(tags, 2);
    }

    #[test]
    fn wb_congestion_is_half_rtt_minus_base() {
        let mut wb = WbEstimator::new([BankId::new(1)]);
        let stamp = loop {
            if let Some(s) = wb.on_forward(BankId::new(1), 1000, 1) {
                break s;
            }
        };
        // RTT of 28 cycles, base one-way 4 => sample = 14 - 4 = 10.
        assert_eq!(wb.on_ack(BankId::new(1), stamp, 1028, 4), Some(10));
        // The first observation is adopted directly.
        assert_eq!(wb.estimate(BankId::new(1)), 10);
        // Subsequent samples are smoothed 3:1.
        let stamp = wb.on_forward(BankId::new(1), 2000, 1).unwrap();
        assert_eq!(wb.on_ack(BankId::new(1), stamp, 2012, 4), Some(2));
        assert_eq!(wb.estimate(BankId::new(1)), (3 * 10 + 2) / 4);
    }

    #[test]
    fn wb_long_rtt_uses_the_stamp_decode() {
        let mut wb = WbEstimator::new([BankId::new(1)]);
        // Forwarded at cycle 1000 => stamp = 1000 mod 256 = 232.
        let stamp = wb.on_forward(BankId::new(1), 1000, 1).unwrap();
        assert_eq!(stamp, stamp_of(1000));
        // The ack limps home 300 cycles later — past what 8 bits can
        // represent. Hardware only has the stamp, so the decode gives
        // (1300 - 232) mod 256 = 44, not the wide 300:
        // sample = 44/2 - 4 = 18.
        assert_eq!(wb.on_ack(BankId::new(1), stamp, 1300, 4), Some(18));
        assert_eq!(wb.estimate(BankId::new(1)), 18);
    }

    #[test]
    fn wb_ignores_mismatched_or_unknown_acks() {
        let mut wb = WbEstimator::new([BankId::new(1)]);
        let stamp = wb.on_forward(BankId::new(1), 5, 1).unwrap();
        assert_eq!(
            wb.on_ack(BankId::new(1), stamp.wrapping_add(1), 20, 4),
            None
        );
        assert_eq!(wb.estimate(BankId::new(1)), 0);
        assert_eq!(wb.on_ack(BankId::new(9), stamp, 20, 4), None);
        // The genuine ack still lands.
        assert!(wb.on_ack(BankId::new(1), stamp, 105, 4).is_some());
        assert!(wb.estimate(BankId::new(1)) > 0);
    }

    #[test]
    fn wb_only_one_outstanding_tag() {
        let mut wb = WbEstimator::new([BankId::new(1)]);
        assert!(wb.on_forward(BankId::new(1), 0, 1).is_some());
        // Second window elapses but the first tag is still in flight.
        assert!(wb.on_forward(BankId::new(1), 1, 1).is_none());
        wb.expire_stale(2000, 1000);
        assert!(wb.on_forward(BankId::new(1), 2001, 1).is_some());
    }

    #[test]
    fn rca_blends_neighbour_occupancy() {
        let mut rca = RcaState::new(2);
        // Router 0's East neighbour is router 1 with occupancy 200.
        let nb = |i: usize, d: Direction| (i == 0 && d == Direction::East).then_some(1usize);
        rca.propagate(|i| if i == 1 { 200 } else { 0 }, nb);
        assert_eq!(rca.value(0, Direction::East), 100); // (200 + 0)/2
        rca.propagate(|i| if i == 1 { 200 } else { 0 }, nb);
        assert_eq!(rca.value(0, Direction::East), 100); // steady state: (200+0)/2
        assert_eq!(rca.value(0, Direction::West), 0);
        assert_eq!(
            rca.value(1, Direction::East),
            0,
            "boundary has no neighbour"
        );
    }

    #[test]
    fn rca_estimate_scales_with_depth_and_hops() {
        let mut rca = RcaState::new(2);
        let nb = |i: usize, d: Direction| (i == 0 && d == Direction::East).then_some(1usize);
        rca.propagate(|_| 255, nb);
        // value = (255+0+1)/2 = 128; 128/255 * 5 * 2 = 5 (integer math).
        assert_eq!(rca.estimate_cycles(0, Direction::East, 5, 2), 5);
        assert_eq!(rca.estimate_cycles(0, Direction::West, 5, 2), 0);
    }

    #[test]
    fn rca_propagates_congestion_upstream_over_multiple_hops() {
        // Chain 0 -E-> 1 -E-> 2, congestion at router 2 only.
        let mut rca = RcaState::new(3);
        let nb = |i: usize, d: Direction| {
            if d == Direction::East && i + 1 < 3 {
                Some(i + 1)
            } else {
                None
            }
        };
        let occ = |i: usize| if i == 2 { 240u8 } else { 0 };
        rca.propagate(occ, nb);
        rca.propagate(occ, nb);
        assert_eq!(rca.value(1, Direction::East), 120);
        // Router 0 sees it diluted through router 1.
        assert_eq!(rca.value(0, Direction::East), 60);
    }

    #[test]
    fn estimator_names() {
        assert_eq!(EstimatorState::Simple.name(), "SS");
        assert_eq!(EstimatorState::Rca(RcaState::new(1)).name(), "RCA");
        assert_eq!(EstimatorState::WindowBased(Default::default()).name(), "WB");
    }
}
