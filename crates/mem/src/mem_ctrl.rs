//! On-chip memory controllers and the DRAM behind them.
//!
//! Table 1: four controllers, one per cache-layer corner; 320-cycle
//! DRAM access; bounded outstanding requests. Writes (dirty L2
//! evictions) consume bandwidth and a slot but produce no reply.

use snoc_common::ids::{BankId, McId};
use snoc_common::stats::Accumulator;
use snoc_common::Cycle;
use std::collections::VecDeque;

/// A queued memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Request {
    block: u64,
    from: BankId,
    is_write: bool,
    arrived: Cycle,
}

/// A completed fetch to send back as a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fill {
    /// Block-aligned address.
    pub block: u64,
    /// The bank that asked.
    pub to: BankId,
}

/// Memory-controller statistics.
#[derive(Debug, Clone, Default)]
pub struct McStats {
    /// Fetches serviced.
    pub fetches: u64,
    /// Writes absorbed.
    pub writes: u64,
    /// Queue wait before issue.
    pub queue_wait: Accumulator,
    /// Peak in-flight occupancy.
    pub peak_inflight: usize,
}

/// One memory controller.
#[derive(Debug)]
pub struct MemoryController {
    id: McId,
    latency: Cycle,
    max_outstanding: usize,
    queue: VecDeque<Request>,
    inflight: Vec<(Cycle, Request)>,
    /// Statistics.
    pub stats: McStats,
}

impl MemoryController {
    /// Creates controller `id` with the given DRAM `latency` and
    /// outstanding-request bound.
    pub fn new(id: McId, latency: Cycle, max_outstanding: usize) -> Self {
        Self {
            id,
            latency,
            max_outstanding,
            queue: VecDeque::new(),
            inflight: Vec::new(),
            stats: McStats::default(),
        }
    }

    /// This controller's id.
    pub fn id(&self) -> McId {
        self.id
    }

    /// Clears the statistics (end of warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = McStats::default();
    }

    /// Accepts a fetch (read) request from a bank.
    pub fn fetch(&mut self, block: u64, from: BankId, now: Cycle) {
        self.queue.push_back(Request {
            block,
            from,
            is_write: false,
            arrived: now,
        });
    }

    /// Accepts a write (dirty eviction) from a bank.
    pub fn write(&mut self, block: u64, from: BankId, now: Cycle) {
        self.queue.push_back(Request {
            block,
            from,
            is_write: true,
            arrived: now,
        });
    }

    /// Requests queued or in flight.
    pub fn pending(&self) -> usize {
        self.queue.len() + self.inflight.len()
    }

    /// Advances one cycle: issues at most one request and pushes the
    /// fills whose DRAM access completed into the caller-provided
    /// `fills` sink (same shape as `Nic::drain_eject`; the sink is
    /// appended to, never cleared, so one scratch vector can collect
    /// across controllers without a per-cycle allocation).
    pub fn tick(&mut self, now: Cycle, fills: &mut Vec<Fill>) {
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].0 <= now {
                let (_, req) = self.inflight.swap_remove(i);
                if !req.is_write {
                    fills.push(Fill {
                        block: req.block,
                        to: req.from,
                    });
                }
            } else {
                i += 1;
            }
        }
        if self.inflight.len() < self.max_outstanding {
            if let Some(req) = self.queue.pop_front() {
                self.stats
                    .queue_wait
                    .record(now.saturating_sub(req.arrived) as f64);
                if req.is_write {
                    self.stats.writes += 1;
                } else {
                    self.stats.fetches += 1;
                }
                self.inflight.push((now + self.latency, req));
                self.stats.peak_inflight = self.stats.peak_inflight.max(self.inflight.len());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MemoryController {
        MemoryController::new(McId::new(0), 320, 4)
    }

    #[test]
    fn fetch_completes_after_dram_latency() {
        let mut m = mc();
        m.fetch(0x100, BankId::new(3), 0);
        let mut fill_at = None;
        let mut fills = Vec::new();
        for c in 0..400 {
            m.tick(c, &mut fills);
            if !fills.is_empty() {
                assert_eq!(
                    fills[0],
                    Fill {
                        block: 0x100,
                        to: BankId::new(3)
                    }
                );
                fill_at = Some(c);
                break;
            }
        }
        assert_eq!(fill_at, Some(320));
        assert_eq!(m.stats.fetches, 1);
        assert_eq!(m.pending(), 0);
    }

    #[test]
    fn writes_complete_silently() {
        let mut m = mc();
        m.write(0x100, BankId::new(3), 0);
        let mut fills = Vec::new();
        for c in 0..400 {
            m.tick(c, &mut fills);
        }
        assert!(fills.is_empty());
        assert_eq!(m.stats.writes, 1);
        assert_eq!(m.pending(), 0);
    }

    #[test]
    fn outstanding_bound_throttles_issue() {
        let mut m = mc();
        for i in 0..8u64 {
            m.fetch(i * 128, BankId::new(0), 0);
        }
        // Issue rate: 1/cycle until 4 in flight; the rest wait.
        let mut sink = Vec::new();
        for c in 0..10 {
            m.tick(c, &mut sink);
        }
        assert_eq!(m.pending(), 8);
        assert_eq!(m.stats.peak_inflight, 4);
        for c in 10..1000 {
            m.tick(c, &mut sink);
        }
        assert_eq!(sink.len(), 8);
        assert!(
            m.stats.queue_wait.max() >= 320.0,
            "later fetches waited for slots"
        );
    }

    #[test]
    fn issues_one_request_per_cycle() {
        let mut m = mc();
        m.fetch(0x100, BankId::new(0), 0);
        m.fetch(0x200, BankId::new(0), 0);
        let mut sink = Vec::new();
        m.tick(0, &mut sink);
        m.tick(1, &mut sink);
        let mut arrivals = Vec::new();
        for c in 2..400 {
            sink.clear();
            m.tick(c, &mut sink);
            for f in &sink {
                arrivals.push((c, f.block));
            }
        }
        assert_eq!(arrivals, vec![(320, 0x100), (321, 0x200)]);
    }
}
