//! Cross-crate integration tests: full-system runs over the paper's
//! design scenarios, checking the qualitative results the paper
//! reports.

use sttram_noc_repro::sim::scenario::{buff20_config, Scenario};
use sttram_noc_repro::sim::system::{DriveMode, System};
use sttram_noc_repro::workload::mixes;
use sttram_noc_repro::workload::table3;

fn quick(sc: Scenario) -> sttram_noc_repro::common::config::SystemConfig {
    let mut cfg = sc.config();
    cfg.warmup_cycles = 500;
    cfg.measure_cycles = 4_000;
    cfg
}

#[test]
fn all_six_scenarios_run_every_suite_representative() {
    for app in ["tpcc", "sclust", "mcf"] {
        let p = table3::by_name(app).unwrap();
        for sc in Scenario::ALL {
            let m = System::homogeneous(quick(sc), p).run();
            assert!(
                m.instruction_throughput() > 0.5,
                "{app} under {} has throughput {}",
                sc.name(),
                m.instruction_throughput()
            );
            assert!(m.bank_reads + m.bank_writes > 0, "{app}/{}", sc.name());
        }
    }
}

#[test]
fn stt_ram_swap_hurts_write_heavy_and_helps_read_heavy() {
    // The crossover structure of Figure 6.
    let run = |app: &str, sc: Scenario| {
        let p = table3::by_name(app).unwrap();
        System::homogeneous(quick(sc), p)
            .run()
            .instruction_throughput()
    };
    // tpcc: 80% writes -> loses.
    let tpcc_ratio = run("tpcc", Scenario::SttRam64Tsb) / run("tpcc", Scenario::Sram64Tsb);
    assert!(
        tpcc_ratio < 0.95,
        "write-heavy tpcc should lose: {tpcc_ratio}"
    );
    // xalan: read-heavy, reusable -> the 4x capacity wins.
    let xalan_ratio = run("xalan", Scenario::SttRam64Tsb) / run("xalan", Scenario::Sram64Tsb);
    assert!(
        xalan_ratio > 1.05,
        "read-heavy xalan should win: {xalan_ratio}"
    );
}

#[test]
fn bank_aware_schemes_hold_packets_and_keep_banks_less_queued() {
    let p = table3::by_name("lbm").unwrap();
    let plain = System::homogeneous(quick(Scenario::SttRam4Tsb), p).run();
    let wb = System::homogeneous(quick(Scenario::SttRam4TsbWb), p).run();
    assert_eq!(plain.held_packets, 0, "round robin never holds");
    assert!(
        wb.held_packets > 0,
        "the WB scheme must delay some requests"
    );
    assert!(
        wb.bank_queue_wait < plain.bank_queue_wait,
        "holding at parents must relieve the bank-side queue: {} vs {}",
        wb.bank_queue_wait,
        plain.bank_queue_wait
    );
}

#[test]
fn case2_mix_prefers_the_proposed_design() {
    // Figure 9's ordering on the fairness mix: the WB scheme should
    // not lose to the plain STT-RAM swap.
    let w = mixes::case2(64);
    let run = |sc: Scenario| {
        let m = System::new(quick(sc), &w, DriveMode::Profile).run();
        m.instruction_throughput()
    };
    let plain = run(Scenario::SttRam64Tsb);
    let wb = run(Scenario::SttRam4TsbWb);
    assert!(
        wb > 0.97 * plain,
        "WB {wb} should be at least competitive with plain {plain}"
    );
}

#[test]
fn uncore_energy_halves_with_stt_ram() {
    // Figure 8: leakage dominates, STT-RAM banks leak ~43% of SRAM.
    let p = table3::by_name("sap").unwrap();
    let sram = System::homogeneous(quick(Scenario::Sram64Tsb), p).run();
    let stt = System::homogeneous(quick(Scenario::SttRam4TsbWb), p).run();
    let ratio = stt.uncore_energy_nj() / sram.uncore_energy_nj();
    assert!(
        (0.35..0.65).contains(&ratio),
        "normalized uncore energy {ratio} should be roughly halved"
    );
}

#[test]
fn buff20_write_buffer_absorbs_writes() {
    let p = table3::by_name("tpcc").unwrap();
    let mut cfg = buff20_config();
    cfg.warmup_cycles = 500;
    cfg.measure_cycles = 4_000;
    let plain = System::homogeneous(quick(Scenario::SttRam64Tsb), p).run();
    let buffered = System::homogeneous(cfg, p).run();
    assert!(
        buffered.bank_queue_wait < plain.bank_queue_wait,
        "BUFF-20 should cut queueing: {} vs {}",
        buffered.bank_queue_wait,
        plain.bank_queue_wait
    );
}

#[test]
fn whole_system_replay_is_deterministic() {
    let w = mixes::case1(64);
    let run = || {
        let m = System::new(quick(Scenario::SttRam4TsbRca), &w, DriveMode::Profile).run();
        (
            m.per_core_committed.clone(),
            m.bank_reads,
            m.bank_writes,
            m.held_cycles,
            m.mem_fetches,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn seeds_change_results() {
    let p = table3::by_name("sjbb").unwrap();
    let mut a_cfg = quick(Scenario::SttRam4TsbWb);
    a_cfg.seed = 1;
    let mut b_cfg = quick(Scenario::SttRam4TsbWb);
    b_cfg.seed = 2;
    let a = System::homogeneous(a_cfg, p).run();
    let b = System::homogeneous(b_cfg, p).run();
    assert_ne!(a.per_core_committed, b.per_core_committed);
}

#[test]
fn full_stack_mode_reaches_steady_state_with_coherence() {
    let p = table3::by_name("vips").unwrap(); // multithreaded PARSEC
    let cfg = quick(Scenario::SttRam64Tsb);
    let cores = cfg.cores();
    let w = sttram_noc_repro::workload::mixes::Workload {
        name: "vips".into(),
        apps: vec![p; cores],
    };
    let mut sys = System::new(cfg, &w, DriveMode::FullStack);
    let m = sys.run();
    assert!(m.instruction_throughput() > 0.5);
    assert!(m.mem_fetches > 0, "cold caches must fetch from memory");
}

#[test]
fn sixteen_regions_are_legal_but_usually_slower_than_eight() {
    // Figure 12's direction: finer regions shrink re-ordering
    // opportunity (1-hop parents); we only assert both run and give
    // sane results here — the full sweep lives in the fig12 bench.
    let p = table3::by_name("sap").unwrap();
    for (regions, placement) in [
        (
            8usize,
            sttram_noc_repro::common::config::TsbPlacement::Staggered,
        ),
        (16, sttram_noc_repro::common::config::TsbPlacement::Corner),
    ] {
        let mut cfg = quick(Scenario::SttRam4TsbWb);
        cfg.regions = regions;
        cfg.tsb_placement = placement;
        let m = System::homogeneous(cfg, p).run();
        assert!(m.instruction_throughput() > 0.5, "{regions} regions");
    }
}
