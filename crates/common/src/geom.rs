//! Mesh geometry for the two stacked layers.
//!
//! Both dies are laid out as a `width x height` mesh (8x8 in the paper).
//! A position on the chip is a [`Coord`]: an `(x, y)` pair plus the
//! [`Layer`]. `x` grows eastward (the paper's X direction, along a row),
//! `y` grows northward (the Y direction, along a column); node ids grow
//! row-major, so node `y * width + x` matches the paper's Figure 4
//! numbering with node 0 at the south-west corner.

use crate::ids::NodeId;
use std::fmt;

/// Which die a coordinate refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// The top die: 64 cores with their private L1 caches.
    Core,
    /// The bottom die: 64 shared L2 banks plus the memory controllers.
    Cache,
}

impl Layer {
    /// The other layer.
    pub fn opposite(self) -> Layer {
        match self {
            Layer::Core => Layer::Cache,
            Layer::Cache => Layer::Core,
        }
    }

    /// `true` for [`Layer::Cache`].
    pub fn is_cache(self) -> bool {
        matches!(self, Layer::Cache)
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layer::Core => f.write_str("core"),
            Layer::Cache => f.write_str("cache"),
        }
    }
}

/// A position on the chip: mesh coordinates plus the layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column (paper's X direction).
    pub x: u8,
    /// Row (paper's Y direction).
    pub y: u8,
    /// Which die.
    pub layer: Layer,
}

impl Coord {
    /// Creates a coordinate.
    pub const fn new(x: u8, y: u8, layer: Layer) -> Self {
        Self { x, y, layer }
    }

    /// The same (x, y) position on the other die.
    pub fn through_via(self) -> Coord {
        Coord {
            layer: self.layer.opposite(),
            ..self
        }
    }

    /// Manhattan distance within a layer, ignoring the Z dimension.
    pub fn manhattan(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})@{}", self.x, self.y, self.layer)
    }
}

/// One hop direction in the 3D mesh, also used to index router ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// +x within a layer.
    East,
    /// -x within a layer.
    West,
    /// +y within a layer.
    North,
    /// -y within a layer.
    South,
    /// Core layer -> cache layer (through a TSV/TSB).
    Down,
    /// Cache layer -> core layer (through a TSV/TSB).
    Up,
    /// Into or out of the locally attached core / bank / controller.
    Local,
}

impl Direction {
    /// All seven port directions, in port-index order.
    pub const ALL: [Direction; 7] = [
        Direction::East,
        Direction::West,
        Direction::North,
        Direction::South,
        Direction::Down,
        Direction::Up,
        Direction::Local,
    ];

    /// The port index used by routers for this direction.
    pub const fn port(self) -> usize {
        match self {
            Direction::East => 0,
            Direction::West => 1,
            Direction::North => 2,
            Direction::South => 3,
            Direction::Down => 4,
            Direction::Up => 5,
            Direction::Local => 6,
        }
    }

    /// The direction a flit travelling this way arrives *from* at the
    /// next router (e.g. a flit sent East arrives on the West port).
    pub fn arrival_port(self) -> Direction {
        match self {
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::Down => Direction::Up,
            Direction::Up => Direction::Down,
            Direction::Local => Direction::Local,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::East => "E",
            Direction::West => "W",
            Direction::North => "N",
            Direction::South => "S",
            Direction::Down => "D",
            Direction::Up => "U",
            Direction::Local => "L",
        };
        f.write_str(s)
    }
}

/// The dimensions of one mesh layer and the id<->coordinate mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    width: u8,
    height: u8,
}

impl Mesh {
    /// Creates a mesh of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the node count exceeds
    /// `u16::MAX`.
    pub fn new(width: u8, height: u8) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        assert!(
            (width as usize) * (height as usize) <= u16::MAX as usize,
            "mesh too large"
        );
        Self { width, height }
    }

    /// Mesh width (columns).
    pub fn width(self) -> u8 {
        self.width
    }

    /// Mesh height (rows).
    pub fn height(self) -> u8 {
        self.height
    }

    /// Number of nodes per layer.
    pub fn nodes_per_layer(self) -> usize {
        self.width as usize * self.height as usize
    }

    /// The coordinate of a layer-local node id.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for this mesh.
    pub fn coord(self, node: NodeId, layer: Layer) -> Coord {
        let idx = node.index();
        assert!(idx < self.nodes_per_layer(), "node {node} out of range");
        Coord {
            x: (idx % self.width as usize) as u8,
            y: (idx / self.width as usize) as u8,
            layer,
        }
    }

    /// The layer-local node id at a coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate lies outside the mesh.
    pub fn node(self, coord: Coord) -> NodeId {
        assert!(
            coord.x < self.width && coord.y < self.height,
            "coord out of range"
        );
        NodeId::new(coord.y as u16 * self.width as u16 + coord.x as u16)
    }

    /// The neighbouring coordinate one hop in `dir`, or `None` at the
    /// mesh / layer boundary. [`Direction::Local`] has no neighbour.
    pub fn neighbour(self, coord: Coord, dir: Direction) -> Option<Coord> {
        match dir {
            Direction::East if coord.x + 1 < self.width => Some(Coord {
                x: coord.x + 1,
                ..coord
            }),
            Direction::West if coord.x > 0 => Some(Coord {
                x: coord.x - 1,
                ..coord
            }),
            Direction::North if coord.y + 1 < self.height => Some(Coord {
                y: coord.y + 1,
                ..coord
            }),
            Direction::South if coord.y > 0 => Some(Coord {
                y: coord.y - 1,
                ..coord
            }),
            Direction::Down if coord.layer == Layer::Core => Some(coord.through_via()),
            Direction::Up if coord.layer == Layer::Cache => Some(coord.through_via()),
            _ => None,
        }
    }

    /// Iterates over all layer-local node ids.
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes_per_layer() as u16).map(NodeId::new)
    }

    /// The first X-then-Y step from `from` towards `to` within one
    /// layer, or `None` if already there.
    ///
    /// This is the paper's dimension-ordered X-Y routing function.
    pub fn xy_step(self, from: Coord, to: Coord) -> Option<Direction> {
        debug_assert_eq!(from.layer, to.layer, "xy_step is intra-layer");
        if from.x < to.x {
            Some(Direction::East)
        } else if from.x > to.x {
            Some(Direction::West)
        } else if from.y < to.y {
            Some(Direction::North)
        } else if from.y > to.y {
            Some(Direction::South)
        } else {
            None
        }
    }

    /// The full X-Y path from `from` to `to` (exclusive of `from`,
    /// inclusive of `to`), within one layer.
    pub fn xy_path(self, from: Coord, to: Coord) -> Vec<Coord> {
        let mut path = Vec::with_capacity(from.manhattan(to) as usize);
        let mut cur = from;
        while let Some(dir) = self.xy_step(cur, to) {
            cur = self.neighbour(cur, dir).expect("xy path stays in mesh");
            path.push(cur);
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(8, 8)
    }

    #[test]
    fn node_coord_round_trip() {
        let m = mesh();
        for id in m.nodes() {
            let c = m.coord(id, Layer::Cache);
            assert_eq!(m.node(c), id);
        }
    }

    #[test]
    fn paper_node_91_is_row3_col3_of_cache_layer() {
        // Paper chip node 91 = cache-layer node 27 = (x=3, y=3).
        let m = mesh();
        let c = m.coord(NodeId::new(27), Layer::Cache);
        assert_eq!((c.x, c.y), (3, 3));
    }

    #[test]
    fn neighbours_respect_boundaries() {
        let m = mesh();
        let sw = Coord::new(0, 0, Layer::Core);
        assert_eq!(m.neighbour(sw, Direction::West), None);
        assert_eq!(m.neighbour(sw, Direction::South), None);
        assert_eq!(
            m.neighbour(sw, Direction::Up),
            None,
            "core layer is the top die"
        );
        assert_eq!(
            m.neighbour(sw, Direction::Down),
            Some(Coord::new(0, 0, Layer::Cache))
        );
        let ne = Coord::new(7, 7, Layer::Cache);
        assert_eq!(m.neighbour(ne, Direction::East), None);
        assert_eq!(m.neighbour(ne, Direction::North), None);
        assert_eq!(m.neighbour(ne, Direction::Down), None);
        assert_eq!(
            m.neighbour(ne, Direction::Up),
            Some(Coord::new(7, 7, Layer::Core))
        );
    }

    #[test]
    fn xy_path_goes_x_first() {
        let m = mesh();
        // Paper example: requests entering region 0 at node 91 (3,3)
        // reach bank 74 (chip) = node 10 = (2,1) via 90, 82, 74.
        let from = m.coord(NodeId::new(27), Layer::Cache);
        let to = m.coord(NodeId::new(10), Layer::Cache);
        let path: Vec<_> = m.xy_path(from, to).iter().map(|&c| m.node(c)).collect();
        assert_eq!(
            path,
            vec![NodeId::new(26), NodeId::new(18), NodeId::new(10)]
        );
    }

    #[test]
    fn xy_step_is_none_at_destination() {
        let m = mesh();
        let c = Coord::new(4, 4, Layer::Core);
        assert_eq!(m.xy_step(c, c), None);
    }

    #[test]
    fn arrival_ports_invert_directions() {
        for dir in Direction::ALL {
            if dir == Direction::Local {
                continue;
            }
            assert_eq!(dir.arrival_port().arrival_port(), dir);
        }
    }

    #[test]
    fn manhattan_distance() {
        let a = Coord::new(0, 0, Layer::Core);
        let b = Coord::new(7, 7, Layer::Core);
        assert_eq!(a.manhattan(b), 14);
        assert_eq!(b.manhattan(a), 14);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coord_of_out_of_range_node_panics() {
        mesh().coord(NodeId::new(64), Layer::Core);
    }
}
