//! Packets, flits and traffic classes.
//!
//! A message is a [`Packet`]: one header flit plus, for data-bearing
//! messages, eight 128-bit payload flits (Table 1). Packets belong to a
//! [`TrafficClass`] that selects the virtual-channel partition they may
//! use; the three classes (requests, coherence, responses) form an
//! acyclic dependency chain, which together with X-Y routing keeps the
//! network protocol-deadlock-free.

use snoc_common::geom::Coord;
use snoc_common::ids::{BankId, PacketId};
use snoc_common::Cycle;
use std::ops::Range;

/// The protocol class of a packet, used for virtual-channel
/// partitioning and for the bank-aware prioritization rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Cache requests: reads, write-misses, writebacks and bank-to-
    /// memory-controller fetches.
    Request,
    /// Directory-initiated coherence traffic: invalidations and owner
    /// forwards.
    Coherence,
    /// Replies: data, acknowledgements, memory fills and the WB
    /// estimator's timestamp acks.
    Response,
}

impl TrafficClass {
    /// The virtual channels this class may use out of `vcs` channels
    /// per port.
    ///
    /// Requests get the lion's share (they are the class the bank-aware
    /// policy re-orders, so head-of-line pressure matters most there),
    /// coherence gets one channel, responses the rest. With Table 1's
    /// 6 VCs: 3 request, 1 coherence, 2 response. The paper's "+1 VC"
    /// experiment grows the request partition to 4.
    pub fn vc_range(self, vcs: usize) -> Range<usize> {
        assert!(vcs >= 3, "need at least one VC per class");
        let coh = (vcs / 6).max(1);
        let resp = (vcs / 3).max(1);
        let req = vcs - coh - resp;
        match self {
            TrafficClass::Request => 0..req,
            TrafficClass::Coherence => req..req + coh,
            TrafficClass::Response => req + coh..vcs,
        }
    }
}

/// The message vocabulary of the two-level MESI protocol plus the
/// memory and estimator traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// L1 read miss (GetS): core -> home L2 bank, 1 flit.
    BankRead,
    /// L1 write miss or upgrade (GetM): core -> home L2 bank, 1 flit.
    BankWrite,
    /// Dirty L1 eviction (PutM) carrying data: core -> home L2 bank,
    /// 9 flits. This is the long-latency STT-RAM *write* access.
    Writeback,
    /// Data reply: L2 bank -> core, or owner L1 -> requesting L1,
    /// 9 flits.
    DataReply,
    /// Short acknowledgement (write ack, invalidation ack, PutM ack),
    /// 1 flit.
    Ack,
    /// Directory invalidation: home bank -> sharer L1, 1 flit.
    Inv,
    /// Directory forward: home bank -> owner L1, 1 flit.
    Fwd,
    /// L2 miss fetch: bank -> memory controller, 1 flit.
    MemFetch,
    /// Memory fill: memory controller -> bank, 9 flits. Filling the
    /// bank is also an STT-RAM *write* access.
    MemFill,
    /// Dirty L2 victim written back to memory: bank -> memory
    /// controller, 9 flits.
    MemWriteback,
    /// Window-based estimator acknowledgement carrying a timestamp:
    /// child bank NI -> parent router NI, 1 flit. Generated and
    /// consumed inside the network.
    TagAck,
}

impl PacketKind {
    /// The traffic class of this message kind.
    pub fn class(self) -> TrafficClass {
        match self {
            PacketKind::BankRead
            | PacketKind::BankWrite
            | PacketKind::Writeback
            | PacketKind::MemFetch
            | PacketKind::MemWriteback => TrafficClass::Request,
            PacketKind::Inv | PacketKind::Fwd => TrafficClass::Coherence,
            PacketKind::DataReply | PacketKind::Ack | PacketKind::MemFill | PacketKind::TagAck => {
                TrafficClass::Response
            }
        }
    }

    /// Total flits on the wire: 1 header plus `data_flits` for
    /// data-bearing messages.
    pub fn flits(self, data_flits: usize) -> usize {
        if self.carries_data() {
            1 + data_flits
        } else {
            1
        }
    }

    /// `true` for messages carrying a full cache block.
    pub fn carries_data(self) -> bool {
        matches!(
            self,
            PacketKind::Writeback
                | PacketKind::DataReply
                | PacketKind::MemFill
                | PacketKind::MemWriteback
        )
    }

    /// `true` for core-side requests destined to an L2 bank — the
    /// packets subject to region-TSB path restriction and parent-router
    /// re-ordering.
    pub fn is_bank_request(self) -> bool {
        matches!(
            self,
            PacketKind::BankRead | PacketKind::BankWrite | PacketKind::Writeback
        )
    }

    /// `true` for the requests that occupy an STT-RAM bank for the long
    /// write service time (the parent's busy-table uses this): write
    /// requests and data writebacks.
    pub fn is_bank_write(self) -> bool {
        matches!(self, PacketKind::BankWrite | PacketKind::Writeback)
    }

    /// `true` for memory-controller traffic, which bank-aware routers
    /// prioritize alongside coherence traffic.
    pub fn is_mc_traffic(self) -> bool {
        matches!(
            self,
            PacketKind::MemFetch | PacketKind::MemFill | PacketKind::MemWriteback
        )
    }
}

/// One message in flight through the network.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Arena identifier, unique within a run.
    pub id: PacketId,
    /// Monotonic lifetime identity assigned at arena insertion.
    /// Unlike `id`, never recycled; 0 until the packet is stored.
    pub uid: u64,
    /// Message kind.
    pub kind: PacketKind,
    /// Injection position.
    pub src: Coord,
    /// Delivery position.
    pub dst: Coord,
    /// The cache-block address this message concerns.
    pub addr: u64,
    /// Opaque endpoint correlation token (e.g. MSHR index).
    pub token: u64,
    /// Cycle the header flit entered the source NI.
    pub injected_at: Cycle,
    /// Cycle the tail flit was delivered at the destination NI.
    pub ejected_at: Cycle,
    /// Window-based estimator timestamp: set by the tagging parent
    /// router; echoed back in the resulting [`PacketKind::TagAck`].
    pub wb_tag: Option<WbTag>,
    /// Cycles this packet spent held at a parent router (statistics).
    pub held_cycles: Cycle,
}

/// The timestamp a parent router attaches to every `wb_window`-th
/// request (Section 3.5, window-based scheme).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WbTag {
    /// 8-bit wrapped timestamp, as carried in the header flit.
    pub stamp: u8,
    /// The parent router to acknowledge.
    pub parent: Coord,
    /// The child bank the tagged request targeted.
    pub child: BankId,
}

impl Packet {
    /// Creates a packet; `injected_at`/`ejected_at` are filled in by the
    /// network.
    pub fn new(kind: PacketKind, src: Coord, dst: Coord, addr: u64, token: u64) -> Self {
        Self {
            id: PacketId::new(0),
            uid: 0,
            kind,
            src,
            dst,
            addr,
            token,
            injected_at: 0,
            ejected_at: 0,
            wb_tag: None,
            held_cycles: 0,
        }
    }

    /// End-to-end network latency (inject to eject), valid after
    /// delivery.
    pub fn net_latency(&self) -> Cycle {
        self.ejected_at.saturating_sub(self.injected_at)
    }

    /// The destination bank, if this is a bank request into the cache
    /// layer.
    pub fn dest_bank(&self, mesh: snoc_common::geom::Mesh) -> Option<BankId> {
        if self.kind.is_bank_request() && self.dst.layer.is_cache() {
            Some(BankId::new(mesh.node(self.dst).raw()))
        } else {
            None
        }
    }
}

/// One flit of a packet as it sits in a virtual-channel buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Position within the packet (0 = header).
    pub seq: u16,
    /// `true` for the header flit.
    pub head: bool,
    /// `true` for the final flit.
    pub tail: bool,
    /// Cycle at which this flit has cleared the router pipeline and may
    /// compete in switch allocation.
    pub ready_at: Cycle,
}

impl Flit {
    /// Builds the flit sequence for a packet of `n` flits.
    pub fn sequence(packet: PacketId, n: usize) -> impl Iterator<Item = Flit> {
        assert!(n >= 1, "a packet has at least a header flit");
        (0..n).map(move |i| Flit {
            packet,
            seq: i as u16,
            head: i == 0,
            tail: i == n - 1,
            ready_at: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoc_common::geom::{Layer, Mesh};

    #[test]
    fn vc_partition_covers_all_channels_without_overlap() {
        for vcs in 3..=9 {
            let r = TrafficClass::Request.vc_range(vcs);
            let c = TrafficClass::Coherence.vc_range(vcs);
            let p = TrafficClass::Response.vc_range(vcs);
            assert_eq!(r.start, 0);
            assert_eq!(r.end, c.start);
            assert_eq!(c.end, p.start);
            assert_eq!(p.end, vcs);
            assert!(!r.is_empty() && !c.is_empty() && !p.is_empty());
        }
    }

    #[test]
    fn plus_one_vc_grows_request_partition() {
        let six = TrafficClass::Request.vc_range(6);
        let seven = TrafficClass::Request.vc_range(7);
        assert_eq!(six.len(), 3);
        assert_eq!(seven.len(), 4);
        assert_eq!(TrafficClass::Coherence.vc_range(6).len(), 1);
        assert_eq!(TrafficClass::Response.vc_range(6).len(), 2);
        assert_eq!(TrafficClass::Response.vc_range(7).len(), 2);
    }

    #[test]
    fn flit_counts_match_table1() {
        assert_eq!(PacketKind::BankRead.flits(8), 1);
        assert_eq!(PacketKind::Writeback.flits(8), 9);
        assert_eq!(PacketKind::DataReply.flits(8), 9);
        assert_eq!(PacketKind::MemFill.flits(8), 9);
        assert_eq!(PacketKind::Inv.flits(8), 1);
    }

    #[test]
    fn kind_predicates() {
        assert!(PacketKind::Writeback.is_bank_request());
        assert!(PacketKind::Writeback.is_bank_write());
        assert!(PacketKind::BankRead.is_bank_request());
        assert!(!PacketKind::BankRead.is_bank_write());
        assert!(PacketKind::BankWrite.is_bank_write());
        assert!(!PacketKind::DataReply.is_bank_request());
        assert!(PacketKind::MemFetch.is_mc_traffic());
        assert!(PacketKind::MemWriteback.is_mc_traffic());
        assert!(!PacketKind::MemWriteback.is_bank_request());
        assert_eq!(PacketKind::MemWriteback.flits(8), 9);
        assert_eq!(PacketKind::Inv.class(), TrafficClass::Coherence);
        assert_eq!(PacketKind::TagAck.class(), TrafficClass::Response);
    }

    #[test]
    fn flit_sequence_is_well_formed() {
        let flits: Vec<_> = Flit::sequence(PacketId::new(3), 9).collect();
        assert_eq!(flits.len(), 9);
        assert!(flits[0].head && !flits[0].tail);
        assert!(flits[8].tail && !flits[8].head);
        assert!(flits[1..8].iter().all(|f| !f.head && !f.tail));
        let single: Vec<_> = Flit::sequence(PacketId::new(4), 1).collect();
        assert!(single[0].head && single[0].tail);
    }

    #[test]
    fn dest_bank_only_for_cache_layer_requests() {
        let mesh = Mesh::new(8, 8);
        let core = Coord::new(1, 1, Layer::Core);
        let cache = Coord::new(3, 3, Layer::Cache);
        let p = Packet::new(PacketKind::BankRead, core, cache, 0, 0);
        assert_eq!(p.dest_bank(mesh), Some(BankId::new(27)));
        let r = Packet::new(PacketKind::DataReply, cache, core, 0, 0);
        assert_eq!(r.dest_bank(mesh), None);
    }
}
