//! Regenerates the paper's Figure 6 (throughput across the six design points).
fn main() {
    let scale = snoc_bench::scale_from_args();
    snoc_bench::emit("fig6", &snoc_core::experiments::fig6::run(scale));
}
