//! Global simulation configuration.
//!
//! [`SystemConfig`] captures every knob of Table 1 and Table 2 of the
//! paper plus the design-space parameters explored in the evaluation
//! (number of logical regions, TSB placement, parent-child hop distance,
//! busy-estimation scheme, write-buffer baseline). The six named design
//! scenarios of Section 4.1 are built on top of this type by the
//! `snoc-core` crate.

/// The memory technology of the L2 banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemTech {
    /// 1 MB SRAM banks: 3-cycle reads and writes.
    Sram,
    /// 4 MB STT-RAM banks: 3-cycle reads, 33-cycle writes.
    SttRam,
}

impl MemTech {
    /// Capacity multiplier relative to the SRAM bank of equal area.
    pub fn capacity_factor(self) -> usize {
        match self {
            MemTech::Sram => 1,
            MemTech::SttRam => 4,
        }
    }
}

/// How core->cache request traffic crosses between the dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestPathMode {
    /// Requests descend at the source node through any of the 64 TSVs
    /// (Z-X-Y routing). Used by the `*-64TSB` scenarios.
    AllTsvs,
    /// Requests are first X-Y routed in the core layer to the TSB of the
    /// destination bank's region, descend there, then X-Y route in the
    /// cache layer. Used by the `*-4TSB` scenarios.
    RegionTsbs,
}

/// Where each region's TSB is placed (Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TsbPlacement {
    /// At the innermost corner of each region (towards the mesh centre).
    Corner,
    /// Staggered so that the TSB columns of different regions do not
    /// overlap, avoiding Y-direction flow collisions in the core layer.
    Staggered,
}

/// The congestion-estimation scheme used by bank-aware arbitration
/// (Section 3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Estimator {
    /// Simplistic Scheme: congestion assumed zero.
    Simple,
    /// Regional Congestion Awareness: aggregated buffer-occupancy
    /// estimates propagated over dedicated 8-bit side wires.
    Rca,
    /// Window-Based: every `window`-th request is tagged with an 8-bit
    /// timestamp that the child acknowledges; congestion = RTT/2 minus
    /// the uncontended latency.
    WindowBased,
}

/// The router arbitration policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArbitrationPolicy {
    /// Plain round-robin (the paper's baseline routers).
    RoundRobin,
    /// STT-RAM-aware arbitration: parent routers delay requests to busy
    /// child banks and prioritize requests to idle banks, coherence
    /// traffic and memory-controller traffic.
    BankAware {
        /// How the parent estimates congestion towards the child.
        estimator: Estimator,
    },
}

impl ArbitrationPolicy {
    /// `true` if this policy re-orders requests at parent routers.
    pub fn is_bank_aware(self) -> bool {
        matches!(self, ArbitrationPolicy::BankAware { .. })
    }
}

/// Optional per-bank SRAM write buffer (the BUFF-20 comparison point of
/// Section 4.4, after Sun et al. HPCA'09).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WriteBufferConfig {
    /// Number of buffered writes per bank (20 in the paper).
    pub entries: usize,
    /// Extra cycles on every bank access to detect read vs write before
    /// buffer insertion (1 in the paper).
    pub detect_cycles: u64,
    /// Whether a read may preempt an in-progress STT-RAM array write.
    pub read_preemption: bool,
}

impl Default for WriteBufferConfig {
    fn default() -> Self {
        Self {
            entries: 20,
            detect_cycles: 1,
            read_preemption: true,
        }
    }
}

/// NoC parameters (Table 1, "Network Router" and "Network Topology").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NocConfig {
    /// Mesh width of each layer (8).
    pub width: u8,
    /// Mesh height of each layer (8).
    pub height: u8,
    /// Virtual channels per input port (6).
    pub vcs_per_port: usize,
    /// Flit buffer depth per VC (5).
    pub vc_depth: usize,
    /// Payload flits per data packet (8); +1 header flit on the wire.
    pub data_flits: usize,
    /// Router pipeline depth in cycles (2).
    pub router_stages: u64,
    /// Link traversal latency in cycles (1).
    pub link_latency: u64,
    /// Width multiplier of the region TSBs relative to a normal 128b
    /// link (2 for the 256b TSBs; two flits of a packet may cross per
    /// cycle).
    pub tsb_width_factor: usize,
    /// Release slack of held packets: a held request is let go this
    /// many cycles before the predicted bank-idle time to cover
    /// allocation/switch contention on the way.
    pub hold_slack: u64,
    /// Window-based estimator housekeeping period: outstanding tags
    /// are scanned for staleness every this many cycles (1024).
    pub wb_expire_period: u64,
    /// Age beyond which an outstanding WB tag is considered lost and
    /// dropped, freeing the child for a fresh sample (4096).
    pub wb_tag_timeout: u64,
    /// Intra-run mesh partition count for the sharded network stepper
    /// (0 = unset: resolved from `SNOC_SHARDS`, default serial). Run
    /// fingerprints are byte-identical at any value; this is purely a
    /// host-parallelism knob, not a modeled parameter.
    pub shards: usize,
}

impl Default for NocConfig {
    fn default() -> Self {
        Self {
            width: 8,
            height: 8,
            vcs_per_port: 6,
            vc_depth: 5,
            data_flits: 8,
            router_stages: 2,
            link_latency: 1,
            tsb_width_factor: 2,
            hold_slack: 8,
            wb_expire_period: 1024,
            wb_tag_timeout: 4096,
            shards: 0,
        }
    }
}

/// Memory-hierarchy parameters (Table 1, caches and main memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemConfig {
    /// L1 size in bytes (32 KB).
    pub l1_bytes: usize,
    /// L1 associativity (4).
    pub l1_ways: usize,
    /// Cache block size in bytes (128).
    pub block_bytes: usize,
    /// L1 hit latency in cycles (2).
    pub l1_latency: u64,
    /// L1 MSHR count (32).
    pub l1_mshrs: usize,
    /// SRAM L2 bank size in bytes (1 MB); STT-RAM banks are
    /// `capacity_factor()` times larger.
    pub l2_bank_bytes: usize,
    /// L2 associativity (16).
    pub l2_ways: usize,
    /// L2 bank read (and SRAM write) latency in cycles (3).
    pub l2_read_latency: u64,
    /// STT-RAM write latency in cycles (33).
    pub stt_write_latency: u64,
    /// L2 MSHR count per bank (32).
    pub l2_mshrs: usize,
    /// Bank controller intake queue depth: requests beyond this wait
    /// in the NI and then in the network (the congestion the paper's
    /// scheme avoids).
    pub bank_queue: usize,
    /// DRAM access latency in cycles (320).
    pub dram_latency: u64,
    /// Number of on-chip memory controllers (4, one per cache-layer
    /// corner).
    pub mem_controllers: usize,
    /// Maximum outstanding memory requests per controller (16 per
    /// processor in the paper; modelled per controller).
    pub mc_outstanding: usize,
    /// Number of stacked cache dies (1 = the paper's single cache
    /// layer). Deeper stacks multiply per-bank capacity and add
    /// `stack_hop_latency` per extra die to every bank access,
    /// modelling the vertically-folded bank of MemPool-3D-style
    /// stacking without changing the bank count.
    pub cache_layers: usize,
    /// Extra access cycles per cache die beyond the first (TSV hop up
    /// and down through the stack).
    pub stack_hop_latency: u64,
}

impl Default for MemConfig {
    fn default() -> Self {
        Self {
            l1_bytes: 32 * 1024,
            l1_ways: 4,
            block_bytes: 128,
            l1_latency: 2,
            l1_mshrs: 32,
            l2_bank_bytes: 1024 * 1024,
            l2_ways: 16,
            l2_read_latency: 3,
            stt_write_latency: 33,
            l2_mshrs: 32,
            bank_queue: 4,
            dram_latency: 320,
            mem_controllers: 4,
            mc_outstanding: 64,
            cache_layers: 1,
            stack_hop_latency: 2,
        }
    }
}

/// Core-model parameters (Table 1, "Processor Pipeline").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreConfig {
    /// Instruction window entries (128).
    pub window_entries: usize,
    /// Fetch/commit width (2).
    pub width: usize,
    /// Maximum memory operations issued per cycle (1).
    pub mem_ops_per_cycle: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            window_entries: 128,
            width: 2,
            mem_ops_per_cycle: 1,
        }
    }
}

/// The complete configuration of one simulated system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// NoC parameters.
    pub noc: NocConfig,
    /// Memory-hierarchy parameters.
    pub mem: MemConfig,
    /// Core parameters.
    pub core: CoreConfig,
    /// L2 bank technology.
    pub tech: MemTech,
    /// How requests cross between dies.
    pub path_mode: RequestPathMode,
    /// Number of logical cache-layer regions (4, 8 or 16).
    pub regions: usize,
    /// TSB placement within each region.
    pub tsb_placement: TsbPlacement,
    /// Parent-child re-ordering distance in hops (2 in the paper).
    pub parent_hops: u32,
    /// Router arbitration policy.
    pub arbitration: ArbitrationPolicy,
    /// WB-scheme sampling window: every `wb_window`-th request per child
    /// carries a timestamp (100).
    pub wb_window: u32,
    /// Optional per-bank write buffer (the BUFF-20 baseline); `None`
    /// for all six of the paper's design scenarios except Section 4.4.
    pub write_buffer: Option<WriteBufferConfig>,
    /// Warm-up cycles excluded from measurement.
    pub warmup_cycles: u64,
    /// Measured cycles after warm-up.
    pub measure_cycles: u64,
    /// Master RNG seed; identical configs and seeds reproduce runs
    /// bit-for-bit.
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            noc: NocConfig::default(),
            mem: MemConfig::default(),
            core: CoreConfig::default(),
            tech: MemTech::Sram,
            path_mode: RequestPathMode::AllTsvs,
            regions: 4,
            tsb_placement: TsbPlacement::Corner,
            parent_hops: 2,
            arbitration: ArbitrationPolicy::RoundRobin,
            wb_window: 100,
            write_buffer: None,
            warmup_cycles: 2_000,
            measure_cycles: 20_000,
            seed: 0xC0FFEE,
        }
    }
}

/// A chainable constructor for [`SystemConfig`].
///
/// The builder is the preferred way to express configuration deltas —
/// scenario definitions, experiment overrides and scale selection all
/// read as one chain instead of ad-hoc field pokes:
///
/// ```
/// use snoc_common::config::{MemTech, RequestPathMode, SystemConfig};
///
/// let cfg = SystemConfig::builder()
///     .tech(MemTech::SttRam)
///     .path_mode(RequestPathMode::RegionTsbs)
///     .cycles(500, 3_000)
///     .build();
/// assert_eq!(cfg.l2_write_latency(), 33);
/// ```
///
/// The plain struct fields stay public, so direct mutation keeps
/// working for existing callers.
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
}

impl SystemConfigBuilder {
    /// The L2 bank technology.
    pub fn tech(mut self, tech: MemTech) -> Self {
        self.cfg.tech = tech;
        self
    }

    /// How requests cross between dies.
    pub fn path_mode(mut self, mode: RequestPathMode) -> Self {
        self.cfg.path_mode = mode;
        self
    }

    /// The router arbitration policy.
    pub fn arbitration(mut self, policy: ArbitrationPolicy) -> Self {
        self.cfg.arbitration = policy;
        self
    }

    /// Number of logical cache-layer regions.
    pub fn regions(mut self, regions: usize) -> Self {
        self.cfg.regions = regions;
        self
    }

    /// TSB placement within each region.
    pub fn tsb_placement(mut self, placement: TsbPlacement) -> Self {
        self.cfg.tsb_placement = placement;
        self
    }

    /// Parent-child re-ordering distance in hops.
    pub fn parent_hops(mut self, hops: u32) -> Self {
        self.cfg.parent_hops = hops;
        self
    }

    /// WB-scheme sampling window.
    pub fn wb_window(mut self, window: u32) -> Self {
        self.cfg.wb_window = window;
        self
    }

    /// Number of stacked cache dies.
    pub fn cache_layers(mut self, layers: usize) -> Self {
        self.cfg.mem.cache_layers = layers;
        self
    }

    /// Optional per-bank write buffer.
    pub fn write_buffer(mut self, wb: Option<WriteBufferConfig>) -> Self {
        self.cfg.write_buffer = wb;
        self
    }

    /// Warm-up and measured cycle counts.
    pub fn cycles(mut self, warmup: u64, measure: u64) -> Self {
        self.cfg.warmup_cycles = warmup;
        self.cfg.measure_cycles = measure;
        self
    }

    /// The master RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Replaces the NoC parameter block.
    pub fn noc(mut self, noc: NocConfig) -> Self {
        self.cfg.noc = noc;
        self
    }

    /// Replaces the memory-hierarchy parameter block.
    pub fn mem(mut self, mem: MemConfig) -> Self {
        self.cfg.mem = mem;
        self
    }

    /// Replaces the core parameter block.
    pub fn core(mut self, core: CoreConfig) -> Self {
        self.cfg.core = core;
        self
    }

    /// Escape hatch for knobs without a dedicated method: mutate the
    /// partially-built configuration in place.
    pub fn tune(mut self, f: impl FnOnce(&mut SystemConfig)) -> Self {
        f(&mut self.cfg);
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns the [`SystemConfig::validate`] message if the parameter
    /// combination is unusable.
    pub fn try_build(self) -> Result<SystemConfig, String> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }

    /// Validates and returns the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the parameter combination fails
    /// [`SystemConfig::validate`]; use [`SystemConfigBuilder::try_build`]
    /// to handle that case.
    pub fn build(self) -> SystemConfig {
        match self.try_build() {
            Ok(cfg) => cfg,
            Err(e) => panic!("invalid configuration: {e}"),
        }
    }
}

impl SystemConfig {
    /// A builder seeded with the Table 1 defaults.
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder {
            cfg: SystemConfig::default(),
        }
    }

    /// A builder seeded with an existing configuration (for overrides
    /// on top of a scenario or a previous build).
    pub fn rebuild(self) -> SystemConfigBuilder {
        SystemConfigBuilder { cfg: self }
    }

    /// Number of cores (= nodes per layer).
    pub fn cores(&self) -> usize {
        self.noc.width as usize * self.noc.height as usize
    }

    /// Number of L2 banks (= nodes per layer).
    pub fn banks(&self) -> usize {
        self.cores()
    }

    /// The resolved chip geometry: mesh, region tiling, TSB nodes and
    /// stack depth, all derived from this configuration.
    ///
    /// # Panics
    ///
    /// Panics when the mesh cannot be tiled into `regions` equal
    /// rectangles; [`SystemConfig::validate`] rejects such
    /// configurations first on every builder path.
    pub fn geometry(&self) -> crate::geom::Geometry {
        crate::geom::Geometry::new(
            crate::geom::Mesh::new(self.noc.width, self.noc.height),
            self.regions,
            self.tsb_placement,
            self.mem.cache_layers,
        )
    }

    /// Extra cycles on every bank access from dies beyond the first:
    /// `(cache_layers - 1) * stack_hop_latency`.
    pub fn stack_latency(&self) -> u64 {
        (self.mem.cache_layers as u64 - 1) * self.mem.stack_hop_latency
    }

    /// The L2 read service latency including the stack traversal.
    pub fn l2_read_service_latency(&self) -> u64 {
        self.mem.l2_read_latency + self.stack_latency()
    }

    /// The L2 write service latency for the configured technology,
    /// including the stack traversal.
    pub fn l2_write_latency(&self) -> u64 {
        let array = match self.tech {
            MemTech::Sram => self.mem.l2_read_latency,
            MemTech::SttRam => self.mem.stt_write_latency,
        };
        array + self.stack_latency()
    }

    /// Effective per-bank capacity in bytes for the configured
    /// technology and stack depth (the STT-RAM bank is 4x denser at
    /// equal area; each extra cache die folds another bank's worth of
    /// capacity on top).
    pub fn l2_bank_capacity(&self) -> usize {
        self.mem.l2_bank_bytes * self.effective_capacity_factor()
    }

    /// Capacity multiplier relative to a single-layer SRAM bank:
    /// technology density times stack depth.
    pub fn effective_capacity_factor(&self) -> usize {
        self.tech.capacity_factor() * self.mem.cache_layers
    }

    /// The minimum uncontended latency from a parent router to a child
    /// bank `parent_hops` away: one intermediate router per hop beyond
    /// the first plus the link traversals (Section 3.5: "4 cycles" for
    /// 2 hops with a 2-stage router).
    pub fn parent_child_base_latency(&self) -> u64 {
        let hops = self.parent_hops as u64;
        if hops == 0 {
            return 0;
        }
        (hops - 1) * self.noc.router_stages + hops * self.noc.link_latency
    }

    /// Feeds every *modeled* field into `h` for content-addressed
    /// caching.
    ///
    /// The stream is explicit field by field — no derived `Hash` — so
    /// the digest is stable across compiler releases and only changes
    /// when a field is added or its meaning shifts (bump the cell
    /// codec version alongside any such change). `noc.shards` is
    /// deliberately *excluded*: it is a host-parallelism knob whose
    /// every value produces byte-identical results, so configs
    /// differing only in shard count must share a cache entry.
    pub fn hash_into(&self, h: &mut crate::fingerprint::StableHasher) {
        let n = &self.noc;
        h.write_u8(n.width);
        h.write_u8(n.height);
        h.write_usize(n.vcs_per_port);
        h.write_usize(n.vc_depth);
        h.write_usize(n.data_flits);
        h.write_u64(n.router_stages);
        h.write_u64(n.link_latency);
        h.write_usize(n.tsb_width_factor);
        h.write_u64(n.hold_slack);
        h.write_u64(n.wb_expire_period);
        h.write_u64(n.wb_tag_timeout);
        let m = &self.mem;
        h.write_usize(m.l1_bytes);
        h.write_usize(m.l1_ways);
        h.write_usize(m.block_bytes);
        h.write_u64(m.l1_latency);
        h.write_usize(m.l1_mshrs);
        h.write_usize(m.l2_bank_bytes);
        h.write_usize(m.l2_ways);
        h.write_u64(m.l2_read_latency);
        h.write_u64(m.stt_write_latency);
        h.write_usize(m.l2_mshrs);
        h.write_usize(m.bank_queue);
        h.write_u64(m.dram_latency);
        h.write_usize(m.mem_controllers);
        h.write_usize(m.mc_outstanding);
        h.write_usize(m.cache_layers);
        h.write_u64(m.stack_hop_latency);
        let c = &self.core;
        h.write_usize(c.window_entries);
        h.write_usize(c.width);
        h.write_usize(c.mem_ops_per_cycle);
        h.write_u8(match self.tech {
            MemTech::Sram => 0,
            MemTech::SttRam => 1,
        });
        h.write_u8(match self.path_mode {
            RequestPathMode::AllTsvs => 0,
            RequestPathMode::RegionTsbs => 1,
        });
        h.write_usize(self.regions);
        h.write_u8(match self.tsb_placement {
            TsbPlacement::Corner => 0,
            TsbPlacement::Staggered => 1,
        });
        h.write_u32(self.parent_hops);
        match self.arbitration {
            ArbitrationPolicy::RoundRobin => h.write_u8(0),
            ArbitrationPolicy::BankAware { estimator } => {
                h.write_u8(1);
                h.write_u8(match estimator {
                    Estimator::Simple => 0,
                    Estimator::Rca => 1,
                    Estimator::WindowBased => 2,
                });
            }
        }
        h.write_u32(self.wb_window);
        match self.write_buffer {
            None => h.write_none(),
            Some(wb) => {
                h.write_some();
                h.write_usize(wb.entries);
                h.write_u64(wb.detect_cycles);
                h.write_bool(wb.read_preemption);
            }
        }
        h.write_u64(self.warmup_cycles);
        h.write_u64(self.measure_cycles);
        h.write_u64(self.seed);
    }

    /// The stable structural fingerprint of this configuration (all
    /// modeled fields; see [`SystemConfig::hash_into`]).
    pub fn fingerprint(&self) -> crate::fingerprint::Fingerprint {
        let mut h = crate::fingerprint::StableHasher::new();
        self.hash_into(&mut h);
        h.finish()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message if any parameter combination is
    /// unusable (zero regions, regions not dividing the bank count,
    /// zero VCs, etc.).
    pub fn validate(&self) -> Result<(), String> {
        if self.noc.width < 2 || self.noc.height < 2 {
            return Err("mesh must be at least 2x2 (corner memory controllers)".into());
        }
        if self.noc.vcs_per_port == 0 {
            return Err("vcs_per_port must be at least 1".into());
        }
        if self.noc.vc_depth == 0 {
            return Err("vc_depth must be at least 1".into());
        }
        crate::geom::Geometry::try_new(
            crate::geom::Mesh::new(self.noc.width, self.noc.height),
            self.regions,
            self.tsb_placement,
            self.mem.cache_layers,
        )?;
        if self.parent_hops == 0 {
            return Err("parent_hops must be at least 1".into());
        }
        if self.noc.wb_expire_period == 0 {
            return Err("wb_expire_period must be at least 1".into());
        }
        if self.mem.block_bytes == 0 || !self.mem.block_bytes.is_power_of_two() {
            return Err("block size must be a power of two".into());
        }
        if self.mem.mem_controllers != 4 {
            return Err("exactly 4 memory controllers (one per corner) are supported".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_table1() {
        let c = SystemConfig::default();
        assert_eq!(c.cores(), 64);
        assert_eq!(c.banks(), 64);
        assert_eq!(c.noc.vcs_per_port, 6);
        assert_eq!(c.noc.vc_depth, 5);
        assert_eq!(c.noc.data_flits, 8);
        assert_eq!(c.mem.dram_latency, 320);
        assert_eq!(c.mem.mem_controllers, 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn write_latency_depends_on_tech() {
        let mut c = SystemConfig::default();
        assert_eq!(c.l2_write_latency(), 3);
        c.tech = MemTech::SttRam;
        assert_eq!(c.l2_write_latency(), 33);
        assert_eq!(c.l2_bank_capacity(), 4 * 1024 * 1024);
    }

    #[test]
    fn parent_child_base_latency_is_4_for_two_hops() {
        // Section 3.5: one intermediate router (2 cycles) + 2 links.
        let c = SystemConfig::default();
        assert_eq!(c.parent_child_base_latency(), 4);
    }

    #[test]
    fn validation_rejects_bad_region_counts() {
        let mut c = SystemConfig {
            regions: 3,
            ..SystemConfig::default()
        };
        assert!(c.validate().is_err());
        c.regions = 0;
        assert!(c.validate().is_err());
        c.regions = 16;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_matches_field_pokes() {
        let built = SystemConfig::builder()
            .tech(MemTech::SttRam)
            .path_mode(RequestPathMode::RegionTsbs)
            .arbitration(ArbitrationPolicy::BankAware {
                estimator: Estimator::WindowBased,
            })
            .regions(8)
            .tsb_placement(TsbPlacement::Staggered)
            .parent_hops(3)
            .wb_window(50)
            .cycles(100, 900)
            .seed(7)
            .build();
        let poked = SystemConfig {
            tech: MemTech::SttRam,
            path_mode: RequestPathMode::RegionTsbs,
            arbitration: ArbitrationPolicy::BankAware {
                estimator: Estimator::WindowBased,
            },
            regions: 8,
            tsb_placement: TsbPlacement::Staggered,
            parent_hops: 3,
            wb_window: 50,
            warmup_cycles: 100,
            measure_cycles: 900,
            seed: 7,
            ..SystemConfig::default()
        };
        assert_eq!(built, poked);
    }

    #[test]
    fn builder_validates_on_build() {
        assert!(SystemConfig::builder().regions(3).try_build().is_err());
        let rebuilt = SystemConfig::default()
            .rebuild()
            .tune(|c| c.noc.vcs_per_port = 9)
            .build();
        assert_eq!(rebuilt.noc.vcs_per_port, 9);
    }

    #[test]
    #[should_panic(expected = "invalid configuration")]
    fn builder_build_panics_on_invalid() {
        SystemConfig::builder().regions(0).build();
    }

    #[test]
    fn fingerprint_ignores_shards_but_sees_every_modeled_knob() {
        let base = SystemConfig::default();
        let sharded = base.rebuild().tune(|c| c.noc.shards = 4).build();
        assert_eq!(
            base.fingerprint(),
            sharded.fingerprint(),
            "shards is a host knob, not a modeled parameter"
        );
        let tweaks: Vec<SystemConfig> = vec![
            base.rebuild().seed(base.seed + 1).build(),
            base.rebuild().tech(MemTech::SttRam).build(),
            base.rebuild().cycles(100, 400).build(),
            base.rebuild().regions(16).build(),
            base.rebuild()
                .arbitration(ArbitrationPolicy::BankAware {
                    estimator: Estimator::WindowBased,
                })
                .build(),
            base.rebuild()
                .write_buffer(Some(WriteBufferConfig::default()))
                .build(),
            base.rebuild().tune(|c| c.noc.vc_depth = 6).build(),
            base.rebuild().tune(|c| c.mem.bank_queue = 5).build(),
            base.rebuild().cache_layers(2).build(),
            base.rebuild().tune(|c| c.mem.stack_hop_latency = 3).build(),
        ];
        let mut seen = vec![base.fingerprint()];
        for cfg in tweaks {
            let fp = cfg.fingerprint();
            assert!(!seen.contains(&fp), "fingerprint collision for {cfg:?}");
            seen.push(fp);
        }
    }

    #[test]
    fn stacked_cache_layers_scale_capacity_and_latency() {
        let single = SystemConfig::builder().tech(MemTech::SttRam).build();
        assert_eq!(single.stack_latency(), 0);
        assert_eq!(single.l2_read_service_latency(), 3);
        assert_eq!(single.l2_write_latency(), 33);
        assert_eq!(single.effective_capacity_factor(), 4);
        let stacked = single.rebuild().cache_layers(2).build();
        assert_eq!(stacked.stack_latency(), 2);
        assert_eq!(stacked.l2_read_service_latency(), 5);
        assert_eq!(stacked.l2_write_latency(), 35);
        assert_eq!(stacked.effective_capacity_factor(), 8);
        assert_eq!(stacked.l2_bank_capacity(), 8 * 1024 * 1024);
        assert!(SystemConfig::builder()
            .tune(|c| c.mem.cache_layers = 0)
            .try_build()
            .is_err());
    }

    #[test]
    fn validation_generalizes_beyond_8x8() {
        let sixteen = SystemConfig::builder()
            .tune(|c| {
                c.noc.width = 16;
                c.noc.height = 16;
            })
            .regions(16)
            .build();
        assert_eq!(sixteen.cores(), 256);
        assert_eq!(sixteen.geometry().tsb_nodes().len(), 16);
        assert!(SystemConfig::builder()
            .tune(|c| c.noc.width = 1)
            .try_build()
            .is_err());
        // 5 regions cannot tile an 8x8 mesh even though 5 fails the
        // divisibility test too; 2 regions can.
        assert!(SystemConfig::builder().regions(5).try_build().is_err());
        assert!(SystemConfig::builder().regions(2).try_build().is_ok());
    }

    #[test]
    fn bank_aware_flag() {
        assert!(!ArbitrationPolicy::RoundRobin.is_bank_aware());
        assert!(ArbitrationPolicy::BankAware {
            estimator: Estimator::WindowBased
        }
        .is_bank_aware());
    }
}
