//! Regenerates the paper's Table 2 (SRAM vs STT-RAM at 32 nm).
fn main() {
    snoc_bench::emit("table2", &snoc_core::experiments::table2::run());
}
