//! Regenerates the paper's Table 2 (SRAM vs STT-RAM at 32 nm).
fn main() {
    println!("{}", snoc_core::experiments::table2::run());
}
