//! The two-stage wormhole router (Table 1: 2-stage pipeline, 6 VCs per
//! port, 5-flit buffers, credit-based virtual-channel flow control).
//!
//! Each router has seven ports (four cardinal, up, down, local). A flit
//! arriving on an input VC becomes eligible for allocation
//! `router_stages` cycles later, modelling the pipeline. The head flit
//! performs route computation and VC allocation (VA); every flit then
//! competes in switch allocation (SA) — one grant per output port and
//! per input port each cycle — and departs over the link.
//!
//! All VC buffer, credit and hold state lives in the shared
//! [`NocWorkspace`](crate::workspace::NocWorkspace) structure-of-arrays
//! store; the router itself keeps only its allocation bitmasks,
//! round-robin pointers and statistics, and steps by sweeping its
//! workspace lanes. Callers thread the workspace through every
//! stepping call.
//!
//! Parent routers additionally implement the paper's STT-RAM-aware
//! arbitration: a head flit whose destination bank is predicted busy is
//! *held* in its VC (VA is withheld) until its release time, and
//! requests to predicted-busy banks lose SA arbitration to coherence,
//! memory-controller and idle-bank traffic.

use crate::arbiter::rr_pick;
use crate::busy::BusyTable;
use crate::packet::{Flit, Packet};
use crate::parent::ChildInfo;
use crate::workspace::{NocWorkspace, VcRef};
use snoc_common::config::ArbitrationPolicy;
use snoc_common::geom::{Coord, Direction};
use snoc_common::ids::{BankId, PacketId};
use snoc_common::Cycle;

/// Number of router ports.
pub const PORTS: usize = 7;

/// What a router can see of the rest of the network: packet contents,
/// the routing function and the request/bank classification.
pub trait NetView {
    /// The packet with the given id.
    fn packet(&self, id: PacketId) -> &Packet;
    /// The output direction for `packet` at router position `at`.
    fn route(&self, at: Coord, packet: &Packet) -> Direction;
    /// The destination bank, if `packet` is a core-side bank request.
    fn dest_bank(&self, packet: &Packet) -> Option<BankId>;
}

/// An allocated output for the packet occupying an input VC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutRoute {
    /// Output port direction.
    pub dir: Direction,
    /// Output virtual channel.
    pub vc: usize,
}

/// Largest burst one switch grant can carry: a wide TSB moves
/// `tsb_width_factor` flits per cycle, and every supported
/// configuration fits in this bound (checked at network construction).
pub const MAX_BURST: usize = 4;

/// An inline, fixed-capacity run of flits leaving in one grant — the
/// hot path moves these by value instead of heap-allocating a `Vec`
/// per grant per cycle.
#[derive(Debug, Clone, Copy)]
pub struct FlitBurst {
    len: u8,
    flits: [Flit; MAX_BURST],
}

impl FlitBurst {
    /// A burst holding a single flit.
    fn one(flit: Flit) -> Self {
        Self {
            len: 1,
            flits: [flit; MAX_BURST],
        }
    }

    /// Appends a flit. Panics past [`MAX_BURST`].
    fn push(&mut self, flit: Flit) {
        self.flits[self.len as usize] = flit;
        self.len += 1;
    }
}

impl std::ops::Deref for FlitBurst {
    type Target = [Flit];
    fn deref(&self) -> &[Flit] {
        &self.flits[..self.len as usize]
    }
}

impl<'a> IntoIterator for &'a FlitBurst {
    type Item = &'a Flit;
    type IntoIter = std::slice::Iter<'a, Flit>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A granted switch traversal: flits leaving through an output port.
#[derive(Debug, Clone, Copy)]
pub struct SwitchMove {
    /// Source input port.
    pub in_port: usize,
    /// Source input VC.
    pub in_vc: usize,
    /// Output direction.
    pub out_dir: Direction,
    /// Output VC (= downstream input VC).
    pub out_vc: usize,
    /// The departing flits (more than one only over a wide TSB).
    pub flits: FlitBurst,
}

/// Per-cycle scalar parameters for a router step.
#[derive(Debug, Clone, Copy)]
pub struct StepParams {
    /// Current cycle.
    pub now: Cycle,
    /// Arbitration policy in force.
    pub policy: ArbitrationPolicy,
    /// Upper bound on how long a packet may be held (livelock guard).
    pub max_hold: Cycle,
    /// Release slack: let a held packet go this many cycles before the
    /// predicted idle time to cover allocation/switch contention.
    pub hold_slack: Cycle,
    /// `true` when this router's Down port is a wide region TSB.
    pub wide_down: bool,
    /// Extra flits a wide TSB may send per grant (width factor - 1).
    pub tsb_extra: usize,
    /// Output ports disabled this cycle (fault injection), as a
    /// bitmask over [`Direction::port`] indices. A blocked port simply
    /// loses switch allocation: buffered flits wait in their VCs as
    /// ordinary backpressure, no credit moves, so every flow-control
    /// invariant holds while the outage lasts. Zero when fault
    /// injection is off.
    pub blocked: u8,
}

/// Per-cycle telemetry scratch a router fills during VA when the
/// network's telemetry collector is on; drained (and cleared) by the
/// network right after the router steps. Boxed off the router so the
/// telemetry-off hot path pays one cold-pointer branch.
#[derive(Debug, Default)]
pub(crate) struct RouterTap {
    /// Output VCs granted this cycle: (packet, direction, output VC).
    pub va_grants: Vec<(PacketId, Direction, u8)>,
    /// Bank-aware holds that ended at those grants, in cycles.
    pub hold_delays: Vec<Cycle>,
}

impl RouterTap {
    pub fn clear(&mut self) {
        self.va_grants.clear();
        self.hold_delays.clear();
    }
}

/// Counters a router keeps for the evaluation figures.
#[derive(Debug, Clone, Default)]
pub struct RouterStats {
    /// Bank requests forwarded towards child banks.
    pub forwarded_to_children: u64,
    /// Of those, writes.
    pub writes_to_children: u64,
    /// Packets that were held at least one cycle.
    pub held_packets: u64,
    /// Total cycles packets spent held.
    pub held_cycles: u64,
    /// Sum over write-forward events of the number of buffered
    /// request packets whose destination is exactly H hops away from
    /// this router, for H = 1, 2, 3 (Figure 3 inset / Figure 13a).
    pub queue_by_hops: [u64; 3],
    /// Number of write-forward sampling events.
    pub child_queue_samples: u64,
    /// Flits that traversed the crossbar here.
    pub switch_traversals: u64,
    /// Flits written into input buffers here.
    pub buffer_writes: u64,
}

/// One router of the 3D mesh. Owns allocation masks, round-robin
/// state, the parent busy table and statistics; buffer/credit/hold
/// lanes live in the [`NocWorkspace`] it is stepped against.
#[derive(Debug)]
pub struct Router {
    coord: Coord,
    /// This router's index in the workspace lane space.
    idx: usize,
    vcs: usize,
    depth: u8,
    /// Per output port: last granted output VC (rotating VA priority).
    va_rr: [u8; PORTS],
    /// Per output port: last granted flat input index (rotating SA
    /// priority over the candidate bitmask).
    sa_rr: [u8; PORTS],
    /// Flat (port*vcs+vc) bitmask of VCs whose front flit is a header
    /// awaiting VC allocation.
    va_mask: u64,
    /// Per output port: flat bitmask of input VCs routed to it.
    sa_mask: [u64; PORTS],
    /// Child banks managed by this router (empty if not a parent).
    children: Vec<ChildInfo>,
    /// Direct-index lookup: raw bank id -> position in `children`
    /// (`u8::MAX` = not managed), so the hot-path child lookups are a
    /// single array access.
    child_lut: Box<[u8]>,
    /// Persistent scratch for the switch-allocation grants of one
    /// cycle (capacity [`PORTS`], never reallocated).
    sa_moves: Vec<SwitchMove>,
    /// Predicted busy horizons for the children.
    pub busy: BusyTable,
    /// Per-child congestion estimates, refreshed each cycle by the
    /// network (parallel to `children`).
    pub child_cong: Vec<Cycle>,
    /// Statistics.
    pub stats: RouterStats,
    /// Telemetry scratch (present only while telemetry is on).
    pub(crate) tap: Option<Box<RouterTap>>,
}

impl Router {
    /// Creates the router at workspace index `idx` with `vcs` VCs of
    /// `depth` flits on each port.
    pub fn new(
        idx: usize,
        coord: Coord,
        vcs: usize,
        depth: usize,
        children: Vec<ChildInfo>,
    ) -> Self {
        let busy = BusyTable::new(children.iter().map(|c| c.bank));
        let child_cong = vec![0; children.len()];
        assert!(children.len() < u8::MAX as usize, "child slots fit in u8");
        let lut_len = children
            .iter()
            .map(|c| c.bank.index() + 1)
            .max()
            .unwrap_or(0);
        let mut child_lut = vec![u8::MAX; lut_len].into_boxed_slice();
        for (i, c) in children.iter().enumerate() {
            child_lut[c.bank.index()] = i as u8;
        }
        Self {
            coord,
            idx,
            vcs,
            depth: depth as u8,
            va_rr: [0; PORTS],
            sa_rr: [0; PORTS],
            va_mask: 0,
            sa_mask: [0; PORTS],
            children,
            child_lut,
            sa_moves: Vec::with_capacity(PORTS),
            busy,
            child_cong,
            stats: RouterStats::default(),
            tap: None,
        }
    }

    /// This router's position.
    pub fn coord(&self) -> Coord {
        self.coord
    }

    /// This router's index in the workspace lane space.
    pub fn idx(&self) -> usize {
        self.idx
    }

    /// The banks this router manages as a parent.
    pub fn children(&self) -> &[ChildInfo] {
        &self.children
    }

    /// Replaces this router's child-bank assignment (TSB re-homing:
    /// when a region's request traffic moves to a surviving TSB, the
    /// serialization points — and with them the busy tables — move
    /// too). Rebuilds the busy table, congestion estimates and lookup
    /// table from scratch exactly as construction does; in-flight VC,
    /// credit and statistics state is deliberately untouched so the
    /// network keeps draining under the old wiring while new requests
    /// follow the new one.
    pub fn set_children(&mut self, children: Vec<ChildInfo>) {
        assert!(children.len() < u8::MAX as usize, "child slots fit in u8");
        self.busy = BusyTable::new(children.iter().map(|c| c.bank));
        self.child_cong = vec![0; children.len()];
        let lut_len = children
            .iter()
            .map(|c| c.bank.index() + 1)
            .max()
            .unwrap_or(0);
        let mut child_lut = vec![u8::MAX; lut_len].into_boxed_slice();
        for (i, c) in children.iter().enumerate() {
            child_lut[c.bank.index()] = i as u8;
        }
        self.child_lut = child_lut;
        self.children = children;
    }

    /// Returns the router to its just-constructed state with a (possibly
    /// new) child assignment: allocation masks and round-robin pointers
    /// rewound, scratch and statistics cleared, busy table and
    /// congestion estimates rebuilt, telemetry scratch dropped (the
    /// network re-installs taps when telemetry is enabled). A reset
    /// router is observably identical to a fresh [`Router::new`] with
    /// the same geometry and children.
    pub fn reset(&mut self, children: Vec<ChildInfo>) {
        self.va_rr = [0; PORTS];
        self.sa_rr = [0; PORTS];
        self.va_mask = 0;
        self.sa_mask = [0; PORTS];
        self.sa_moves.clear();
        self.stats = RouterStats::default();
        self.tap = None;
        self.set_children(children);
    }

    /// The position of `bank` in `children`/`child_cong`, if managed.
    #[inline]
    fn child_slot(&self, bank: BankId) -> Option<usize> {
        match self.child_lut.get(bank.index()) {
            Some(&slot) if slot != u8::MAX => Some(slot as usize),
            _ => None,
        }
    }

    /// Recomputes the per-child congestion estimates in place (called
    /// by the network each cycle on parent routers; writes into the
    /// persistent `child_cong` instead of allocating a fresh vector).
    pub fn refresh_child_cong_with(&mut self, mut estimate: impl FnMut(&ChildInfo) -> Cycle) {
        for i in 0..self.children.len() {
            self.child_cong[i] = estimate(&self.children[i]);
        }
    }

    /// `true` if this router is the parent of `bank`.
    pub fn manages(&self, bank: BankId) -> bool {
        self.child_slot(bank).is_some()
    }

    /// Total buffered flits (for RCA occupancy and fast idle skip).
    pub fn buffered_flits(&self, ws: &NocWorkspace) -> usize {
        ws.buffered(self.idx)
    }

    /// Buffer occupancy as a 0..=255 fraction of capacity.
    pub fn occupancy_byte(&self, ws: &NocWorkspace) -> u8 {
        ws.occupancy_byte(self.idx)
    }

    /// Read access to an input VC (tests and instrumentation).
    pub fn input_vc<'w>(&self, ws: &'w NocWorkspace, port: usize, vc: usize) -> VcRef<'w> {
        ws.vc(self.idx, port, vc)
    }

    /// Remaining credits for an output VC.
    pub fn credits(&self, ws: &NocWorkspace, dir: Direction, vc: usize) -> u8 {
        ws.port(self.idx, dir.port()).credits(vc)
    }

    /// VCs per port.
    pub fn vcs(&self) -> usize {
        self.vcs
    }

    /// Buffer depth per VC in flits.
    pub fn depth(&self) -> usize {
        self.depth as usize
    }

    /// `true` if the output port in `dir` has an unowned VC with
    /// credits available inside `range` — i.e. VC allocation towards
    /// `dir` could succeed right now for a packet of that class
    /// (audit instrumentation).
    pub fn has_free_credited_vc(
        &self,
        ws: &NocWorkspace,
        dir: Direction,
        range: std::ops::Range<usize>,
    ) -> bool {
        ws.port(self.idx, dir.port()).has_free_credited_vc(range)
    }

    /// Accepts a flit into an input VC (link arrival or NI injection).
    pub fn accept(&mut self, ws: &mut NocWorkspace, port: usize, vc: usize, flit: Flit) {
        let lane = ws.lane(self.idx, port, vc);
        let was_empty = ws.push_back(self.idx, lane, flit);
        if was_empty && flit.head {
            self.va_mask |= 1 << (port * self.vcs + vc);
        }
        self.stats.buffer_writes += 1;
    }

    /// Clears the statistics (end of warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = RouterStats::default();
    }

    /// Returns `credits` slots to an output VC.
    pub fn return_credit(&self, ws: &mut NocWorkspace, dir: Direction, vc: usize, credits: u8) {
        ws.refund_credits(ws.lane(self.idx, dir.port(), vc), credits);
    }

    #[cfg(test)]
    fn drain_credits(&self, ws: &mut NocWorkspace, dir: Direction, vc: usize) -> u8 {
        ws.drain_credits_lane(ws.lane(self.idx, dir.port(), vc))
    }

    /// The congestion-adjusted arrival estimate for a request sent now
    /// towards child `bank`, or `None` if this router does not manage
    /// `bank`.
    pub fn arrival_estimate(&self, bank: BankId) -> Option<Cycle> {
        let idx = self.child_slot(bank)?;
        Some(self.children[idx].base_latency + self.child_cong[idx])
    }

    /// Virtual-channel allocation: for every input VC whose head flit
    /// is ready and has no output yet, compute the route and try to
    /// claim a free output VC in the packet's class partition.
    ///
    /// Bank-aware policy: if this router is the destination bank's
    /// parent and the bank is predicted busy at the packet's estimated
    /// arrival, VA is withheld until the computed release cycle — the
    /// packet waits in its (already buffered) VC.
    pub fn step_va(&mut self, ws: &mut NocWorkspace, view: &impl NetView, p: StepParams) {
        let base = ws.router_base(self.idx);
        let mut mask = self.va_mask;
        while mask != 0 {
            let flat = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let lane = base + flat;
            if ws.vc_len(lane) == 0 {
                self.va_mask &= !(1 << flat);
                continue;
            }
            debug_assert!(ws.front_is_head(lane) && ws.route_parts(lane).is_none());
            if ws.front_ready_at(lane) > p.now {
                continue;
            }
            let pid = ws.front_packet(lane);
            let packet = view.packet(pid);

            // Bank-aware hold decision, re-evaluated every cycle
            // against the live busy horizon: once an earlier
            // request is forwarded and extends the horizon, the
            // next held packet keeps waiting, so a parent spaces
            // back-to-back requests by the bank service time.
            if p.policy.is_bank_aware() {
                if let Some(bank) = view.dest_bank(packet) {
                    if let Some(arrival) = self.arrival_estimate(bank) {
                        let held_since = ws.held_anchor(lane);
                        let over_limit = held_since
                            .map(|s| p.now.saturating_sub(s) >= p.max_hold)
                            .unwrap_or(false);
                        // A held head must not block bystanders —
                        // but packets behind it headed to the SAME
                        // busy bank are not bystanders (they would
                        // only queue at the bank). Release when a
                        // foreign-destination packet is stuck
                        // behind, or when this input port has no
                        // spare request VC left (a blockade would
                        // stall the whole port).
                        let blocking = (0..ws.vc_len(lane)).any(|k| {
                            let f = ws.flit_at(lane, k);
                            f.head
                                && f.packet != pid
                                && view.dest_bank(view.packet(f.packet)) != Some(bank)
                        });
                        if !over_limit
                            && !blocking
                            && self
                                .busy
                                .would_queue_with_slack(bank, p.now, arrival, p.hold_slack)
                        {
                            if held_since.is_none() {
                                ws.set_held(lane, p.now);
                                self.stats.held_packets += 1;
                            }
                            ws.set_policy_held(lane, true);
                            continue;
                        }
                    }
                }
            }
            // Reaching here means the policy is not withholding VA
            // this cycle; any remaining wait is backpressure. The
            // hold anchor stays so a later re-hold keeps counting
            // against the same `max_hold` budget.
            ws.set_policy_held(lane, false);

            let dir = view.route(self.coord, packet);
            let class = packet.kind.class();
            let range = class.vc_range(self.vcs);
            let dp = dir.port();
            let obase = base + dp * self.vcs;
            let rr = self.va_rr[dp] as usize;
            let depth = self.depth;
            // Prefer an output VC whose downstream buffer is empty
            // (full credits): packets then spread across VCs
            // instead of stacking behind a possibly-held head.
            let pick = rr_pick(rr, self.vcs, |v| {
                range.contains(&v) && ws.owner_is_none(obase + v) && ws.credit(obase + v) == depth
            })
            .or_else(|| {
                rr_pick(rr, self.vcs, |v| {
                    range.contains(&v) && ws.owner_is_none(obase + v) && ws.credit(obase + v) > 0
                })
            });
            if let Some(out_vc) = pick {
                let (port, vc) = (flat / self.vcs, flat % self.vcs);
                self.va_rr[dp] = out_vc as u8;
                ws.set_owner(obase + out_vc, port as u8, vc as u8);
                let held = ws.take_held(lane);
                if let Some(since) = held {
                    self.stats.held_cycles += p.now - since;
                }
                if let Some(tap) = &mut self.tap {
                    tap.va_grants.push((pid, dir, out_vc as u8));
                    if let Some(since) = held {
                        tap.hold_delays.push(p.now - since);
                    }
                }
                ws.set_route(lane, dp, out_vc);
                self.va_mask &= !(1 << flat);
                self.sa_mask[dp] |= 1 << flat;
            }
        }
    }

    /// `true` when the input VC at `base + flat` may compete for the
    /// output port `op` this cycle: allocated to it, presenting a
    /// pipeline-ready front flit, with a downstream credit available.
    #[inline]
    fn sa_candidate(
        &self,
        ws: &NocWorkspace,
        base: usize,
        flat: usize,
        op: usize,
        now: Cycle,
    ) -> bool {
        let lane = base + flat;
        let Some((dp, out_vc)) = ws.route_parts(lane) else {
            return false;
        };
        if dp != op || ws.vc_len(lane) == 0 {
            return false;
        }
        ws.front_ready_at(lane) <= now && ws.credit(base + op * self.vcs + out_vc) > 0
    }

    /// Switch allocation: one grant per output port, at most one grant
    /// per input port, prioritized when the bank-aware policy is on.
    ///
    /// Returns the granted moves (backed by a persistent per-router
    /// buffer, valid until the next call); flits are already popped and
    /// credits decremented.
    pub fn step_sa(
        &mut self,
        ws: &mut NocWorkspace,
        view: &impl NetView,
        p: StepParams,
    ) -> &[SwitchMove] {
        self.sa_moves.clear();
        let mut input_port_used = [false; PORTS];
        let base = ws.router_base(self.idx);

        for out_dir in Direction::ALL {
            let op = out_dir.port();
            if p.blocked & (1 << op) != 0 {
                continue; // faulted port: flits wait as backpressure
            }
            let candidates = self.sa_mask[op];
            if candidates == 0 {
                continue;
            }
            let rr = self.sa_rr[op];
            // Rotating priority over the candidate bits: bits above the
            // last winner first, then the wrap-around.
            let above = candidates & (u64::MAX << 1).wrapping_shl(rr as u32);
            let below = candidates & !above;
            let mut winner = None;
            let mut best_rank = 0u8;
            let mut fallback = None;
            'outer: for group in [above, below] {
                let mut bits = group;
                while bits != 0 {
                    let i = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let port = i / self.vcs;
                    if input_port_used[port] || !self.sa_candidate(ws, base, i, op, p.now) {
                        continue;
                    }
                    if !p.policy.is_bank_aware() {
                        winner = Some(i);
                        break 'outer;
                    }
                    let rank = self.sa_priority(ws, base + i, view, p.now);
                    if rank == 2 {
                        winner = Some(i);
                        break 'outer;
                    }
                    if fallback.is_none() || rank > best_rank {
                        fallback = Some(i);
                        best_rank = rank;
                    }
                }
            }
            let Some(winner) = winner.or(fallback) else {
                continue;
            };
            self.sa_rr[op] = winner as u8;
            let (port, vc) = (winner / self.vcs, winner % self.vcs);
            input_port_used[port] = true;
            let mv = self.grant(ws, port, vc, p);
            self.sa_moves.push(mv);
        }
        &self.sa_moves
    }

    /// Three-level SA priority (the re-ordering of Figure 2(c)):
    /// 2 — idle-bank requests, coherence, memory-controller traffic
    /// and responses; 1 — reads to predicted-busy banks (Section 4.2:
    /// "read packets ... are prioritized over write packets" when the
    /// destination bank is busy); 0 — writes to predicted-busy banks.
    fn sa_priority(&self, ws: &NocWorkspace, lane: usize, view: &impl NetView, now: Cycle) -> u8 {
        if ws.vc_len(lane) == 0 {
            return 2;
        }
        let packet = view.packet(ws.front_packet(lane));
        if let Some(bank) = view.dest_bank(packet) {
            if let Some(arrival) = self.arrival_estimate(bank) {
                if self.busy.would_queue(bank, now, arrival) {
                    return if packet.kind.is_bank_write() { 0 } else { 1 };
                }
            }
        }
        2
    }

    /// Pops the granted flit(s), consuming credits and releasing the
    /// output VC on the tail flit.
    fn grant(
        &mut self,
        ws: &mut NocWorkspace,
        port: usize,
        vc: usize,
        p: StepParams,
    ) -> SwitchMove {
        let base = ws.router_base(self.idx);
        let lane = base + port * self.vcs + vc;
        let (dp, out_vc) = ws.route_parts(lane).expect("granted VC has a route");
        let out_dir = Direction::ALL[dp];
        let olane = base + dp * self.vcs + out_vc;
        // A wide (256b) region TSB carries up to `1 + tsb_extra` flits
        // of the same packet per cycle (XShare-style combining).
        let burst = if out_dir == Direction::Down && p.wide_down {
            1 + p.tsb_extra
        } else {
            1
        };
        debug_assert!(burst <= MAX_BURST);
        let mut flits: Option<FlitBurst> = None;
        let mut tail_sent = false;
        for _ in 0..burst {
            if tail_sent || ws.credit(olane) == 0 || ws.vc_len(lane) == 0 {
                break;
            }
            if ws.front_ready_at(lane) > p.now {
                break;
            }
            let flit = ws.pop_front(self.idx, lane);
            ws.spend_credit(olane);
            self.stats.switch_traversals += 1;
            tail_sent = flit.tail;
            match &mut flits {
                None => flits = Some(FlitBurst::one(flit)),
                Some(b) => b.push(flit),
            }
        }
        // SA candidacy guarantees a ready front flit with credit.
        let flits = flits.expect("granted VC moves at least one flit");
        if tail_sent {
            ws.clear_owner(olane);
            let flat = port * self.vcs + vc;
            self.sa_mask[dp] &= !(1 << flat);
            ws.clear_route(lane);
            ws.take_held(lane);
            ws.set_policy_held(lane, false);
            if ws.vc_len(lane) > 0 && ws.front_is_head(lane) {
                self.va_mask |= 1 << flat;
            }
        }
        SwitchMove {
            in_port: port,
            in_vc: vc,
            out_dir,
            out_vc,
            flits,
        }
    }

    /// Called by the network when this (parent) router forwards the
    /// head flit of a bank request towards child `bank`: updates the
    /// busy table and samples the child-bound queue depth on writes.
    ///
    /// `extra_serialization` accounts for the remaining flits of a
    /// multi-flit packet (the bank starts service on the tail flit).
    #[allow(clippy::too_many_arguments)]
    pub fn note_forward(
        &mut self,
        ws: &NocWorkspace,
        bank: BankId,
        is_write: bool,
        service: Cycle,
        extra_serialization: Cycle,
        now: Cycle,
        view: &impl NetView,
    ) {
        // The busy horizon uses the uncontended arrival: congestion
        // estimates time the *release* of held packets but should not
        // inflate the bank's predicted service chain.
        let Some(idx) = self.child_slot(bank) else {
            return;
        };
        let base = self.children[idx].base_latency;
        self.busy
            .on_forward(bank, now, base + extra_serialization, service);
        self.stats.forwarded_to_children += 1;
        if is_write {
            self.stats.writes_to_children += 1;
            // Figure 3 inset / Figure 13a: buffered request packets in
            // this router whose destination lies exactly H hops away,
            // sampled when a write is forwarded.
            let lane_base = ws.router_base(self.idx);
            let mut queued = [0u64; 3];
            for flat in 0..PORTS * self.vcs {
                let lane = lane_base + flat;
                if ws.vc_len(lane) > 0 && ws.front_is_head(lane) {
                    let pkt = view.packet(ws.front_packet(lane));
                    if pkt.kind.is_bank_request() {
                        let d = self.coord.manhattan(pkt.dst)
                            + u32::from(self.coord.layer != pkt.dst.layer);
                        if (1..=3).contains(&d) {
                            queued[(d - 1) as usize] += 1;
                        }
                    }
                }
            }
            for (s, q) in self.stats.queue_by_hops.iter_mut().zip(queued) {
                *s += q;
            }
            self.stats.child_queue_samples += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;
    use snoc_common::config::Estimator;
    use snoc_common::geom::Layer;

    /// A test network view with a fixed per-packet route table.
    struct TestView {
        packets: Vec<Packet>,
        routes: Vec<Direction>,
        banks: Vec<Option<BankId>>,
    }

    impl TestView {
        fn new(specs: Vec<(PacketKind, Direction, Option<BankId>)>) -> Self {
            let src = Coord::new(0, 0, Layer::Core);
            let dst = Coord::new(3, 1, Layer::Cache);
            let mut packets = Vec::new();
            let mut routes = Vec::new();
            let mut banks = Vec::new();
            for (i, (kind, dir, bank)) in specs.into_iter().enumerate() {
                let mut p = Packet::new(kind, src, dst, 0, 0);
                p.id = PacketId::new(i as u16);
                packets.push(p);
                routes.push(dir);
                banks.push(bank);
            }
            Self {
                packets,
                routes,
                banks,
            }
        }
    }

    impl NetView for TestView {
        fn packet(&self, id: PacketId) -> &Packet {
            &self.packets[id.index()]
        }
        fn route(&self, _at: Coord, packet: &Packet) -> Direction {
            self.routes[packet.id.index()]
        }
        fn dest_bank(&self, packet: &Packet) -> Option<BankId> {
            self.banks[packet.id.index()]
        }
    }

    fn params(now: Cycle, policy: ArbitrationPolicy) -> StepParams {
        StepParams {
            now,
            policy,
            max_hold: 100,
            hold_slack: 0,
            wide_down: false,
            tsb_extra: 0,
            blocked: 0,
        }
    }

    const AWARE: ArbitrationPolicy = ArbitrationPolicy::BankAware {
        estimator: Estimator::Simple,
    };

    fn mk_router(children: Vec<ChildInfo>) -> (NocWorkspace, Router) {
        (
            NocWorkspace::new(1, 6, 5),
            Router::new(0, Coord::new(3, 3, Layer::Cache), 6, 5, children),
        )
    }

    fn parent_children() -> Vec<ChildInfo> {
        vec![ChildInfo {
            bank: BankId::new(11),
            base_latency: 9,
            first_hop: Direction::South,
            hops: 2,
        }]
    }

    fn put_single(r: &mut Router, ws: &mut NocWorkspace, port: usize, vc: usize, pid: usize) {
        r.accept(
            ws,
            port,
            vc,
            Flit {
                packet: PacketId::new(pid as u16),
                seq: 0,
                head: true,
                tail: true,
                ready_at: 0,
            },
        );
    }

    #[test]
    fn va_then_sa_moves_a_flit() {
        let view = TestView::new(vec![(PacketKind::BankRead, Direction::South, None)]);
        let (mut ws, mut r) = mk_router(vec![]);
        put_single(&mut r, &mut ws, 0, 0, 0);
        let p = params(10, ArbitrationPolicy::RoundRobin);
        r.step_va(&mut ws, &view, p);
        assert!(r.input_vc(&ws, 0, 0).route().is_some());
        let moves = r.step_sa(&mut ws, &view, p);
        assert_eq!(moves.len(), 1);
        let mv = moves[0];
        assert_eq!(mv.out_dir, Direction::South);
        assert_eq!(r.buffered_flits(&ws), 0);
        assert_eq!(r.credits(&ws, Direction::South, mv.out_vc), 4);
        assert_eq!(r.stats.switch_traversals, 1);
        assert_eq!(r.stats.buffer_writes, 1);
    }

    #[test]
    fn pipeline_delay_gates_allocation() {
        let view = TestView::new(vec![(PacketKind::BankRead, Direction::South, None)]);
        let (mut ws, mut r) = mk_router(vec![]);
        r.accept(
            &mut ws,
            0,
            0,
            Flit {
                packet: PacketId::new(0),
                seq: 0,
                head: true,
                tail: true,
                ready_at: 12,
            },
        );
        r.step_va(&mut ws, &view, params(10, ArbitrationPolicy::RoundRobin));
        assert!(
            r.input_vc(&ws, 0, 0).route().is_none(),
            "not ready until cycle 12"
        );
        assert!(!r.input_vc(&ws, 0, 0).valid(10), "pipeline gates validity");
        r.step_va(&mut ws, &view, params(12, ArbitrationPolicy::RoundRobin));
        assert!(r.input_vc(&ws, 0, 0).route().is_some());
    }

    #[test]
    fn requests_and_responses_use_disjoint_vcs() {
        use crate::packet::TrafficClass;
        let view = TestView::new(vec![
            (PacketKind::BankRead, Direction::South, None),
            (PacketKind::DataReply, Direction::South, None),
        ]);
        let (mut ws, mut r) = mk_router(vec![]);
        put_single(&mut r, &mut ws, 0, 0, 0);
        put_single(&mut r, &mut ws, 1, 4, 1);
        r.step_va(&mut ws, &view, params(10, ArbitrationPolicy::RoundRobin));
        let req_vc = r.input_vc(&ws, 0, 0).route().unwrap().vc;
        let rsp_vc = r.input_vc(&ws, 1, 4).route().unwrap().vc;
        assert!(TrafficClass::Request.vc_range(6).contains(&req_vc));
        assert!(TrafficClass::Response.vc_range(6).contains(&rsp_vc));
    }

    #[test]
    fn no_grant_without_credits() {
        let view = TestView::new(vec![(PacketKind::BankRead, Direction::South, None)]);
        let (mut ws, mut r) = mk_router(vec![]);
        put_single(&mut r, &mut ws, 0, 0, 0);
        let p = params(10, ArbitrationPolicy::RoundRobin);
        r.step_va(&mut ws, &view, p);
        let vc = r.input_vc(&ws, 0, 0).route().unwrap().vc;
        let had = r.drain_credits(&mut ws, Direction::South, vc);
        assert!(r.step_sa(&mut ws, &view, p).is_empty());
        r.return_credit(&mut ws, Direction::South, vc, had);
        assert_eq!(r.step_sa(&mut ws, &view, p).len(), 1);
    }

    #[test]
    fn bank_aware_holds_request_to_busy_child() {
        let view = TestView::new(vec![(
            PacketKind::BankRead,
            Direction::South,
            Some(BankId::new(11)),
        )]);
        let (mut ws, mut r) = mk_router(parent_children());
        r.busy.on_forward(BankId::new(11), 0, 9, 33); // busy until 42
        put_single(&mut r, &mut ws, 0, 0, 0);
        r.step_va(&mut ws, &view, params(5, AWARE));
        assert!(
            r.input_vc(&ws, 0, 0).route().is_none(),
            "held packet gets no VC"
        );
        assert!(r.input_vc(&ws, 0, 0).is_held());
        assert_eq!(r.stats.held_packets, 1);
        // Release at busy_until - arrival = 42 - 9 = 33.
        r.step_va(&mut ws, &view, params(33, AWARE));
        assert!(r.input_vc(&ws, 0, 0).route().is_some());
        assert_eq!(r.stats.held_cycles, 33 - 5);
    }

    #[test]
    fn round_robin_does_not_hold() {
        let view = TestView::new(vec![(
            PacketKind::BankRead,
            Direction::South,
            Some(BankId::new(11)),
        )]);
        let (mut ws, mut r) = mk_router(parent_children());
        r.busy.on_forward(BankId::new(11), 0, 9, 33);
        put_single(&mut r, &mut ws, 0, 0, 0);
        r.step_va(&mut ws, &view, params(5, ArbitrationPolicy::RoundRobin));
        assert!(
            r.input_vc(&ws, 0, 0).route().is_some(),
            "RR is STT-RAM oblivious"
        );
        assert_eq!(r.stats.held_packets, 0);
    }

    #[test]
    fn congestion_estimate_extends_the_hold_decision() {
        let view = TestView::new(vec![(
            PacketKind::BankRead,
            Direction::South,
            Some(BankId::new(11)),
        )]);
        let (mut ws, mut r) = mk_router(parent_children());
        r.busy.on_forward(BankId::new(11), 0, 9, 33); // busy until 42
        r.child_cong[0] = 20; // heavy congestion: arrival estimate 29
        put_single(&mut r, &mut ws, 0, 0, 0);
        // At cycle 20 an uncongested request (arrival 9) would still
        // queue (20+9 < 42), but with congestion 20 it would not
        // (20+29 >= 42): no hold.
        r.step_va(&mut ws, &view, params(20, AWARE));
        assert!(r.input_vc(&ws, 0, 0).route().is_some());
        assert_eq!(r.stats.held_packets, 0);
    }

    #[test]
    fn sa_prefers_idle_traffic_over_busy_bank_requests() {
        // A request to a busy child (port 0) and a response (port 1)
        // contest the same output: the response must win under
        // bank-aware arbitration even though port 0 is first in RR
        // order.
        let view = TestView::new(vec![
            (
                PacketKind::BankRead,
                Direction::South,
                Some(BankId::new(11)),
            ),
            (PacketKind::DataReply, Direction::South, None),
        ]);
        let (mut ws, mut r) = mk_router(parent_children());
        put_single(&mut r, &mut ws, 0, 0, 0);
        put_single(&mut r, &mut ws, 1, 4, 1);
        r.step_va(&mut ws, &view, params(5, AWARE));
        // The child becomes busy after VA (prediction arrived late).
        r.busy.on_forward(BankId::new(11), 5, 9, 33);
        let moves = r.step_sa(&mut ws, &view, params(6, AWARE));
        assert_eq!(moves.len(), 1, "one output port contested");
        assert_eq!(moves[0].flits[0].packet, PacketId::new(1), "response wins");
    }

    #[test]
    fn max_hold_caps_the_delay() {
        let view = TestView::new(vec![(
            PacketKind::BankRead,
            Direction::South,
            Some(BankId::new(11)),
        )]);
        let (mut ws, mut r) = mk_router(parent_children());
        r.busy.on_forward(BankId::new(11), 0, 9, 1000);
        put_single(&mut r, &mut ws, 0, 0, 0);
        r.step_va(&mut ws, &view, params(5, AWARE));
        assert!(r.input_vc(&ws, 0, 0).route().is_none());
        r.step_va(&mut ws, &view, params(106, AWARE));
        assert!(
            r.input_vc(&ws, 0, 0).route().is_some(),
            "hold is capped at max_hold"
        );
    }

    #[test]
    fn hold_of_exactly_max_hold_cycles_is_force_released() {
        // Satellite regression for the audit watchdog: the livelock
        // guard fires at age == max_hold, not a cycle later.
        let view = TestView::new(vec![(
            PacketKind::BankRead,
            Direction::South,
            Some(BankId::new(11)),
        )]);
        let (mut ws, mut r) = mk_router(parent_children());
        r.busy.on_forward(BankId::new(11), 0, 9, 1000); // busy until 1009
        put_single(&mut r, &mut ws, 0, 0, 0);
        r.step_va(&mut ws, &view, params(5, AWARE)); // held from cycle 5
        assert!(r.input_vc(&ws, 0, 0).is_held());
        r.step_va(&mut ws, &view, params(104, AWARE)); // age 99 < max_hold 100
        assert!(
            r.input_vc(&ws, 0, 0).route().is_none(),
            "one cycle short of the cap stays held"
        );
        r.step_va(&mut ws, &view, params(105, AWARE)); // age exactly 100
        assert!(
            r.input_vc(&ws, 0, 0).route().is_some(),
            "exactly max_hold cycles forces the release"
        );
        assert_eq!(r.stats.held_cycles, 100);
        assert!(r.input_vc(&ws, 0, 0).held_since().is_none());
    }

    #[test]
    fn note_forward_updates_busy_and_samples_queue() {
        let view = TestView::new(vec![(
            PacketKind::BankRead,
            Direction::South,
            Some(BankId::new(11)),
        )]);
        let (mut ws, mut r) = mk_router(parent_children());
        put_single(&mut r, &mut ws, 0, 0, 0); // a queued request to the child
        r.note_forward(&ws, BankId::new(11), true, 33, 8, 100, &view);
        assert_eq!(r.busy.busy_until(BankId::new(11)), 100 + 9 + 8 + 33);
        assert_eq!(r.stats.child_queue_samples, 1);
        // The queued request's destination (3,1) is 2 hops from this
        // router at (3,3).
        assert_eq!(r.stats.queue_by_hops, [0, 1, 0]);
        assert_eq!(r.stats.writes_to_children, 1);
        assert_eq!(r.stats.forwarded_to_children, 1);
    }

    #[test]
    fn wide_tsb_moves_two_flits_per_grant() {
        let view = TestView::new(vec![(PacketKind::Writeback, Direction::Down, None)]);
        let (mut ws, mut r) = mk_router(vec![]);
        for flit in Flit::sequence(PacketId::new(0), 3) {
            r.accept(&mut ws, Direction::Local.port(), 0, flit);
        }
        let mut p = params(10, ArbitrationPolicy::RoundRobin);
        p.wide_down = true;
        p.tsb_extra = 1;
        r.step_va(&mut ws, &view, p);
        let moves = r.step_sa(&mut ws, &view, p);
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].flits.len(), 2, "256b TSB carries two 128b flits");
        let moves = r.step_sa(&mut ws, &view, p);
        assert_eq!(moves[0].flits.len(), 1, "tail flit alone");
        assert!(moves[0].flits[0].tail);
    }

    #[test]
    fn narrow_ports_move_one_flit_even_with_tsb_extra() {
        let view = TestView::new(vec![(PacketKind::Writeback, Direction::South, None)]);
        let (mut ws, mut r) = mk_router(vec![]);
        for flit in Flit::sequence(PacketId::new(0), 3) {
            r.accept(&mut ws, 0, 0, flit);
        }
        let mut p = params(10, ArbitrationPolicy::RoundRobin);
        p.wide_down = true; // wide TSB applies to Down only
        p.tsb_extra = 1;
        r.step_va(&mut ws, &view, p);
        let moves = r.step_sa(&mut ws, &view, p);
        assert_eq!(moves[0].flits.len(), 1);
    }

    #[test]
    fn one_grant_per_input_port_per_cycle() {
        let view = TestView::new(vec![
            (PacketKind::BankRead, Direction::South, None),
            (PacketKind::BankRead, Direction::North, None),
        ]);
        let (mut ws, mut r) = mk_router(vec![]);
        put_single(&mut r, &mut ws, 0, 0, 0);
        put_single(&mut r, &mut ws, 0, 1, 1);
        let p = params(10, ArbitrationPolicy::RoundRobin);
        r.step_va(&mut ws, &view, p);
        let moves = r.step_sa(&mut ws, &view, p);
        assert_eq!(moves.len(), 1, "crossbar admits one flit per input port");
        let moves = r.step_sa(&mut ws, &view, p);
        assert_eq!(moves.len(), 1, "the other VC wins next cycle");
    }

    #[test]
    fn tail_flit_releases_the_output_vc() {
        let view = TestView::new(vec![
            (PacketKind::BankRead, Direction::South, None),
            (PacketKind::BankRead, Direction::South, None),
        ]);
        let (mut ws, mut r) = mk_router(vec![]);
        put_single(&mut r, &mut ws, 0, 0, 0);
        let p = params(10, ArbitrationPolicy::RoundRobin);
        r.step_va(&mut ws, &view, p);
        let out_vc = r.input_vc(&ws, 0, 0).route().unwrap().vc;
        assert!(ws.port(0, Direction::South.port()).owner(out_vc).is_some());
        r.step_sa(&mut ws, &view, p);
        assert!(ws.port(0, Direction::South.port()).owner(out_vc).is_none());
        assert!(r.input_vc(&ws, 0, 0).route().is_none());
    }

    #[test]
    fn reads_beat_writes_to_the_same_busy_bank() {
        // Three-level SA priority: among requests to a busy child, a
        // read (rank 1) wins over a write (rank 0).
        let view = TestView::new(vec![
            (
                PacketKind::Writeback,
                Direction::South,
                Some(BankId::new(11)),
            ),
            (
                PacketKind::BankRead,
                Direction::South,
                Some(BankId::new(11)),
            ),
        ]);
        let (mut ws, mut r) = mk_router(parent_children());
        put_single(&mut r, &mut ws, 0, 0, 0); // write, first in RR order
        put_single(&mut r, &mut ws, 1, 1, 1); // read
        r.step_va(&mut ws, &view, params(5, AWARE));
        r.busy.on_forward(BankId::new(11), 5, 9, 33);
        let moves = r.step_sa(&mut ws, &view, params(6, AWARE));
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].flits[0].packet, PacketId::new(1), "read wins");
    }

    #[test]
    fn va_spreads_packets_across_empty_vcs() {
        // Two request packets on different input ports must claim
        // different output VCs (prefer-empty rule), not stack into one.
        let view = TestView::new(vec![
            (PacketKind::BankRead, Direction::South, None),
            (PacketKind::BankRead, Direction::South, None),
        ]);
        let (mut ws, mut r) = mk_router(vec![]);
        put_single(&mut r, &mut ws, 0, 0, 0);
        put_single(&mut r, &mut ws, 1, 0, 1);
        r.step_va(&mut ws, &view, params(10, ArbitrationPolicy::RoundRobin));
        let a = r.input_vc(&ws, 0, 0).route().unwrap().vc;
        let b = r.input_vc(&ws, 1, 0).route().unwrap().vc;
        assert_ne!(a, b, "both got fresh downstream VCs");
    }

    #[test]
    fn hold_releases_when_a_foreign_packet_stacks_behind() {
        let view = TestView::new(vec![
            (
                PacketKind::BankRead,
                Direction::South,
                Some(BankId::new(11)),
            ),
            (PacketKind::BankRead, Direction::North, None), // foreign
        ]);
        let (mut ws, mut r) = mk_router(parent_children());
        r.busy.on_forward(BankId::new(11), 0, 9, 1000);
        put_single(&mut r, &mut ws, 0, 0, 0);
        r.step_va(&mut ws, &view, params(5, AWARE));
        assert!(r.input_vc(&ws, 0, 0).route().is_none(), "held");
        // A foreign-destination packet lands behind it in the same VC.
        put_single(&mut r, &mut ws, 0, 0, 1);
        r.step_va(&mut ws, &view, params(6, AWARE));
        assert!(
            r.input_vc(&ws, 0, 0).route().is_some(),
            "hold released for the bystander"
        );
    }

    #[test]
    fn hold_persists_when_a_same_bank_packet_stacks_behind() {
        let view = TestView::new(vec![
            (
                PacketKind::BankRead,
                Direction::South,
                Some(BankId::new(11)),
            ),
            (
                PacketKind::BankRead,
                Direction::South,
                Some(BankId::new(11)),
            ),
        ]);
        let (mut ws, mut r) = mk_router(parent_children());
        r.busy.on_forward(BankId::new(11), 0, 9, 1000);
        put_single(&mut r, &mut ws, 0, 0, 0);
        put_single(&mut r, &mut ws, 0, 0, 1); // same busy bank: not a bystander
        r.step_va(&mut ws, &view, params(5, AWARE));
        assert!(r.input_vc(&ws, 0, 0).route().is_none(), "hold persists");
        assert!(r.input_vc(&ws, 0, 0).is_held());
    }

    #[test]
    fn blocked_output_port_stalls_then_recovers() {
        // A faulted link blocks SA on its output port: the flit keeps
        // its VC, route and the output credit pool intact, and departs
        // normally the cycle the fault clears.
        let view = TestView::new(vec![(PacketKind::BankRead, Direction::South, None)]);
        let (mut ws, mut r) = mk_router(vec![]);
        put_single(&mut r, &mut ws, 0, 0, 0);
        let mut p = params(10, ArbitrationPolicy::RoundRobin);
        r.step_va(&mut ws, &view, p);
        assert!(r.input_vc(&ws, 0, 0).route().is_some(), "VA is unaffected");
        p.blocked = 1 << Direction::South.port();
        assert!(
            r.step_sa(&mut ws, &view, p).is_empty(),
            "blocked port grants nothing"
        );
        assert_eq!(r.buffered_flits(&ws), 1);
        assert_eq!(r.credits(&ws, Direction::South, 0), 5, "no credit consumed");
        p.blocked = 0;
        let moves = r.step_sa(&mut ws, &view, p);
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].out_dir, Direction::South);
    }

    #[test]
    fn blocked_port_does_not_stall_other_ports() {
        let view = TestView::new(vec![
            (PacketKind::BankRead, Direction::South, None),
            (PacketKind::BankRead, Direction::North, None),
        ]);
        let (mut ws, mut r) = mk_router(vec![]);
        put_single(&mut r, &mut ws, 0, 0, 0);
        put_single(&mut r, &mut ws, 1, 0, 1);
        let mut p = params(10, ArbitrationPolicy::RoundRobin);
        r.step_va(&mut ws, &view, p);
        p.blocked = 1 << Direction::South.port();
        let moves = r.step_sa(&mut ws, &view, p);
        assert_eq!(moves.len(), 1, "the healthy port still grants");
        assert_eq!(moves[0].out_dir, Direction::North);
    }

    #[test]
    fn set_children_rebuilds_the_parent_tables() {
        let (_ws, mut r) = mk_router(parent_children());
        r.busy.on_forward(BankId::new(11), 0, 9, 33);
        assert!(r.manages(BankId::new(11)));
        let adopted = vec![
            ChildInfo {
                bank: BankId::new(11),
                base_latency: 14,
                first_hop: Direction::West,
                hops: 4,
            },
            ChildInfo {
                bank: BankId::new(20),
                base_latency: 9,
                first_hop: Direction::South,
                hops: 2,
            },
        ];
        r.set_children(adopted);
        assert_eq!(r.children().len(), 2);
        assert!(r.manages(BankId::new(20)));
        assert_eq!(
            r.busy.busy_until(BankId::new(11)),
            0,
            "horizons restart under the new wiring"
        );
        assert_eq!(r.arrival_estimate(BankId::new(11)), Some(14));
        assert_eq!(r.arrival_estimate(BankId::new(20)), Some(9));
        // Orphaned banks are forgotten entirely.
        r.set_children(vec![]);
        assert!(!r.manages(BankId::new(11)));
        assert_eq!(r.arrival_estimate(BankId::new(20)), None);
    }

    #[test]
    fn occupancy_byte_scales() {
        let (mut ws, mut r) = mk_router(vec![]);
        assert_eq!(r.occupancy_byte(&ws), 0);
        for flit in Flit::sequence(PacketId::new(0), 5) {
            r.accept(&mut ws, 0, 0, flit);
        }
        // 5 of 7*6*5 = 210 slots.
        assert_eq!(r.occupancy_byte(&ws) as usize, 5 * 255 / 210);
    }
}
