//! A shared L2 home bank: tag array + directory + MSHRs in front of the
//! timing controller.
//!
//! Two tag modes exist:
//!
//! * [`TagMode::Real`] — a full tag array with MESI directory entries;
//!   misses, forwards, invalidations and writebacks emerge organically.
//! * [`TagMode::Probabilistic`] — no tags; the workload generator
//!   decides hit/miss per request (`forced_miss`), letting experiments
//!   reproduce the paper's Table 3 characterization exactly while the
//!   bank still pays real queueing and service timing.

use crate::array::CacheArray;
use crate::bank_ctrl::{BankController, BankJob, BankOp, BankStats};
use crate::directory::DirEntry;
use crate::mshr::{Allocation, MissKind, MshrFile, Waiter};
use crate::protocol::{BankIn, BankMsg};
use snoc_common::config::{MemConfig, MemTech, WriteBufferConfig};
use snoc_common::ids::{BankId, CoreId};
use snoc_common::Cycle;
use std::collections::{HashMap, VecDeque};

/// Whether the bank tracks real tags or trusts caller-supplied
/// hit/miss decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagMode {
    /// Full tag array + directory.
    Real,
    /// Caller decides hit/miss per request.
    Probabilistic,
}

#[derive(Debug, Clone, Copy)]
enum PendingOp {
    Lookup {
        block: u64,
        from: CoreId,
        kind: MissKind,
        forced_miss: bool,
    },
    PutWrite {
        block: u64,
        from: CoreId,
        txn: Option<u64>,
        spill: bool,
    },
    FillWrite {
        block: u64,
    },
}

#[derive(Debug, Clone)]
struct Txn {
    block: u64,
    fwd_kind: MissKind,
    waiters: Vec<(CoreId, MissKind)>,
}

/// Bank-level protocol statistics (timing statistics live in
/// [`BankStats`]).
#[derive(Debug, Clone, Default)]
pub struct L2Stats {
    /// Memory fetches issued (L2 misses).
    pub fetches: u64,
    /// Memory fills written into the array.
    pub fills: u64,
    /// Dirty home lines written back to memory on eviction.
    pub dirty_evictions: u64,
    /// Invalidations sent to L1 sharers.
    pub invalidations_sent: u64,
    /// Forwards sent to L1 owners.
    pub forwards_sent: u64,
    /// Voluntary PutM writes applied.
    pub putm_writes: u64,
    /// Requests deferred because the MSHR file was full.
    pub deferred: u64,
}

/// One shared L2 home bank.
#[derive(Debug)]
pub struct L2Bank {
    id: BankId,
    mode: TagMode,
    array: CacheArray<DirEntry>,
    ctrl: BankController,
    mshrs: MshrFile,
    txns: HashMap<u64, Txn>,
    next_txn: u64,
    pending: HashMap<u64, PendingOp>,
    next_job: u64,
    deferred: VecDeque<(u64, CoreId, MissKind)>,
    /// Protocol statistics.
    pub stats: L2Stats,
}

impl L2Bank {
    /// Creates bank `id` with technology `tech` (which fixes capacity
    /// and write latency), `cfg` geometry, optional `write_buffer`
    /// (BUFF-20) and the chosen `mode`.
    pub fn new(
        id: BankId,
        cfg: &MemConfig,
        tech: MemTech,
        write_buffer: Option<WriteBufferConfig>,
        mode: TagMode,
    ) -> Self {
        // Each extra stacked cache die folds more capacity onto the
        // bank and adds a TSV round-trip to every array access.
        let capacity = cfg.l2_bank_bytes * tech.capacity_factor() * cfg.cache_layers;
        let stack_latency = (cfg.cache_layers as u64 - 1) * cfg.stack_hop_latency;
        let write_latency = match tech {
            MemTech::Sram => cfg.l2_read_latency,
            MemTech::SttRam => cfg.stt_write_latency,
        } + stack_latency;
        Self {
            id,
            mode,
            array: CacheArray::new(capacity, cfg.l2_ways, cfg.block_bytes),
            ctrl: BankController::new(
                cfg.l2_read_latency + stack_latency,
                write_latency,
                write_buffer,
            ),
            mshrs: MshrFile::new(cfg.l2_mshrs),
            txns: HashMap::new(),
            next_txn: 0,
            pending: HashMap::new(),
            next_job: 0,
            deferred: VecDeque::new(),
            stats: L2Stats::default(),
        }
    }

    /// This bank's id.
    pub fn id(&self) -> BankId {
        self.id
    }

    /// Clears protocol and timing statistics (end of warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = L2Stats::default();
        self.ctrl.reset_stats();
    }

    /// The timing controller's statistics.
    pub fn timing(&self) -> &BankStats {
        &self.ctrl.stats
    }

    /// The timing controller (instrumentation).
    pub fn controller(&self) -> &BankController {
        &self.ctrl
    }

    /// `true` while any work is queued, in service, outstanding to
    /// memory or buffered.
    pub fn is_quiescent(&self) -> bool {
        !self.ctrl.busy()
            && self.ctrl.queue_len() == 0
            && self.pending.is_empty()
            && self.mshrs.is_empty()
            && self.txns.is_empty()
            && self.deferred.is_empty()
            && self
                .ctrl
                .write_buffer()
                .map(|b| b.is_empty())
                .unwrap_or(true)
    }

    fn enqueue_job(&mut self, op: BankOp, addr: u64, pending: PendingOp, now: Cycle) {
        let token = self.next_job;
        self.next_job += 1;
        self.pending.insert(token, pending);
        self.ctrl.enqueue(
            BankJob {
                op,
                token,
                addr,
                arrived: now,
            },
            now,
        );
    }

    /// Accepts a protocol message. Most work is queued for the array;
    /// replies appear from [`L2Bank::tick`]. `forced_miss` is consulted
    /// only in probabilistic mode.
    pub fn handle(&mut self, msg: BankIn, forced_miss: bool, now: Cycle) -> Vec<BankMsg> {
        let mut out = Vec::new();
        match msg {
            BankIn::GetS { block, from } => {
                self.enqueue_job(
                    BankOp::Read,
                    block,
                    PendingOp::Lookup {
                        block,
                        from,
                        kind: MissKind::Read,
                        forced_miss,
                    },
                    now,
                );
            }
            BankIn::GetM { block, from } => {
                // In probabilistic (profile-driven) mode a write
                // request occupies the array for the full write
                // latency — the paper's long STT-RAM write. In real
                // mode GetM is a tag/data read; the array write comes
                // later with the data (PutM/FwdData).
                let op = match self.mode {
                    TagMode::Probabilistic => BankOp::Write,
                    TagMode::Real => BankOp::Read,
                };
                self.enqueue_job(
                    op,
                    block,
                    PendingOp::Lookup {
                        block,
                        from,
                        kind: MissKind::Write,
                        forced_miss,
                    },
                    now,
                );
            }
            BankIn::PutM { block, from } => {
                // In probabilistic mode, `forced_miss` marks a
                // writeback that displaces a dirty victim to memory.
                let spill = forced_miss && self.mode == TagMode::Probabilistic;
                self.enqueue_job(
                    BankOp::Write,
                    block,
                    PendingOp::PutWrite {
                        block,
                        from,
                        txn: None,
                        spill,
                    },
                    now,
                );
            }
            BankIn::FwdData { block, from, txn } => {
                self.enqueue_job(
                    BankOp::Write,
                    block,
                    PendingOp::PutWrite {
                        block,
                        from,
                        txn: Some(txn),
                        spill: false,
                    },
                    now,
                );
            }
            BankIn::FwdMiss { block, from, txn } => {
                // No data moved: resolve immediately from the home
                // array (already read during the original lookup).
                if let Some(dir) = self.array.peek_mut(block) {
                    dir.remove(from);
                }
                self.complete_txn(txn, &mut out);
            }
            BankIn::InvAck { .. } => {}
            BankIn::Fill { block } => {
                self.enqueue_job(BankOp::Write, block, PendingOp::FillWrite { block }, now);
            }
        }
        out
    }

    /// Advances one cycle: retries deferred misses, services the
    /// array, and emits the resulting protocol messages.
    pub fn tick(&mut self, now: Cycle) -> Vec<BankMsg> {
        let mut out = Vec::new();
        while !self.deferred.is_empty() && !self.mshrs.is_full() {
            let (block, from, kind) = self.deferred.pop_front().expect("non-empty");
            self.miss_path(block, from, kind, &mut out);
        }
        for c in self.ctrl.tick(now) {
            let op = self
                .pending
                .remove(&c.job.token)
                .expect("pending op for job");
            match op {
                PendingOp::Lookup {
                    block,
                    from,
                    kind,
                    forced_miss,
                } => {
                    self.on_lookup(block, from, kind, forced_miss, &mut out);
                }
                PendingOp::PutWrite {
                    block,
                    from,
                    txn,
                    spill,
                } => {
                    self.on_put_write(block, from, txn, spill, &mut out);
                }
                PendingOp::FillWrite { block } => {
                    self.on_fill(block, &mut out);
                }
            }
        }
        out
    }

    fn txn_for_block(&self, block: u64) -> Option<u64> {
        self.txns
            .iter()
            .find(|(_, t)| t.block == block)
            .map(|(&id, _)| id)
    }

    fn on_lookup(
        &mut self,
        block: u64,
        from: CoreId,
        kind: MissKind,
        forced_miss: bool,
        out: &mut Vec<BankMsg>,
    ) {
        // A transaction or fetch already in flight for this block:
        // join it.
        if let Some(txn) = self.txn_for_block(block) {
            self.txns
                .get_mut(&txn)
                .expect("live txn")
                .waiters
                .push((from, kind));
            return;
        }
        if self.mshrs.contains(block) {
            let _ = self.mshrs.allocate(block, waiter(from, kind));
            return;
        }
        match self.mode {
            TagMode::Probabilistic => {
                if forced_miss {
                    self.miss_path(block, from, kind, out);
                } else {
                    out.push(BankMsg::Data {
                        block,
                        to: from,
                        exclusive: kind == MissKind::Write,
                    });
                }
            }
            TagMode::Real => {
                if self.array.probe(block).is_some() {
                    self.serve_line(block, from, kind, out);
                } else {
                    self.miss_path(block, from, kind, out);
                }
            }
        }
    }

    fn miss_path(&mut self, block: u64, from: CoreId, kind: MissKind, out: &mut Vec<BankMsg>) {
        match self.mshrs.allocate(block, waiter(from, kind)) {
            Allocation::Primary => {
                self.stats.fetches += 1;
                out.push(BankMsg::Fetch { block });
            }
            Allocation::Secondary => {}
            Allocation::Full => {
                self.stats.deferred += 1;
                self.deferred.push_back((block, from, kind));
            }
        }
    }

    /// Serves a request for a line known to be present (real mode).
    /// `allow_e` gates the E-state grant for reads of uncached blocks
    /// (withheld when several waiters are served back to back).
    fn serve_line_with(
        &mut self,
        block: u64,
        from: CoreId,
        kind: MissKind,
        allow_e: bool,
        out: &mut Vec<BankMsg>,
    ) {
        let Some(dir) = self.array.peek_mut(block) else {
            // Raced with an eviction: fall back to a fetch.
            self.miss_path(block, from, kind, out);
            return;
        };
        match kind {
            MissKind::Read => {
                if let Some(owner) = dir.owner() {
                    if owner != from {
                        let txn = self.start_txn(block, MissKind::Read, from, kind);
                        self.stats.forwards_sent += 1;
                        out.push(BankMsg::FwdGetS {
                            block,
                            to: owner,
                            txn,
                        });
                        return;
                    }
                    out.push(BankMsg::Data {
                        block,
                        to: from,
                        exclusive: true,
                    });
                } else if dir.is_uncached() && allow_e {
                    dir.set_owner(from); // E grant
                    out.push(BankMsg::Data {
                        block,
                        to: from,
                        exclusive: true,
                    });
                } else {
                    dir.add_sharer(from);
                    out.push(BankMsg::Data {
                        block,
                        to: from,
                        exclusive: false,
                    });
                }
            }
            MissKind::Write => {
                if let Some(owner) = dir.owner() {
                    if owner != from {
                        let txn = self.start_txn(block, MissKind::Write, from, kind);
                        self.stats.forwards_sent += 1;
                        out.push(BankMsg::FwdGetM {
                            block,
                            to: owner,
                            txn,
                        });
                        return;
                    }
                    out.push(BankMsg::Data {
                        block,
                        to: from,
                        exclusive: true,
                    });
                } else {
                    let sharers: Vec<CoreId> = dir.sharers().filter(|&s| s != from).collect();
                    dir.set_owner(from);
                    for s in sharers {
                        self.stats.invalidations_sent += 1;
                        out.push(BankMsg::Inv { block, to: s });
                    }
                    out.push(BankMsg::Data {
                        block,
                        to: from,
                        exclusive: true,
                    });
                }
            }
        }
    }

    fn serve_line(&mut self, block: u64, from: CoreId, kind: MissKind, out: &mut Vec<BankMsg>) {
        self.serve_line_with(block, from, kind, true, out);
    }

    fn start_txn(&mut self, block: u64, fwd_kind: MissKind, from: CoreId, kind: MissKind) -> u64 {
        let id = self.next_txn;
        self.next_txn += 1;
        self.txns.insert(
            id,
            Txn {
                block,
                fwd_kind,
                waiters: vec![(from, kind)],
            },
        );
        id
    }

    fn complete_txn(&mut self, txn: u64, out: &mut Vec<BankMsg>) {
        let Some(t) = self.txns.remove(&txn) else {
            return;
        };
        for (from, kind) in t.waiters {
            self.serve_line(t.block, from, kind, out);
        }
    }

    fn on_put_write(
        &mut self,
        block: u64,
        from: CoreId,
        txn: Option<u64>,
        spill: bool,
        out: &mut Vec<BankMsg>,
    ) {
        match txn {
            None => {
                self.stats.putm_writes += 1;
                if spill {
                    self.stats.dirty_evictions += 1;
                    out.push(BankMsg::WriteMem { block });
                }
                if let Some(dir) = self.array.peek_mut(block) {
                    dir.remove(from);
                    dir.dirty = true;
                } else if self.mode == TagMode::Real {
                    // The home line was evicted while the PutM was in
                    // flight: the data continues to memory.
                    out.push(BankMsg::WriteMem { block });
                }
            }
            Some(t) => {
                let keep = self
                    .txns
                    .get(&t)
                    .map(|x| x.fwd_kind == MissKind::Read)
                    .unwrap_or(false);
                if let Some(dir) = self.array.peek_mut(block) {
                    dir.downgrade_owner(keep);
                    dir.dirty = true;
                }
                self.complete_txn(t, out);
            }
        }
    }

    fn on_fill(&mut self, block: u64, out: &mut Vec<BankMsg>) {
        self.stats.fills += 1;
        if self.mode == TagMode::Real && self.array.peek(block).is_none() {
            if let Some(ev) = self.array.insert(block, DirEntry::uncached()) {
                for s in ev.meta.sharers() {
                    self.stats.invalidations_sent += 1;
                    out.push(BankMsg::Inv {
                        block: ev.addr,
                        to: s,
                    });
                }
                if let Some(o) = ev.meta.owner() {
                    self.stats.invalidations_sent += 1;
                    out.push(BankMsg::Inv {
                        block: ev.addr,
                        to: o,
                    });
                }
                if ev.meta.dirty {
                    self.stats.dirty_evictions += 1;
                    out.push(BankMsg::WriteMem { block: ev.addr });
                }
            }
        }
        let Some((waiters, _)) = self.mshrs.complete(block) else {
            return;
        };
        match self.mode {
            TagMode::Real => {
                // Several merged waiters: readers get S (no E grant),
                // then writers claim ownership (invalidating them).
                let allow_e = waiters.len() == 1;
                let (reads, writes): (Vec<_>, Vec<_>) =
                    waiters.into_iter().partition(|w| w.kind == MissKind::Read);
                for w in reads.into_iter().chain(writes) {
                    self.serve_line_with(block, CoreId::new(w.token as u16), w.kind, allow_e, out);
                }
            }
            TagMode::Probabilistic => {
                for w in waiters {
                    out.push(BankMsg::Data {
                        block,
                        to: CoreId::new(w.token as u16),
                        exclusive: w.kind == MissKind::Write,
                    });
                }
            }
        }
    }
}

fn waiter(from: CoreId, kind: MissKind) -> Waiter {
    Waiter {
        token: from.index() as u64,
        kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank(mode: TagMode) -> L2Bank {
        L2Bank::new(
            BankId::new(0),
            &MemConfig::default(),
            MemTech::SttRam,
            None,
            mode,
        )
    }

    fn run(bank: &mut L2Bank, from: Cycle, cycles: u64) -> (Vec<BankMsg>, Cycle) {
        let mut out = Vec::new();
        for c in from..from + cycles {
            out.extend(bank.tick(c));
        }
        (out, from + cycles)
    }

    fn core(i: u16) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn cold_read_fetches_from_memory_then_replies_exclusive() {
        let mut b = bank(TagMode::Real);
        b.handle(
            BankIn::GetS {
                block: 0x1000,
                from: core(1),
            },
            false,
            0,
        );
        let (msgs, t) = run(&mut b, 0, 10);
        assert_eq!(msgs, vec![BankMsg::Fetch { block: 0x1000 }]);
        b.handle(BankIn::Fill { block: 0x1000 }, false, t);
        let (msgs, _) = run(&mut b, t, 40);
        assert_eq!(
            msgs,
            vec![BankMsg::Data {
                block: 0x1000,
                to: core(1),
                exclusive: true
            }]
        );
        assert_eq!(b.stats.fetches, 1);
        assert_eq!(b.stats.fills, 1);
        assert!(b.is_quiescent());
    }

    #[test]
    fn second_reader_gets_a_forward() {
        let mut b = bank(TagMode::Real);
        b.handle(
            BankIn::GetS {
                block: 0x1000,
                from: core(1),
            },
            false,
            0,
        );
        let (_, t) = run(&mut b, 0, 10);
        b.handle(BankIn::Fill { block: 0x1000 }, false, t);
        let (_, t) = run(&mut b, t, 40);
        // Core 1 owns the line in E; a second reader triggers FwdGetS.
        b.handle(
            BankIn::GetS {
                block: 0x1000,
                from: core(2),
            },
            false,
            t,
        );
        let (msgs, t) = run(&mut b, t, 10);
        let txn = match msgs[..] {
            [BankMsg::FwdGetS {
                block: 0x1000,
                to,
                txn,
            }] => {
                assert_eq!(to, core(1));
                txn
            }
            ref other => panic!("expected FwdGetS, got {other:?}"),
        };
        // Owner had a clean E copy: FwdMiss resolves from the array.
        let msgs = b.handle(
            BankIn::FwdMiss {
                block: 0x1000,
                from: core(1),
                txn,
            },
            false,
            t,
        );
        // With the stale owner gone the block is uncached again, so
        // the reader receives a fresh E grant.
        assert_eq!(
            msgs,
            vec![BankMsg::Data {
                block: 0x1000,
                to: core(2),
                exclusive: true
            }]
        );
        assert!(b.is_quiescent());
    }

    #[test]
    fn dirty_owner_writes_back_through_home() {
        let mut b = bank(TagMode::Real);
        // Core 1 takes the line for writing.
        b.handle(
            BankIn::GetM {
                block: 0x2000,
                from: core(1),
            },
            false,
            0,
        );
        let (_, t) = run(&mut b, 0, 10);
        b.handle(BankIn::Fill { block: 0x2000 }, false, t);
        let (_, t) = run(&mut b, t, 40);
        // Core 2 reads: home forwards to owner; owner sends FwdData.
        b.handle(
            BankIn::GetS {
                block: 0x2000,
                from: core(2),
            },
            false,
            t,
        );
        let (msgs, t) = run(&mut b, t, 10);
        let txn = match msgs[..] {
            [BankMsg::FwdGetS { txn, .. }] => txn,
            ref other => panic!("{other:?}"),
        };
        b.handle(
            BankIn::FwdData {
                block: 0x2000,
                from: core(1),
                txn,
            },
            false,
            t,
        );
        // The 33-cycle STT write applies, then the reader is served.
        let (msgs, _) = run(&mut b, t, 40);
        assert_eq!(
            msgs,
            vec![BankMsg::Data {
                block: 0x2000,
                to: core(2),
                exclusive: false
            }]
        );
        assert!(b.timing().writes >= 1, "owner data is an array write");
        assert!(b.is_quiescent());
    }

    #[test]
    fn write_to_shared_line_invalidates_sharers() {
        let mut b = bank(TagMode::Real);
        // Two concurrent readers merge on the fill and both install S.
        b.handle(
            BankIn::GetS {
                block: 0x3000,
                from: core(1),
            },
            false,
            0,
        );
        b.handle(
            BankIn::GetS {
                block: 0x3000,
                from: core(2),
            },
            false,
            0,
        );
        let (_, t) = run(&mut b, 0, 15);
        b.handle(BankIn::Fill { block: 0x3000 }, false, t);
        let (msgs, t) = run(&mut b, t, 40);
        assert!(
            msgs.iter().all(|m| matches!(
                m,
                BankMsg::Data {
                    exclusive: false,
                    ..
                }
            )),
            "merged readers get shared grants: {msgs:?}"
        );
        // Core 3 writes: both sharers must be invalidated.
        b.handle(
            BankIn::GetM {
                block: 0x3000,
                from: core(3),
            },
            false,
            t,
        );
        let (msgs, _) = run(&mut b, t, 10);
        assert!(msgs.contains(&BankMsg::Inv {
            block: 0x3000,
            to: core(1)
        }));
        assert!(msgs.contains(&BankMsg::Inv {
            block: 0x3000,
            to: core(2)
        }));
        assert!(msgs.contains(&BankMsg::Data {
            block: 0x3000,
            to: core(3),
            exclusive: true
        }));
        assert_eq!(b.stats.invalidations_sent, 2);
    }

    #[test]
    fn voluntary_putm_dirties_the_home_line() {
        let mut b = bank(TagMode::Real);
        b.handle(
            BankIn::GetM {
                block: 0x4000,
                from: core(1),
            },
            false,
            0,
        );
        let (_, t) = run(&mut b, 0, 10);
        b.handle(BankIn::Fill { block: 0x4000 }, false, t);
        let (_, t) = run(&mut b, t, 40);
        b.handle(
            BankIn::PutM {
                block: 0x4000,
                from: core(1),
            },
            false,
            t,
        );
        let (msgs, _) = run(&mut b, t, 40);
        assert!(msgs.is_empty(), "voluntary PutM needs no reply");
        assert_eq!(b.stats.putm_writes, 1);
        // A later reader is served from the (dirty) home line without
        // a memory fetch.
        let mut out = Vec::new();
        b.serve_line(0x4000, core(2), MissKind::Read, &mut out);
        assert_eq!(
            out,
            vec![BankMsg::Data {
                block: 0x4000,
                to: core(2),
                exclusive: true
            }]
        );
    }

    #[test]
    fn concurrent_misses_to_one_block_merge() {
        let mut b = bank(TagMode::Real);
        b.handle(
            BankIn::GetS {
                block: 0x5000,
                from: core(1),
            },
            false,
            0,
        );
        b.handle(
            BankIn::GetS {
                block: 0x5000,
                from: core(2),
            },
            false,
            0,
        );
        let (msgs, t) = run(&mut b, 0, 15);
        assert_eq!(msgs.len(), 1, "one fetch for both: {msgs:?}");
        b.handle(BankIn::Fill { block: 0x5000 }, false, t);
        let (msgs, _) = run(&mut b, t, 40);
        let datas = msgs
            .iter()
            .filter(|m| matches!(m, BankMsg::Data { .. }))
            .count();
        assert_eq!(datas, 2, "both waiters served: {msgs:?}");
    }

    #[test]
    fn probabilistic_hit_and_miss_paths() {
        let mut b = bank(TagMode::Probabilistic);
        b.handle(
            BankIn::GetS {
                block: 0x100,
                from: core(1),
            },
            false,
            0,
        );
        let (msgs, t) = run(&mut b, 0, 10);
        assert_eq!(
            msgs,
            vec![BankMsg::Data {
                block: 0x100,
                to: core(1),
                exclusive: false
            }]
        );
        b.handle(
            BankIn::GetS {
                block: 0x200,
                from: core(2),
            },
            true,
            t,
        );
        let (msgs, t2) = run(&mut b, t, 10);
        assert_eq!(msgs, vec![BankMsg::Fetch { block: 0x200 }]);
        b.handle(BankIn::Fill { block: 0x200 }, false, t2);
        let (msgs, _) = run(&mut b, t2, 40);
        assert_eq!(
            msgs,
            vec![BankMsg::Data {
                block: 0x200,
                to: core(2),
                exclusive: false
            }]
        );
    }

    #[test]
    fn probabilistic_write_miss_spills_to_memory() {
        // A forced-miss write models a dirty-victim displacement: the
        // bank emits a memory writeback alongside the array write.
        let mut b = bank(TagMode::Probabilistic);
        b.handle(
            BankIn::PutM {
                block: 0x700,
                from: core(1),
            },
            true,
            0,
        );
        let (msgs, _) = run(&mut b, 0, 50);
        assert!(
            msgs.contains(&BankMsg::WriteMem { block: 0x700 }),
            "{msgs:?}"
        );
        assert_eq!(b.stats.dirty_evictions, 1);
        // A hit write spills nothing.
        let mut b2 = bank(TagMode::Probabilistic);
        b2.handle(
            BankIn::PutM {
                block: 0x800,
                from: core(1),
            },
            false,
            0,
        );
        let (msgs, _) = run(&mut b2, 0, 50);
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn probabilistic_getm_occupies_the_bank_for_the_write_latency() {
        // The paper's "write request": the requester is released fast
        // but the array is busy for 33 cycles.
        let mut b = bank(TagMode::Probabilistic);
        b.handle(
            BankIn::GetM {
                block: 0x100,
                from: core(1),
            },
            false,
            0,
        );
        b.handle(
            BankIn::GetS {
                block: 0x200,
                from: core(2),
            },
            false,
            1,
        );
        let mut data_times = Vec::new();
        for c in 0..80 {
            for m in b.tick(c) {
                if let BankMsg::Data { to, .. } = m {
                    data_times.push((to, c));
                }
            }
        }
        assert_eq!(data_times.len(), 2);
        assert!(data_times[0].1 <= 5, "writer released fast: {data_times:?}");
        assert!(
            data_times[1].1 >= 36,
            "read waits out the write: {data_times:?}"
        );
    }

    #[test]
    fn writeback_occupies_stt_bank_for_33_cycles() {
        let mut b = bank(TagMode::Probabilistic);
        b.handle(
            BankIn::PutM {
                block: 0x100,
                from: core(1),
            },
            false,
            0,
        );
        b.handle(
            BankIn::GetS {
                block: 0x200,
                from: core(2),
            },
            false,
            1,
        );
        let mut first_data_at = None;
        for c in 0..80 {
            for m in b.tick(c) {
                if matches!(m, BankMsg::Data { .. }) && first_data_at.is_none() {
                    first_data_at = Some(c);
                }
            }
        }
        // Read queued behind the 33-cycle write: served at >= 36.
        assert!(
            first_data_at.unwrap() >= 36,
            "read must wait: {first_data_at:?}"
        );
    }

    #[test]
    fn eviction_of_dirty_home_line_writes_memory() {
        // A tiny L2 (one set) forces evictions quickly.
        let cfg = MemConfig {
            l2_bank_bytes: 16 * 128, // 16 ways * 128B = one set
            ..MemConfig::default()
        };
        let mut b = L2Bank::new(BankId::new(0), &cfg, MemTech::Sram, None, TagMode::Real);
        // Fill 16 blocks; dirty the first via PutM.
        let mut t = 0;
        for i in 0..16u64 {
            b.handle(
                BankIn::GetS {
                    block: i * 128,
                    from: core(1),
                },
                false,
                t,
            );
            let (_, t2) = run(&mut b, t, 10);
            b.handle(BankIn::Fill { block: i * 128 }, false, t2);
            let (_, t3) = run(&mut b, t2, 10);
            t = t3;
        }
        b.handle(
            BankIn::PutM {
                block: 0,
                from: core(1),
            },
            false,
            t,
        );
        let (_, mut t) = run(&mut b, t, 10);
        // One more block evicts the LRU line.
        b.handle(
            BankIn::GetS {
                block: 17 * 128,
                from: core(2),
            },
            false,
            t,
        );
        let (_, t2) = run(&mut b, t, 10);
        t = t2;
        b.handle(BankIn::Fill { block: 17 * 128 }, false, t);
        let (msgs, _) = run(&mut b, t, 20);
        assert!(
            msgs.iter().any(|m| matches!(m, BankMsg::WriteMem { .. })),
            "dirty victim writes to memory: {msgs:?}"
        );
        assert_eq!(b.stats.dirty_evictions, 1);
    }

    #[test]
    fn mshr_overflow_defers_and_recovers() {
        let cfg = MemConfig {
            l2_mshrs: 1,
            ..MemConfig::default()
        };
        let mut b = L2Bank::new(BankId::new(0), &cfg, MemTech::SttRam, None, TagMode::Real);
        b.handle(
            BankIn::GetS {
                block: 0x100,
                from: core(1),
            },
            false,
            0,
        );
        b.handle(
            BankIn::GetS {
                block: 0x200,
                from: core(2),
            },
            false,
            0,
        );
        let (msgs, t) = run(&mut b, 0, 15);
        assert_eq!(msgs, vec![BankMsg::Fetch { block: 0x100 }]);
        assert_eq!(b.stats.deferred, 1);
        b.handle(BankIn::Fill { block: 0x100 }, false, t);
        let (msgs, t2) = run(&mut b, t, 45);
        assert!(
            msgs.contains(&BankMsg::Fetch { block: 0x200 }),
            "deferred miss retries"
        );
        b.handle(BankIn::Fill { block: 0x200 }, false, t2);
        let (msgs, _) = run(&mut b, t2, 45);
        assert!(msgs
            .iter()
            .any(|m| matches!(m, BankMsg::Data { to, .. } if *to == core(2))));
        assert!(b.is_quiescent());
    }
}
