//! Regenerates the paper's Figure 13 (parent-child distance sensitivity).
fn main() {
    let scale = snoc_bench::scale_from_args();
    println!("{}", snoc_core::experiments::fig13::run(scale));
}
