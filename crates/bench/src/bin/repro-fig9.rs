//! Regenerates the paper's Figure 9 (multiprogrammed case studies).
fn main() {
    let scale = snoc_bench::scale_from_args();
    snoc_bench::emit("fig9", &snoc_core::experiments::fig9::run(scale));
}
