//! The STT-RAM trade-off, end to end: 4x capacity vs 11x write
//! latency.
//!
//! Sweeps applications across the read/write-intensity spectrum and
//! shows where replacing SRAM by STT-RAM wins (read-heavy, reusable
//! working sets benefit from the 4 MB banks) and where it loses
//! (write-heavy applications queue behind 33-cycle writes) — the
//! crossover structure behind Figure 6. Also regenerates Table 2 from
//! the analytic model to show where the 3-vs-33-cycle asymmetry comes
//! from.
//!
//! ```sh
//! cargo run --release --example capacity_vs_writes
//! ```

use sttram_noc_repro::sim::experiments::table2;
use sttram_noc_repro::sim::scenario::Scenario;
use sttram_noc_repro::sim::system::System;
use sttram_noc_repro::workload::table3;

fn main() {
    println!("{}", table2::run());

    // From most read-intensive to most write-intensive.
    let apps = [
        "libqntm", "xalan", "omnet", "hmmer", "soplex", "sclust", "lbm", "tpcc",
    ];
    println!(
        "{:8} {:>11} {:>11} {:>9} {:>12}",
        "app", "read share", "SRAM IT", "STT IT", "STT/SRAM"
    );
    for name in apps {
        let p = table3::by_name(name).expect("known app");
        let run = |sc: Scenario| {
            let mut cfg = sc.config();
            cfg.warmup_cycles = 1_000;
            cfg.measure_cycles = 8_000;
            System::homogeneous(cfg, p).run().instruction_throughput()
        };
        let sram = run(Scenario::Sram64Tsb);
        let stt = run(Scenario::SttRam64Tsb);
        println!(
            "{:8} {:>10.0}% {:>11.2} {:>9.2} {:>11.2}x{}",
            name,
            p.read_share() * 100.0,
            sram,
            stt,
            stt / sram,
            if stt > sram { "  <- capacity wins" } else { "" }
        );
    }
    println!("\nRead-heavy applications with reusable working sets gain from the 4x");
    println!("capacity; write-heavy ones lose to the 33-cycle writes — exactly the");
    println!("tension the paper's NoC-level scheduling resolves.");
}
