//! Deterministic routing for the two-layer 3D mesh.
//!
//! Two routing modes exist (Section 3.4):
//!
//! * **Z-X-Y** (the `*-64TSB` baselines, and all non-request traffic in
//!   every mode): change layer at the source column, then X-Y route in
//!   the destination layer.
//! * **Region-TSB** (the `*-4TSB` schemes, bank requests only): X-Y
//!   route in the core layer to the destination region's TSB column,
//!   descend there, then X-Y route in the cache layer. Responses and
//!   coherence packets still use all 64 TSVs (Z-X-Y).
//!
//! Both modes are deadlock-free: X-Y routing is acyclic within each
//! layer, a packet changes layer at most once, and the three traffic
//! classes use disjoint virtual channels with an acyclic protocol
//! dependency (Request -> Coherence -> Response).

use crate::packet::Packet;
use crate::regions::RegionMap;
use snoc_common::config::RequestPathMode;
use snoc_common::geom::{Coord, Direction, Layer, Mesh};
use snoc_common::ids::NodeId;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Everything the table contents depend on: the mesh geometry and the
/// region->TSB assignment (the restricted half is always computed, so
/// the path mode is *not* part of the key — both modes share a table).
type MemoKey = (usize, usize, Vec<u16>);

/// Process-wide cache of computed tables. Sweeps construct hundreds of
/// networks over a handful of distinct configurations; recomputing the
/// ~33k-entry table dominated `Network::new`.
fn memo() -> &'static Mutex<HashMap<MemoKey, Arc<[Direction]>>> {
    static MEMO: OnceLock<Mutex<HashMap<MemoKey, Arc<[Direction]>>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The routing function for one configuration.
///
/// The routing decision depends only on the current coordinate, the
/// destination and whether the packet is subject to the region-TSB
/// restriction, so the whole function is memoized at construction into
/// a flat `[restricted][at][dst]` next-hop table: the per-flit lookup
/// on the hot path is a single array index.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    mesh: Mesh,
    mode: RequestPathMode,
    regions: RegionMap,
    /// `2 * (2n)^2` precomputed next hops, `n` nodes per layer; shared
    /// between every table built over the same geometry and regions.
    table: Arc<[Direction]>,
    /// Chip positions (`2n`): core layer `0..n`, cache layer `n..2n`.
    positions: usize,
}

impl RoutingTable {
    /// Creates the routing function and memoizes every next-hop
    /// decision.
    pub fn new(mesh: Mesh, mode: RequestPathMode, regions: RegionMap) -> Self {
        let n = mesh.nodes_per_layer();
        let positions = 2 * n;
        let key: MemoKey = (
            mesh.width() as usize,
            mesh.height() as usize,
            (0..n)
                .map(|i| regions.tsb_for(NodeId::new(i as u16)).raw())
                .collect(),
        );
        if let Some(table) = memo().lock().unwrap().get(&key).cloned() {
            return Self {
                mesh,
                mode,
                regions,
                table,
                positions,
            };
        }
        // Compute outside the lock (the table is deterministic, so a
        // racing builder produces identical contents and either copy
        // may win the `entry` below).
        let mut table = vec![Direction::Local; 2 * positions * positions];
        for restricted in [false, true] {
            for at_flat in 0..positions {
                for dst_flat in 0..positions {
                    let at = unflatten(mesh, at_flat);
                    let dst = unflatten(mesh, dst_flat);
                    let i = (restricted as usize * positions + at_flat) * positions + dst_flat;
                    table[i] = compute_hop(mesh, &regions, at, dst, restricted);
                }
            }
        }
        let table: Arc<[Direction]> = table.into();
        let table = memo().lock().unwrap().entry(key).or_insert(table).clone();
        Self {
            mesh,
            mode,
            regions,
            table,
            positions,
        }
    }

    /// Chip-flat position of a coordinate (core layer first).
    #[inline]
    fn flat(&self, c: Coord) -> usize {
        let base = if c.layer == Layer::Cache {
            self.positions / 2
        } else {
            0
        };
        base + self.mesh.node(c).index()
    }

    /// The region map this table routes over.
    pub fn regions(&self) -> &RegionMap {
        &self.regions
    }

    /// The configured request path mode.
    pub fn mode(&self) -> RequestPathMode {
        self.mode
    }

    /// The output direction for `packet` at router `at`.
    ///
    /// Returns [`Direction::Local`] at the destination.
    #[inline]
    pub fn next_hop(&self, at: Coord, packet: &Packet) -> Direction {
        let restricted = self.mode == RequestPathMode::RegionTsbs && packet.kind.is_bank_request();
        let i = (restricted as usize * self.positions + self.flat(at)) * self.positions
            + self.flat(packet.dst);
        self.table[i]
    }

    /// The full route from `src` to the destination, as the sequence of
    /// coordinates visited after `src`. Useful for tests and analysis;
    /// the simulator routes hop by hop.
    pub fn trace(&self, packet: &Packet) -> Vec<Coord> {
        let mut route = Vec::new();
        let mut at = packet.src;
        let limit = 4 * (self.mesh.width() as usize + self.mesh.height() as usize);
        while at != packet.dst {
            let dir = self.next_hop(at, packet);
            assert_ne!(
                dir,
                Direction::Local,
                "stuck at {at} routing to {}",
                packet.dst
            );
            at = self.mesh.neighbour(at, dir).expect("route stays on chip");
            route.push(at);
            assert!(route.len() <= limit, "route too long: {route:?}");
        }
        route
    }

    /// `true` if this packet, travelling from `at`, will cross to the
    /// cache layer through a region TSB (used to grant the wide-TSB
    /// bandwidth bonus).
    pub fn uses_region_tsb(&self, packet: &Packet) -> bool {
        self.mode == RequestPathMode::RegionTsbs
            && packet.kind.is_bank_request()
            && packet.dst.layer == Layer::Cache
            && packet.src.layer == Layer::Core
    }
}

/// Inverse of [`RoutingTable::flat`].
fn unflatten(mesh: Mesh, flat: usize) -> Coord {
    let n = mesh.nodes_per_layer();
    let (node, layer) = if flat < n {
        (flat, Layer::Core)
    } else {
        (flat - n, Layer::Cache)
    };
    mesh.coord(snoc_common::ids::NodeId::new(node as u16), layer)
}

/// The unmemoized routing decision; `restricted` says the packet is a
/// bank request under the region-TSB path mode (the destination-layer
/// condition is applied here, so core-layer destinations route
/// identically in both halves of the table).
fn compute_hop(
    mesh: Mesh,
    regions: &RegionMap,
    at: Coord,
    dst: Coord,
    restricted: bool,
) -> Direction {
    if at == dst {
        return Direction::Local;
    }

    if restricted && dst.layer == Layer::Cache && at.layer == Layer::Core {
        // X-Y towards the region TSB in the core layer, then down.
        let tsb = mesh.coord(regions.tsb_for(mesh.node(dst)), Layer::Core);
        return match mesh.xy_step(at, tsb) {
            Some(dir) => dir,
            None => Direction::Down,
        };
    }

    if at.layer != dst.layer {
        // Z first (the packet is at its source column, or at the
        // TSB column for restricted requests).
        return if at.layer == Layer::Core {
            Direction::Down
        } else {
            Direction::Up
        };
    }

    mesh.xy_step(at, dst).unwrap_or(Direction::Local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;
    use snoc_common::config::TsbPlacement;
    use snoc_common::ids::NodeId;

    fn table(mode: RequestPathMode) -> RoutingTable {
        let mesh = Mesh::new(8, 8);
        let regions = RegionMap::new(mesh, 4, TsbPlacement::Corner);
        RoutingTable::new(mesh, mode, regions)
    }

    fn mesh() -> Mesh {
        Mesh::new(8, 8)
    }

    fn pkt(kind: PacketKind, src: Coord, dst: Coord) -> Packet {
        Packet::new(kind, src, dst, 0, 0)
    }

    #[test]
    fn zxy_descends_at_source() {
        // Paper example: core 63 -> cache bank 0 descends to chip node
        // 127 first, then X, then Y.
        let t = table(RequestPathMode::AllTsvs);
        let src = mesh().coord(NodeId::new(63), Layer::Core);
        let dst = mesh().coord(NodeId::new(0), Layer::Cache);
        let p = pkt(PacketKind::BankRead, src, dst);
        let route = t.trace(&p);
        assert_eq!(route[0], mesh().coord(NodeId::new(63), Layer::Cache));
        assert!(route.iter().skip(1).all(|c| c.layer == Layer::Cache));
        // X-first: the second hop moves west.
        assert_eq!(route[1].y, 7);
        assert_eq!(route[1].x, 6);
        assert_eq!(*route.last().unwrap(), dst);
    }

    #[test]
    fn region_tsb_requests_enter_through_the_region_tsb() {
        // Paper Figure 5: requests from cores 7, 46 and 48 to banks in
        // region 0 all pass through core node 27, descend to chip 91,
        // and are X-Y routed in the cache layer.
        let t = table(RequestPathMode::RegionTsbs);
        let tsb_core = mesh().coord(NodeId::new(27), Layer::Core);
        let tsb_cache = mesh().coord(NodeId::new(27), Layer::Cache);
        for (core, bank_chip) in [(7u16, 89u16), (46, 82), (48, 75)] {
            let src = mesh().coord(NodeId::new(core), Layer::Core);
            let dst = mesh().coord(NodeId::new(bank_chip - 64), Layer::Cache);
            let p = pkt(PacketKind::Writeback, src, dst);
            let route = t.trace(&p);
            assert!(
                route.contains(&tsb_core),
                "core {core} misses TSB core node"
            );
            assert!(
                route.contains(&tsb_cache),
                "core {core} misses TSB cache node"
            );
            let down_idx = route.iter().position(|&c| c == tsb_cache).unwrap();
            assert!(route[..down_idx]
                .iter()
                .all(|c| c.layer == Layer::Core || *c == tsb_cache));
            assert_eq!(*route.last().unwrap(), dst);
        }
    }

    #[test]
    fn responses_ignore_the_tsb_restriction() {
        // Cache -> core replies ascend at the bank's own column.
        let t = table(RequestPathMode::RegionTsbs);
        let src = mesh().coord(NodeId::new(11), Layer::Cache);
        let dst = mesh().coord(NodeId::new(7), Layer::Core);
        let p = pkt(PacketKind::DataReply, src, dst);
        let route = t.trace(&p);
        assert_eq!(route[0], mesh().coord(NodeId::new(11), Layer::Core));
        assert!(route.iter().all(|c| c.layer == Layer::Core));
    }

    #[test]
    fn coherence_ignores_the_tsb_restriction() {
        let t = table(RequestPathMode::RegionTsbs);
        let src = mesh().coord(NodeId::new(11), Layer::Cache);
        let dst = mesh().coord(NodeId::new(60), Layer::Core);
        let p = pkt(PacketKind::Inv, src, dst);
        let route = t.trace(&p);
        assert_eq!(route[0].layer, Layer::Core, "coherence ascends immediately");
    }

    #[test]
    fn mem_traffic_stays_in_the_cache_layer() {
        let t = table(RequestPathMode::RegionTsbs);
        let src = mesh().coord(NodeId::new(27), Layer::Cache);
        let dst = mesh().coord(NodeId::new(0), Layer::Cache); // corner MC
        let p = pkt(PacketKind::MemFetch, src, dst);
        let route = t.trace(&p);
        assert!(route.iter().all(|c| c.layer == Layer::Cache));
    }

    #[test]
    fn all_request_routes_to_a_bank_share_the_parent_suffix() {
        // The serialization property: with region TSBs, every request
        // route to bank D ends with the same `parent -> ... -> D`
        // suffix regardless of source core.
        let t = table(RequestPathMode::RegionTsbs);
        let dst = mesh().coord(NodeId::new(11), Layer::Cache); // chip 75
        let mut suffixes = std::collections::HashSet::new();
        for core in 0..64u16 {
            let src = mesh().coord(NodeId::new(core), Layer::Core);
            let p = pkt(PacketKind::BankRead, src, dst);
            let route = t.trace(&p);
            let n = route.len();
            suffixes.insert(route[n.saturating_sub(3)..].to_vec());
        }
        assert_eq!(suffixes.len(), 1, "suffix must be unique: {suffixes:?}");
    }

    #[test]
    fn without_region_tsbs_routes_to_a_bank_diverge() {
        // The motivating problem: with Z-X-Y and 64 TSVs there is no
        // serialization point.
        let t = table(RequestPathMode::AllTsvs);
        let dst = mesh().coord(NodeId::new(11), Layer::Cache);
        let mut penultimate = std::collections::HashSet::new();
        for core in 0..64u16 {
            let src = mesh().coord(NodeId::new(core), Layer::Core);
            let p = pkt(PacketKind::BankRead, src, dst);
            let route = t.trace(&p);
            if route.len() >= 2 {
                penultimate.insert(route[route.len() - 2]);
            }
        }
        assert!(penultimate.len() > 1, "Z-X-Y should have path diversity");
    }

    #[test]
    fn memoized_table_matches_direct_computation() {
        // Every (mode, at, dst, kind-class) the simulator can query
        // must resolve to the same hop the unmemoized function yields.
        for mode in [RequestPathMode::AllTsvs, RequestPathMode::RegionTsbs] {
            let t = table(mode);
            let m = mesh();
            for kind in [PacketKind::BankRead, PacketKind::DataReply] {
                for at_node in 0..64u16 {
                    for dst_node in 0..64u16 {
                        for at_layer in [Layer::Core, Layer::Cache] {
                            for dst_layer in [Layer::Core, Layer::Cache] {
                                let at = m.coord(NodeId::new(at_node), at_layer);
                                let dst = m.coord(NodeId::new(dst_node), dst_layer);
                                let p = pkt(kind, at, dst);
                                let restricted =
                                    mode == RequestPathMode::RegionTsbs && kind.is_bank_request();
                                let expect =
                                    super::compute_hop(m, t.regions(), at, dst, restricted);
                                assert_eq!(
                                    t.next_hop(at, &p),
                                    expect,
                                    "{mode:?} {kind:?} {at} -> {dst}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn tables_over_the_same_geometry_share_storage() {
        // The memo cache hands both path modes the same table: the
        // restricted half is always present and mode only selects
        // which half `next_hop` reads.
        let a = table(RequestPathMode::AllTsvs);
        let b = table(RequestPathMode::RegionTsbs);
        assert!(Arc::ptr_eq(&a.table, &b.table), "memo cache missed");
    }

    #[test]
    fn local_at_destination() {
        let t = table(RequestPathMode::AllTsvs);
        let dst = mesh().coord(NodeId::new(5), Layer::Cache);
        let p = pkt(PacketKind::BankRead, dst, dst);
        assert_eq!(t.next_hop(dst, &p), Direction::Local);
    }

    #[test]
    fn routes_are_minimal_under_zxy() {
        let t = table(RequestPathMode::AllTsvs);
        let m = mesh();
        for (s, d) in [(0u16, 63u16), (7, 56), (31, 32), (12, 12)] {
            let src = m.coord(NodeId::new(s), Layer::Core);
            let dst = m.coord(NodeId::new(d), Layer::Cache);
            let p = pkt(PacketKind::BankRead, src, dst);
            let route = t.trace(&p);
            assert_eq!(route.len() as u32, src.manhattan(dst) + 1, "{s}->{d}");
        }
    }
}
