//! Integration tests of the sweep engine: schedule-invariant results,
//! grid-order delivery, per-cell panic isolation, and experiments
//! running end to end through the runner.

use sttram_noc_repro::sim::experiments::{fig3, table2, Scale};
use sttram_noc_repro::sim::report::Rows;
use sttram_noc_repro::sim::scenario::Scenario;
use sttram_noc_repro::sim::sweep::{CellError, RunSpec, SweepRunner};
use sttram_noc_repro::workload::table3;

fn tiny(label: &str, app: &str, scenario: Scenario) -> RunSpec {
    let cfg = scenario.config().rebuild().cycles(100, 600).build();
    RunSpec::homogeneous(label, cfg, table3::by_name(app).unwrap())
}

fn tiny_grid() -> Vec<RunSpec> {
    vec![
        tiny("sram/tpcc", "tpcc", Scenario::Sram64Tsb),
        tiny("stt/tpcc", "tpcc", Scenario::SttRam64Tsb),
        tiny("wb/sap", "sap", Scenario::SttRam4TsbWb),
        tiny("rca/lbm", "lbm", Scenario::SttRam4TsbRca),
    ]
}

/// The acceptance property: per-cell metrics are bit-identical whether
/// the grid runs on one worker or many.
#[test]
fn thread_count_never_changes_results() {
    let serial = SweepRunner::new().threads(1).run_grid("t1", tiny_grid());
    let parallel = SweepRunner::new().threads(4).run_grid("t4", tiny_grid());
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.index, p.index);
        assert_eq!(s.label, p.label);
        let sm = s.outcome.as_ref().expect("cell runs");
        let pm = p.outcome.as_ref().expect("cell runs");
        // Debug covers every metric field, histograms included.
        assert_eq!(format!("{sm:?}"), format!("{pm:?}"), "cell {}", s.label);
    }
}

/// Results come back in grid order even though workers finish out of
/// order.
#[test]
fn results_arrive_in_grid_order() {
    let results = SweepRunner::new().threads(3).run_grid("order", tiny_grid());
    let labels: Vec<&str> = results.iter().map(|r| r.label.as_str()).collect();
    assert_eq!(labels, ["sram/tpcc", "stt/tpcc", "wb/sap", "rca/lbm"]);
}

/// A cell whose simulation panics is reported as a poisoned cell; the
/// sweep and its other cells are unaffected.
#[test]
fn poisoned_cell_is_isolated() {
    let mut grid = tiny_grid();
    // An invalid region count makes System::new's validation panic.
    grid[1].cfg.regions = 7;
    let results = SweepRunner::new().threads(2).run_grid("poison", grid);
    assert_eq!(results.len(), 4);
    match &results[1].outcome {
        Err(CellError::Panicked(msg)) => {
            assert!(msg.contains("valid configuration"), "got: {msg}")
        }
        other => panic!("expected a poisoned cell, got {other:?}"),
    }
    for i in [0, 2, 3] {
        assert!(results[i].outcome.is_ok(), "cell {i} must survive");
    }
}

/// An experiment runs end to end through the runner, and its result
/// exposes the uniform Rows view.
#[test]
fn experiments_run_through_the_runner() {
    let r = SweepRunner::new().threads(2).run(&fig3::Fig3, Scale::Quick);
    assert_eq!(r.panels.len(), 3);
    let rows = r.rows();
    assert!(!rows.is_empty());
    assert!(rows.iter().all(|(_, v)| v.len() == r.header().len()));
    assert!(r.csv().starts_with("label,"));

    // The analytic table rides the same interface with an empty grid.
    let t2 = SweepRunner::new().run(&table2::Table2Exp, Scale::Quick);
    assert_eq!(t2.stt.write_cycles, 33);
    assert_eq!(t2.rows().len(), 2);
}
