//! The six design scenarios of Section 4.1, plus the Section 4.4
//! comparison points.

use snoc_common::config::{
    ArbitrationPolicy, Estimator, MemTech, RequestPathMode, SystemConfig, WriteBufferConfig,
};

/// One of the paper's named design points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Baseline: SRAM L2, all 64 TSVs, round-robin routers.
    Sram64Tsb,
    /// STT-RAM swapped in, otherwise the baseline network.
    SttRam64Tsb,
    /// STT-RAM with requests restricted to the 4 region TSBs but
    /// round-robin arbitration (isolates the path-diversity cost).
    SttRam4Tsb,
    /// Region TSBs + bank-aware arbitration, Simplistic congestion
    /// scheme.
    SttRam4TsbSs,
    /// Region TSBs + bank-aware arbitration, Regional Congestion
    /// Awareness.
    SttRam4TsbRca,
    /// Region TSBs + bank-aware arbitration, Window-Based estimation —
    /// the paper's recommended design.
    SttRam4TsbWb,
}

impl Scenario {
    /// All six, in the paper's presentation order.
    pub const ALL: [Scenario; 6] = [
        Scenario::Sram64Tsb,
        Scenario::SttRam64Tsb,
        Scenario::SttRam4Tsb,
        Scenario::SttRam4TsbSs,
        Scenario::SttRam4TsbRca,
        Scenario::SttRam4TsbWb,
    ];

    /// The figure labels ("MRAM" is the paper's plot annotation for
    /// STT-RAM).
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Sram64Tsb => "SRAM-64TSB",
            Scenario::SttRam64Tsb => "MRAM-64TSB",
            Scenario::SttRam4Tsb => "MRAM-4TSB",
            Scenario::SttRam4TsbSs => "MRAM-4TSB-SS",
            Scenario::SttRam4TsbRca => "MRAM-4TSB-RCA",
            Scenario::SttRam4TsbWb => "MRAM-4TSB-WB",
        }
    }

    /// The system configuration for this scenario (Table 1 defaults).
    pub fn config(self) -> SystemConfig {
        let b = SystemConfig::builder();
        match self {
            Scenario::Sram64Tsb => b.tech(MemTech::Sram).path_mode(RequestPathMode::AllTsvs),
            Scenario::SttRam64Tsb => b.tech(MemTech::SttRam).path_mode(RequestPathMode::AllTsvs),
            Scenario::SttRam4Tsb => b
                .tech(MemTech::SttRam)
                .path_mode(RequestPathMode::RegionTsbs),
            Scenario::SttRam4TsbSs => b
                .tech(MemTech::SttRam)
                .path_mode(RequestPathMode::RegionTsbs)
                .arbitration(ArbitrationPolicy::BankAware {
                    estimator: Estimator::Simple,
                }),
            Scenario::SttRam4TsbRca => b
                .tech(MemTech::SttRam)
                .path_mode(RequestPathMode::RegionTsbs)
                .arbitration(ArbitrationPolicy::BankAware {
                    estimator: Estimator::Rca,
                }),
            Scenario::SttRam4TsbWb => b
                .tech(MemTech::SttRam)
                .path_mode(RequestPathMode::RegionTsbs)
                .arbitration(ArbitrationPolicy::BankAware {
                    estimator: Estimator::WindowBased,
                }),
        }
        .build()
    }

    /// The scenario configuration at an arbitrary geometry: mesh
    /// `width` x `height`, `regions` cache regions and `cache_layers`
    /// stacked cache dies. `config()` is the 8x8 / 4-region /
    /// single-layer special case of this.
    pub fn config_at(
        self,
        width: u8,
        height: u8,
        regions: usize,
        cache_layers: usize,
    ) -> SystemConfig {
        self.config()
            .rebuild()
            .tune(|c| {
                c.noc.width = width;
                c.noc.height = height;
            })
            .regions(regions)
            .cache_layers(cache_layers)
            .build()
    }

    /// `true` for the bank-aware (prioritizing) schemes.
    pub fn is_proposed(self) -> bool {
        matches!(
            self,
            Scenario::SttRam4TsbSs | Scenario::SttRam4TsbRca | Scenario::SttRam4TsbWb
        )
    }
}

/// Section 4.4's BUFF-20 comparison point: STT-RAM banks with a
/// 20-entry read-preemptive write buffer on the unrestricted network.
pub fn buff20_config() -> SystemConfig {
    Scenario::SttRam64Tsb
        .config()
        .rebuild()
        .write_buffer(Some(WriteBufferConfig::default()))
        .build()
}

/// Section 4.4's "+1 VC" variant: the WB scheme with one extra virtual
/// channel per port instead of per-bank write buffers.
pub fn plus_one_vc_config() -> SystemConfig {
    Scenario::SttRam4TsbWb
        .config()
        .rebuild()
        .tune(|c| c.noc.vcs_per_port += 1)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_scenarios_with_unique_names() {
        let names: std::collections::HashSet<_> = Scenario::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn configs_validate() {
        for s in Scenario::ALL {
            s.config()
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", s.name()));
        }
        buff20_config().validate().unwrap();
        plus_one_vc_config().validate().unwrap();
    }

    #[test]
    fn baseline_is_sram_with_full_path_diversity() {
        let cfg = Scenario::Sram64Tsb.config();
        assert_eq!(cfg.tech, MemTech::Sram);
        assert_eq!(cfg.path_mode, RequestPathMode::AllTsvs);
        assert_eq!(cfg.arbitration, ArbitrationPolicy::RoundRobin);
        assert_eq!(cfg.l2_write_latency(), 3);
    }

    #[test]
    fn wb_scheme_matches_paper() {
        let cfg = Scenario::SttRam4TsbWb.config();
        assert_eq!(cfg.l2_write_latency(), 33);
        assert_eq!(cfg.regions, 4);
        assert_eq!(cfg.parent_hops, 2);
        assert!(matches!(
            cfg.arbitration,
            ArbitrationPolicy::BankAware {
                estimator: Estimator::WindowBased
            }
        ));
    }

    #[test]
    fn buff20_has_a_write_buffer_and_wb_does_not() {
        assert!(buff20_config().write_buffer.is_some());
        assert!(Scenario::SttRam4TsbWb.config().write_buffer.is_none());
    }

    #[test]
    fn plus_one_vc_grows_the_vc_count() {
        assert_eq!(plus_one_vc_config().noc.vcs_per_port, 7);
    }

    #[test]
    fn proposed_flag() {
        assert!(!Scenario::Sram64Tsb.is_proposed());
        assert!(!Scenario::SttRam4Tsb.is_proposed());
        assert!(Scenario::SttRam4TsbWb.is_proposed());
    }
}
