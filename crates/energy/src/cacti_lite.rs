//! A small analytic CACTI-style area/latency/energy model.
//!
//! The paper derived Table 2 from CACTI 6.0 plus an STT-RAM macro
//! model scaled from the 0.18 um prototype of Hosomi et al. This
//! module regenerates the same numbers from a compact analytic form:
//!
//! * area = cells x cell-size (146 F^2 SRAM, 36 F^2 1T1J STT-RAM)
//!   x a periphery factor;
//! * access time = technology-dependent sense time + wire delay
//!   growing with sqrt(area); the STT-RAM write adds the 10 ns MTJ
//!   switching pulse (the paper confines the pulse to >= 10 ns because
//!   shorter pulses need dramatically higher current);
//! * access energy grows with sqrt(area); the STT-RAM write adds the
//!   MTJ switching energy;
//! * leakage = per-MB cell leakage (SRAM only — MTJs do not leak) +
//!   per-mm^2 periphery leakage.
//!
//! Constants are calibrated so the paper's two design points (1 MB
//! SRAM, 4 MB STT-RAM at 32 nm / 3 GHz / 80 C) reproduce Table 2.

use snoc_common::config::MemTech;

/// The bank to model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BankSpec {
    /// Cell technology.
    pub tech: MemTech,
    /// Capacity in bytes.
    pub capacity_bytes: usize,
    /// Feature size in nanometres (32 in the paper).
    pub feature_nm: f64,
    /// Clock in GHz (3 in the paper).
    pub clock_ghz: f64,
}

/// The model's output for one bank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BankModel {
    /// Area in mm^2.
    pub area_mm2: f64,
    /// Read access time in ns.
    pub read_ns: f64,
    /// Write access time in ns.
    pub write_ns: f64,
    /// Read latency in cycles.
    pub read_cycles: u64,
    /// Write latency in cycles.
    pub write_cycles: u64,
    /// Read energy in nJ.
    pub read_energy_nj: f64,
    /// Write energy in nJ.
    pub write_energy_nj: f64,
    /// Leakage power at 80 C in mW.
    pub leakage_mw: f64,
}

/// SRAM 6T cell size in F^2.
const SRAM_CELL_F2: f64 = 146.0;
/// STT-RAM 1T1J cell size in F^2.
const STT_CELL_F2: f64 = 36.0;
/// Array-to-bank periphery area factor (decoders, sense amps, H-tree).
const SRAM_PERIPHERY: f64 = 2.417;
const STT_PERIPHERY: f64 = 2.741;
/// Sense/decode base delay in ns.
const SRAM_SENSE_NS: f64 = 0.267;
const STT_SENSE_NS: f64 = 0.420;
/// Wire delay per sqrt(mm^2) in ns.
const WIRE_NS_PER_SQRT_MM: f64 = 0.25;
/// The minimum MTJ switching pulse (Section 4.1: shorter pulses need
/// dramatically more current).
const MTJ_PULSE_NS: f64 = 10.0;
/// STT-RAM write-driver turnaround in ns.
const STT_WRITE_DRIVER_NS: f64 = 0.21;
/// Access energy per sqrt(mm^2) in nJ.
const SRAM_ACCESS_NJ: f64 = 0.0966;
const STT_READ_NJ: f64 = 0.1510;
/// MTJ switching energy per write in nJ.
const MTJ_WRITE_NJ: f64 = 0.487;
/// SRAM cell leakage at 80 C in mW per MB.
const SRAM_LEAK_MW_PER_MB: f64 = 274.3;
/// Periphery leakage in mW per mm^2 (both technologies).
const PERIPHERY_LEAK_MW_PER_MM2: f64 = 56.2;

/// Evaluates the model.
pub fn model(spec: &BankSpec) -> BankModel {
    let bits = spec.capacity_bytes as f64 * 8.0;
    let f_mm = spec.feature_nm * 1e-6; // nm -> mm
    let (cell_f2, periphery) = match spec.tech {
        MemTech::Sram => (SRAM_CELL_F2, SRAM_PERIPHERY),
        MemTech::SttRam => (STT_CELL_F2, STT_PERIPHERY),
    };
    let area_mm2 = bits * cell_f2 * f_mm * f_mm * periphery;
    let wire = WIRE_NS_PER_SQRT_MM * area_mm2.sqrt();
    let (read_ns, write_ns) = match spec.tech {
        MemTech::Sram => {
            let t = SRAM_SENSE_NS + wire;
            (t, t)
        }
        MemTech::SttRam => {
            let r = STT_SENSE_NS + wire;
            (r, MTJ_PULSE_NS + STT_WRITE_DRIVER_NS + wire)
        }
    };
    let (read_energy_nj, write_energy_nj) = match spec.tech {
        MemTech::Sram => {
            let e = SRAM_ACCESS_NJ * area_mm2.sqrt();
            (e, e)
        }
        MemTech::SttRam => {
            let r = STT_READ_NJ * area_mm2.sqrt();
            (r, r + MTJ_WRITE_NJ)
        }
    };
    let cell_leak = match spec.tech {
        MemTech::Sram => SRAM_LEAK_MW_PER_MB * spec.capacity_bytes as f64 / (1024.0 * 1024.0),
        MemTech::SttRam => 0.0,
    };
    let leakage_mw = cell_leak + PERIPHERY_LEAK_MW_PER_MM2 * area_mm2;
    BankModel {
        area_mm2,
        read_ns,
        write_ns,
        read_cycles: (read_ns * spec.clock_ghz).ceil() as u64,
        write_cycles: (write_ns * spec.clock_ghz).ceil() as u64,
        read_energy_nj,
        write_energy_nj,
        leakage_mw,
    }
}

/// The paper's SRAM design point.
pub fn table2_sram() -> BankModel {
    model(&BankSpec {
        tech: MemTech::Sram,
        capacity_bytes: 1024 * 1024,
        feature_nm: 32.0,
        clock_ghz: 3.0,
    })
}

/// The paper's STT-RAM design point.
pub fn table2_stt() -> BankModel {
    model(&BankSpec {
        tech: MemTech::SttRam,
        capacity_bytes: 4 * 1024 * 1024,
        feature_nm: 32.0,
        clock_ghz: 3.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() / b.abs() <= tol
    }

    #[test]
    fn reproduces_table2_sram_row() {
        let m = table2_sram();
        assert!(close(m.area_mm2, 3.03, 0.05), "area {}", m.area_mm2);
        assert!(close(m.read_ns, 0.702, 0.05), "read {}", m.read_ns);
        assert!(
            close(m.read_energy_nj, 0.168, 0.05),
            "renergy {}",
            m.read_energy_nj
        );
        assert!(close(m.leakage_mw, 444.6, 0.05), "leak {}", m.leakage_mw);
        assert_eq!(m.read_cycles, 3);
        assert_eq!(m.write_cycles, 3);
    }

    #[test]
    fn reproduces_table2_stt_row() {
        let m = table2_stt();
        assert!(close(m.area_mm2, 3.39, 0.05), "area {}", m.area_mm2);
        assert!(close(m.read_ns, 0.880, 0.05), "read {}", m.read_ns);
        assert!(close(m.write_ns, 10.67, 0.05), "write {}", m.write_ns);
        assert!(
            close(m.read_energy_nj, 0.278, 0.05),
            "renergy {}",
            m.read_energy_nj
        );
        assert!(
            close(m.write_energy_nj, 0.765, 0.05),
            "wenergy {}",
            m.write_energy_nj
        );
        assert!(close(m.leakage_mw, 190.5, 0.05), "leak {}", m.leakage_mw);
        assert_eq!(m.read_cycles, 3);
        assert_eq!(m.write_cycles, 33);
    }

    #[test]
    fn stt_is_4x_denser_at_similar_area() {
        let sram = table2_sram();
        let stt = table2_stt();
        assert!(
            close(stt.area_mm2, sram.area_mm2, 0.15),
            "4x capacity at ~equal area"
        );
    }

    #[test]
    fn area_scales_with_capacity_and_feature_size() {
        let base = table2_sram();
        let double = model(&BankSpec {
            tech: MemTech::Sram,
            capacity_bytes: 2 * 1024 * 1024,
            feature_nm: 32.0,
            clock_ghz: 3.0,
        });
        assert!(close(double.area_mm2, 2.0 * base.area_mm2, 1e-9));
        let shrunk = model(&BankSpec {
            tech: MemTech::Sram,
            capacity_bytes: 1024 * 1024,
            feature_nm: 22.0,
            clock_ghz: 3.0,
        });
        assert!(shrunk.area_mm2 < 0.5 * base.area_mm2);
    }

    #[test]
    fn bigger_banks_are_slower_and_hungrier() {
        let small = table2_stt();
        let big = model(&BankSpec {
            tech: MemTech::SttRam,
            capacity_bytes: 16 * 1024 * 1024,
            feature_nm: 32.0,
            clock_ghz: 3.0,
        });
        assert!(big.read_ns > small.read_ns);
        assert!(big.read_energy_nj > small.read_energy_nj);
        assert!(big.leakage_mw > small.leakage_mw);
        // The write stays pulse-dominated.
        assert!(big.write_ns - big.read_ns > 9.0);
    }

    #[test]
    fn mtj_pulse_floors_the_write_latency() {
        let tiny = model(&BankSpec {
            tech: MemTech::SttRam,
            capacity_bytes: 64 * 1024,
            feature_nm: 32.0,
            clock_ghz: 3.0,
        });
        assert!(tiny.write_ns >= 10.0);
    }
}
