//! Differential test: the memoized [`RoutingTable`] against a naive
//! reference implementation written independently from Section 3.4 of
//! the paper, over the *entire* query space the simulator can produce —
//! every (position, destination) pair on the two-layer 8x8 chip, for a
//! restricted and an unrestricted packet kind, in both request path
//! modes.

use snoc_common::config::{RequestPathMode, TsbPlacement};
use snoc_common::geom::{Coord, Direction, Geometry, Layer, Mesh};
use snoc_common::ids::{NodeId, RegionId};
use snoc_common::rng::SimRng;
use snoc_noc::packet::{Packet, PacketKind};
use snoc_noc::regions::RegionMap;
use snoc_noc::routing::RoutingTable;

/// One X-first step towards `to` within a layer, straight from the
/// dimension-ordered routing definition: exhaust the X offset, then
/// the Y offset. `None` when the planar coordinates already match.
fn step_toward(at: Coord, to: Coord) -> Option<Direction> {
    if at.x < to.x {
        Some(Direction::East)
    } else if at.x > to.x {
        Some(Direction::West)
    } else if at.y < to.y {
        Some(Direction::North)
    } else if at.y > to.y {
        Some(Direction::South)
    } else {
        None
    }
}

/// The reference routing function, re-derived from the paper rather
/// than the production code:
///
/// * at the destination: eject locally;
/// * a region-restricted bank request still in the core layer X-Y
///   routes to the destination region's TSB column and descends there;
/// * otherwise a packet on the wrong layer changes layer immediately
///   (Z-first), and a packet on the right layer X-Y routes to the
///   destination.
fn reference_hop(
    mesh: Mesh,
    regions: &RegionMap,
    at: Coord,
    dst: Coord,
    restricted: bool,
) -> Direction {
    if at == dst {
        return Direction::Local;
    }
    if restricted && dst.layer == Layer::Cache && at.layer == Layer::Core {
        let tsb = mesh.coord(regions.tsb_for(mesh.node(dst)), Layer::Core);
        return step_toward(at, tsb).unwrap_or(Direction::Down);
    }
    if at.layer != dst.layer {
        return if at.layer == Layer::Core {
            Direction::Down
        } else {
            Direction::Up
        };
    }
    step_toward(at, dst).unwrap_or(Direction::Local)
}

/// Every coordinate on the two-layer chip, core layer first.
fn all_coords(mesh: Mesh) -> Vec<Coord> {
    let n = mesh.nodes_per_layer() as u16;
    [Layer::Core, Layer::Cache]
        .into_iter()
        .flat_map(|layer| (0..n).map(move |i| (i, layer)))
        .map(|(i, layer)| mesh.coord(NodeId::new(i), layer))
        .collect()
}

#[test]
fn memoized_next_hop_agrees_with_the_naive_reference_everywhere() {
    let mesh = Mesh::new(8, 8);
    let coords = all_coords(mesh);
    // BankRead is subject to the region restriction, DataReply never is.
    let kinds = [PacketKind::BankRead, PacketKind::DataReply];
    for mode in [RequestPathMode::RegionTsbs, RequestPathMode::AllTsvs] {
        let regions = RegionMap::new(mesh, 4, TsbPlacement::Corner);
        let table = RoutingTable::new(mesh, mode, regions);
        let mut checked = 0usize;
        for &at in &coords {
            for &dst in &coords {
                for kind in kinds {
                    let p = Packet::new(kind, at, dst, 0, 0);
                    let restricted = mode == RequestPathMode::RegionTsbs && kind.is_bank_request();
                    let want = reference_hop(mesh, table.regions(), at, dst, restricted);
                    let got = table.next_hop(at, &p);
                    assert_eq!(got, want, "{mode:?} {kind:?} {at} -> {dst}");
                    checked += 1;
                }
            }
        }
        // 128 positions x 128 destinations x 2 kinds.
        assert_eq!(checked, 128 * 128 * 2);
    }
}

#[test]
fn memoized_next_hop_agrees_with_the_reference_at_random_geometries() {
    // The 8x8 sweep above pins the paper's design point; this sweep
    // drives the same differential over randomized N x N meshes
    // (N in 4..=16), random region counts, both placement rules and
    // randomly re-homed TSBs (the post-fault assignment shape), still
    // over every (at, dst, kind, mode) tuple of each sampled geometry.
    let mut rng = SimRng::for_stream(0x9E0_D1FF, 1);
    let kinds = [PacketKind::BankRead, PacketKind::DataReply];
    let mut checked = 0usize;
    for _trial in 0..6 {
        let n = (4 + rng.below(13)) as u8; // 4..=16
        let mesh = Mesh::new(n, n);
        let placement = if rng.below(2) == 0 {
            TsbPlacement::Corner
        } else {
            TsbPlacement::Staggered
        };
        let tileable: Vec<usize> = (1..=16)
            .filter(|&k| Geometry::try_new(mesh, k, placement, 1).is_ok())
            .collect();
        let k = tileable[rng.below(tileable.len())];
        let coords = all_coords(mesh);
        for mode in [RequestPathMode::RegionTsbs, RequestPathMode::AllTsvs] {
            let mut regions = RegionMap::new(mesh, k, placement);
            // Re-home a few regions onto arbitrary surviving cache
            // nodes, as a mid-run TSB kill would.
            for r in 0..k {
                if rng.chance(0.3) {
                    let new_tsb = NodeId::new(rng.below(mesh.nodes_per_layer()) as u16);
                    regions.retarget_tsb(RegionId::new(r as u16), new_tsb);
                }
            }
            let table = RoutingTable::new(mesh, mode, regions);
            for &at in &coords {
                for &dst in &coords {
                    for kind in kinds {
                        let p = Packet::new(kind, at, dst, 0, 0);
                        let restricted =
                            mode == RequestPathMode::RegionTsbs && kind.is_bank_request();
                        let want = reference_hop(mesh, table.regions(), at, dst, restricted);
                        let got = table.next_hop(at, &p);
                        assert_eq!(got, want, "{n}x{n} k={k} {mode:?} {kind:?} {at} -> {dst}");
                        checked += 1;
                    }
                }
            }
        }
    }
    assert!(checked > 100_000, "sweep too small: {checked}");
}

#[test]
fn reference_routes_terminate_and_stay_on_chip() {
    // Sanity for the reference itself: following it hop by hop from
    // any source must reach the destination without leaving the mesh.
    let mesh = Mesh::new(8, 8);
    let regions = RegionMap::new(mesh, 4, TsbPlacement::Corner);
    let coords = all_coords(mesh);
    for &src in &coords {
        for &dst in &coords {
            for restricted in [false, true] {
                let mut at = src;
                let mut hops = 0;
                while at != dst {
                    let dir = reference_hop(mesh, &regions, at, dst, restricted);
                    assert_ne!(dir, Direction::Local, "stuck at {at} towards {dst}");
                    at = mesh.neighbour(at, dir).expect("route stays on chip");
                    hops += 1;
                    assert!(hops <= 64, "route too long: {src} -> {dst}");
                }
            }
        }
    }
}
