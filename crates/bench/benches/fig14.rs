//! Bench for the paper's fig14: prints the quick-scale reproduction
//! once, then times one representative simulation run on the
//! dependency-free harness.
use snoc_bench::harness;
use snoc_core::experiments::{fig14, Scale};
use snoc_core::scenario::buff20_config;
use snoc_core::system::System;
use snoc_workload::table3 as t3;

fn main() {
    // Print the reproduced figure/table (quick scale) once.
    println!("{}", fig14::run(Scale::Quick));
    let app = t3::by_name("sclust").unwrap();
    harness::bench("fig14/run/sclust/buff20", || {
        System::homogeneous(Scale::Quick.apply(buff20_config()), app).run()
    });
}
