//! Property tests for the BUFF-20 write buffer (hand-rolled with
//! [`SimRng`]; the workspace carries no external property-testing
//! dependency — same pattern as `estimator_props.rs` in `snoc-noc`).
//!
//! Random `absorb` / `read_probe` / `start_drain` / `abort_drain` /
//! drain-completion sequences are checked against an independently
//! written reference model, and after every operation three invariants
//! must hold:
//!
//! * the buffer never holds more than `capacity` entries;
//! * no address appears twice (writes coalesce);
//! * entries drain in FIFO order of their first absorption.

use snoc_common::rng::SimRng;
use snoc_mem::write_buffer::{BufferedWrite, WriteBuffer};

/// Reference model: a plain ordered list of unique addresses plus an
/// optional in-flight drain, written straight from the intended
/// semantics rather than the production code.
struct RefBuffer {
    capacity: usize,
    entries: Vec<u64>,
}

impl RefBuffer {
    fn absorb(&mut self, addr: u64) -> bool {
        if self.entries.contains(&addr) {
            return true; // coalesces into the existing slot
        }
        if self.entries.len() >= self.capacity {
            return false; // overflow: goes to the array
        }
        self.entries.push(addr);
        true
    }

    fn start_drain(&mut self) -> Option<u64> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries.remove(0))
        }
    }

    fn abort_drain(&mut self, addr: u64) {
        if self.entries.contains(&addr) || self.entries.len() >= self.capacity {
            return; // superseded or no room: committed to the array
        }
        self.entries.insert(0, addr);
    }
}

#[test]
fn random_sequences_match_the_reference_and_hold_the_invariants() {
    for seed in 0..50u64 {
        let mut rng = SimRng::for_stream(0xB0FF, seed);
        let capacity = 1 + rng.below(8);
        let mut buf = WriteBuffer::new(capacity);
        let mut reference = RefBuffer {
            capacity,
            entries: Vec::new(),
        };
        // A small address pool so coalescing and mid-drain duplicates
        // actually happen.
        let pool: Vec<u64> = (0..(2 + rng.below(10) as u64)).map(|i| 0x40 * i).collect();
        let mut in_flight: Option<BufferedWrite> = None;

        for step in 0..2_000 {
            let addr = pool[rng.below(pool.len())];
            match rng.below(10) {
                0..=4 => {
                    let got = buf.absorb(addr);
                    let want = reference.absorb(addr);
                    assert_eq!(got, want, "absorb {addr:#x} step {step} seed {seed}");
                }
                5..=6 => {
                    // One drain at a time, as the bank controller does.
                    if in_flight.is_none() {
                        let got = buf.start_drain();
                        let want = reference.start_drain();
                        assert_eq!(got.map(|e| e.addr), want, "drain step {step} seed {seed}");
                        in_flight = got;
                    }
                }
                7 => {
                    // A preempting read aborts the in-flight drain.
                    if let Some(entry) = in_flight.take() {
                        buf.abort_drain(entry);
                        reference.abort_drain(entry.addr);
                    }
                }
                8 => {
                    // The drain write completes into the array.
                    in_flight = None;
                }
                _ => {
                    let got = buf.read_probe(addr);
                    let want = reference.entries.contains(&addr);
                    assert_eq!(got, want, "probe {addr:#x} step {step} seed {seed}");
                }
            }

            // Invariants after every operation.
            assert!(
                buf.len() <= capacity,
                "capacity exceeded: {} > {capacity} (step {step} seed {seed})",
                buf.len()
            );
            assert_eq!(
                buf.len(),
                reference.entries.len(),
                "length diverged at step {step} seed {seed}"
            );
            for &a in &pool {
                let mut probe = buf.clone();
                assert_eq!(
                    probe.read_probe(a),
                    reference.entries.contains(&a),
                    "contents diverged on {a:#x} at step {step} seed {seed}"
                );
            }
        }

        // Drain everything: order must be the reference's FIFO order
        // (first-absorption order, with coalesced rewrites keeping the
        // original slot).
        if let Some(entry) = in_flight.take() {
            buf.abort_drain(entry);
            reference.abort_drain(entry.addr);
        }
        let mut drained = Vec::new();
        while let Some(e) = buf.start_drain() {
            drained.push(e.addr);
        }
        assert_eq!(drained, reference.entries, "FIFO order (seed {seed})");
        let unique: std::collections::HashSet<_> = drained.iter().collect();
        assert_eq!(unique.len(), drained.len(), "duplicates (seed {seed})");
    }
}
