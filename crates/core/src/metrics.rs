//! Performance metrics (Section 4.1): IPC, instruction throughput,
//! weighted speedup and maximum slowdown, plus the uncore latency and
//! energy aggregates behind Figures 7, 8 and 14.

use snoc_common::stats::Histogram;
use snoc_energy::EnergyBreakdown;
use snoc_noc::audit::AuditReport;
use snoc_noc::fault::FaultSummary;
use snoc_noc::telemetry::TelemetrySummary;

/// The measured output of one simulation run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Measured cycles (after warm-up).
    pub cycles: u64,
    /// Instructions committed per core during measurement.
    pub per_core_committed: Vec<u64>,
    /// Mean network latency of request packets (cycles).
    pub net_request_latency: f64,
    /// Mean network latency of response packets (cycles).
    pub net_response_latency: f64,
    /// Mean queue wait at the banks (cycles).
    pub bank_queue_wait: f64,
    /// Mean bank service occupancy per access (cycles).
    pub bank_service: f64,
    /// Mean core-to-data-return round trip of L2 reads (cycles).
    pub uncore_rtt: f64,
    /// 95th-percentile round trip (tail latency).
    pub uncore_rtt_p95: f64,
    /// Bank read accesses.
    pub bank_reads: u64,
    /// Bank write accesses.
    pub bank_writes: u64,
    /// Memory fetches.
    pub mem_fetches: u64,
    /// Figure 3: merged post-write arrival-gap histogram.
    pub post_write_gaps: Histogram,
    /// Fraction of post-write arrivals landing within the write
    /// service time (the "delayable" 17%-avg / 27%-max statistic).
    pub delayable_fraction: f64,
    /// Mean child-bound request packets buffered at a parent when a
    /// write is forwarded (Figure 3 inset / Figure 13a).
    pub child_queue_mean: f64,
    /// [`child_queue_mean`](Self::child_queue_mean) resolved at parent
    /// distances H = 1, 2, 3 (Figure 13's sensitivity axis).
    pub queue_mean_by_hops: [f64; 3],
    /// Packets held at parent routers.
    pub held_packets: u64,
    /// Total hold cycles.
    pub held_cycles: u64,
    /// Uncore energy breakdown.
    pub energy: EnergyBreakdown,
    /// NoC invariant audit outcome (`None` unless `SNOC_AUDIT` or
    /// [`snoc_noc::NetworkParams::audit`] enabled the auditor).
    pub audit: Option<AuditReport>,
    /// NoC telemetry (`None` unless `SNOC_TELEMETRY` or
    /// [`snoc_noc::NetworkParams::telemetry`] enabled the collector).
    pub telemetry: Option<TelemetrySummary>,
    /// Fault campaign outcome (`None` unless `SNOC_FAULTS` or
    /// [`snoc_noc::NetworkParams::faults`] enabled the injector).
    pub faults: Option<FaultSummary>,
}

impl RunMetrics {
    /// IPC of one core.
    pub fn ipc(&self, core: usize) -> f64 {
        self.per_core_committed[core] as f64 / self.cycles.max(1) as f64
    }

    /// Sum of all cores' IPC (Eq. 1).
    pub fn instruction_throughput(&self) -> f64 {
        self.per_core_committed.iter().sum::<u64>() as f64 / self.cycles.max(1) as f64
    }

    /// Mean per-core IPC.
    pub fn avg_ipc(&self) -> f64 {
        self.instruction_throughput() / self.per_core_committed.len().max(1) as f64
    }

    /// The paper reports multi-threaded improvements for the slowest
    /// thread.
    pub fn slowest_ipc(&self) -> f64 {
        (0..self.per_core_committed.len())
            .map(|c| self.ipc(c))
            .fold(f64::INFINITY, f64::min)
    }

    /// Mean IPC over a set of cores (one application of a mix).
    pub fn ipc_of_cores(&self, cores: &[usize]) -> f64 {
        if cores.is_empty() {
            return 0.0;
        }
        cores.iter().map(|&c| self.ipc(c)).sum::<f64>() / cores.len() as f64
    }

    /// Mean uncore (network + bank) one-way latency proxy used by
    /// Figures 7 and 14: request network latency + bank queue + bank
    /// service + response network latency.
    pub fn uncore_latency(&self) -> f64 {
        self.net_request_latency
            + self.bank_queue_wait
            + self.bank_service
            + self.net_response_latency
    }

    /// Total uncore energy in nJ.
    pub fn uncore_energy_nj(&self) -> f64 {
        self.energy.total_nj()
    }
}

/// Weighted speedup (Eq. 2): sum over applications of
/// `IPC_shared / IPC_alone`.
pub fn weighted_speedup(shared: &[f64], alone: &[f64]) -> f64 {
    assert_eq!(shared.len(), alone.len(), "one alone IPC per application");
    shared
        .iter()
        .zip(alone)
        .map(|(&s, &a)| if a > 0.0 { s / a } else { 0.0 })
        .sum()
}

/// Maximum slowdown (Eq. 3): max over applications of
/// `IPC_alone / IPC_shared`.
pub fn max_slowdown(shared: &[f64], alone: &[f64]) -> f64 {
    assert_eq!(shared.len(), alone.len());
    shared
        .iter()
        .zip(alone)
        .map(|(&s, &a)| if s > 0.0 { a / s } else { f64::INFINITY })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(committed: Vec<u64>, cycles: u64) -> RunMetrics {
        RunMetrics {
            cycles,
            per_core_committed: committed,
            net_request_latency: 20.0,
            net_response_latency: 25.0,
            bank_queue_wait: 10.0,
            bank_service: 5.0,
            uncore_rtt: 60.0,
            uncore_rtt_p95: 120.0,
            bank_reads: 100,
            bank_writes: 50,
            mem_fetches: 10,
            post_write_gaps: Histogram::fig3(),
            delayable_fraction: 0.17,
            child_queue_mean: 3.0,
            queue_mean_by_hops: [1.0, 3.0, 5.0],
            held_packets: 5,
            held_cycles: 50,
            energy: EnergyBreakdown::default(),
            audit: None,
            telemetry: None,
            faults: None,
        }
    }

    #[test]
    fn ipc_and_throughput() {
        let m = metrics(vec![1000, 2000], 1000);
        assert_eq!(m.ipc(0), 1.0);
        assert_eq!(m.ipc(1), 2.0);
        assert_eq!(m.instruction_throughput(), 3.0);
        assert_eq!(m.avg_ipc(), 1.5);
        assert_eq!(m.slowest_ipc(), 1.0);
        assert_eq!(m.ipc_of_cores(&[0, 1]), 1.5);
    }

    #[test]
    fn uncore_latency_sums_components() {
        let m = metrics(vec![1], 1);
        assert_eq!(m.uncore_latency(), 60.0);
    }

    #[test]
    fn weighted_speedup_is_count_when_unslowed() {
        let alone = [1.0, 2.0, 0.5];
        assert!((weighted_speedup(&alone, &alone) - 3.0).abs() < 1e-12);
        let half: Vec<f64> = alone.iter().map(|x| x / 2.0).collect();
        assert!((weighted_speedup(&half, &alone) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn max_slowdown_picks_the_worst_app() {
        let alone = [1.0, 1.0];
        let shared = [0.5, 0.25];
        assert_eq!(max_slowdown(&shared, &alone), 4.0);
    }

    #[test]
    fn zero_guards() {
        assert_eq!(weighted_speedup(&[1.0], &[0.0]), 0.0);
        assert_eq!(max_slowdown(&[0.0], &[1.0]), f64::INFINITY);
    }
}
