//! Cache correctness: a warm-cache sweep rerun must be
//! fingerprint-identical to the cold run, and a corrupted on-disk
//! entry must be recomputed (with an observer note), never trusted.
//!
//! All cache configuration here is programmatic
//! (`SweepRunner::cache_dir` etc.), never via environment variables,
//! so the tests stay race-free under the parallel test harness.

use snoc_core::cellcache::cell_key;
use snoc_core::observer::{RunObserver, SweepSummary};
use snoc_core::scenario::Scenario;
use snoc_core::sweep::{RunSpec, SweepRunner};
use snoc_workload::table3;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Records cache notes and the final hit count for assertions.
#[derive(Default)]
struct Spy {
    notes: Arc<Mutex<Vec<String>>>,
    hits: Arc<AtomicUsize>,
}

impl Spy {
    fn probes(&self) -> (Arc<Mutex<Vec<String>>>, Arc<AtomicUsize>) {
        (Arc::clone(&self.notes), Arc::clone(&self.hits))
    }
}

impl RunObserver for Spy {
    fn cache_note(&self, label: &str, note: &str) {
        self.notes.lock().unwrap().push(format!("{label}: {note}"));
    }

    fn sweep_finished(&self, s: &SweepSummary) {
        self.hits.store(s.cache_hits, Ordering::Relaxed);
    }
}

fn quick_grid() -> Vec<RunSpec> {
    // A Quick-flavoured slice of the conformance sweep: three apps
    // across two scenarios, at cycle counts that keep the test fast.
    let mut grid = Vec::new();
    for sc in [Scenario::Sram64Tsb, Scenario::SttRam4TsbWb] {
        for app in ["tpcc", "sap", "lbm"] {
            let cfg = sc.config().rebuild().cycles(200, 800).build();
            grid.push(RunSpec::homogeneous(
                format!("{}/{app}", sc.name()),
                cfg,
                table3::by_name(app).unwrap(),
            ));
        }
    }
    grid
}

fn fingerprint(results: &[snoc_core::sweep::CellResult]) -> String {
    results
        .iter()
        .map(|r| format!("{} {:?}\n", r.label, r.outcome))
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snoc-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn warm_cache_rerun_is_fingerprint_identical_to_cold() {
    let dir = temp_dir("warm");

    let cold = SweepRunner::new()
        .threads(2)
        .cache_dir(&dir)
        .run_grid("conformance", quick_grid());
    let cold_fp = fingerprint(&cold);

    // A fresh runner (empty in-process map) must serve every cell from
    // the disk store and reproduce the cold fingerprint exactly.
    let spy = Spy::default();
    let (notes, hits) = spy.probes();
    let warm = SweepRunner::new()
        .threads(2)
        .cache_dir(&dir)
        .observer(spy)
        .run_grid("conformance", quick_grid());
    assert_eq!(fingerprint(&warm), cold_fp);
    assert_eq!(
        hits.load(Ordering::Relaxed),
        warm.len(),
        "every cell of the rerun must be a cache hit"
    );
    assert!(
        notes.lock().unwrap().is_empty(),
        "clean entries must not raise cache notes: {:?}",
        notes.lock().unwrap()
    );

    // Caching off must also reproduce the fingerprint (the cache only
    // skips work, never changes results).
    let uncached = SweepRunner::new()
        .cache(false)
        .run_grid("conformance", quick_grid());
    assert_eq!(fingerprint(&uncached), cold_fp);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_disk_entry_is_recomputed_with_a_note() {
    let dir = temp_dir("corrupt");
    let grid = quick_grid();
    let victim = &grid[1];
    let key = cell_key(victim).expect("plain cells are cacheable");

    let cold = SweepRunner::new()
        .cache_dir(&dir)
        .run_grid("conformance", quick_grid());
    let cold_fp = fingerprint(&cold);

    // Vandalize one entry: truncated tail, so the checksum fails.
    let path = dir.join(format!("{key}.cell"));
    let good = std::fs::read_to_string(&path).expect("entry written by the cold run");
    std::fs::write(&path, &good[..good.len() / 3]).unwrap();

    let spy = Spy::default();
    let (notes, hits) = spy.probes();
    let rerun = SweepRunner::new()
        .cache_dir(&dir)
        .observer(spy)
        .run_grid("conformance", quick_grid());

    // Same results as ever — the corrupt entry was recomputed, the
    // other five served from disk.
    assert_eq!(fingerprint(&rerun), cold_fp);
    assert_eq!(hits.load(Ordering::Relaxed), rerun.len() - 1);
    let notes = notes.lock().unwrap();
    assert!(
        notes.iter().any(|n| n.contains("corrupt")),
        "the corrupt entry must be reported: {notes:?}"
    );

    // The recompute must have healed the entry on disk.
    let healed = std::fs::read_to_string(&path).unwrap();
    assert_eq!(healed, good);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn instrumented_cells_bypass_the_cache() {
    use snoc_noc::AuditConfig;
    let dir = temp_dir("instr");
    let instrumented = || vec![quick_grid().remove(0).with_audit(AuditConfig::default())];

    let spy = Spy::default();
    let (_, hits) = spy.probes();
    let first = SweepRunner::new()
        .cache_dir(&dir)
        .observer(spy)
        .run_grid("instr", instrumented());
    assert!(first[0].metrics().audit.is_some());

    // Rerun: still no hits (never cached), audit report still attached.
    let spy = Spy::default();
    let (_, hits2) = spy.probes();
    let second = SweepRunner::new()
        .cache_dir(&dir)
        .observer(spy)
        .run_grid("instr", instrumented());
    assert_eq!(hits.load(Ordering::Relaxed), 0);
    assert_eq!(hits2.load(Ordering::Relaxed), 0);
    assert!(second[0].metrics().audit.is_some());
    assert!(cell_key(&instrumented()[0]).is_none());

    let _ = std::fs::remove_dir_all(&dir);
}
