//! A minimal JSON value: just enough for the sweep-service wire
//! protocol (newline-delimited objects), with no dependency beyond
//! `std`.
//!
//! The parser is a strict recursive-descent reader of one complete
//! value; the writer side is [`escape`] plus `format!` at the call
//! sites (responses are flat objects, so a full serializer would be
//! overkill). Numbers are carried as `f64` — every quantity the
//! protocol moves (cycle counts, indices, rates) fits exactly in the
//! 53-bit mantissa.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is irrelevant to the protocol, so a sorted
    /// map keeps lookups simple.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses exactly one JSON value; trailing non-whitespace is an
    /// error (protocol lines hold one object each).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.at));
        }
        Ok(v)
    }

    /// Object member lookup (`None` for absent keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if this is a
    /// non-negative whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Renders `s` as a quoted JSON string literal (quotes included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.at) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.at))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected '{}' at offset {}", b as char, self.at)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.at += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.at])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".into());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(code).ok_or("escape is not a scalar value")?);
                        }
                        b => return Err(format!("bad escape '\\{}'", b as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid; find the next char start).
                    let rest = &self.bytes[self.at..];
                    let step = (1..=4)
                        .find(|&w| w >= rest.len() || (rest[w] & 0xC0) != 0x80)
                        .unwrap();
                    out.push_str(std::str::from_utf8(&rest[..step]).map_err(|_| "bad utf8")?);
                    self.at += step;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.at..self.at + 4)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or("truncated \\u escape")?;
        self.at += 4;
        u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".into())
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            out.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.at)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = Json::parse(
            r#"{"op":"submit","wait":true,"cells":[{"label":"a","warmup":500,"measure":3000}]}"#,
        )
        .unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("submit"));
        assert_eq!(v.get("wait").and_then(Json::as_bool), Some(true));
        let cells = v.get("cells").and_then(Json::as_arr).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].get("warmup").and_then(Json::as_u64), Some(500));
        assert_eq!(cells[0].get("measure").and_then(Json::as_u64), Some(3000));
    }

    #[test]
    fn parses_scalars_nesting_and_escapes() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" -3.5e2 ").unwrap(), Json::Num(-350.0));
        assert_eq!(
            Json::parse(r#""a\nb\u0041\ud83d\ude00""#).unwrap(),
            Json::Str("a\nbA😀".into())
        );
        let v = Json::parse(r#"[1,[2,{"x":[]}],false]"#).unwrap();
        assert_eq!(v.as_arr().unwrap().len(), 3);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1 2",
            "\"\\q\"",
            "\"unterminated",
            "{\"a\":}",
            "nan",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line\nbreak \"quoted\" back\\slash\ttab \u{1} unicode π😀";
        let doc = format!("{{\"s\":{}}}", escape(nasty));
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some(nasty));
    }
}
