//! Energy and area models.
//!
//! Three pieces: per-event NoC energies in the style of Orion at 32 nm
//! ([`noc_energy`]), SRAM/STT-RAM cache access + leakage energies from
//! Table 2 ([`cache_energy`]), and a small analytic CACTI-style model
//! that regenerates Table 2 from first principles ([`cacti_lite`]).
//! [`accounting`] combines them into the uncore energy of Figure 8.
//!
//! # Example
//!
//! ```
//! use snoc_energy::cacti_lite::{self, BankSpec};
//! use snoc_common::config::MemTech;
//!
//! // Regenerate Table 2's STT-RAM row at 32 nm.
//! let stt = cacti_lite::model(&BankSpec {
//!     tech: MemTech::SttRam,
//!     capacity_bytes: 4 * 1024 * 1024,
//!     feature_nm: 32.0,
//!     clock_ghz: 3.0,
//! });
//! assert_eq!(stt.write_cycles, 33);
//! assert_eq!(stt.read_cycles, 3);
//! ```

pub mod accounting;
pub mod cache_energy;
pub mod cacti_lite;
pub mod noc_energy;

pub use accounting::{EnergyBreakdown, UncoreActivity};
