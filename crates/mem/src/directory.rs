//! Per-line directory state for the two-level MESI protocol.
//!
//! Each L2 line carries a directory entry tracking which L1s hold the
//! block: either a set of sharers (read-only copies) or a single owner
//! (an M/E copy). With 64 cores a sharer bitmask fits in a `u64`.

use snoc_common::ids::CoreId;

/// The directory's view of one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DirEntry {
    /// Sharer bitmask (bit `i` = core `i` holds a read-only copy).
    sharers: u64,
    /// The owning core, holding the block in M or E.
    owner: Option<CoreId>,
    /// The home copy differs from memory (an L2 writeback to DRAM is
    /// needed on eviction).
    pub dirty: bool,
}

impl DirEntry {
    /// A block cached by no L1.
    pub fn uncached() -> Self {
        Self::default()
    }

    /// `true` when no L1 holds the block.
    pub fn is_uncached(&self) -> bool {
        self.sharers == 0 && self.owner.is_none()
    }

    /// The owning core, if the block is held exclusively.
    pub fn owner(&self) -> Option<CoreId> {
        self.owner
    }

    /// Number of sharers.
    pub fn sharer_count(&self) -> u32 {
        self.sharers.count_ones()
    }

    /// `true` if `core` is recorded as a sharer.
    pub fn has_sharer(&self, core: CoreId) -> bool {
        self.sharers & (1 << core.index()) != 0
    }

    /// Iterates the sharer cores.
    pub fn sharers(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..64u16)
            .filter(|&i| self.sharers & (1 << i) != 0)
            .map(CoreId::new)
    }

    /// Records a read-only copy at `core`.
    ///
    /// # Panics
    ///
    /// Debug-panics if the block currently has an owner — callers must
    /// downgrade the owner first.
    pub fn add_sharer(&mut self, core: CoreId) {
        debug_assert!(self.owner.is_none(), "sharer added while owned");
        self.sharers |= 1 << core.index();
    }

    /// Grants exclusive ownership to `core`, clearing all sharers.
    pub fn set_owner(&mut self, core: CoreId) {
        self.sharers = 0;
        self.owner = Some(core);
    }

    /// The owner gives up its copy, leaving it (optionally) as a
    /// sharer.
    pub fn downgrade_owner(&mut self, keep_as_sharer: bool) {
        if let Some(o) = self.owner.take() {
            if keep_as_sharer {
                self.sharers |= 1 << o.index();
            }
        }
    }

    /// Removes `core` from the sharers / ownership.
    pub fn remove(&mut self, core: CoreId) {
        self.sharers &= !(1 << core.index());
        if self.owner == Some(core) {
            self.owner = None;
        }
    }

    /// Clears all cached copies (used when the home line is evicted).
    pub fn clear(&mut self) {
        self.sharers = 0;
        self.owner = None;
    }

    /// Directory invariant: an owner excludes sharers.
    pub fn invariant_holds(&self) -> bool {
        self.owner.is_none() || self.sharers == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_uncached() {
        let d = DirEntry::uncached();
        assert!(d.is_uncached());
        assert!(d.invariant_holds());
        assert_eq!(d.sharer_count(), 0);
        assert!(d.owner().is_none());
    }

    #[test]
    fn sharers_accumulate() {
        let mut d = DirEntry::uncached();
        d.add_sharer(CoreId::new(3));
        d.add_sharer(CoreId::new(63));
        assert_eq!(d.sharer_count(), 2);
        assert!(d.has_sharer(CoreId::new(3)));
        assert!(!d.has_sharer(CoreId::new(4)));
        let list: Vec<_> = d.sharers().collect();
        assert_eq!(list, vec![CoreId::new(3), CoreId::new(63)]);
        assert!(d.invariant_holds());
    }

    #[test]
    fn ownership_clears_sharers() {
        let mut d = DirEntry::uncached();
        d.add_sharer(CoreId::new(1));
        d.add_sharer(CoreId::new(2));
        d.set_owner(CoreId::new(7));
        assert_eq!(d.owner(), Some(CoreId::new(7)));
        assert_eq!(d.sharer_count(), 0);
        assert!(d.invariant_holds());
    }

    #[test]
    fn downgrade_can_keep_owner_as_sharer() {
        let mut d = DirEntry::uncached();
        d.set_owner(CoreId::new(7));
        d.downgrade_owner(true);
        assert!(d.owner().is_none());
        assert!(d.has_sharer(CoreId::new(7)));
        d.set_owner(CoreId::new(8));
        d.downgrade_owner(false);
        assert!(d.is_uncached());
    }

    #[test]
    fn remove_handles_both_roles() {
        let mut d = DirEntry::uncached();
        d.add_sharer(CoreId::new(5));
        d.remove(CoreId::new(5));
        assert!(d.is_uncached());
        d.set_owner(CoreId::new(6));
        d.remove(CoreId::new(6));
        assert!(d.is_uncached());
    }
}
