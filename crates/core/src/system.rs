//! The assembled 3D CMP: 64 cores + L1s on the top die, 64 L2 banks +
//! 4 memory controllers on the bottom die, joined by the STT-RAM-aware
//! NoC.
//!
//! The system runs in one of two drive modes:
//!
//! * [`DriveMode::Profile`] — cores execute profile-driven streams;
//!   hit/miss classification rides in the generated addresses and the
//!   banks run tagless ([`TagMode::Probabilistic`]). The L2-side
//!   traffic matches Table 3 by construction. Used for the figure
//!   reproductions.
//! * [`DriveMode::FullStack`] — real L1 tag arrays and the MESI
//!   directory; coherence traffic (invalidations, forwards, writebacks
//!   through the home bank) emerges organically.

use crate::metrics::RunMetrics;
use snoc_common::config::SystemConfig;
use snoc_common::geom::{Coord, Layer, Mesh};
use snoc_common::ids::{BankId, CoreId, McId, NodeId};
use snoc_common::stats::{Accumulator, Histogram, Reservoir};
use snoc_common::Cycle;
use snoc_cpu::{Instr, InstructionStream, Issue, MemPort, OooCore};
use snoc_energy::{EnergyBreakdown, UncoreActivity};
use snoc_mem::l2bank::TagMode;
use snoc_mem::mem_ctrl::Fill;
use snoc_mem::protocol::{BankIn, BankMsg, L1In, L1Msg};
use snoc_mem::tech::TechParams;
use snoc_mem::{L1Cache, L2Bank, MemoryController};
use snoc_noc::{Network, NetworkParams, NocEnv, Packet, PacketKind, TrafficClass};
use snoc_workload::mixes::Workload;
use snoc_workload::{generator, BenchmarkProfile, FullStackStream, ProfileStream};
use std::collections::HashMap;

/// How the cores are driven (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriveMode {
    /// Profile-driven, tagless banks.
    Profile,
    /// Real L1/L2 tags and MESI coherence.
    FullStack,
}

/// Voluntary PutM / InvAck marker token.
const PLAIN_TOKEN: u64 = u64::MAX;
/// Marks a Writeback/Ack as a forward response; low bits carry the
/// home transaction id.
const FWD_FLAG: u64 = 1 << 62;

fn compose_token(core: CoreId, token: u64) -> u64 {
    ((core.index() as u64) << 32) | (token & 0xFFFF_FFFF)
}

fn core_of_token(token: u64) -> CoreId {
    CoreId::new(((token >> 32) & 0xFFFF) as u16)
}

enum Stream {
    Profile(ProfileStream),
    Full(FullStackStream),
}

impl InstructionStream for Stream {
    fn next_instr(&mut self) -> Instr {
        match self {
            Stream::Profile(s) => s.next_instr(),
            Stream::Full(s) => s.next_instr(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingRead {
    core: CoreId,
    token: u64,
    issued: Cycle,
}

/// The complete simulated chip.
pub struct System {
    cfg: SystemConfig,
    mode: DriveMode,
    mesh: Mesh,
    net: Network,
    cores: Vec<OooCore>,
    streams: Vec<Stream>,
    l1s: Vec<L1Cache>,
    banks: Vec<L2Bank>,
    mcs: Vec<MemoryController>,
    mc_nodes: Vec<NodeId>,
    now: Cycle,
    pending_reads: HashMap<u64, PendingRead>,
    full_issue: HashMap<(u16, u64), Cycle>,
    uncore_rtt: Accumulator,
    uncore_rtt_tail: Reservoir,
    commit_base: Vec<u64>,
    /// Maximum packets allowed in a core NI's injection queue before
    /// the core stalls (models a bounded L1 writeback buffer).
    inject_cap: usize,
    /// Persistent sink for [`MemoryController::tick`] completions —
    /// cleared and refilled each cycle instead of allocating.
    fill_sink: Vec<Fill>,
}

impl System {
    /// Builds a system running `workload` (one profile per core) in
    /// the given mode.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SystemConfig::validate`] or
    /// the workload does not cover every core.
    pub fn new(cfg: SystemConfig, workload: &Workload, mode: DriveMode) -> Self {
        Self::with_env(cfg, workload, mode, &NocEnv::capture())
    }

    /// Builds a system like [`System::new`], but with every NoC
    /// environment fallback (`SNOC_AUDIT`/`SNOC_TELEMETRY`/
    /// `SNOC_FAULTS`/`SNOC_SHARDS`) taken from the pre-captured `env`
    /// snapshot instead of the live process environment. Multi-cell
    /// engines (the sweep runner, the sweep server) resolve the
    /// environment once and build every cell through this, so a
    /// mid-flight environment mutation can never alter an accepted
    /// cell.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SystemConfig::validate`] or
    /// the workload does not cover every core.
    pub fn with_env(cfg: SystemConfig, workload: &Workload, mode: DriveMode, env: &NocEnv) -> Self {
        cfg.validate().expect("valid configuration");
        assert_eq!(workload.apps.len(), cfg.cores(), "one application per core");
        let mesh = Mesh::new(cfg.noc.width, cfg.noc.height);
        let net = Network::new(NetworkParams::resolve(&cfg, env));
        let banks_n = cfg.banks();
        let cap_factor = cfg.effective_capacity_factor();

        let cores: Vec<OooCore> = (0..cfg.cores())
            .map(|i| OooCore::new(CoreId::new(i as u16), cfg.core))
            .collect();
        let streams: Vec<Stream> = workload
            .apps
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let core = CoreId::new(i as u16);
                match mode {
                    DriveMode::Profile => {
                        Stream::Profile(ProfileStream::new(p, core, banks_n, cap_factor, cfg.seed))
                    }
                    DriveMode::FullStack => {
                        Stream::Full(FullStackStream::new(p, core, banks_n, cfg.seed))
                    }
                }
            })
            .collect();
        let l1s: Vec<L1Cache> = (0..cfg.cores())
            .map(|i| L1Cache::new(CoreId::new(i as u16), &cfg.mem, banks_n))
            .collect();
        let tag_mode = match mode {
            DriveMode::Profile => TagMode::Probabilistic,
            DriveMode::FullStack => TagMode::Real,
        };
        let banks: Vec<L2Bank> = (0..banks_n)
            .map(|i| {
                L2Bank::new(
                    BankId::new(i as u16),
                    &cfg.mem,
                    cfg.tech,
                    cfg.write_buffer,
                    tag_mode,
                )
            })
            .collect();
        let w = cfg.noc.width as u16;
        let h = cfg.noc.height as u16;
        let mc_nodes: Vec<NodeId> = [0, w - 1, (h - 1) * w, h * w - 1]
            .into_iter()
            .map(NodeId::new)
            .collect();
        let mcs: Vec<MemoryController> = (0..cfg.mem.mem_controllers)
            .map(|i| {
                MemoryController::new(
                    McId::new(i as u16),
                    cfg.mem.dram_latency,
                    cfg.mem.mc_outstanding,
                )
            })
            .collect();
        let commit_base = vec![0; cfg.cores()];

        Self {
            cfg,
            mode,
            mesh,
            net,
            cores,
            streams,
            l1s,
            banks,
            mcs,
            mc_nodes,
            now: 0,
            pending_reads: HashMap::new(),
            full_issue: HashMap::new(),
            uncore_rtt: Accumulator::new(),
            uncore_rtt_tail: Reservoir::new(4096),
            commit_base,
            inject_cap: 24,
            fill_sink: Vec::new(),
        }
    }

    /// Re-targets this system at a new sweep cell, reusing the
    /// network's allocated workspace shards, packet arena, routing
    /// memoization and scratch via [`Network::reset`] instead of
    /// reconstructing them.
    ///
    /// Cores, streams, caches, banks and controllers are rebuilt
    /// fresh — they are cheap relative to the network, and rebuilding
    /// them is trivially identical to construction. A system reset
    /// this way produces bit-identical metrics to
    /// [`System::new`] with the same arguments (the conformance and
    /// sweep-cache tests assert this).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SystemConfig::validate`] or
    /// the workload does not cover every core.
    pub fn reset_for_cell(&mut self, cfg: SystemConfig, workload: &Workload, mode: DriveMode) {
        self.reset_for_cell_env(cfg, workload, mode, &NocEnv::capture());
    }

    /// [`System::reset_for_cell`] with the environment fallbacks taken
    /// from the pre-captured `env` snapshot (see [`System::with_env`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SystemConfig::validate`] or
    /// the workload does not cover every core.
    pub fn reset_for_cell_env(
        &mut self,
        cfg: SystemConfig,
        workload: &Workload,
        mode: DriveMode,
        env: &NocEnv,
    ) {
        cfg.validate().expect("valid configuration");
        assert_eq!(workload.apps.len(), cfg.cores(), "one application per core");
        self.net.reset(NetworkParams::resolve(&cfg, env));
        self.mesh = Mesh::new(cfg.noc.width, cfg.noc.height);
        let banks_n = cfg.banks();
        let cap_factor = cfg.effective_capacity_factor();
        self.cores = (0..cfg.cores())
            .map(|i| OooCore::new(CoreId::new(i as u16), cfg.core))
            .collect();
        self.streams = workload
            .apps
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let core = CoreId::new(i as u16);
                match mode {
                    DriveMode::Profile => {
                        Stream::Profile(ProfileStream::new(p, core, banks_n, cap_factor, cfg.seed))
                    }
                    DriveMode::FullStack => {
                        Stream::Full(FullStackStream::new(p, core, banks_n, cfg.seed))
                    }
                }
            })
            .collect();
        self.l1s = (0..cfg.cores())
            .map(|i| L1Cache::new(CoreId::new(i as u16), &cfg.mem, banks_n))
            .collect();
        let tag_mode = match mode {
            DriveMode::Profile => TagMode::Probabilistic,
            DriveMode::FullStack => TagMode::Real,
        };
        self.banks = (0..banks_n)
            .map(|i| {
                L2Bank::new(
                    BankId::new(i as u16),
                    &cfg.mem,
                    cfg.tech,
                    cfg.write_buffer,
                    tag_mode,
                )
            })
            .collect();
        let w = cfg.noc.width as u16;
        let h = cfg.noc.height as u16;
        self.mc_nodes = [0, w - 1, (h - 1) * w, h * w - 1]
            .into_iter()
            .map(NodeId::new)
            .collect();
        self.mcs = (0..cfg.mem.mem_controllers)
            .map(|i| {
                MemoryController::new(
                    McId::new(i as u16),
                    cfg.mem.dram_latency,
                    cfg.mem.mc_outstanding,
                )
            })
            .collect();
        self.commit_base = vec![0; cfg.cores()];
        self.now = 0;
        self.pending_reads.clear();
        self.full_issue.clear();
        self.uncore_rtt = Accumulator::new();
        self.uncore_rtt_tail = Reservoir::new(4096);
        self.fill_sink.clear();
        self.cfg = cfg;
        self.mode = mode;
    }

    /// All 64 cores run `profile` in profile-driven mode (the standard
    /// setup for the figure reproductions).
    pub fn homogeneous(cfg: SystemConfig, profile: &'static BenchmarkProfile) -> Self {
        let cores = cfg.cores();
        let workload = Workload {
            name: profile.name.to_string(),
            apps: vec![profile; cores],
        };
        Self::new(cfg, &workload, DriveMode::Profile)
    }

    /// The configuration in force.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The network (instrumentation).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The banks (instrumentation).
    pub fn banks(&self) -> &[L2Bank] {
        &self.banks
    }

    /// The cores (instrumentation).
    pub fn cores(&self) -> &[OooCore] {
        &self.cores
    }

    fn core_coord(&self, core: CoreId) -> Coord {
        self.mesh.coord(core.node(), Layer::Core)
    }

    fn cache_coord(&self, bank: BankId) -> Coord {
        self.mesh.coord(bank.node(), Layer::Cache)
    }

    fn mc_index(&self, block: u64) -> usize {
        ((block >> 7) % self.mcs.len() as u64) as usize
    }

    fn mc_coord(&self, block: u64) -> Coord {
        self.mesh
            .coord(self.mc_nodes[self.mc_index(block)], Layer::Cache)
    }

    fn l1msg_to_packet(&self, core: CoreId, msg: L1Msg) -> Packet {
        let src = self.core_coord(core);
        let dst = self.cache_coord(msg.home());
        match msg {
            L1Msg::GetS { block, .. } => Packet::new(
                PacketKind::BankRead,
                src,
                dst,
                block,
                compose_token(core, 0),
            ),
            L1Msg::GetM { block, .. } => Packet::new(
                PacketKind::BankWrite,
                src,
                dst,
                block,
                compose_token(core, 0),
            ),
            L1Msg::PutM { block, .. } => {
                Packet::new(PacketKind::Writeback, src, dst, block, PLAIN_TOKEN)
            }
            L1Msg::FwdData { block, txn, .. } => {
                Packet::new(PacketKind::Writeback, src, dst, block, FWD_FLAG | txn)
            }
            L1Msg::FwdMiss { block, txn, .. } => {
                Packet::new(PacketKind::Ack, src, dst, block, FWD_FLAG | txn)
            }
            L1Msg::InvAck { block, .. } => {
                Packet::new(PacketKind::Ack, src, dst, block, PLAIN_TOKEN)
            }
        }
    }

    fn bankmsg_to_packet(&self, bank: BankId, msg: BankMsg) -> Packet {
        let src = self.cache_coord(bank);
        match msg {
            BankMsg::Data {
                block,
                to,
                exclusive,
            } => Packet::new(
                PacketKind::DataReply,
                src,
                self.core_coord(to),
                block,
                exclusive as u64,
            ),
            BankMsg::Inv { block, to } => {
                Packet::new(PacketKind::Inv, src, self.core_coord(to), block, 0)
            }
            BankMsg::FwdGetS { block, to, txn } => {
                Packet::new(PacketKind::Fwd, src, self.core_coord(to), block, txn << 1)
            }
            BankMsg::FwdGetM { block, to, txn } => Packet::new(
                PacketKind::Fwd,
                src,
                self.core_coord(to),
                block,
                (txn << 1) | 1,
            ),
            BankMsg::Fetch { block } => Packet::new(
                PacketKind::MemFetch,
                src,
                self.mc_coord(block),
                block,
                bank.raw() as u64,
            ),
            BankMsg::WriteMem { block } => Packet::new(
                PacketKind::MemWriteback,
                src,
                self.mc_coord(block),
                block,
                bank.raw() as u64,
            ),
        }
    }

    /// Advances the whole chip by one cycle.
    pub fn step(&mut self) {
        let now = self.now;

        // 1. Cores fetch/issue/commit.
        {
            let mesh = self.mesh;
            let mode = self.mode;
            let l1_latency = self.cfg.mem.l1_latency;
            let inject_cap = self.inject_cap;
            for i in 0..self.cores.len() {
                let mut port = CorePort {
                    mode,
                    mesh,
                    net: &mut self.net,
                    l1: &mut self.l1s[i],
                    pending_reads: &mut self.pending_reads,
                    full_issue: &mut self.full_issue,
                    l1_latency,
                    inject_cap,
                };
                self.cores[i].tick(now, &mut self.streams[i], &mut port);
            }
        }

        // 2. The network moves flits.
        self.net.step();

        // 3. Deliveries. Bank intake is bounded: a busy bank admits
        // nothing new, so requests pile up in its NI and then in the
        // network — the congestion the bank-aware schemes avoid.
        for node_idx in 0..self.mesh.nodes_per_layer() as u16 {
            let node = NodeId::new(node_idx);
            let cache_at = self.mesh.coord(node, Layer::Cache);
            let room = self
                .cfg
                .mem
                .bank_queue
                .saturating_sub(self.banks[node_idx as usize].controller().queue_len());
            for pkt in self.net.drain_delivered_up_to(cache_at, room) {
                self.deliver_cache(node, pkt, now);
            }
            let core_at = self.mesh.coord(node, Layer::Core);
            for pkt in self.net.drain_delivered(core_at) {
                self.deliver_core(node, pkt, now);
            }
        }

        // 4. Banks service their queues.
        for b in 0..self.banks.len() {
            let msgs = self.banks[b].tick(now);
            let bank = BankId::new(b as u16);
            for m in msgs {
                let p = self.bankmsg_to_packet(bank, m);
                self.net.inject(p);
            }
        }

        // 5. Memory controllers.
        let mut fills = std::mem::take(&mut self.fill_sink);
        for m in 0..self.mcs.len() {
            fills.clear();
            self.mcs[m].tick(now, &mut fills);
            let src = self.mesh.coord(self.mc_nodes[m], Layer::Cache);
            for f in &fills {
                let dst = self.cache_coord(f.to);
                self.net
                    .inject(Packet::new(PacketKind::MemFill, src, dst, f.block, 0));
            }
        }
        self.fill_sink = fills;

        self.now += 1;
    }

    fn deliver_cache(&mut self, node: NodeId, pkt: Packet, now: Cycle) {
        // Memory-controller traffic terminates at the corner MCs.
        match pkt.kind {
            PacketKind::MemFetch => {
                let mc = self.mc_index(pkt.addr);
                debug_assert_eq!(self.mc_nodes[mc], node, "fetch routed to its MC");
                self.mcs[mc].fetch(pkt.addr, BankId::new(pkt.token as u16), now);
                return;
            }
            PacketKind::MemWriteback => {
                let mc = self.mc_index(pkt.addr);
                self.mcs[mc].write(pkt.addr, BankId::new(pkt.token as u16), now);
                return;
            }
            _ => {}
        }
        let bank_id = BankId::new(node.raw());
        let from = self.mesh.node(Coord {
            layer: Layer::Core,
            ..pkt.src
        });
        let from_core = CoreId::new(from.raw());
        let forced_miss = generator::decode(pkt.addr).map(|a| a.miss).unwrap_or(false);
        let msg = match pkt.kind {
            PacketKind::BankRead => BankIn::GetS {
                block: pkt.addr,
                from: core_of_token(pkt.token),
            },
            PacketKind::BankWrite => BankIn::GetM {
                block: pkt.addr,
                from: core_of_token(pkt.token),
            },
            PacketKind::Writeback => {
                if pkt.token & FWD_FLAG != 0 {
                    BankIn::FwdData {
                        block: pkt.addr,
                        from: from_core,
                        txn: pkt.token & !FWD_FLAG,
                    }
                } else {
                    BankIn::PutM {
                        block: pkt.addr,
                        from: from_core,
                    }
                }
            }
            PacketKind::Ack => {
                if pkt.token & FWD_FLAG != 0 {
                    BankIn::FwdMiss {
                        block: pkt.addr,
                        from: from_core,
                        txn: pkt.token & !FWD_FLAG,
                    }
                } else {
                    BankIn::InvAck {
                        block: pkt.addr,
                        from: from_core,
                    }
                }
            }
            PacketKind::MemFill => BankIn::Fill { block: pkt.addr },
            other => unreachable!("unexpected packet at a cache node: {other:?}"),
        };
        // Timestamp jobs with the packet's arrival at the interface so
        // the NI wait counts as bank-side queuing (Figure 7's split).
        let arrived = pkt.ejected_at.min(now);
        let replies = self.banks[bank_id.index()].handle(msg, forced_miss, arrived);
        for m in replies {
            let p = self.bankmsg_to_packet(bank_id, m);
            self.net.inject(p);
        }
    }

    fn deliver_core(&mut self, node: NodeId, pkt: Packet, now: Cycle) {
        let core = CoreId::new(node.raw());
        match pkt.kind {
            PacketKind::DataReply => match self.mode {
                DriveMode::Profile => {
                    if let Some(p) = self.pending_reads.remove(&pkt.addr) {
                        self.cores[p.core.index()].complete(p.token, now);
                        self.uncore_rtt.record((now - p.issued) as f64);
                        self.uncore_rtt_tail.record((now - p.issued) as f64);
                    }
                }
                DriveMode::FullStack => {
                    if let Some(issued) = self.full_issue.remove(&(core.raw(), pkt.addr)) {
                        self.uncore_rtt.record((now - issued) as f64);
                        self.uncore_rtt_tail.record((now - issued) as f64);
                    }
                    let exclusive = pkt.token & 1 == 1;
                    let (msgs, retired) = self.l1s[core.index()].handle(L1In::Data {
                        block: pkt.addr,
                        exclusive,
                    });
                    for t in retired {
                        self.cores[core.index()].complete(t, now);
                    }
                    for m in msgs {
                        let p = self.l1msg_to_packet(core, m);
                        self.net.inject(p);
                    }
                }
            },
            PacketKind::Inv | PacketKind::Fwd => {
                let home_node = self.mesh.node(Coord {
                    layer: Layer::Cache,
                    ..pkt.src
                });
                let home = BankId::new(home_node.raw());
                let msg = match pkt.kind {
                    PacketKind::Inv => L1In::Inv {
                        block: pkt.addr,
                        home,
                    },
                    PacketKind::Fwd if pkt.token & 1 == 1 => L1In::FwdGetM {
                        block: pkt.addr,
                        home,
                        txn: pkt.token >> 1,
                    },
                    _ => L1In::FwdGetS {
                        block: pkt.addr,
                        home,
                        txn: pkt.token >> 1,
                    },
                };
                let (msgs, retired) = self.l1s[core.index()].handle(msg);
                for t in retired {
                    self.cores[core.index()].complete(t, now);
                }
                for m in msgs {
                    let p = self.l1msg_to_packet(core, m);
                    self.net.inject(p);
                }
            }
            other => unreachable!("unexpected packet at a core node: {other:?}"),
        }
    }

    /// Marks the end of warm-up: clears all statistics without
    /// disturbing in-flight state.
    pub fn begin_measurement(&mut self) {
        self.net.reset_stats();
        for b in &mut self.banks {
            b.reset_stats();
        }
        for m in &mut self.mcs {
            m.reset_stats();
        }
        self.uncore_rtt = Accumulator::new();
        self.uncore_rtt_tail = Reservoir::new(4096);
        for (i, c) in self.cores.iter().enumerate() {
            self.commit_base[i] = c.committed();
        }
    }

    /// Collects the metrics accumulated since
    /// [`System::begin_measurement`] over `cycles` measured cycles.
    pub fn metrics(&self, cycles: u64) -> RunMetrics {
        let per_core_committed: Vec<u64> = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, c)| c.committed() - self.commit_base[i])
            .collect();
        let mut queue_wait = Accumulator::new();
        let mut gaps = Histogram::fig3();
        let (mut reads, mut writes, mut busy, mut behind, mut after, mut fetches) =
            (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
        for b in &self.banks {
            let t = b.timing();
            queue_wait.merge(&t.queue_wait);
            gaps.merge(&t.post_write_gaps);
            reads += t.reads;
            writes += t.writes;
            busy += t.busy_cycles;
            behind += t.arrivals_behind_write;
            after += t.arrivals_after_write;
            fetches += b.stats.fetches;
        }
        let accesses = (reads + writes).max(1);
        let ns = self.net.stats();
        let activity = UncoreActivity {
            cycles,
            routers: 2 * self.mesh.nodes_per_layer(),
            banks: self.banks.len(),
            buffer_writes: self.net.buffer_writes(),
            switch_traversals: self.net.switch_traversals(),
            lateral_flits: ns.lateral_flits,
            vertical_flits: ns.vertical_flits,
            bank_reads: reads,
            bank_writes: writes,
        };
        let energy = EnergyBreakdown::compute(&activity, TechParams::of(self.cfg.tech), 3.0);
        RunMetrics {
            cycles,
            per_core_committed,
            net_request_latency: ns.request_latency.mean(),
            net_response_latency: ns.response_latency.mean(),
            bank_queue_wait: queue_wait.mean(),
            bank_service: busy as f64 / accesses as f64,
            uncore_rtt: self.uncore_rtt.mean(),
            uncore_rtt_p95: self.uncore_rtt_tail.p95(),
            bank_reads: reads,
            bank_writes: writes,
            mem_fetches: fetches,
            post_write_gaps: gaps,
            delayable_fraction: if after == 0 {
                0.0
            } else {
                behind as f64 / after as f64
            },
            child_queue_mean: self.net.child_queue_mean(),
            queue_mean_by_hops: [
                self.net.queue_mean_at_hops(1),
                self.net.queue_mean_at_hops(2),
                self.net.queue_mean_at_hops(3),
            ],
            held_packets: self.net.held_packets(),
            held_cycles: self.net.held_cycles(),
            energy,
            audit: self.net.audit_report().cloned(),
            telemetry: self.net.telemetry_summary(),
            faults: self.net.fault_summary(),
        }
    }

    /// Switches on NoC fault injection for this run (programmatic
    /// alternative to `SNOC_FAULTS`; safe under parallel sweeps where
    /// mutating the environment would race).
    pub fn enable_faults(&mut self, plan: snoc_noc::FaultPlan) {
        self.net.enable_faults(plan);
    }

    /// Switches on NoC invariant auditing for this run (programmatic
    /// alternative to `SNOC_AUDIT`; safe under parallel sweeps where
    /// mutating the environment would race). The report lands in
    /// [`RunMetrics::audit`].
    pub fn enable_audit(&mut self, cfg: snoc_noc::AuditConfig) {
        self.net.enable_audit(cfg);
    }

    /// Switches on NoC telemetry collection for this run (programmatic
    /// alternative to `SNOC_TELEMETRY`). The summary lands in
    /// [`RunMetrics::telemetry`].
    pub fn enable_telemetry(&mut self, cfg: snoc_noc::TelemetryConfig) {
        self.net.enable_telemetry(cfg);
    }

    /// Runs warm-up then the measurement window and returns the
    /// metrics.
    pub fn run(&mut self) -> RunMetrics {
        for _ in 0..self.cfg.warmup_cycles {
            self.step();
        }
        self.begin_measurement();
        for _ in 0..self.cfg.measure_cycles {
            self.step();
        }
        self.metrics(self.cfg.measure_cycles)
    }
}

/// The per-core memory port wiring the window model to the L1 (full
/// stack) or directly to the network (profile mode).
struct CorePort<'a> {
    mode: DriveMode,
    mesh: Mesh,
    net: &'a mut Network,
    l1: &'a mut L1Cache,
    pending_reads: &'a mut HashMap<u64, PendingRead>,
    full_issue: &'a mut HashMap<(u16, u64), Cycle>,
    l1_latency: u64,
    inject_cap: usize,
}

impl MemPort for CorePort<'_> {
    fn issue(&mut self, core: CoreId, addr: u64, is_write: bool, token: u64, now: Cycle) -> Issue {
        match self.mode {
            DriveMode::Profile => {
                let acc = generator::decode(addr).expect("profile streams encode addresses");
                if !acc.l2 {
                    return Issue::Done(now + self.l1_latency);
                }
                let src = self.mesh.coord(core.node(), Layer::Core);
                if self.net.inject_backlog(src) >= self.inject_cap {
                    return Issue::Retry;
                }
                let dst = self.mesh.coord(BankId::new(acc.bank).node(), Layer::Cache);
                // Both reads and writes are 1-flit address packets
                // from the core (Table 1); the write's data transfer
                // rides the unrestricted response path. The window
                // slot blocks until the bank answers.
                let kind = if is_write {
                    PacketKind::BankWrite
                } else {
                    PacketKind::BankRead
                };
                let full = compose_token(core, token);
                self.net.inject(Packet::new(kind, src, dst, addr, full));
                self.pending_reads.insert(
                    addr,
                    PendingRead {
                        core,
                        token,
                        issued: now,
                    },
                );
                Issue::Pending
            }
            DriveMode::FullStack => {
                let src = self.mesh.coord(core.node(), Layer::Core);
                if self.net.inject_backlog(src) >= self.inject_cap {
                    return Issue::Retry;
                }
                let (outcome, msgs) = self.l1.access(addr, is_write, token);
                let block = self.l1.block_of(addr);
                for m in &msgs {
                    let p = match m {
                        L1Msg::GetS { block, home } => Packet::new(
                            PacketKind::BankRead,
                            src,
                            self.mesh.coord(home.node(), Layer::Cache),
                            *block,
                            compose_token(core, 0),
                        ),
                        L1Msg::GetM { block, home } => Packet::new(
                            PacketKind::BankWrite,
                            src,
                            self.mesh.coord(home.node(), Layer::Cache),
                            *block,
                            compose_token(core, 0),
                        ),
                        other => {
                            unreachable!("access only produces GetS/GetM, got {other:?}")
                        }
                    };
                    self.net.inject(p);
                }
                match outcome {
                    snoc_mem::l1::AccessOutcome::Hit => Issue::Done(now + self.l1_latency),
                    snoc_mem::l1::AccessOutcome::Miss => {
                        self.full_issue.entry((core.raw(), block)).or_insert(now);
                        Issue::Pending
                    }
                    snoc_mem::l1::AccessOutcome::Blocked => Issue::Retry,
                }
            }
        }
    }
}

// A compile-time reminder that TrafficClass stays in sync with the
// packet kinds used here.
const _: fn(PacketKind) -> TrafficClass = PacketKind::class;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use snoc_workload::table3;

    fn small_cfg(s: Scenario) -> SystemConfig {
        let mut cfg = s.config();
        cfg.warmup_cycles = 300;
        cfg.measure_cycles = 2_000;
        cfg
    }

    #[test]
    fn profile_system_runs_and_commits() {
        let p = table3::by_name("tpcc").unwrap();
        let mut sys = System::homogeneous(small_cfg(Scenario::Sram64Tsb), p);
        let m = sys.run();
        assert!(
            m.instruction_throughput() > 1.0,
            "it={}",
            m.instruction_throughput()
        );
        assert!(m.bank_reads > 0);
        assert!(m.bank_writes > 0, "tpcc is write-heavy");
        assert!(
            m.uncore_rtt > 10.0,
            "reads take a round trip: {}",
            m.uncore_rtt
        );
    }

    #[test]
    fn stt_write_latency_hurts_write_heavy_apps() {
        let p = table3::by_name("tpcc").unwrap();
        let sram = System::homogeneous(small_cfg(Scenario::Sram64Tsb), p).run();
        let stt = System::homogeneous(small_cfg(Scenario::SttRam64Tsb), p).run();
        assert!(
            stt.bank_queue_wait > sram.bank_queue_wait * 1.5,
            "33-cycle writes must queue: sram {} vs stt {}",
            sram.bank_queue_wait,
            stt.bank_queue_wait
        );
    }

    #[test]
    fn full_stack_system_generates_coherence() {
        let p = table3::by_name("sclust").unwrap(); // multithreaded, write-heavy
        let cfg = small_cfg(Scenario::SttRam64Tsb);
        let cores = cfg.cores();
        let w = Workload {
            name: "sclust".into(),
            apps: vec![p; cores],
        };
        let mut sys = System::new(cfg, &w, DriveMode::FullStack);
        let m = sys.run();
        assert!(m.instruction_throughput() > 0.5);
        assert!(m.bank_reads > 0);
        let coh: u64 = sys
            .l1s
            .iter()
            .map(|l| l.stats.invalidations + l.stats.forwards)
            .sum();
        assert!(coh > 0, "shared blocks must create coherence traffic");
    }

    #[test]
    fn wb_scheme_holds_packets_for_bursty_writes() {
        let p = table3::by_name("lbm").unwrap();
        let mut sys = System::homogeneous(small_cfg(Scenario::SttRam4TsbWb), p);
        let m = sys.run();
        assert!(
            m.held_packets > 0,
            "bank-aware parents must delay some requests"
        );
        assert!(m.instruction_throughput() > 0.0);
    }

    #[test]
    fn deterministic_replay() {
        let p = table3::by_name("sap").unwrap();
        let run = || {
            let m = System::homogeneous(small_cfg(Scenario::SttRam4TsbWb), p).run();
            (
                m.per_core_committed.clone(),
                m.bank_reads,
                m.bank_writes,
                m.held_packets,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mem_fetches_reach_the_controllers() {
        let p = table3::by_name("milc").unwrap(); // streaming: misses a lot
        let mut sys = System::homogeneous(small_cfg(Scenario::SttRam64Tsb), p);
        let m = sys.run();
        assert!(m.mem_fetches > 0, "streaming app must fetch from memory");
        let serviced: u64 = sys.mcs.iter().map(|mc| mc.stats.fetches).sum();
        assert!(serviced > 0);
    }

    #[test]
    fn fig3_instrumentation_collects_gaps() {
        let p = table3::by_name("tpcc").unwrap();
        let mut sys = System::homogeneous(small_cfg(Scenario::SttRam64Tsb), p);
        let m = sys.run();
        assert!(m.post_write_gaps.total() > 0);
        assert!(m.delayable_fraction > 0.0 && m.delayable_fraction < 1.0);
    }
}
