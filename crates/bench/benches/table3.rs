//! Criterion bench for the paper's table3: prints the quick-scale
//! reproduction once, then times one representative simulation run.
use criterion::{criterion_group, criterion_main, Criterion};
use snoc_core::experiments::{table3, Scale};
use snoc_core::scenario::Scenario;
use snoc_core::system::System;
use snoc_workload::table3 as t3;

fn bench(c: &mut Criterion) {
    // Print the reproduced figure/table (quick scale) once.
    println!("{}", table3::run(Scale::Quick));
    let app = t3::by_name("tpcc").unwrap();
    let mut g = c.benchmark_group("table3");
    g.sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("run/tpcc/SttRam64Tsb", |b| {
        b.iter(|| System::homogeneous(Scale::Quick.apply(Scenario::SttRam64Tsb.config()), app).run())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
