//! Uncore (interconnect + cache) energy accounting — the quantity
//! Figure 8 normalizes to the SRAM baseline.

use crate::cache_energy::CacheEnergyModel;
use crate::noc_energy::NocEnergyModel;
use snoc_mem::tech::TechParams;

/// Activity counters collected from one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UncoreActivity {
    /// Cycles simulated.
    pub cycles: u64,
    /// Routers in the network.
    pub routers: usize,
    /// L2 banks.
    pub banks: usize,
    /// Flits written into router buffers.
    pub buffer_writes: u64,
    /// Flits through crossbars.
    pub switch_traversals: u64,
    /// Flits over in-layer links.
    pub lateral_flits: u64,
    /// Flits over vertical TSVs/TSBs.
    pub vertical_flits: u64,
    /// L2 bank read accesses.
    pub bank_reads: u64,
    /// L2 bank write accesses.
    pub bank_writes: u64,
}

/// The resulting energy split, in nJ.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Router + link dynamic energy.
    pub noc_dynamic_nj: f64,
    /// Router leakage.
    pub noc_leakage_nj: f64,
    /// Cache access energy.
    pub cache_dynamic_nj: f64,
    /// Cache leakage.
    pub cache_leakage_nj: f64,
}

impl EnergyBreakdown {
    /// Total uncore energy.
    pub fn total_nj(&self) -> f64 {
        self.noc_dynamic_nj + self.noc_leakage_nj + self.cache_dynamic_nj + self.cache_leakage_nj
    }

    /// Computes the breakdown for a run's activity under a cache
    /// technology.
    pub fn compute(activity: &UncoreActivity, tech: TechParams, clock_ghz: f64) -> Self {
        let noc = NocEnergyModel::at_32nm();
        let cache = CacheEnergyModel::new(tech, activity.banks, clock_ghz);
        EnergyBreakdown {
            noc_dynamic_nj: noc.dynamic_nj(
                activity.buffer_writes,
                activity.switch_traversals,
                activity.lateral_flits,
                activity.vertical_flits,
            ),
            noc_leakage_nj: noc.leakage_nj(activity.routers, activity.cycles),
            cache_dynamic_nj: cache.dynamic_nj(activity.bank_reads, activity.bank_writes),
            cache_leakage_nj: cache.leakage_nj(activity.cycles),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn activity() -> UncoreActivity {
        UncoreActivity {
            cycles: 100_000,
            routers: 128,
            banks: 64,
            buffer_writes: 500_000,
            switch_traversals: 500_000,
            lateral_flits: 400_000,
            vertical_flits: 100_000,
            bank_reads: 30_000,
            bank_writes: 20_000,
        }
    }

    #[test]
    fn stt_beats_sram_by_roughly_half() {
        // Figure 8: ~54% uncore energy reduction, driven by leakage.
        let a = activity();
        let sram = EnergyBreakdown::compute(&a, TechParams::sram_1mb(), 3.0);
        let stt = EnergyBreakdown::compute(&a, TechParams::stt_ram_4mb(), 3.0);
        let ratio = stt.total_nj() / sram.total_nj();
        assert!(
            (0.40..0.60).contains(&ratio),
            "normalized STT energy {ratio} should be ~0.46"
        );
    }

    #[test]
    fn leakage_dominates() {
        let b = EnergyBreakdown::compute(&activity(), TechParams::sram_1mb(), 3.0);
        assert!(b.cache_leakage_nj > 0.8 * b.total_nj());
    }

    #[test]
    fn totals_add_up() {
        let b = EnergyBreakdown::compute(&activity(), TechParams::stt_ram_4mb(), 3.0);
        let sum = b.noc_dynamic_nj + b.noc_leakage_nj + b.cache_dynamic_nj + b.cache_leakage_nj;
        assert!((b.total_nj() - sum).abs() < 1e-9);
        assert!(b.noc_dynamic_nj > 0.0);
    }

    #[test]
    fn write_heavy_activity_raises_stt_dynamic_energy() {
        let mut wa = activity();
        wa.bank_writes = 60_000;
        wa.bank_reads = 0;
        let mut ra = activity();
        ra.bank_reads = 60_000;
        ra.bank_writes = 0;
        let w = EnergyBreakdown::compute(&wa, TechParams::stt_ram_4mb(), 3.0);
        let r = EnergyBreakdown::compute(&ra, TechParams::stt_ram_4mb(), 3.0);
        assert!(w.cache_dynamic_nj > 2.0 * r.cache_dynamic_nj);
    }
}
