//! Audited conformance: every experiment of the evaluation section
//! runs at quick scale with the NoC invariant auditor enabled
//! (`SNOC_AUDIT=1`), and every cell must finish with zero violations —
//! packet conservation, credit/flit conservation and hold
//! work-conservation all hold across the full configuration space the
//! figures exercise.

use snoc_core::experiments::{
    ablations, fig10, fig12, fig13, fig14, fig3, fig6, fig7, fig8, fig9, table2, table3, Scale,
};
use snoc_core::observer::RunObserver;
use snoc_core::sweep::{Experiment, SweepRunner};
use std::sync::{Arc, Mutex};

/// Collects violations surfaced through the observer hook.
#[derive(Default)]
struct Collect {
    violations: Mutex<Vec<String>>,
}

/// Clonable observer handle (the runner takes owned observers).
struct Shared(Arc<Collect>);

impl RunObserver for Shared {
    fn audit_violation(&self, label: &str, message: &str) {
        self.0
            .violations
            .lock()
            .unwrap()
            .push(format!("{label}: {message}"));
    }
}

fn check<E: Experiment>(exp: &E, collect: &Arc<Collect>) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let runner = SweepRunner::new()
        .threads(threads)
        .observer(Shared(collect.clone()));
    // Some experiments (table2) are static tables with no simulation
    // cells; their empty grids still go through the runner.
    let cells = runner.run_grid(exp.name(), exp.grid(Scale::Quick));
    for cell in &cells {
        let metrics = cell.metrics(); // re-raises cell panics, labelled
        let audit = metrics
            .audit
            .as_ref()
            .unwrap_or_else(|| panic!("{}: '{}' ran unaudited", exp.name(), cell.label));
        assert!(
            audit.clean(),
            "{}: '{}' violated invariants over {} cycles: {:?}",
            exp.name(),
            cell.label,
            audit.checked_cycles,
            audit.samples
        );
    }
}

#[test]
fn every_experiment_is_invariant_clean_at_quick_scale() {
    std::env::set_var("SNOC_AUDIT", "1");
    let collect = Arc::new(Collect::default());
    check(&table2::Table2Exp, &collect);
    check(&table3::Table3, &collect);
    check(&fig3::Fig3, &collect);
    check(&fig6::Fig6, &collect);
    check(&fig7::Fig7, &collect);
    check(&fig8::Fig8, &collect);
    check(&fig9::Fig9, &collect);
    check(&fig10::Fig10, &collect);
    check(&fig12::Fig12, &collect);
    check(&fig13::Fig13, &collect);
    check(&fig14::Fig14, &collect);
    check(&ablations::Ablations, &collect);
    let surfaced = collect.violations.lock().unwrap();
    assert!(
        surfaced.is_empty(),
        "observer surfaced violations: {surfaced:?}"
    );
}
