//! Bench for the paper's table3: prints the quick-scale reproduction
//! once, then times one representative simulation run on the
//! dependency-free harness.
use snoc_bench::harness;
use snoc_core::experiments::{table3, Scale};
use snoc_core::scenario::Scenario;
use snoc_core::system::System;
use snoc_workload::table3 as t3;

fn main() {
    // Print the reproduced figure/table (quick scale) once.
    println!("{}", table3::run(Scale::Quick));
    let app = t3::by_name("tpcc").unwrap();
    harness::bench("table3/run/tpcc/SttRam64Tsb", || {
        System::homogeneous(Scale::Quick.apply(Scenario::SttRam64Tsb.config()), app).run()
    });
}
