//! Figure 8: uncore (interconnect + cache) energy normalized to the
//! SRAM baseline. The plot compares SRAM-64TSB, MRAM-64TSB and the
//! three proposed schemes.

use crate::experiments::{fig6, norm, Scale};
use crate::report::Rows;
use crate::scenario::Scenario;
use crate::sweep::{CellResult, Experiment, RunSpec, SweepRunner};
use snoc_workload::Suite;
use std::fmt;

/// The scenarios shown in Figure 8, as indices into [`Scenario::ALL`].
pub const FIG8_SCENARIOS: [usize; 5] = [0, 1, 3, 4, 5];

/// One application's normalized energy series.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Application name.
    pub app: &'static str,
    /// Suite.
    pub suite: Suite,
    /// Normalized energy per Figure 8 scenario.
    pub normalized: Vec<f64>,
}

/// The figure.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// Per-app rows.
    pub rows: Vec<Fig8Row>,
}

impl Fig8Result {
    /// Mean normalized energy per scenario across all rows.
    pub fn average(&self) -> Vec<f64> {
        let mut avg = vec![0.0; FIG8_SCENARIOS.len()];
        for r in &self.rows {
            for (i, v) in r.normalized.iter().enumerate() {
                avg[i] += v;
            }
        }
        for v in &mut avg {
            *v /= self.rows.len().max(1) as f64;
        }
        avg
    }
}

/// The energy comparison over the Figure 6 application set (same grid
/// as [`fig6::Fig6`]; the energy series of each run feeds this
/// figure).
pub struct Fig8;

impl Experiment for Fig8 {
    type Output = Fig8Result;

    fn name(&self) -> &str {
        "fig8"
    }

    fn grid(&self, scale: Scale) -> Vec<RunSpec> {
        fig6::scenario_grid(scale, &fig6::fig6_apps(scale))
    }

    fn assemble(&self, scale: Scale, cells: Vec<CellResult>) -> Fig8Result {
        let rows = fig6::rows_from_cells(&fig6::fig6_apps(scale), &cells)
            .into_iter()
            .map(|r| {
                let base = r.energy_nj[0];
                Fig8Row {
                    app: r.app,
                    suite: r.suite,
                    normalized: FIG8_SCENARIOS
                        .iter()
                        .map(|&i| norm(r.energy_nj[i], base))
                        .collect(),
                }
            })
            .collect();
        Fig8Result { rows }
    }
}

/// Runs the energy comparison through the [`SweepRunner`].
pub fn run(scale: Scale) -> Fig8Result {
    SweepRunner::from_env().run(&Fig8, scale)
}

impl fmt::Display for Fig8Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 8: uncore energy normalized to SRAM-64TSB")?;
        write!(f, "{:12}", "benchmark")?;
        for &i in &FIG8_SCENARIOS {
            write!(f, " {:>14}", Scenario::ALL[i].name())?;
        }
        writeln!(f)?;
        for r in &self.rows {
            write!(f, "{:12}", r.app)?;
            for v in &r.normalized {
                write!(f, " {:>14.3}", v)?;
            }
            writeln!(f)?;
        }
        write!(f, "{:12}", "Avg.")?;
        for v in self.average() {
            write!(f, " {:>14.3}", v)?;
        }
        writeln!(f)?;
        let wb = *self.average().last().unwrap_or(&1.0);
        writeln!(
            f,
            "average saving with MRAM-4TSB-WB: {:.0}% (paper: ~54%)",
            (1.0 - wb) * 100.0
        )
    }
}

impl Rows for Fig8Result {
    fn header(&self) -> Vec<String> {
        FIG8_SCENARIOS
            .iter()
            .map(|&i| Scenario::ALL[i].name().to_string())
            .collect()
    }

    fn rows(&self) -> Vec<(String, Vec<f64>)> {
        let mut out: Vec<(String, Vec<f64>)> = self
            .rows
            .iter()
            .map(|r| (r.app.to_string(), r.normalized.clone()))
            .collect();
        out.push(("Avg.".into(), self.average()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stt_roughly_halves_uncore_energy() {
        let r = run(Scale::Quick);
        let avg = r.average();
        assert!((avg[0] - 1.0).abs() < 1e-9, "baseline is 1.0");
        // Leakage dominance: every STT scheme lands near ~0.45.
        for v in &avg[1..] {
            assert!((0.35..0.70).contains(v), "normalized energy {v}");
        }
        assert_eq!(r.rows().last().unwrap().0, "Avg.");
    }
}
