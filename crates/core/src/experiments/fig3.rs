//! Figure 3: distribution of consecutive accesses to STT-RAM banks
//! following a write access, plus the average number of buffered
//! request packets two hops from their destination bank.

use crate::experiments::Scale;
use crate::report::Rows;
use crate::scenario::Scenario;
use crate::sweep::{CellResult, Experiment, RunSpec, SweepRunner};
use snoc_common::stats::Histogram;
use snoc_workload::table3::{self, figures};
use snoc_workload::Suite;
use std::fmt;

/// One application's panel.
#[derive(Debug, Clone)]
pub struct Fig3Panel {
    /// Application name.
    pub name: String,
    /// Gap histogram (bins 16/33/66/99/132/165+).
    pub gaps: Histogram,
    /// Fraction of post-write arrivals within the write window.
    pub delayable: f64,
    /// The inset "#Req": mean buffered requests two hops from their
    /// destination, sampled at write forwards.
    pub two_hop_requests: f64,
}

/// The full figure: 12 applications plus per-suite averages.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Per-application panels in the paper's order.
    pub panels: Vec<Fig3Panel>,
    /// Aggregates for (PARSEC, SPEC, SERVER).
    pub suite_averages: Vec<Fig3Panel>,
}

/// The characterization as a declarative sweep: one cell per Figure 3
/// application on the 4-region STT-RAM platform.
pub struct Fig3;

impl Experiment for Fig3 {
    type Output = Fig3Result;

    fn name(&self) -> &str {
        "fig3"
    }

    fn grid(&self, scale: Scale) -> Vec<RunSpec> {
        scale
            .take_apps(figures::FIG3)
            .iter()
            .map(|name| {
                let p = table3::by_name(name).expect("known app");
                // The region platform gives every request a
                // two-hops-away parent, matching the paper's
                // measurement point.
                let cfg = scale.apply(Scenario::SttRam4Tsb.config());
                RunSpec::homogeneous(format!("fig3/{name}"), cfg, p)
            })
            .collect()
    }

    fn assemble(&self, scale: Scale, cells: Vec<CellResult>) -> Fig3Result {
        let apps = scale.take_apps(figures::FIG3);
        let panels: Vec<Fig3Panel> = apps
            .iter()
            .zip(&cells)
            .map(|(name, cell)| {
                let m = cell.metrics();
                Fig3Panel {
                    name: name.to_string(),
                    gaps: m.post_write_gaps.clone(),
                    delayable: m.delayable_fraction,
                    two_hop_requests: m.child_queue_mean,
                }
            })
            .collect();
        let mut suite_averages = Vec::new();
        for suite in [Suite::Parsec, Suite::Spec, Suite::Server] {
            let members: Vec<&Fig3Panel> = panels
                .iter()
                .filter(|p| {
                    table3::by_name(&p.name)
                        .map(|b| b.suite == suite)
                        .unwrap_or(false)
                })
                .collect();
            if members.is_empty() {
                continue;
            }
            let mut gaps = Histogram::fig3();
            for m in &members {
                gaps.merge(&m.gaps);
            }
            let delayable = members.iter().map(|m| m.delayable).sum::<f64>() / members.len() as f64;
            let two_hop =
                members.iter().map(|m| m.two_hop_requests).sum::<f64>() / members.len() as f64;
            suite_averages.push(Fig3Panel {
                name: format!("{suite:?}"),
                gaps,
                delayable,
                two_hop_requests: two_hop,
            });
        }
        Fig3Result {
            panels,
            suite_averages,
        }
    }
}

/// Runs the characterization through the [`SweepRunner`].
pub fn run(scale: Scale) -> Fig3Result {
    SweepRunner::from_env().run(&Fig3, scale)
}

fn write_panel(f: &mut fmt::Formatter<'_>, p: &Fig3Panel) -> fmt::Result {
    let fr = p.gaps.fractions();
    write!(f, "{:10} #Req:{:5.2} |", p.name, p.two_hop_requests)?;
    let labels = [
        "<16", "16-33", "33-66", "66-99", "99-132", "132-165", "165+",
    ];
    for (i, l) in labels.iter().enumerate() {
        write!(f, " {l}:{:4.1}%", fr[i] * 100.0)?;
    }
    writeln!(f, " | delayable {:4.1}%", p.delayable * 100.0)
}

impl fmt::Display for Fig3Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 3: post-write access gap distribution per application"
        )?;
        for p in &self.panels {
            write_panel(f, p)?;
        }
        writeln!(f, "-- suite averages --")?;
        for p in &self.suite_averages {
            write_panel(f, p)?;
        }
        Ok(())
    }
}

impl Rows for Fig3Result {
    fn header(&self) -> Vec<String> {
        let mut h: Vec<String> = [
            "<16", "16-33", "33-66", "66-99", "99-132", "132-165", "165+",
        ]
        .iter()
        .map(|b| format!("gap {b} (%)"))
        .collect();
        h.push("delayable (%)".into());
        h.push("two-hop requests".into());
        h
    }

    fn rows(&self) -> Vec<(String, Vec<f64>)> {
        self.panels
            .iter()
            .chain(&self.suite_averages)
            .map(|p| {
                let mut v: Vec<f64> = p.gaps.fractions().iter().map(|f| f * 100.0).collect();
                v.push(p.delayable * 100.0);
                v.push(p.two_hop_requests);
                (p.name.clone(), v)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_panels() {
        let r = run(Scale::Quick);
        assert_eq!(r.panels.len(), 3);
        for p in &r.panels {
            assert!(p.gaps.total() > 0, "{} has samples", p.name);
            assert!((0.0..=1.0).contains(&p.delayable));
        }
        let s = r.to_string();
        assert!(s.contains("delayable"));
        let rows = r.rows();
        assert_eq!(rows[0].1.len(), r.header().len());
    }
}
