//! Experiment conformance: every table/figure of the evaluation
//! section runs at quick scale through one shared [`SweepRunner`], and
//! each result exposes a coherent `Display` + `Rows` view.
//!
//! This is the heavyweight end-to-end suite (a few hundred simulation
//! cells); the engine-level tests live in the root `tests/sweep.rs`.

use snoc_core::experiments::{
    ablations, fig10, fig12, fig13, fig14, fig3, fig6, fig7, fig8, fig9, scaling, table2, table3,
    Scale,
};
use snoc_core::report::Rows;
use snoc_core::sweep::{Experiment, SweepRunner};
use std::fmt::Display;

fn runner() -> SweepRunner {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    SweepRunner::new().threads(threads)
}

fn check<E>(exp: &E) -> E::Output
where
    E: Experiment,
    E::Output: Rows + Display,
{
    let grid = exp.grid(Scale::Quick);
    let out = runner().run(exp, Scale::Quick);
    let rows = out.rows();
    assert!(!rows.is_empty(), "{}: no rows", exp.name());
    let width = out.header().len();
    for (label, values) in &rows {
        assert_eq!(values.len(), width, "{}: ragged row '{label}'", exp.name());
        assert!(
            values.iter().all(|v| v.is_finite()),
            "{}: non-finite value in '{label}': {values:?}",
            exp.name()
        );
    }
    let text = out.to_string();
    assert!(!text.trim().is_empty(), "{}: empty Display", exp.name());
    let csv = out.csv();
    assert_eq!(
        csv.lines().count(),
        rows.len() + 1,
        "{}: csv shape",
        exp.name()
    );
    // The grid enumeration is deterministic: assemble re-derives it.
    assert_eq!(
        grid.iter().map(|s| s.label.clone()).collect::<Vec<_>>(),
        exp.grid(Scale::Quick)
            .iter()
            .map(|s| s.label.clone())
            .collect::<Vec<_>>(),
        "{}: unstable grid",
        exp.name()
    );
    out
}

#[test]
fn every_experiment_runs_at_quick_scale() {
    check(&table2::Table2Exp);
    check(&table3::Table3);
    check(&fig3::Fig3);
    check(&fig6::Fig6);
    check(&fig7::Fig7);
    check(&fig8::Fig8);
    check(&fig9::Fig9);
    check(&fig10::Fig10);
    check(&fig12::Fig12);
    check(&fig13::Fig13);
    check(&fig14::Fig14);
    check(&ablations::Ablations);
    let s = check(&scaling::Scaling);
    // The scaling study must anchor at the paper's point and cover
    // every (design point, scenario) pair.
    assert_eq!(
        s.rows.len(),
        scaling::POINTS.len() * scaling::SCENARIOS.len()
    );
    assert!(s.rows.iter().all(|r| r.ipc_per_core > 0.0));
}
