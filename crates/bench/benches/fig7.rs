//! Bench for the paper's fig7: prints the quick-scale reproduction
//! once, then times one representative simulation run on the
//! dependency-free harness.
use snoc_bench::harness;
use snoc_core::experiments::{fig7, Scale};
use snoc_core::scenario::Scenario;
use snoc_core::system::System;
use snoc_workload::table3 as t3;

fn main() {
    // Print the reproduced figure/table (quick scale) once.
    println!("{}", fig7::run(Scale::Quick));
    let app = t3::by_name("lbm").unwrap();
    harness::bench("fig7/run/lbm/SttRam4TsbRca", || {
        System::homogeneous(Scale::Quick.apply(Scenario::SttRam4TsbRca.config()), app).run()
    });
}
