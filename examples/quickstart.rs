//! Quickstart: simulate one server workload on the paper's recommended
//! design (STT-RAM banks + 4 region TSBs + window-based bank-aware
//! arbitration) and print the headline metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sttram_noc_repro::sim::scenario::Scenario;
use sttram_noc_repro::sim::system::System;
use sttram_noc_repro::workload::table3;

fn main() {
    // Pick a workload from the paper's Table 3 characterization.
    let profile = table3::by_name("tpcc").expect("tpcc is in Table 3");
    println!(
        "workload: {} (l2 reads/ki {:.2}, l2 writes/ki {:.2}, bursty {:?})",
        profile.name, profile.l2_rpki, profile.l2_wpki, profile.bursty
    );

    // Compare the SRAM baseline against the proposed WB design.
    for scenario in [
        Scenario::Sram64Tsb,
        Scenario::SttRam64Tsb,
        Scenario::SttRam4TsbWb,
    ] {
        let mut cfg = scenario.config();
        cfg.warmup_cycles = 2_000;
        cfg.measure_cycles = 10_000;
        let mut system = System::homogeneous(cfg, profile);
        let m = system.run();
        println!(
            "{:14}: instruction throughput {:6.2}  uncore RTT {:6.1} cy  \
             bank queue {:5.1} cy  held packets {:5}  uncore energy {:.2} uJ",
            scenario.name(),
            m.instruction_throughput(),
            m.uncore_rtt,
            m.bank_queue_wait,
            m.held_packets,
            m.uncore_energy_nj() / 1000.0
        );
    }
}
