//! Bank service timing: the FIFO request queue in front of each L2
//! bank, the array's read/write occupancy, the optional BUFF-20 write
//! buffer, and the instrumentation behind Figures 3, 7 and 14.

use crate::write_buffer::{BufferedWrite, WriteBuffer};
use snoc_common::config::WriteBufferConfig;
use snoc_common::stats::{Accumulator, Histogram};
use snoc_common::Cycle;
use std::collections::VecDeque;

/// The array operation a job performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankOp {
    /// Tag+data read (GetS/GetM service): 3 cycles.
    Read,
    /// Full-block write (writeback or fill): 3 cycles SRAM, 33 cycles
    /// STT-RAM.
    Write,
}

/// One queued bank access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankJob {
    /// Operation.
    pub op: BankOp,
    /// Caller correlation token.
    pub token: u64,
    /// Block-aligned address.
    pub addr: u64,
    /// Arrival cycle at the bank.
    pub arrived: Cycle,
}

/// A finished bank access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The job that finished.
    pub job: BankJob,
    /// Cycle service began.
    pub started: Cycle,
    /// Cycle service finished (reply may be sent now).
    pub finished: Cycle,
}

#[derive(Debug, Clone, Copy)]
enum Running {
    /// Serving a queued job; `emits` is false when the completion was
    /// already delivered early (write replies).
    Job(BankJob, bool),
    /// Draining a buffered write into the array.
    Drain(BufferedWrite),
}

/// Bank-level statistics.
#[derive(Debug, Clone)]
pub struct BankStats {
    /// Reads serviced.
    pub reads: u64,
    /// Writes serviced (array writes plus buffer absorptions).
    pub writes: u64,
    /// Queue wait per job (arrival to service start).
    pub queue_wait: Accumulator,
    /// Cycles the array was occupied.
    pub busy_cycles: u64,
    /// Figure 3: distribution of arrival gaps after a write arrival.
    pub post_write_gaps: Histogram,
    /// Arrivals that landed within the write service time of the
    /// preceding write (the "delayable" requests).
    pub arrivals_behind_write: u64,
    /// All arrivals that followed some write.
    pub arrivals_after_write: u64,
}

impl Default for BankStats {
    fn default() -> Self {
        Self {
            reads: 0,
            writes: 0,
            queue_wait: Accumulator::new(),
            busy_cycles: 0,
            post_write_gaps: Histogram::fig3(),
            arrivals_behind_write: 0,
            arrivals_after_write: 0,
        }
    }
}

/// The timing controller of one L2 bank.
#[derive(Debug)]
pub struct BankController {
    read_latency: Cycle,
    write_latency: Cycle,
    queue: VecDeque<BankJob>,
    running: Option<(Running, Cycle, Cycle)>, // (what, started, finishes)
    /// Early write replies: the requester is released as soon as the
    /// data is latched (read-latency), while the array stays occupied
    /// for the full write latency.
    early_replies: Vec<(Cycle, Completion)>,
    wbuf: Option<WriteBuffer>,
    wbuf_cfg: Option<WriteBufferConfig>,
    last_write_arrival: Option<Cycle>,
    /// Statistics.
    pub stats: BankStats,
}

impl BankController {
    /// Creates a controller with the given array latencies and an
    /// optional write buffer.
    pub fn new(
        read_latency: Cycle,
        write_latency: Cycle,
        write_buffer: Option<WriteBufferConfig>,
    ) -> Self {
        Self {
            read_latency,
            write_latency,
            queue: VecDeque::new(),
            running: None,
            early_replies: Vec::new(),
            wbuf: write_buffer.map(|c| WriteBuffer::new(c.entries)),
            wbuf_cfg: write_buffer,
            last_write_arrival: None,
            stats: BankStats::default(),
        }
    }

    /// Clears the statistics (end of warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = BankStats::default();
    }

    /// `true` while the array is occupied.
    pub fn busy(&self) -> bool {
        self.running.is_some()
    }

    /// Queued jobs not yet started.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The write buffer, if configured.
    pub fn write_buffer(&self) -> Option<&WriteBuffer> {
        self.wbuf.as_ref()
    }

    /// Accepts a job, recording the Figure 3 arrival-gap sample.
    pub fn enqueue(&mut self, job: BankJob, now: Cycle) {
        if let Some(t) = self.last_write_arrival {
            let gap = now.saturating_sub(t);
            self.stats.post_write_gaps.record(gap);
            self.stats.arrivals_after_write += 1;
            if gap < self.write_latency {
                self.stats.arrivals_behind_write += 1;
            }
        }
        if job.op == BankOp::Write {
            self.last_write_arrival = Some(now);
        }
        self.queue.push_back(job);
    }

    fn detect_cycles(&self) -> Cycle {
        self.wbuf_cfg.map(|c| c.detect_cycles).unwrap_or(0)
    }

    /// Advances one cycle; returns completions ready at `now`.
    pub fn tick(&mut self, now: Cycle) -> Vec<Completion> {
        let mut done = Vec::new();
        if self.running.is_some() {
            self.stats.busy_cycles += 1;
        }

        // Release early write replies whose data has been latched.
        let mut i = 0;
        while i < self.early_replies.len() {
            if self.early_replies[i].0 <= now {
                done.push(self.early_replies.swap_remove(i).1);
            } else {
                i += 1;
            }
        }

        // Finish the current occupancy.
        if let Some((what, started, finishes)) = self.running {
            if now >= finishes {
                self.running = None;
                if let Running::Job(job, emits) = what {
                    if emits {
                        done.push(Completion {
                            job,
                            started,
                            finished: now,
                        });
                    }
                }
            }
        }

        // Read preemption (BUFF-20): a waiting read aborts an
        // in-progress drain write.
        if let (Some((Running::Drain(entry), _, _)), Some(cfg)) = (self.running, self.wbuf_cfg) {
            if cfg.read_preemption && self.queue.front().map(|j| j.op) == Some(BankOp::Read) {
                self.wbuf
                    .as_mut()
                    .expect("drain implies a buffer")
                    .abort_drain(entry);
                self.running = None;
            }
        }

        // Start the next piece of work.
        if self.running.is_none() {
            if let Some(job) = self.queue.pop_front() {
                let wait = now.saturating_sub(job.arrived);
                self.stats.queue_wait.record(wait as f64);
                let detect = self.detect_cycles();
                match job.op {
                    BankOp::Read => {
                        self.stats.reads += 1;
                        // The buffer is searched in parallel with the
                        // array; either way the read costs the array
                        // read latency plus the detection overhead.
                        if let Some(b) = self.wbuf.as_mut() {
                            b.read_probe(job.addr);
                        }
                        let t = detect + self.read_latency;
                        self.running = Some((Running::Job(job, true), now, now + t));
                    }
                    BankOp::Write => {
                        self.stats.writes += 1;
                        let absorbed = self
                            .wbuf
                            .as_mut()
                            .map(|b| b.absorb(job.addr))
                            .unwrap_or(false);
                        if absorbed {
                            // SRAM-speed buffer insertion.
                            let t = detect + self.read_latency;
                            self.running = Some((Running::Job(job, true), now, now + t));
                        } else {
                            // The requester is released once the data
                            // is latched; the MTJ switching occupies
                            // the array for the full write latency.
                            let reply = detect + self.read_latency;
                            let occupy = detect + self.write_latency;
                            self.early_replies.push((
                                now + reply,
                                Completion {
                                    job,
                                    started: now,
                                    finished: now + reply,
                                },
                            ));
                            self.running = Some((Running::Job(job, false), now, now + occupy));
                        }
                    }
                }
            } else if let Some(b) = self.wbuf.as_mut() {
                // Idle bank: drain one buffered write into the array.
                if let Some(entry) = b.start_drain() {
                    self.running = Some((Running::Drain(entry), now, now + self.write_latency));
                }
            }
        }
        done
    }

    /// Drains everything (test helper): ticks until idle, collecting
    /// completions, bounded by `limit` cycles.
    pub fn run_until_idle(&mut self, mut now: Cycle, limit: u64) -> (Vec<Completion>, Cycle) {
        let mut all = Vec::new();
        for _ in 0..limit {
            all.extend(self.tick(now));
            let buffered = self.wbuf.as_ref().map(|b| !b.is_empty()).unwrap_or(false);
            if !self.busy() && self.queue.is_empty() && !buffered {
                break;
            }
            now += 1;
        }
        (all, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(op: BankOp, token: u64, arrived: Cycle) -> BankJob {
        BankJob {
            op,
            token,
            addr: token * 128,
            arrived,
        }
    }

    fn stt() -> BankController {
        BankController::new(3, 33, None)
    }

    fn buffered() -> BankController {
        BankController::new(3, 33, Some(WriteBufferConfig::default()))
    }

    #[test]
    fn read_takes_three_cycles() {
        let mut b = stt();
        b.enqueue(job(BankOp::Read, 1, 0), 0);
        let (done, _) = b.run_until_idle(0, 100);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].finished - done[0].started, 3);
    }

    #[test]
    fn write_occupies_the_bank_for_33_cycles() {
        let mut b = stt();
        b.enqueue(job(BankOp::Write, 1, 0), 0);
        b.enqueue(job(BankOp::Read, 2, 1), 1);
        let (done, _) = b.run_until_idle(0, 100);
        assert_eq!(done.len(), 2);
        // The writer is released once the data is latched...
        assert_eq!(done[0].finished, 3);
        // ...but the array stays occupied for the 33-cycle MTJ
        // switch, so the read queues behind it.
        assert_eq!(done[1].started, 33);
        assert_eq!(done[1].finished, 36);
        assert!(b.stats.queue_wait.max() >= 32.0);
        assert!(b.stats.busy_cycles >= 33);
    }

    #[test]
    fn sram_bank_writes_fast() {
        let mut b = BankController::new(3, 3, None);
        b.enqueue(job(BankOp::Write, 1, 0), 0);
        let (done, _) = b.run_until_idle(0, 100);
        assert_eq!(done[0].finished, 3);
    }

    #[test]
    fn fig3_gap_histogram_records_arrivals_after_writes() {
        let mut b = stt();
        b.enqueue(job(BankOp::Write, 1, 0), 0);
        b.enqueue(job(BankOp::Read, 2, 10), 10); // gap 10 -> bin "<16"
        b.enqueue(job(BankOp::Read, 3, 40), 40); // gap 40 -> bin "33-66"
        let h = &b.stats.post_write_gaps;
        assert_eq!(h.total(), 2);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[2], 1);
        assert_eq!(
            b.stats.arrivals_behind_write, 1,
            "only the 10-cycle gap is delayable"
        );
        assert_eq!(b.stats.arrivals_after_write, 2);
    }

    #[test]
    fn write_buffer_absorbs_writes_at_sram_speed() {
        let mut b = buffered();
        b.enqueue(job(BankOp::Write, 1, 0), 0);
        b.enqueue(job(BankOp::Read, 2, 1), 1);
        let (done, _) = b.run_until_idle(0, 200);
        // Write completes at detect(1) + 3 = 4, not 33.
        assert_eq!(done[0].finished, 4);
        // The read starts right after, paying the detect cycle too.
        assert_eq!(done[1].finished - done[1].started, 4);
        assert_eq!(b.write_buffer().unwrap().absorbed, 1);
    }

    #[test]
    fn buffer_drains_when_idle() {
        let mut b = buffered();
        b.enqueue(job(BankOp::Write, 1, 0), 0);
        let (_, end) = b.run_until_idle(0, 200);
        // Absorption (4 cycles) + drain write (33).
        assert!(end >= 37, "drain occupies the array: ended at {end}");
        assert!(b.write_buffer().unwrap().is_empty());
        assert_eq!(b.write_buffer().unwrap().drains, 1);
    }

    #[test]
    fn read_preempts_a_drain() {
        let mut b = buffered();
        b.enqueue(job(BankOp::Write, 1, 0), 0);
        // Let the absorb finish and the drain start.
        let mut now = 0;
        let mut completions = Vec::new();
        while now < 10 {
            completions.extend(b.tick(now));
            now += 1;
        }
        assert!(b.busy(), "drain in progress");
        b.enqueue(job(BankOp::Read, 2, now), now);
        let (done, _) = b.run_until_idle(now, 200);
        let read = done.iter().find(|c| c.job.token == 2).unwrap();
        // Without preemption the read would wait for the drain to
        // finish at cycle ~37; with preemption it starts immediately.
        assert!(read.started <= now + 1, "read started at {}", read.started);
        assert_eq!(b.write_buffer().unwrap().preemptions, 1);
        assert!(
            b.write_buffer().unwrap().is_empty(),
            "aborted drain re-drains"
        );
    }

    #[test]
    fn full_buffer_falls_back_to_array_writes() {
        let cfg = WriteBufferConfig {
            entries: 2,
            detect_cycles: 1,
            read_preemption: true,
        };
        let mut b = BankController::new(3, 33, Some(cfg));
        for i in 0..3 {
            b.enqueue(job(BankOp::Write, i, 0), 0);
        }
        let (done, _) = b.run_until_idle(0, 500);
        assert_eq!(done.len(), 3);
        // Third write hits a full buffer: it goes to the array, whose
        // occupancy (1 + 33 cycles) delays anything after it; the
        // writer itself is released at latch speed.
        let third = done.iter().find(|c| c.job.token == 2).unwrap();
        assert_eq!(third.finished - third.started, 4);
        assert_eq!(b.write_buffer().unwrap().overflows, 1);
    }

    #[test]
    fn fifo_order_without_buffer() {
        let mut b = stt();
        for i in 0..4 {
            b.enqueue(job(BankOp::Read, i, 0), 0);
        }
        let (done, _) = b.run_until_idle(0, 100);
        let tokens: Vec<u64> = done.iter().map(|c| c.job.token).collect();
        assert_eq!(tokens, vec![0, 1, 2, 3]);
    }

    #[test]
    fn busy_cycles_accumulate() {
        let mut b = stt();
        b.enqueue(job(BankOp::Write, 1, 0), 0);
        b.run_until_idle(0, 100);
        assert!(b.stats.busy_cycles >= 33);
    }
}
