//! Bench for the paper's Figure 9: prints the quick-scale case
//! studies once, then times one Case-2 mix run on the dependency-free
//! harness.
use snoc_bench::harness;
use snoc_core::experiments::{fig9, Scale};
use snoc_core::scenario::Scenario;
use snoc_core::system::{DriveMode, System};
use snoc_workload::mixes;

fn main() {
    println!("{}", fig9::run(Scale::Quick));
    let w = mixes::case2(64);
    harness::bench("fig9/run/case2/SttRam4TsbWb", || {
        System::new(
            Scale::Quick.apply(Scenario::SttRam4TsbWb.config()),
            &w,
            DriveMode::Profile,
        )
        .run()
    });
}
