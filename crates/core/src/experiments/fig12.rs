//! Figures 11 and 12: sensitivity to the number of logical cache
//! regions (4/8/16) and to corner vs staggered TSB placement, under
//! the WB scheme. Figure 11's layouts are rendered as ASCII art.

use crate::experiments::{norm, Scale};
use crate::report::Rows;
use crate::scenario::Scenario;
use crate::sweep::{CellResult, Experiment, RunSpec, SweepRunner};
use snoc_common::config::TsbPlacement;
use snoc_common::geom::Mesh;
use snoc_noc::regions::RegionMap;
use snoc_workload::table3::{self, figures};
use std::fmt;

/// The six design points of Figure 12.
pub const POINTS: [(usize, TsbPlacement); 6] = [
    (4, TsbPlacement::Corner),
    (4, TsbPlacement::Staggered),
    (8, TsbPlacement::Corner),
    (8, TsbPlacement::Staggered),
    (16, TsbPlacement::Corner),
    (16, TsbPlacement::Staggered),
];

fn point_name(regions: usize, placement: TsbPlacement) -> String {
    format!(
        "{regions}r/{}",
        match placement {
            TsbPlacement::Corner => "corner",
            TsbPlacement::Staggered => "staggered",
        }
    )
}

/// Average normalized IPC per design point.
#[derive(Debug, Clone)]
pub struct Fig12Result {
    /// Average instruction throughput per point, normalized to
    /// (4 regions, corner).
    pub normalized: Vec<f64>,
    /// Figure 11 renderings of the four layouts shown in the paper.
    pub layouts: Vec<(String, String)>,
}

fn apps(scale: Scale) -> Vec<&'static str> {
    match scale {
        Scale::Quick => vec!["tpcc", "lbm", "hmmer"],
        Scale::Full => {
            let mut v: Vec<&str> = Vec::new();
            v.extend(figures::FIG6_SERVER);
            v.extend(figures::FIG6_PARSEC);
            v.extend(figures::FIG6_SPEC);
            v
        }
    }
}

/// The sensitivity sweep over regions × TSB placement.
pub struct Fig12;

impl Experiment for Fig12 {
    type Output = Fig12Result;

    fn name(&self) -> &str {
        "fig12"
    }

    fn grid(&self, scale: Scale) -> Vec<RunSpec> {
        apps(scale)
            .iter()
            .flat_map(|name| {
                let p = table3::by_name(name).expect("known app");
                POINTS.iter().map(move |&(regions, placement)| {
                    let cfg = scale
                        .apply(Scenario::SttRam4TsbWb.config())
                        .rebuild()
                        .regions(regions)
                        .tsb_placement(placement)
                        .build();
                    RunSpec::homogeneous(
                        format!("{}/{name}", point_name(regions, placement)),
                        cfg,
                        p,
                    )
                })
            })
            .collect()
    }

    fn assemble(&self, scale: Scale, cells: Vec<CellResult>) -> Fig12Result {
        let apps = apps(scale);
        let mut sums = vec![0.0; POINTS.len()];
        for (a, _) in apps.iter().enumerate() {
            let per_point: Vec<f64> = (0..POINTS.len())
                .map(|i| {
                    cells[a * POINTS.len() + i]
                        .metrics()
                        .instruction_throughput()
                })
                .collect();
            for (i, v) in per_point.iter().enumerate() {
                sums[i] += norm(*v, per_point[0]);
            }
        }
        let normalized = sums.iter().map(|s| s / apps.len() as f64).collect();

        let mesh = Mesh::new(8, 8);
        let layouts = [
            (4, TsbPlacement::Corner, "4 regions, TSBs in corner"),
            (4, TsbPlacement::Staggered, "4 regions, TSBs staggered"),
            (8, TsbPlacement::Staggered, "8 regions, TSBs staggered"),
            (16, TsbPlacement::Corner, "16 regions, TSBs in corner"),
        ]
        .into_iter()
        .map(|(r, pl, label)| (label.to_string(), RegionMap::new(mesh, r, pl).ascii_art()))
        .collect();
        Fig12Result {
            normalized,
            layouts,
        }
    }
}

/// Runs the sensitivity sweep through the [`SweepRunner`].
pub fn run(scale: Scale) -> Fig12Result {
    SweepRunner::from_env().run(&Fig12, scale)
}

impl fmt::Display for Fig12Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 11: region layouts (# marks a TSB)")?;
        for (label, art) in &self.layouts {
            writeln!(f, "[{label}]")?;
            writeln!(f, "{art}")?;
        }
        writeln!(
            f,
            "Figure 12: IPC sensitivity to regions x TSB placement (normalized to 4/corner)"
        )?;
        for (&(regions, placement), v) in POINTS.iter().zip(&self.normalized) {
            writeln!(
                f,
                "{:2} regions, {:9}: {:.3}",
                regions,
                match placement {
                    TsbPlacement::Corner => "corner",
                    TsbPlacement::Staggered => "staggered",
                },
                v
            )?;
        }
        Ok(())
    }
}

impl Rows for Fig12Result {
    fn header(&self) -> Vec<String> {
        vec!["normalized IPC".into()]
    }

    fn rows(&self) -> Vec<(String, Vec<f64>)> {
        POINTS
            .iter()
            .zip(&self.normalized)
            .map(|(&(r, p), &v)| (point_name(r, p), vec![v]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_points() {
        let r = run(Scale::Quick);
        assert_eq!(r.normalized.len(), 6);
        assert!(
            (r.normalized[0] - 1.0).abs() < 1e-9,
            "baseline point is 1.0"
        );
        assert!(r.normalized.iter().all(|&v| v > 0.3 && v < 2.0));
        assert_eq!(r.layouts.len(), 4);
        assert!(r.layouts[0].1.contains('#'));
        assert_eq!(r.rows().len(), 6);
    }
}
