//! Packet storage.
//!
//! Packets live in a slab while their flits are in flight; endpoints
//! receive the [`snoc_common::ids::PacketId`] in each flit and the
//! network hands the owned [`Packet`] back at delivery. Slots are
//! recycled so long simulations run in bounded memory.

use crate::packet::Packet;
use snoc_common::ids::PacketId;
use std::fmt;

/// The arena refused a packet: the id space of a flit's 16-bit packet
/// field is exhausted. Carries the live count so the failure is
/// attributable (a workload injecting without back-pressure, or a
/// leak keeping delivered packets alive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaFull {
    /// Packets simultaneously in flight when the insert was refused.
    pub live: usize,
}

impl fmt::Display for ArenaFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "packet arena full: {} packets simultaneously in flight \
             (the id space of a flit's packet field is u16)",
            self.live
        )
    }
}

impl std::error::Error for ArenaFull {}

/// A recycling slab of in-flight packets.
#[derive(Debug, Default)]
pub struct Arena {
    slots: Vec<Option<Packet>>,
    free: Vec<u16>,
    live: usize,
    /// Monotonic counter behind [`Packet::uid`]: slots (and thus
    /// [`PacketId`]s) are recycled, so lifecycle auditing keys on this
    /// never-reused identity instead.
    next_uid: u64,
}

impl Arena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a packet, assigning its id.
    ///
    /// # Panics
    ///
    /// Panics with the live count if more than `u16::MAX` packets are
    /// simultaneously in flight (the id space of a flit's packet
    /// field); use [`Self::try_insert`] to handle that case instead.
    pub fn insert(&mut self, packet: Packet) -> PacketId {
        match self.try_insert(packet) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Stores a packet, assigning its id, or returns [`ArenaFull`]
    /// when the id space is exhausted (the packet is dropped).
    pub fn try_insert(&mut self, mut packet: Packet) -> Result<PacketId, ArenaFull> {
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                if self.slots.len() >= u16::MAX as usize {
                    return Err(ArenaFull { live: self.live });
                }
                self.slots.push(None);
                (self.slots.len() - 1) as u16
            }
        };
        let id = PacketId::new(idx);
        packet.id = id;
        self.next_uid += 1;
        packet.uid = self.next_uid;
        self.slots[idx as usize] = Some(packet);
        self.live += 1;
        Ok(id)
    }

    /// Borrows a live packet.
    ///
    /// # Panics
    ///
    /// Panics if the packet was already taken.
    pub fn get(&self, id: PacketId) -> &Packet {
        self.slots[id.index()].as_ref().expect("packet is live")
    }

    /// Mutably borrows a live packet.
    ///
    /// # Panics
    ///
    /// Panics if the packet was already taken.
    pub fn get_mut(&mut self, id: PacketId) -> &mut Packet {
        self.slots[id.index()].as_mut().expect("packet is live")
    }

    /// Removes a packet, recycling its slot.
    ///
    /// # Panics
    ///
    /// Panics if the packet was already taken.
    pub fn take(&mut self, id: PacketId) -> Packet {
        let p = self.slots[id.index()].take().expect("packet is live");
        self.free.push(id.raw());
        self.live -= 1;
        p
    }

    /// Empties the arena while keeping the slot vector's allocation,
    /// and rewinds the uid counter so a reset arena assigns the exact
    /// id and uid sequence of a fresh one (warm-state reuse must be
    /// bit-identical to reconstruction, and audits key on uids).
    pub fn reset(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.live = 0;
        self.next_uid = 0;
    }

    /// Number of live packets.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Iterates over all live packets (audit instrumentation).
    pub fn iter_live(&self) -> impl Iterator<Item = &Packet> {
        self.slots.iter().filter_map(Option::as_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;
    use snoc_common::geom::{Coord, Layer};

    fn pkt() -> Packet {
        let c = Coord::new(0, 0, Layer::Core);
        Packet::new(PacketKind::BankRead, c, c, 0, 0)
    }

    #[test]
    fn insert_get_take_round_trip() {
        let mut a = Arena::new();
        let id = a.insert(pkt());
        assert_eq!(a.get(id).id, id);
        assert_eq!(a.live(), 1);
        let p = a.take(id);
        assert_eq!(p.id, id);
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn slots_are_recycled() {
        let mut a = Arena::new();
        let id1 = a.insert(pkt());
        a.take(id1);
        let id2 = a.insert(pkt());
        assert_eq!(id1, id2, "slot reused");
        assert_eq!(a.live(), 1);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut a = Arena::new();
        let id = a.insert(pkt());
        a.get_mut(id).addr = 42;
        assert_eq!(a.get(id).addr, 42);
    }

    #[test]
    #[should_panic(expected = "live")]
    fn double_take_panics() {
        let mut a = Arena::new();
        let id = a.insert(pkt());
        a.take(id);
        a.take(id);
    }

    #[test]
    fn full_arena_returns_a_typed_error_with_the_live_count() {
        let mut a = Arena::new();
        for _ in 0..u16::MAX {
            a.try_insert(pkt()).expect("id space not yet exhausted");
        }
        let err = a.try_insert(pkt()).unwrap_err();
        assert_eq!(
            err,
            ArenaFull {
                live: u16::MAX as usize
            }
        );
        assert!(err.to_string().contains("65535 packets"));
        // Freeing one slot makes insertion possible again.
        a.take(PacketId::new(100));
        let id = a.try_insert(pkt()).expect("recycled slot");
        assert_eq!(id, PacketId::new(100));
        assert_eq!(a.live(), u16::MAX as usize);
    }

    #[test]
    #[should_panic(expected = "packet arena full: 65535 packets")]
    fn insert_panic_names_the_live_count() {
        let mut a = Arena::new();
        for _ in 0..=u16::MAX {
            a.insert(pkt());
        }
    }
}
