//! Miss-status holding registers.
//!
//! Both cache levels use a 32-entry MSHR file (Table 1). An MSHR entry
//! tracks one outstanding block fetch; secondary misses to the same
//! block merge into the entry's waiter list instead of issuing new
//! fetches.

use std::collections::VecDeque;

/// The cache operation a waiter asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissKind {
    /// Read miss (GetS).
    Read,
    /// Write miss or upgrade (GetM).
    Write,
}

/// A party waiting on an outstanding miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Waiter {
    /// Caller-defined correlation token.
    pub token: u64,
    /// Operation kind.
    pub kind: MissKind,
}

/// The result of [`MshrFile::allocate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Allocation {
    /// A new entry was created: the caller must issue the fetch.
    Primary,
    /// Merged into an existing entry: a fetch is already in flight.
    Secondary,
    /// The file is full: the request must be retried later.
    Full,
}

#[derive(Debug, Clone)]
struct Entry {
    block: u64,
    waiters: VecDeque<Waiter>,
    /// Set when any waiter needs ownership (GetM).
    wants_write: bool,
}

/// A small fully-associative MSHR file.
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<Entry>,
    capacity: usize,
    peak: usize,
}

impl MshrFile {
    /// Creates a file with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one entry");
        Self {
            entries: Vec::new(),
            capacity,
            peak: 0,
        }
    }

    /// Outstanding entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no misses are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when no new primary miss can be accepted.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Highest simultaneous occupancy seen.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// `true` if a fetch for `block` is outstanding.
    pub fn contains(&self, block: u64) -> bool {
        self.entries.iter().any(|e| e.block == block)
    }

    /// Records a miss on `block` for `waiter`.
    pub fn allocate(&mut self, block: u64, waiter: Waiter) -> Allocation {
        if let Some(e) = self.entries.iter_mut().find(|e| e.block == block) {
            e.waiters.push_back(waiter);
            e.wants_write |= waiter.kind == MissKind::Write;
            return Allocation::Secondary;
        }
        if self.is_full() {
            return Allocation::Full;
        }
        let mut waiters = VecDeque::with_capacity(2);
        let wants_write = waiter.kind == MissKind::Write;
        waiters.push_back(waiter);
        self.entries.push(Entry {
            block,
            waiters,
            wants_write,
        });
        self.peak = self.peak.max(self.entries.len());
        Allocation::Primary
    }

    /// Completes the fetch for `block`, returning `(waiters,
    /// wants_write)`; `None` if no entry exists.
    pub fn complete(&mut self, block: u64) -> Option<(Vec<Waiter>, bool)> {
        let idx = self.entries.iter().position(|e| e.block == block)?;
        let e = self.entries.swap_remove(idx);
        Some((e.waiters.into_iter().collect(), e.wants_write))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(token: u64, kind: MissKind) -> Waiter {
        Waiter { token, kind }
    }

    #[test]
    fn primary_then_secondary_merge() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.allocate(0x80, w(1, MissKind::Read)), Allocation::Primary);
        assert_eq!(
            m.allocate(0x80, w(2, MissKind::Read)),
            Allocation::Secondary
        );
        assert_eq!(m.len(), 1);
        let (waiters, wants_write) = m.complete(0x80).unwrap();
        assert_eq!(waiters.len(), 2);
        assert!(!wants_write);
        assert!(m.is_empty());
    }

    #[test]
    fn write_waiter_upgrades_entry() {
        let mut m = MshrFile::new(4);
        m.allocate(0x80, w(1, MissKind::Read));
        m.allocate(0x80, w(2, MissKind::Write));
        let (_, wants_write) = m.complete(0x80).unwrap();
        assert!(wants_write);
    }

    #[test]
    fn full_file_rejects_new_blocks_but_merges_existing() {
        let mut m = MshrFile::new(2);
        m.allocate(0x100, w(1, MissKind::Read));
        m.allocate(0x200, w(2, MissKind::Read));
        assert!(m.is_full());
        assert_eq!(m.allocate(0x300, w(3, MissKind::Read)), Allocation::Full);
        assert_eq!(
            m.allocate(0x100, w(4, MissKind::Read)),
            Allocation::Secondary
        );
        assert_eq!(m.peak(), 2);
    }

    #[test]
    fn complete_unknown_block_is_none() {
        let mut m = MshrFile::new(2);
        assert!(m.complete(0xDEAD).is_none());
    }

    #[test]
    fn waiters_preserve_fifo_order() {
        let mut m = MshrFile::new(2);
        for t in 0..5 {
            m.allocate(0x80, w(t, MissKind::Read));
        }
        let (waiters, _) = m.complete(0x80).unwrap();
        let tokens: Vec<u64> = waiters.iter().map(|x| x.token).collect();
        assert_eq!(tokens, vec![0, 1, 2, 3, 4]);
    }
}
