//! Observers for [`SweepRunner`](crate::sweep::SweepRunner) progress.
//!
//! The runner reports its lifecycle through the [`RunObserver`] trait:
//! sweep start, each cell's start and finish (with wall-clock and
//! simulated-cycle throughput), and a final [`SweepSummary`]. Three
//! implementations ship with the crate:
//!
//! * [`NullObserver`] — silent; the default for library use and tests.
//! * [`ProgressObserver`] — human-readable `[ 3/12] fig7/lbm ... 1.2 s
//!   (2.5 Mcyc/s)` lines on stderr; what the `repro-*` binaries use.
//! * [`MachineObserver`] — one `key=value` record per cell on stdout
//!   for scripts that scrape sweep timings.
//!
//! Observers are shared across worker threads, so implementations must
//! be `Sync`; the provided ones serialize output per event through the
//! platform's line-buffered streams.

use crate::sweep::CellResult;
use std::io::Write;
use std::time::Duration;

/// Timing roll-up handed to [`RunObserver::sweep_finished`].
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// Experiment name (e.g. `"fig7"`).
    pub name: String,
    /// Grid size.
    pub cells: usize,
    /// Cells whose simulation panicked.
    pub failed: usize,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall-clock for the whole sweep.
    pub wall: Duration,
    /// Sum of per-cell wall-clock (≥ `wall` when threads > 1).
    pub cell_wall: Duration,
    /// Total simulated cycles across all cells.
    pub sim_cycles: u64,
    /// Cells served from the result cache instead of simulated.
    pub cache_hits: usize,
}

impl SweepSummary {
    /// Aggregate simulation speed in simulated cycles per wall-clock
    /// second (0 for an instant sweep).
    pub fn cycles_per_second(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.sim_cycles as f64 / secs
        } else {
            0.0
        }
    }
}

/// Receives [`SweepRunner`](crate::sweep::SweepRunner) lifecycle
/// events. All methods default to no-ops, so implementations override
/// only what they need.
pub trait RunObserver: Sync {
    /// The sweep is about to execute `cells` cells on `threads`
    /// workers.
    fn sweep_started(&self, name: &str, cells: usize, threads: usize) {
        let _ = (name, cells, threads);
    }

    /// A worker picked up cell `index` (grid order) labelled `label`.
    fn cell_started(&self, index: usize, label: &str) {
        let _ = (index, label);
    }

    /// A cell finished (successfully or not).
    fn cell_finished(&self, result: &CellResult) {
        let _ = result;
    }

    /// A cell's run reported a NoC invariant violation (the
    /// `SNOC_AUDIT` auditor was on and found one); called once per
    /// retained violation sample before [`RunObserver::cell_finished`].
    fn audit_violation(&self, label: &str, message: &str) {
        let _ = (label, message);
    }

    /// A cell's run carried telemetry (`SNOC_TELEMETRY` was on);
    /// `note` is the collector's one-line digest. Called before
    /// [`RunObserver::cell_finished`].
    fn telemetry_note(&self, label: &str, note: &str) {
        let _ = (label, note);
    }

    /// The result cache has something worth surfacing for this cell —
    /// typically that an on-disk entry was corrupt (and is being
    /// recomputed) or could not be written. Never raised for ordinary
    /// hits and misses.
    fn cache_note(&self, label: &str, note: &str) {
        let _ = (label, note);
    }

    /// The whole grid is done.
    fn sweep_finished(&self, summary: &SweepSummary) {
        let _ = summary;
    }
}

/// Silent observer (the runner's default).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl RunObserver for NullObserver {}

fn fmt_rate(cycles: u64, wall: Duration) -> String {
    let secs = wall.as_secs_f64();
    if secs <= 0.0 || cycles == 0 {
        return "-".into();
    }
    let cps = cycles as f64 / secs;
    if cps >= 1e6 {
        format!("{:.1} Mcyc/s", cps / 1e6)
    } else {
        format!("{:.0} kcyc/s", cps / 1e3)
    }
}

/// Human-readable progress on stderr. Learns the grid size from
/// [`RunObserver::sweep_started`], so a fresh instance can be handed
/// to the runner before any grid exists.
#[derive(Debug, Default)]
pub struct ProgressObserver {
    total: std::sync::atomic::AtomicUsize,
    done: std::sync::atomic::AtomicUsize,
}

impl ProgressObserver {
    /// A fresh observer (counters at zero).
    pub fn new() -> Self {
        Self::default()
    }
}

impl RunObserver for ProgressObserver {
    fn sweep_started(&self, name: &str, cells: usize, threads: usize) {
        use std::sync::atomic::Ordering;
        self.total.store(cells, Ordering::Relaxed);
        self.done.store(0, Ordering::Relaxed);
        eprintln!("{name}: {cells} cells on {threads} thread(s)");
    }

    fn cell_finished(&self, result: &CellResult) {
        use std::sync::atomic::Ordering;
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let total = self.total.load(Ordering::Relaxed).max(done);
        let width = total.to_string().len();
        let status = match &result.outcome {
            Ok(_) => format!(
                "{:.2} s ({})",
                result.wall.as_secs_f64(),
                fmt_rate(result.sim_cycles, result.wall)
            ),
            Err(e) => format!("FAILED: {e}"),
        };
        eprintln!("[{done:>width$}/{total}] {:32} {status}", result.label);
    }

    fn audit_violation(&self, label: &str, message: &str) {
        eprintln!("AUDIT {label}: {message}");
    }

    fn telemetry_note(&self, label: &str, note: &str) {
        eprintln!("TELEMETRY {label}: {note}");
    }

    fn cache_note(&self, label: &str, note: &str) {
        eprintln!("CACHE {label}: {note}");
    }

    fn sweep_finished(&self, s: &SweepSummary) {
        eprintln!(
            "{}: {} cells in {:.2} s ({}, {} failed, {} cached)",
            s.name,
            s.cells,
            s.wall.as_secs_f64(),
            fmt_rate(s.sim_cycles, s.wall),
            s.failed,
            s.cache_hits
        );
    }
}

/// One machine-readable `key=value` record per event on stdout.
#[derive(Debug, Default, Clone, Copy)]
pub struct MachineObserver;

impl RunObserver for MachineObserver {
    fn sweep_started(&self, name: &str, cells: usize, threads: usize) {
        println!("sweep name={name} cells={cells} threads={threads}");
    }

    fn audit_violation(&self, label: &str, message: &str) {
        println!(
            "audit label={} message={}",
            label.replace(' ', "_"),
            message.replace(' ', "_")
        );
    }

    fn telemetry_note(&self, label: &str, note: &str) {
        println!(
            "telemetry label={} note={}",
            label.replace(' ', "_"),
            note.replace(' ', "_")
        );
    }

    fn cell_finished(&self, r: &CellResult) {
        let ok = r.outcome.is_ok();
        println!(
            "cell index={} label={} ok={ok} wall_us={} sim_cycles={}",
            r.index,
            r.label.replace(' ', "_"),
            r.wall.as_micros(),
            r.sim_cycles
        );
        let _ = std::io::stdout().flush();
    }

    fn cache_note(&self, label: &str, note: &str) {
        println!(
            "cache label={} note={}",
            label.replace(' ', "_"),
            note.replace(' ', "_")
        );
    }

    fn sweep_finished(&self, s: &SweepSummary) {
        println!(
            "done name={} cells={} failed={} cache_hits={} wall_us={} sim_cycles={} cyc_per_s={:.0}",
            s.name,
            s.cells,
            s.failed,
            s.cache_hits,
            s.wall.as_micros(),
            s.sim_cycles,
            s.cycles_per_second()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_rates() {
        let s = SweepSummary {
            name: "t".into(),
            cells: 2,
            failed: 0,
            threads: 1,
            wall: Duration::from_secs(2),
            cell_wall: Duration::from_secs(2),
            sim_cycles: 4_000_000,
            cache_hits: 0,
        };
        assert!((s.cycles_per_second() - 2_000_000.0).abs() < 1.0);
        assert_eq!(fmt_rate(4_000_000, Duration::from_secs(2)), "2.0 Mcyc/s");
        assert_eq!(fmt_rate(10_000, Duration::from_secs(1)), "10 kcyc/s");
        assert_eq!(fmt_rate(0, Duration::from_secs(1)), "-");
    }

    #[test]
    fn null_observer_accepts_all_events() {
        let o = NullObserver;
        o.sweep_started("x", 1, 1);
        o.cell_started(0, "c");
        o.sweep_finished(&SweepSummary {
            name: "x".into(),
            cells: 0,
            failed: 0,
            threads: 1,
            wall: Duration::ZERO,
            cell_wall: Duration::ZERO,
            sim_cycles: 0,
            cache_hits: 0,
        });
    }
}
