//! Common substrate for the STT-RAM NoC reproduction.
//!
//! This crate holds the vocabulary shared by every other crate in the
//! workspace: strongly-typed identifiers for nodes, cores, banks and
//! regions ([`ids`]), mesh geometry for the two stacked 8x8 layers
//! ([`geom`]), the global simulation configuration ([`config`]),
//! deterministic random-number helpers ([`rng`]), lightweight
//! statistics containers ([`stats`]) and stable structural hashing
//! for content-addressed caches ([`fingerprint`]).
//!
//! # Example
//!
//! ```
//! use snoc_common::geom::{Coord, Layer, Mesh};
//! use snoc_common::ids::NodeId;
//!
//! let mesh = Mesh::new(8, 8);
//! let node = NodeId::new(27);
//! let coord = mesh.coord(node, Layer::Core);
//! assert_eq!((coord.x, coord.y), (3, 3));
//! assert_eq!(mesh.node(coord), node);
//! ```

pub mod config;
pub mod fingerprint;
pub mod geom;
pub mod ids;
pub mod rng;
pub mod stats;

/// A simulation timestamp or duration, measured in core clock cycles
/// (3 GHz in the paper's configuration).
pub type Cycle = u64;
