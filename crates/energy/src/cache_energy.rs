//! Cache access and leakage energy from the Table 2 technology
//! parameters.

use snoc_mem::tech::TechParams;

/// Energy tallies for one bank population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheEnergyModel {
    params: TechParams,
    banks: usize,
    clock_ghz: f64,
}

impl CacheEnergyModel {
    /// Creates a model for `banks` banks of the given technology at
    /// `clock_ghz`.
    pub fn new(params: TechParams, banks: usize, clock_ghz: f64) -> Self {
        Self {
            params,
            banks,
            clock_ghz,
        }
    }

    /// The technology parameters in use.
    pub fn params(&self) -> &TechParams {
        &self.params
    }

    /// Dynamic energy of `reads` read and `writes` write accesses, nJ.
    pub fn dynamic_nj(&self, reads: u64, writes: u64) -> f64 {
        reads as f64 * self.params.read_energy_nj + writes as f64 * self.params.write_energy_nj
    }

    /// Leakage of all banks over `cycles` cycles, nJ.
    pub fn leakage_nj(&self, cycles: u64) -> f64 {
        self.params.leakage_nj(cycles, self.clock_ghz) * self.banks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stt_writes_cost_more_than_reads() {
        let m = CacheEnergyModel::new(TechParams::stt_ram_4mb(), 64, 3.0);
        assert!(m.dynamic_nj(0, 100) > 2.0 * m.dynamic_nj(100, 0));
    }

    #[test]
    fn sram_leakage_dominates_stt_leakage() {
        let sram = CacheEnergyModel::new(TechParams::sram_1mb(), 64, 3.0);
        let stt = CacheEnergyModel::new(TechParams::stt_ram_4mb(), 64, 3.0);
        let cycles = 100_000;
        let ratio = stt.leakage_nj(cycles) / sram.leakage_nj(cycles);
        // 190.5 / 444.6 = 0.43: the root of Figure 8's ~54% saving.
        assert!((ratio - 190.5 / 444.6).abs() < 1e-9);
    }

    #[test]
    fn leakage_dwarfs_dynamic_energy_at_realistic_rates() {
        // 64 banks over 100k cycles at ~0.05 accesses/cycle/chip:
        // leakage is the dominant term, as the paper's 54% result
        // implies.
        let m = CacheEnergyModel::new(TechParams::sram_1mb(), 64, 3.0);
        let leak = m.leakage_nj(100_000);
        let dynamic = m.dynamic_nj(2_500, 2_500);
        assert!(leak > 100.0 * dynamic, "leak {leak} vs dyn {dynamic}");
    }
}
