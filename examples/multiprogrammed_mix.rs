//! Multiprogrammed fairness: the paper's Case-2 study.
//!
//! Two bursty, write-intensive applications (lbm, hmmer) run alongside
//! two read-intensive ones (bzip2, libquantum), 16 copies each. With a
//! plain STT-RAM swap the bursty writers hog the network and banks;
//! the WB scheme prioritizes reads to idle banks and restores
//! fairness (Figures 9 and 10).
//!
//! ```sh
//! cargo run --release --example multiprogrammed_mix
//! ```

use sttram_noc_repro::sim::metrics::{max_slowdown, weighted_speedup};
use sttram_noc_repro::sim::scenario::Scenario;
use sttram_noc_repro::sim::system::{DriveMode, System};
use sttram_noc_repro::workload::mixes;

fn main() {
    let mix = mixes::case2(64);
    let apps: Vec<&str> = mix.distinct().iter().map(|p| p.name).collect();
    println!("Case-2 mix: {} (16 copies each)\n", apps.join(", "));

    for scenario in [
        Scenario::Sram64Tsb,
        Scenario::SttRam64Tsb,
        Scenario::SttRam4TsbWb,
    ] {
        let mut cfg = scenario.config();
        cfg.warmup_cycles = 2_000;
        cfg.measure_cycles = 10_000;

        // "Alone" runs for the weighted-speedup metric: one copy of
        // each app on an otherwise idle machine (Eq. 2's IPC_alone).
        let mut alone = Vec::new();
        for name in &apps {
            let solo = mixes::Workload::solo(name, cfg.cores()).unwrap();
            let m = System::new(cfg, &solo, DriveMode::Profile).run();
            alone.push(m.ipc(0));
        }

        let m = System::new(cfg, &mix, DriveMode::Profile).run();
        let shared: Vec<f64> = apps
            .iter()
            .map(|n| m.ipc_of_cores(&mix.cores_running(n)))
            .collect();

        println!("{}:", scenario.name());
        for ((name, s), a) in apps.iter().zip(&shared).zip(&alone) {
            println!(
                "  {:8} shared IPC {:.3}  alone IPC {:.3}  slowdown {:.2}x",
                name,
                s,
                a,
                a / s.max(1e-9)
            );
        }
        println!(
            "  weighted speedup {:.2}   max slowdown {:.2}   instruction throughput {:.2}\n",
            weighted_speedup(&shared, &alone),
            max_slowdown(&shared, &alone),
            m.instruction_throughput()
        );
    }
}
