//! Figure 6: system throughput of every benchmark under the six design
//! scenarios, normalized to SRAM-64TSB — IPC for the multi-threaded
//! suites (reported for the slowest thread, as in the paper),
//! instruction throughput for the multi-programmed SPEC suite.

use crate::experiments::{norm, Scale};
use crate::scenario::Scenario;
use crate::system::System;
use snoc_workload::table3::{self, figures};
use snoc_workload::Suite;
use std::fmt;

/// Per-application, per-scenario measurements.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Application name.
    pub app: &'static str,
    /// Suite.
    pub suite: Suite,
    /// One entry per [`Scenario::ALL`]: instruction throughput.
    pub throughput: Vec<f64>,
    /// One entry per scenario: slowest-thread IPC.
    pub slowest_ipc: Vec<f64>,
    /// One entry per scenario: uncore energy in nJ.
    pub energy_nj: Vec<f64>,
    /// One entry per scenario: mean uncore round trip (cycles).
    pub uncore_latency: Vec<f64>,
}

impl SweepRow {
    /// The paper's Figure 6 metric for this row, per scenario:
    /// slowest-thread IPC for multi-threaded suites, instruction
    /// throughput for SPEC.
    pub fn fig6_metric(&self) -> &[f64] {
        if self.suite == Suite::Spec {
            &self.throughput
        } else {
            &self.slowest_ipc
        }
    }
}

/// Runs every scenario for each named application.
pub fn sweep(scale: Scale, apps: &[&str]) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for name in apps {
        let p = table3::by_name(name).expect("known app");
        let mut throughput = Vec::new();
        let mut slowest = Vec::new();
        let mut energy = Vec::new();
        let mut latency = Vec::new();
        for sc in Scenario::ALL {
            let cfg = scale.apply(sc.config());
            let m = System::homogeneous(cfg, p).run();
            throughput.push(m.instruction_throughput());
            slowest.push(m.slowest_ipc());
            energy.push(m.uncore_energy_nj());
            latency.push(m.uncore_latency());
        }
        rows.push(SweepRow {
            app: p.name,
            suite: p.suite,
            throughput,
            slowest_ipc: slowest,
            energy_nj: energy,
            uncore_latency: latency,
        });
    }
    rows
}

/// The figure: three suite panels.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// All measured rows.
    pub rows: Vec<SweepRow>,
}

impl Fig6Result {
    /// Rows of one suite.
    pub fn suite(&self, s: Suite) -> impl Iterator<Item = &SweepRow> {
        self.rows.iter().filter(move |r| r.suite == s)
    }

    /// Suite-average normalized metric per scenario.
    pub fn suite_average(&self, s: Suite) -> Vec<f64> {
        let rows: Vec<&SweepRow> = self.suite(s).collect();
        let mut avg = vec![0.0; Scenario::ALL.len()];
        for r in &rows {
            let m = r.fig6_metric();
            for (i, v) in m.iter().enumerate() {
                avg[i] += norm(*v, m[0]);
            }
        }
        for v in &mut avg {
            *v /= rows.len().max(1) as f64;
        }
        avg
    }
}

/// Runs the Figure 6 panels (server + PARSEC + SPEC subsets shown in
/// the paper's plot; at full scale the averages cover them all).
pub fn run(scale: Scale) -> Fig6Result {
    let mut apps: Vec<&str> = Vec::new();
    apps.extend(scale.take_apps(figures::FIG6_SERVER));
    apps.extend(scale.take_apps(figures::FIG6_PARSEC));
    apps.extend(scale.take_apps(figures::FIG6_SPEC));
    Fig6Result { rows: sweep(scale, &apps) }
}

impl fmt::Display for Fig6Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 6: throughput normalized to SRAM-64TSB (IPC of slowest thread for\nserver/PARSEC; instruction throughput for SPEC)"
        )?;
        write!(f, "{:12}", "benchmark")?;
        for sc in Scenario::ALL {
            write!(f, " {:>14}", sc.name())?;
        }
        writeln!(f)?;
        for suite in [Suite::Server, Suite::Parsec, Suite::Spec] {
            writeln!(f, "--- {suite:?} ---")?;
            for r in self.suite(suite) {
                write!(f, "{:12}", r.app)?;
                let m = r.fig6_metric();
                for v in m {
                    write!(f, " {:>14.3}", norm(*v, m[0]))?;
                }
                writeln!(f)?;
            }
            write!(f, "{:12}", "Avg.")?;
            for v in self.suite_average(suite) {
                write!(f, " {:>14.3}", v)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_covers_scenarios() {
        let r = run(Scale::Quick);
        assert!(!r.rows.is_empty());
        for row in &r.rows {
            assert_eq!(row.throughput.len(), 6);
            assert!(row.throughput.iter().all(|&t| t > 0.0), "{}", row.app);
        }
        let s = r.to_string();
        assert!(s.contains("SRAM-64TSB"));
    }
}
