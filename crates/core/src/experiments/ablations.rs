//! Ablations of the design choices `DESIGN.md` calls out: the hold
//! release slack, the WB sampling window, the request-class VC count,
//! and the bank intake depth. Each sweeps one knob of the WB design on
//! a bursty, write-intensive workload while everything else stays at
//! the paper's configuration.

use crate::experiments::Scale;
use crate::report::Rows;
use crate::scenario::Scenario;
use crate::sweep::{CellResult, Experiment, RunSpec, SweepRunner};
use snoc_common::config::SystemConfig;
use snoc_workload::table3;
use std::fmt;

/// One knob sweep.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Knob name.
    pub knob: &'static str,
    /// The values swept (as printed).
    pub values: Vec<String>,
    /// Instruction throughput at each value.
    pub throughput: Vec<f64>,
    /// Mean uncore round trip at each value.
    pub uncore_rtt: Vec<f64>,
    /// Packets held at parents at each value.
    pub held: Vec<u64>,
}

/// All four sweeps.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Application used.
    pub app: &'static str,
    /// The sweeps.
    pub sweeps: Vec<Sweep>,
}

/// The flattened knob grid: `(knob, printed value, config)` per cell,
/// knob by knob.
fn knob_points(scale: Scale) -> Vec<(&'static str, String, SystemConfig)> {
    let base = || scale.apply(Scenario::SttRam4TsbWb.config());
    let mut points = Vec::new();
    for v in [0u64, 4, 8, 16] {
        let cfg = base().rebuild().tune(|c| c.noc.hold_slack = v).build();
        points.push(("hold release slack (cycles)", v.to_string(), cfg));
    }
    for v in [25u32, 100, 400] {
        let cfg = base().rebuild().wb_window(v).build();
        points.push(("WB sampling window (requests)", v.to_string(), cfg));
    }
    for v in [4usize, 5, 6, 7, 8] {
        let cfg = base().rebuild().tune(|c| c.noc.vcs_per_port = v).build();
        points.push(("virtual channels per port", v.to_string(), cfg));
    }
    for v in [1usize, 4, 16] {
        let cfg = base().rebuild().tune(|c| c.mem.bank_queue = v).build();
        points.push(("bank intake queue depth", v.to_string(), cfg));
    }
    points
}

/// The ablation sweeps on `lbm` (bursty, write-intensive).
pub struct Ablations;

impl Experiment for Ablations {
    type Output = AblationResult;

    fn name(&self) -> &str {
        "ablations"
    }

    fn grid(&self, scale: Scale) -> Vec<RunSpec> {
        let p = table3::by_name("lbm").expect("lbm is in Table 3");
        knob_points(scale)
            .into_iter()
            .map(|(knob, value, cfg)| RunSpec::homogeneous(format!("{knob}={value}"), cfg, p))
            .collect()
    }

    fn assemble(&self, scale: Scale, cells: Vec<CellResult>) -> AblationResult {
        let p = table3::by_name("lbm").expect("lbm is in Table 3");
        let mut sweeps: Vec<Sweep> = Vec::new();
        for ((knob, value, _), cell) in knob_points(scale).into_iter().zip(&cells) {
            if sweeps.last().map(|s| s.knob) != Some(knob) {
                sweeps.push(Sweep {
                    knob,
                    values: Vec::new(),
                    throughput: Vec::new(),
                    uncore_rtt: Vec::new(),
                    held: Vec::new(),
                });
            }
            let s = sweeps.last_mut().unwrap();
            let m = cell.metrics();
            s.values.push(value);
            s.throughput.push(m.instruction_throughput());
            s.uncore_rtt.push(m.uncore_rtt);
            s.held.push(m.held_packets);
        }
        AblationResult {
            app: p.name,
            sweeps,
        }
    }
}

/// Runs the ablations through the [`SweepRunner`].
pub fn run(scale: Scale) -> AblationResult {
    SweepRunner::from_env().run(&Ablations, scale)
}

impl fmt::Display for AblationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Design-choice ablations on {} (MRAM-4TSB-WB)", self.app)?;
        for s in &self.sweeps {
            writeln!(f, "--- {} ---", s.knob)?;
            writeln!(
                f,
                "{:>10} {:>12} {:>12} {:>10}",
                "value", "IT", "uncore RTT", "held"
            )?;
            for i in 0..s.values.len() {
                writeln!(
                    f,
                    "{:>10} {:>12.2} {:>12.1} {:>10}",
                    s.values[i], s.throughput[i], s.uncore_rtt[i], s.held[i]
                )?;
            }
        }
        Ok(())
    }
}

impl Rows for AblationResult {
    fn header(&self) -> Vec<String> {
        vec!["IT".into(), "uncore RTT".into(), "held".into()]
    }

    fn rows(&self) -> Vec<(String, Vec<f64>)> {
        let mut out = Vec::new();
        for s in &self.sweeps {
            for i in 0..s.values.len() {
                out.push((
                    format!("{}={}", s.knob, s.values[i]),
                    vec![s.throughput[i], s.uncore_rtt[i], s.held[i] as f64],
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_cover_all_knobs() {
        let r = run(Scale::Quick);
        assert_eq!(r.sweeps.len(), 4);
        for s in &r.sweeps {
            assert!(s.throughput.iter().all(|&t| t > 0.0), "{}", s.knob);
            assert_eq!(s.values.len(), s.throughput.len());
        }
        // More VCs never hurt throughput catastrophically.
        let vcs = &r.sweeps[2];
        let min = vcs.throughput.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vcs.throughput.iter().cloned().fold(0.0, f64::max);
        assert!(
            max / min < 2.0,
            "VC sweep should be smooth: {:?}",
            vcs.throughput
        );
    }
}
