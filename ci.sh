#!/usr/bin/env bash
# CI gate: tier-1 build+test, formatting, and a sweep determinism
# smoke test (SNOC_THREADS must not change a repro binary's stdout).
set -euo pipefail
cd "$(dirname "$0")"

echo "== tier 1: release build =="
cargo build --release

echo "== tier 1: tests =="
cargo test -q

echo "== formatting =="
cargo fmt --all -- --check

echo "== lints: clippy, warnings are errors =="
cargo clippy --all-targets -- -D warnings

echo "== audit: every experiment invariant-clean at quick scale =="
cargo test --release -q -p snoc-core --test audit

echo "== sweep smoke: SNOC_THREADS=1 vs 4 stdout must be identical =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
export SNOC_PROGRESS=0 SNOC_RESULTS_DIR="$tmp/results"
SNOC_THREADS=1 cargo run --release -q -p snoc-bench --bin repro-fig3 -- --quick \
    >"$tmp/t1.out" 2>/dev/null
SNOC_THREADS=4 cargo run --release -q -p snoc-bench --bin repro-fig3 -- --quick \
    >"$tmp/t4.out" 2>/dev/null
diff -u "$tmp/t1.out" "$tmp/t4.out"
test -s "$tmp/t1.out"
echo "ok: identical across thread counts"

echo "== perf smoke: repro-perf runs and emits a parseable report =="
cargo run --release -q -p snoc-bench --bin repro-perf -- --smoke --out "$tmp/bench.json" \
    >/dev/null
grep -q '"kernels/network_step"' "$tmp/bench.json"

echo "== ci passed =="
