//! Runs the design-choice ablations (hold slack, WB window, VC count,
//! bank intake depth).
fn main() {
    let scale = snoc_bench::scale_from_args();
    snoc_bench::emit("ablations", &snoc_core::experiments::ablations::run(scale));
}
