//! Cycle-level 3D wormhole network-on-chip simulator with STT-RAM-aware
//! router arbitration.
//!
//! This crate implements the network half of the ISCA'11 paper
//! *Architecting On-Chip Interconnects for Stacked 3D STT-RAM Caches in
//! CMPs*: two stacked 8x8 meshes of two-stage virtual-channel wormhole
//! routers joined by TSVs, logical cache-layer regions served by wide
//! TSBs, parent-router busy prediction for child banks, and the SS /
//! RCA / WB congestion estimators.
//!
//! # Example
//!
//! ```
//! use snoc_noc::network::{Network, NetworkParams};
//! use snoc_noc::packet::{Packet, PacketKind};
//! use snoc_common::config::SystemConfig;
//! use snoc_common::geom::{Coord, Layer};
//!
//! let cfg = SystemConfig::default();
//! let mut net = Network::new(NetworkParams::from_config(&cfg));
//! let src = Coord::new(0, 0, Layer::Core);
//! let dst = Coord::new(7, 7, Layer::Cache);
//! net.inject(Packet::new(PacketKind::BankRead, src, dst, 0x1000, 1));
//! for _ in 0..120 {
//!     net.step();
//! }
//! let delivered = net.drain_delivered(dst);
//! assert_eq!(delivered.len(), 1);
//! ```

pub mod arbiter;
pub mod arena;
pub mod audit;
pub mod busy;
pub mod estimator;
pub mod fault;
pub mod network;
pub mod nic;
pub mod packet;
pub mod parent;
pub(crate) mod partition;
pub mod regions;
pub mod router;
pub mod routing;
pub mod telemetry;
pub mod workspace;

pub use arena::{Arena, ArenaFull};
pub use audit::{AuditConfig, AuditReport, NetAuditor};
pub use fault::{FaultPlan, FaultSummary};
pub use network::{NetStats, Network, NetworkParams, NocEnv};
pub use packet::{Flit, Packet, PacketKind, TrafficClass};
pub use telemetry::{TelemetryConfig, TelemetrySummary};
pub use workspace::{NocWorkspace, PortRef, VcRef, WsView};
