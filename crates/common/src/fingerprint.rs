//! Stable structural fingerprints for content-addressed caching.
//!
//! The sweep cache keys cells by *what they compute*: every modeled
//! field of the configuration plus the workload identity, folded
//! through a hasher whose output is fixed by this file alone. The
//! standard library's `Hash`/`Hasher` machinery is deliberately not
//! used — `DefaultHasher` documents no stability across releases, and
//! a silent key change would turn every on-disk cache entry stale (or
//! worse, collide). [`StableHasher`] is two independent FNV-1a lanes
//! over an explicitly serialized byte stream; the 128-bit digest makes
//! accidental collisions across a sweep's few thousand cells
//! negligible.
//!
//! Every value is written through a typed method (`write_u64`,
//! `write_str`, ...) with a one-byte domain tag so that adjacent
//! fields cannot alias (e.g. `("ab", "c")` vs `("a", "bc")`, or a
//! `None` option vs a zero integer).

/// 64-bit FNV-1a offset basis and prime.
const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x00000100000001b3;
/// Second-lane basis: the first lane's basis folded over the ASCII
/// bytes of "snoc" — any constant differing from `FNV_OFFSET` works;
/// what matters is that the two lanes never agree on all inputs.
const FNV_OFFSET_B: u64 = 0xa1c2e39f5d8b7a11;

/// Byte tags separating value domains in the hashed stream.
mod tag {
    pub const U64: u8 = 1;
    pub const U8: u8 = 2;
    pub const BOOL: u8 = 3;
    pub const STR: u8 = 4;
    pub const F64: u8 = 5;
    pub const SOME: u8 = 6;
    pub const NONE: u8 = 7;
}

/// A deterministic 128-bit structural hasher (two FNV-1a lanes).
///
/// The digest is a pure function of the byte sequence fed through the
/// typed `write_*` methods — independent of compiler version, target,
/// and the standard library's `Hash` implementations.
#[derive(Debug, Clone)]
pub struct StableHasher {
    a: u64,
    b: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset bases.
    pub fn new() -> Self {
        Self {
            a: FNV_OFFSET,
            b: FNV_OFFSET_B,
        }
    }

    fn byte(&mut self, byte: u8) {
        self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        self.b = (self.b ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }

    /// Feeds raw bytes (no tag); prefer the typed methods.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.byte(byte);
        }
    }

    /// Feeds a tagged `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.byte(tag::U64);
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a tagged `usize` widened to `u64` so the digest does not
    /// depend on the host word size.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds a tagged `u32` widened to `u64`.
    pub fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    /// Feeds a tagged single byte.
    pub fn write_u8(&mut self, v: u8) {
        self.byte(tag::U8);
        self.byte(v);
    }

    /// Feeds a tagged boolean.
    pub fn write_bool(&mut self, v: bool) {
        self.byte(tag::BOOL);
        self.byte(v as u8);
    }

    /// Feeds a tagged, length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.byte(tag::STR);
        self.write_bytes(&(s.len() as u64).to_le_bytes());
        self.write_bytes(s.as_bytes());
    }

    /// Feeds a tagged `f64` via its IEEE-754 bit pattern (exact; NaN
    /// payloads included, so only feed values you produced).
    pub fn write_f64(&mut self, v: f64) {
        self.byte(tag::F64);
        self.write_bytes(&v.to_bits().to_le_bytes());
    }

    /// Marks an `Option` as present; follow with the value's writes.
    pub fn write_some(&mut self) {
        self.byte(tag::SOME);
    }

    /// Marks an `Option` as absent.
    pub fn write_none(&mut self) {
        self.byte(tag::NONE);
    }

    /// The 128-bit digest accumulated so far.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint {
            hi: self.a,
            lo: self.b,
        }
    }
}

/// A 128-bit content fingerprint, printable as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint {
    /// First FNV lane.
    pub hi: u64,
    /// Second FNV lane.
    pub lo: u64,
}

impl Fingerprint {
    /// Renders the digest as 32 lowercase hex digits (the on-disk
    /// cache file name).
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parses the 32-hex-digit form back; `None` on any malformed
    /// input (wrong length, non-hex bytes).
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 || !s.is_ascii() {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Self { hi, lo })
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// FNV-1a-64 over raw bytes: the checksum used by the on-disk cell
/// codec (content integrity, not content addressing).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_across_calls() {
        let mut h1 = StableHasher::new();
        let mut h2 = StableHasher::new();
        for h in [&mut h1, &mut h2] {
            h.write_u64(42);
            h.write_str("sap");
            h.write_bool(true);
            h.write_f64(0.25);
        }
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn digest_is_pinned() {
        // Golden value: a change here means every existing cache entry
        // silently re-keys. Bump the cell codec version when this
        // moves intentionally.
        let mut h = StableHasher::new();
        h.write_u64(1);
        h.write_str("x");
        assert_eq!(h.finish().to_hex(), "7de853ce191171768274fb3e5d9b7122");
    }

    #[test]
    fn adjacent_strings_do_not_alias() {
        let mut h1 = StableHasher::new();
        h1.write_str("ab");
        h1.write_str("c");
        let mut h2 = StableHasher::new();
        h2.write_str("a");
        h2.write_str("bc");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn none_does_not_alias_zero() {
        let mut h1 = StableHasher::new();
        h1.write_none();
        let mut h2 = StableHasher::new();
        h2.write_u64(0);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn hex_round_trips() {
        let mut h = StableHasher::new();
        h.write_str("round-trip");
        let fp = h.finish();
        assert_eq!(Fingerprint::from_hex(&fp.to_hex()), Some(fp));
        assert_eq!(Fingerprint::from_hex("nope"), None);
        assert_eq!(Fingerprint::from_hex(&"f".repeat(31)), None);
    }

    #[test]
    fn fnv_checksum_matches_reference_vector() {
        // Published FNV-1a-64 test vector.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
    }
}
