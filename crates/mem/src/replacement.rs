//! Replacement policies for the set-associative arrays.
//!
//! The paper's caches use LRU; the array supports true LRU (default),
//! tree pseudo-LRU (what a 16-way L2 would realistically implement)
//! and a seeded random policy for ablations.

use snoc_common::rng::SimRng;

/// Which replacement policy an array uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementKind {
    /// True least-recently-used (per-line stamps).
    Lru,
    /// Tree pseudo-LRU (one bit per internal node).
    TreePlru,
    /// Uniform random victim (seeded, deterministic).
    Random,
}

/// Per-set replacement state.
#[derive(Debug, Clone)]
pub enum SetState {
    /// LRU needs no extra state (the array keeps stamps).
    Lru,
    /// PLRU tree bits; `ways - 1` internal nodes, heap order.
    TreePlru {
        /// Node bits: `false` points left, `true` points right.
        bits: Vec<bool>,
    },
    /// Random needs no per-set state.
    Random,
}

impl SetState {
    /// Creates the state for one set of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is not a power of two for the PLRU tree.
    pub fn new(kind: ReplacementKind, ways: usize) -> Self {
        match kind {
            ReplacementKind::Lru => SetState::Lru,
            ReplacementKind::TreePlru => {
                assert!(ways.is_power_of_two(), "PLRU needs power-of-two ways");
                SetState::TreePlru {
                    bits: vec![false; ways - 1],
                }
            }
            ReplacementKind::Random => SetState::Random,
        }
    }

    /// Records a touch (hit or fill) of `way`.
    pub fn touch(&mut self, way: usize, ways: usize) {
        if let SetState::TreePlru { bits } = self {
            // Walk from the root to `way`, pointing every node away
            // from it.
            let mut node = 0;
            let mut lo = 0;
            let mut hi = ways;
            while hi - lo > 1 {
                let mid = (lo + hi) / 2;
                let right = way >= mid;
                bits[node] = !right; // point away from the touched half
                node = 2 * node + 1 + usize::from(right);
                if right {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
        }
    }

    /// Picks the victim way using the policy state. `lru_stamps` are
    /// the array's per-way recency stamps (used only by true LRU).
    pub fn victim(&self, ways: usize, lru_stamps: &[u64], rng: Option<&mut SimRng>) -> usize {
        match self {
            SetState::Lru => {
                let mut best = 0;
                for w in 1..ways {
                    if lru_stamps[w] < lru_stamps[best] {
                        best = w;
                    }
                }
                best
            }
            SetState::TreePlru { bits } => {
                // Follow the pointers: they lead to the pseudo-LRU leaf.
                let mut node = 0;
                let mut lo = 0;
                let mut hi = ways;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let right = bits[node];
                    node = 2 * node + 1 + usize::from(right);
                    if right {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                lo
            }
            SetState::Random => rng.expect("random replacement needs an RNG").below(ways),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_victim_is_smallest_stamp() {
        let s = SetState::new(ReplacementKind::Lru, 4);
        assert_eq!(s.victim(4, &[5, 2, 9, 7], None), 1);
    }

    #[test]
    fn plru_never_victimizes_the_most_recent_touch() {
        let mut s = SetState::new(ReplacementKind::TreePlru, 8);
        let mut rng = SimRng::for_stream(1, 1);
        for _ in 0..1_000 {
            let touched = rng.below(8);
            s.touch(touched, 8);
            let v = s.victim(8, &[], None);
            assert_ne!(v, touched, "PLRU must not evict the line just touched");
        }
    }

    #[test]
    fn plru_approximates_lru_on_sequential_touches() {
        let mut s = SetState::new(ReplacementKind::TreePlru, 4);
        // Touch 0,1,2,3 in order: the victim should be 0 (oldest).
        for w in 0..4 {
            s.touch(w, 4);
        }
        assert_eq!(s.victim(4, &[], None), 0);
        // Re-touch 0: victim moves to the other subtree.
        s.touch(0, 4);
        let v = s.victim(4, &[], None);
        assert!(v == 2 || v == 3, "victim {v} must leave the touched half");
    }

    #[test]
    fn plru_tree_covers_all_ways_eventually() {
        let mut s = SetState::new(ReplacementKind::TreePlru, 8);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            let v = s.victim(8, &[], None);
            seen.insert(v);
            s.touch(v, 8); // fill the victim, like a real miss
            let _ = i;
        }
        assert_eq!(seen.len(), 8, "all ways get recycled: {seen:?}");
    }

    #[test]
    fn random_uses_the_rng() {
        let s = SetState::new(ReplacementKind::Random, 4);
        let mut rng = SimRng::for_stream(7, 7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.victim(4, &[], Some(&mut rng)));
        }
        assert!(seen.len() > 2, "random spreads victims: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn plru_rejects_odd_ways() {
        SetState::new(ReplacementKind::TreePlru, 6);
    }
}
