//! Figure 13: sensitivity to the parent-child distance H — (a) the
//! number of re-orderable requests a parent sees at H = 1/2/3, and
//! (b) the average IPC improvement of the WB scheme over the
//! STT-RAM-4TSB baseline at each H.

use crate::experiments::{norm, Scale};
use crate::report::Rows;
use crate::scenario::Scenario;
use crate::sweep::{CellResult, Experiment, RunSpec, SweepRunner};
use snoc_workload::table3::{self, figures};
use std::fmt;

/// The figure's two panels.
#[derive(Debug, Clone)]
pub struct Fig13Result {
    /// Applications measured.
    pub apps: Vec<&'static str>,
    /// `requests[a][h-1]`: mean buffered requests H hops from their
    /// destination when a write is forwarded.
    pub requests: Vec<[f64; 3]>,
    /// Average IPC improvement (%) of WB over the 4-TSB round-robin
    /// baseline, per H in 1..=3.
    pub ipc_improvement_pct: [f64; 3],
}

fn apps(scale: Scale) -> Vec<&'static str> {
    scale
        .take_apps(figures::FIG3)
        .iter()
        .map(|n| table3::by_name(n).expect("known app").name)
        .collect()
}

/// Both panels as one grid: the panel-(a) characterization cells
/// (which carry the queue depths for all three hop distances in their
/// metrics), then panel (b)'s baseline/WB pair per hop distance per
/// app.
pub struct Fig13;

impl Experiment for Fig13 {
    type Output = Fig13Result;

    fn name(&self) -> &str {
        "fig13"
    }

    fn grid(&self, scale: Scale) -> Vec<RunSpec> {
        let apps = apps(scale);
        let mut grid = Vec::new();
        // Panel (a): queue depth by hop distance, from the 4-TSB
        // baseline.
        for name in &apps {
            let p = table3::by_name(name).unwrap();
            grid.push(RunSpec::homogeneous(
                format!("fig13a/{name}"),
                scale.apply(Scenario::SttRam4Tsb.config()),
                p,
            ));
        }
        // Panel (b): WB vs baseline at each re-ordering distance.
        for h in 1..=3u32 {
            for name in &apps {
                let p = table3::by_name(name).unwrap();
                for (tag, sc) in [
                    ("base", Scenario::SttRam4Tsb),
                    ("wb", Scenario::SttRam4TsbWb),
                ] {
                    let cfg = scale.apply(sc.config()).rebuild().parent_hops(h).build();
                    grid.push(RunSpec::homogeneous(
                        format!("fig13b/H{h}/{tag}/{name}"),
                        cfg,
                        p,
                    ));
                }
            }
        }
        grid
    }

    fn assemble(&self, scale: Scale, cells: Vec<CellResult>) -> Fig13Result {
        let apps = apps(scale);
        let requests: Vec<[f64; 3]> = cells[..apps.len()]
            .iter()
            .map(|c| c.metrics().queue_mean_by_hops)
            .collect();

        let mut improvement = [0.0; 3];
        let mut cursor = apps.len();
        for slot in &mut improvement {
            let mut sum = 0.0;
            for _ in &apps {
                let base = cells[cursor].metrics().instruction_throughput();
                let wb = cells[cursor + 1].metrics().instruction_throughput();
                cursor += 2;
                sum += (norm(wb, base) - 1.0) * 100.0;
            }
            *slot = sum / apps.len() as f64;
        }

        Fig13Result {
            apps,
            requests,
            ipc_improvement_pct: improvement,
        }
    }
}

/// Runs both panels through the [`SweepRunner`].
pub fn run(scale: Scale) -> Fig13Result {
    SweepRunner::from_env().run(&Fig13, scale)
}

impl fmt::Display for Fig13Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 13a: requests in a router destined H hops away (at write forwards)"
        )?;
        writeln!(
            f,
            "{:10} {:>7} {:>7} {:>7}",
            "app", "1 hop", "2 hop", "3 hop"
        )?;
        for (name, r) in self.apps.iter().zip(&self.requests) {
            writeln!(f, "{:10} {:>7.2} {:>7.2} {:>7.2}", name, r[0], r[1], r[2])?;
        }
        let n = self.apps.len().max(1) as f64;
        let avg: Vec<f64> = (0..3)
            .map(|h| self.requests.iter().map(|r| r[h]).sum::<f64>() / n)
            .collect();
        writeln!(
            f,
            "{:10} {:>7.2} {:>7.2} {:>7.2}",
            "Avg.", avg[0], avg[1], avg[2]
        )?;
        writeln!(
            f,
            "Figure 13b: avg IPC improvement of WB over 4TSB-RR per hop distance"
        )?;
        for (h, v) in self.ipc_improvement_pct.iter().enumerate() {
            writeln!(f, "H = {}: {:+.1}%", h + 1, v)?;
        }
        Ok(())
    }
}

impl Rows for Fig13Result {
    fn header(&self) -> Vec<String> {
        vec!["H=1".into(), "H=2".into(), "H=3".into()]
    }

    fn rows(&self) -> Vec<(String, Vec<f64>)> {
        let mut out: Vec<(String, Vec<f64>)> = self
            .apps
            .iter()
            .zip(&self.requests)
            .map(|(name, r)| (format!("requests/{name}"), r.to_vec()))
            .collect();
        out.push((
            "IPC improvement (%)".into(),
            self.ipc_improvement_pct.to_vec(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn farther_parents_see_more_requests() {
        let r = run(Scale::Quick);
        let n = r.apps.len() as f64;
        let avg: Vec<f64> = (0..3)
            .map(|h| r.requests.iter().map(|q| q[h]).sum::<f64>() / n)
            .collect();
        // More routers lie 2-3 hops from a destination than 1 hop, so
        // the sampled counts grow with H.
        assert!(
            avg[2] >= avg[0],
            "H=3 ({:.3}) should see at least as many as H=1 ({:.3})",
            avg[2],
            avg[0]
        );
        assert_eq!(r.rows().last().unwrap().1.len(), 3);
    }
}
