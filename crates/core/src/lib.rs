//! Full-system simulator and experiments for the ISCA'11 STT-RAM NoC
//! paper.
//!
//! [`system::System`] assembles the 3D CMP (cores, L1s, network, L2
//! banks, memory controllers); [`scenario::Scenario`] names the six
//! design points of Section 4.1; [`metrics`] implements the evaluation
//! metrics; and [`experiments`] regenerates every table and figure of
//! the evaluation section.
//!
//! # Example
//!
//! ```
//! use snoc_core::scenario::Scenario;
//! use snoc_core::system::System;
//! use snoc_workload::table3;
//!
//! let mut cfg = Scenario::SttRam4TsbWb.config();
//! cfg.warmup_cycles = 200;
//! cfg.measure_cycles = 1_500;
//! let profile = table3::by_name("sap").unwrap();
//! let metrics = System::homogeneous(cfg, profile).run();
//! assert!(metrics.instruction_throughput() > 0.0);
//! ```

pub mod cellcache;
pub mod experiments;
pub mod metrics;
pub mod observer;
pub mod report;
pub mod scenario;
pub mod serve;
pub mod sweep;
pub mod system;

pub use metrics::RunMetrics;
pub use observer::{MachineObserver, NullObserver, ProgressObserver, RunObserver};
pub use report::Rows;
pub use scenario::Scenario;
pub use sweep::{CellResult, Experiment, RunSpec, SweepRunner};
pub use system::{DriveMode, System};
