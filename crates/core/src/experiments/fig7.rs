//! Figure 7: packet latency broken into network latency and queuing
//! latency at the memory banks, per scheme, normalized to SRAM-64TSB.

use crate::experiments::{fig6, norm, Scale};
use crate::report::Rows;
use crate::scenario::Scenario;
use crate::sweep::{CellResult, Experiment, RunSpec, SweepRunner};
use snoc_workload::table3::figures;
use std::fmt;

/// One app's breakdown across the six scenarios.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Application name.
    pub app: &'static str,
    /// Network latency (request + response transit) per scenario.
    pub net_latency: Vec<f64>,
    /// Bank-side latency (NI + controller queue + service) per
    /// scenario.
    pub queue_latency: Vec<f64>,
}

impl Fig7Row {
    /// The paper's presentation: SRAM-64TSB as exact percentages of
    /// its total; other schemes normalized to the SRAM total.
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        let total0 = self.net_latency[0] + self.queue_latency[0];
        self.net_latency
            .iter()
            .zip(&self.queue_latency)
            .map(|(&n, &q)| (norm(n, total0) * 100.0, norm(q, total0) * 100.0))
            .collect()
    }
}

/// The figure.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// Rows in the paper's app order (sap, sjbb, sclust, lbm, hmmer).
    pub rows: Vec<Fig7Row>,
}

/// The latency-breakdown sweep: Figure 7's apps × the six scenarios.
pub struct Fig7;

impl Experiment for Fig7 {
    type Output = Fig7Result;

    fn name(&self) -> &str {
        "fig7"
    }

    fn grid(&self, scale: Scale) -> Vec<RunSpec> {
        fig6::scenario_grid(scale, scale.take_apps(figures::FIG7))
    }

    fn assemble(&self, scale: Scale, cells: Vec<CellResult>) -> Fig7Result {
        let apps = scale.take_apps(figures::FIG7);
        let n = Scenario::ALL.len();
        let rows = fig6::rows_from_cells(apps, &cells)
            .into_iter()
            .enumerate()
            .map(|(a, row)| {
                let ms: Vec<_> = (0..n).map(|s| cells[a * n + s].metrics()).collect();
                Fig7Row {
                    app: row.app,
                    net_latency: ms
                        .iter()
                        .map(|m| m.net_request_latency + m.net_response_latency)
                        .collect(),
                    queue_latency: ms
                        .iter()
                        .map(|m| m.bank_queue_wait + m.bank_service)
                        .collect(),
                }
            })
            .collect();
        Fig7Result { rows }
    }
}

/// Runs the latency-breakdown measurement through the [`SweepRunner`].
pub fn run(scale: Scale) -> Fig7Result {
    SweepRunner::from_env().run(&Fig7, scale)
}

impl fmt::Display for Fig7Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 7: packet latency split into network (net) and bank queuing (que),\nas % of the SRAM-64TSB total"
        )?;
        write!(f, "{:8} {:8}", "app", "part")?;
        for sc in Scenario::ALL {
            write!(f, " {:>14}", sc.name())?;
        }
        writeln!(f)?;
        for r in &self.rows {
            let n = r.normalized();
            write!(f, "{:8} {:8}", r.app, "net lat")?;
            for (net, _) in &n {
                write!(f, " {:>13.1}%", net)?;
            }
            writeln!(f)?;
            write!(f, "{:8} {:8}", "", "que lat")?;
            for (_, que) in &n {
                write!(f, " {:>13.1}%", que)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl Rows for Fig7Result {
    fn header(&self) -> Vec<String> {
        Scenario::ALL
            .iter()
            .map(|s| format!("{} (%)", s.name()))
            .collect()
    }

    fn rows(&self) -> Vec<(String, Vec<f64>)> {
        let mut out = Vec::new();
        for r in &self.rows {
            let n = r.normalized();
            out.push((format!("{}/net", r.app), n.iter().map(|p| p.0).collect()));
            out.push((format!("{}/queue", r.app), n.iter().map(|p| p.1).collect()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_has_positive_components() {
        let r = run(Scale::Quick);
        for row in &r.rows {
            assert_eq!(row.net_latency.len(), 6);
            assert!(row.net_latency.iter().all(|&v| v > 0.0));
            assert!(row.queue_latency.iter().all(|&v| v >= 0.0));
            let n = row.normalized();
            let (net0, que0) = n[0];
            assert!((net0 + que0 - 100.0).abs() < 1e-6, "SRAM row sums to 100%");
        }
        assert_eq!(r.rows().len(), 2 * r.rows.len());
    }

    #[test]
    fn stt_swap_inflates_queue_share() {
        // The paper: queuing worsens when SRAM is replaced by STT-RAM
        // (write-heavy apps; index 1 = MRAM-64TSB).
        let r = run(Scale::Quick);
        let sap = &r.rows[0];
        assert!(
            sap.queue_latency[1] > sap.queue_latency[0],
            "queueing must grow: {:?}",
            sap.queue_latency
        );
    }
}
