//! Server consolidation: the workload class that motivates the paper.
//!
//! The four commercial workloads (tpcc, sjas, sap, sjbb) are write-
//! intensive and bursty — the worst case for a naive SRAM -> STT-RAM
//! swap. This example sweeps all six design scenarios over the server
//! suite, prints the Figure 3-style post-write gap distribution for
//! each application, and reports where the network-level schemes
//! recover the write-latency loss.
//!
//! ```sh
//! cargo run --release --example server_consolidation
//! ```

use sttram_noc_repro::sim::scenario::Scenario;
use sttram_noc_repro::sim::system::System;
use sttram_noc_repro::workload::table3;
use sttram_noc_repro::workload::Suite;

fn main() {
    let servers: Vec<_> = table3::suite(Suite::Server).collect();
    println!("== Figure 3 view: how bursty is each server workload? ==");
    for p in &servers {
        let mut cfg = Scenario::SttRam4Tsb.config();
        cfg.warmup_cycles = 1_000;
        cfg.measure_cycles = 8_000;
        let m = System::homogeneous(cfg, p).run();
        let fr = m.post_write_gaps.fractions();
        println!(
            "{:6}: <16cy {:4.1}%  <33cy {:4.1}%  delayable {:4.1}%  (write window = 33 cy)",
            p.name,
            fr[0] * 100.0,
            (fr[0] + fr[1]) * 100.0,
            m.delayable_fraction * 100.0
        );
    }

    println!("\n== Throughput under the six design scenarios (normalized to SRAM) ==");
    print!("{:6}", "");
    for sc in Scenario::ALL {
        print!(" {:>14}", sc.name());
    }
    println!();
    for p in &servers {
        let mut row = Vec::new();
        for sc in Scenario::ALL {
            let mut cfg = sc.config();
            cfg.warmup_cycles = 1_000;
            cfg.measure_cycles = 8_000;
            let m = System::homogeneous(cfg, p).run();
            row.push(m.instruction_throughput());
        }
        print!("{:6}", p.name);
        for v in &row {
            print!(" {:>14.3}", v / row[0]);
        }
        println!();
    }
    println!("\nSTT-RAM stresses the banks with 33-cycle writes; the bank-aware schemes");
    println!("delay requests to busy banks at parent routers and prioritize idle-bank,");
    println!("coherence and memory traffic, clawing back most of the loss.");
}
