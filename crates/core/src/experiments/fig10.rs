//! Figure 10: maximum slowdown of each application in the Case-2 mix
//! under MRAM-64TSB vs MRAM-4TSB-WB — the fairness result: the WB
//! scheme keeps bursty write applications from starving the
//! read-intensive ones.

use crate::experiments::fig9::AloneCache;
use crate::experiments::Scale;
use crate::scenario::Scenario;
use crate::system::{DriveMode, System};
use snoc_workload::mixes;
use std::fmt;

/// The two scenarios compared, as indices into [`Scenario::ALL`].
pub const FIG10_SCENARIOS: [usize; 2] = [1, 5]; // MRAM-64TSB, MRAM-4TSB-WB

/// Per-application maximum slowdown under both scenarios.
#[derive(Debug, Clone)]
pub struct Fig10Result {
    /// Application names (lbm, hmmer, bzip2, libqntm).
    pub apps: Vec<&'static str>,
    /// `slowdown[s][a]` = slowdown of app `a` under scenario
    /// `FIG10_SCENARIOS[s]`.
    pub slowdown: [Vec<f64>; 2],
}

impl Fig10Result {
    /// The worst (maximum) slowdown per scenario.
    pub fn max_slowdown(&self, s: usize) -> f64 {
        self.slowdown[s].iter().fold(0.0, |a, &b| a.max(b))
    }
}

/// Runs the fairness measurement on the Case-2 mix.
pub fn run(scale: Scale) -> Fig10Result {
    let w = mixes::case2(64);
    let apps: Vec<&'static str> = w.distinct().iter().map(|p| p.name).collect();
    let mut alone = AloneCache::new(scale);
    let mut slowdown: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    for (si, &sc_idx) in FIG10_SCENARIOS.iter().enumerate() {
        let cfg = scale.apply(Scenario::ALL[sc_idx].config());
        let m = System::new(cfg, &w, DriveMode::Profile).run();
        for app in &apps {
            let shared = m.ipc_of_cores(&w.cores_running(app));
            let alone_ipc = alone.alone_ipc(app, sc_idx);
            slowdown[si].push(if shared > 0.0 { alone_ipc / shared } else { f64::INFINITY });
        }
    }
    Fig10Result { apps, slowdown }
}

impl fmt::Display for Fig10Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 10: per-application slowdown in Case-2 (lower is fairer)")?;
        write!(f, "{:10}", "app")?;
        for &i in &FIG10_SCENARIOS {
            write!(f, " {:>14}", Scenario::ALL[i].name())?;
        }
        writeln!(f)?;
        for (a, app) in self.apps.iter().enumerate() {
            writeln!(
                f,
                "{:10} {:>14.2} {:>14.2}",
                app, self.slowdown[0][a], self.slowdown[1][a]
            )?;
        }
        writeln!(
            f,
            "max slowdown: {:.2} -> {:.2}",
            self.max_slowdown(0),
            self.max_slowdown(1)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdowns_are_finite_and_positive() {
        let r = run(Scale::Quick);
        assert_eq!(r.apps.len(), 4);
        for s in &r.slowdown {
            for &v in s {
                assert!(v.is_finite() && v > 0.0, "slowdown {v}");
            }
        }
        assert!(r.max_slowdown(0) >= 1.0 || r.max_slowdown(1) >= 0.5);
    }
}
