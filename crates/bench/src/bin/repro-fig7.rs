//! Regenerates the paper's Figure 7 (latency breakdown).
fn main() {
    let scale = snoc_bench::scale_from_args();
    snoc_bench::emit("fig7", &snoc_core::experiments::fig7::run(scale));
}
