//! Regenerates the paper's Figure 10 (fairness in Case-2).
fn main() {
    let scale = snoc_bench::scale_from_args();
    snoc_bench::emit("fig10", &snoc_core::experiments::fig10::run(scale));
}
