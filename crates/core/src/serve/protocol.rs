//! The sweep-service wire protocol: newline-delimited JSON.
//!
//! A client writes one request object per line; the server answers
//! each request with one or more response lines and then waits for the
//! next request on the same connection. Every response line is either
//! an acknowledgement (`{"ok":...}`) or a stream event
//! (`{"event":...}`); streams always terminate with a `"done"` event,
//! so a line-oriented client never has to guess.
//!
//! # Requests
//!
//! | op | fields | effect |
//! |---|---|---|
//! | `ping` | — | liveness probe |
//! | `submit` | `experiment`+`scale` *or* `cells`, optional `wait` | enqueue a grid (idempotent by job key) |
//! | `status` | `job` | one-line job status |
//! | `wait` | `job` | stream progress events until the job is done |
//! | `results` | `job` | block until done, then stream per-cell results |
//! | `shutdown` | — | finish the running job, then stop the server |
//!
//! A `submit` with `"wait":true` behaves like a `submit` immediately
//! followed by a `wait` on the same connection.

use super::json::{escape, Json};
use crate::experiments::Scale;
use crate::sweep::CellResult;
use snoc_common::fingerprint::Fingerprint;

/// One raw grid cell, described over the wire.
#[derive(Debug, Clone)]
pub struct CellRequest {
    /// Presentation label (defaults to `scenario/app`).
    pub label: Option<String>,
    /// Scenario name as printed by `Scenario::name` (e.g.
    /// `MRAM-4TSB-WB`).
    pub scenario: String,
    /// Application name from the Table 3 profile set.
    pub app: String,
    /// Warm-up cycles (default: the Quick scale's).
    pub warmup: Option<u64>,
    /// Measured cycles (default: the Quick scale's).
    pub measure: Option<u64>,
    /// Region-count override (validated at run time, so a bad value
    /// yields a per-cell error, never a dead server).
    pub regions: Option<usize>,
}

/// What a `submit` asks to run.
#[derive(Debug, Clone)]
pub enum JobRequest {
    /// A checked-in experiment grid by name (`fig6`, `table3`, ...).
    Experiment {
        /// Experiment name.
        name: String,
        /// Grid scale.
        scale: Scale,
    },
    /// An explicit list of raw cells.
    Cells(Vec<CellRequest>),
}

/// One parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Enqueue a job; `wait` additionally streams progress to done.
    Submit {
        /// The requested grid.
        job: JobRequest,
        /// Stream progress events after the acknowledgement.
        wait: bool,
    },
    /// One-line status of a job.
    Status(Fingerprint),
    /// Stream progress events until the job completes.
    Wait(Fingerprint),
    /// Block until the job completes, then stream per-cell results.
    Results(Fingerprint),
    /// Stop the server after the running job finishes.
    Shutdown,
}

fn job_field(v: &Json) -> Result<Fingerprint, String> {
    v.get("job")
        .and_then(Json::as_str)
        .and_then(Fingerprint::from_hex)
        .ok_or_else(|| "field 'job' must be a 32-hex-digit job key".to_string())
}

fn parse_cell(v: &Json) -> Result<CellRequest, String> {
    let field = |name: &str| v.get(name).and_then(Json::as_str).map(String::from);
    Ok(CellRequest {
        label: field("label"),
        scenario: field("scenario").ok_or("cell needs a 'scenario' name")?,
        app: field("app").ok_or("cell needs an 'app' name")?,
        warmup: v.get("warmup").and_then(Json::as_u64),
        measure: v.get("measure").and_then(Json::as_u64),
        regions: v.get("regions").and_then(Json::as_u64).map(|r| r as usize),
    })
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("request needs an 'op' string")?;
    match op {
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        "status" => Ok(Request::Status(job_field(&v)?)),
        "wait" => Ok(Request::Wait(job_field(&v)?)),
        "results" => Ok(Request::Results(job_field(&v)?)),
        "submit" => {
            let wait = v.get("wait").and_then(Json::as_bool).unwrap_or(false);
            let job = if let Some(name) = v.get("experiment").and_then(Json::as_str) {
                let scale = match v.get("scale").and_then(Json::as_str).unwrap_or("quick") {
                    "quick" => Scale::Quick,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale '{other}'")),
                };
                JobRequest::Experiment {
                    name: name.to_string(),
                    scale,
                }
            } else if let Some(cells) = v.get("cells").and_then(Json::as_arr) {
                if cells.is_empty() {
                    return Err("'cells' must not be empty".into());
                }
                JobRequest::Cells(
                    cells
                        .iter()
                        .map(parse_cell)
                        .collect::<Result<Vec<_>, _>>()?,
                )
            } else {
                return Err("submit needs 'experiment' or 'cells'".into());
            };
            Ok(Request::Submit { job, wait })
        }
        other => Err(format!("unknown op '{other}'")),
    }
}

/// Coarse job lifecycle, as reported on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireState {
    /// Accepted, not yet started.
    Queued,
    /// Cells are being simulated.
    Running,
    /// All cells accounted for.
    Done,
    /// Abandoned by a server shutdown before it ran.
    Aborted,
}

impl WireState {
    fn as_str(self) -> &'static str {
        match self {
            WireState::Queued => "queued",
            WireState::Running => "running",
            WireState::Done => "done",
            WireState::Aborted => "aborted",
        }
    }
}

/// `{"ok":false,...}` — request rejected (the connection stays up).
pub fn error_line(message: &str) -> String {
    format!("{{\"ok\":false,\"error\":{}}}", escape(message))
}

/// `ping` acknowledgement.
pub fn pong_line() -> String {
    "{\"ok\":true,\"pong\":true}".to_string()
}

/// `submit` acknowledgement.
pub fn submit_line(job: Fingerprint, state: WireState, deduped: bool, cells: usize) -> String {
    format!(
        "{{\"ok\":true,\"job\":\"{job}\",\"state\":\"{}\",\"deduped\":{deduped},\"cells\":{cells}}}",
        state.as_str()
    )
}

/// `status` acknowledgement.
pub fn status_line(
    job: Fingerprint,
    state: WireState,
    cells: usize,
    done: usize,
    failed: usize,
    cache_hits: usize,
) -> String {
    format!(
        "{{\"ok\":true,\"job\":\"{job}\",\"state\":\"{}\",\"cells\":{cells},\
         \"done\":{done},\"failed\":{failed},\"cache_hits\":{cache_hits}}}",
        state.as_str()
    )
}

/// `shutdown` acknowledgement.
pub fn shutdown_line() -> String {
    "{\"ok\":true,\"shutting_down\":true}".to_string()
}

/// Streamed per-cell progress event.
pub fn cell_event(job: Fingerprint, r: &CellResult) -> String {
    format!(
        "{{\"event\":\"cell\",\"job\":\"{job}\",\"index\":{},\"label\":{},\
         \"ok\":{},\"cached\":{},\"wall_us\":{}}}",
        r.index,
        escape(&r.label),
        r.outcome.is_ok(),
        r.cached,
        r.wall.as_micros()
    )
}

/// Streamed diagnostic note (cache corruption etc.).
pub fn note_event(job: Fingerprint, label: &str, note: &str) -> String {
    format!(
        "{{\"event\":\"note\",\"job\":\"{job}\",\"label\":{},\"note\":{}}}",
        escape(label),
        escape(note)
    )
}

/// Stream terminator: the job finished (or was abandoned).
pub fn done_event(
    job: Fingerprint,
    state: WireState,
    cells: usize,
    failed: usize,
    cache_hits: usize,
) -> String {
    format!(
        "{{\"event\":\"done\",\"job\":\"{job}\",\"state\":\"{}\",\"cells\":{cells},\
         \"failed\":{failed},\"cache_hits\":{cache_hits}}}",
        state.as_str()
    )
}

/// Streamed per-cell result payload. `metrics` is the exact text codec
/// of [`crate::cellcache::encode_metrics`] sealed under `metrics_key`
/// (instrumentation attachments stripped — `instrumented` says whether
/// any were present); errors carry the panic message instead.
pub fn result_event(
    job: Fingerprint,
    index: usize,
    label: &str,
    payload: &Result<(Fingerprint, String, bool), String>,
) -> String {
    match payload {
        Ok((metrics_key, doc, instrumented)) => format!(
            "{{\"event\":\"result\",\"job\":\"{job}\",\"index\":{index},\"label\":{},\
             \"ok\":true,\"instrumented\":{instrumented},\"metrics_key\":\"{metrics_key}\",\
             \"metrics\":{}}}",
            escape(label),
            escape(doc)
        ),
        Err(e) => format!(
            "{{\"event\":\"result\",\"job\":\"{job}\",\"index\":{index},\"label\":{},\
             \"ok\":false,\"error\":{}}}",
            escape(label),
            escape(e)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        assert!(matches!(
            parse_request(r#"{"op":"ping"}"#),
            Ok(Request::Ping)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#),
            Ok(Request::Shutdown)
        ));
        let key = "0123456789abcdef0123456789abcdef";
        for (op, want_wait) in [("status", false), ("wait", false), ("results", false)] {
            let line = format!("{{\"op\":\"{op}\",\"job\":\"{key}\"}}");
            assert!(parse_request(&line).is_ok(), "op {op} (wait {want_wait})");
        }
        let sub = parse_request(
            r#"{"op":"submit","wait":true,"cells":[{"scenario":"MRAM-4TSB-WB","app":"sap"}]}"#,
        )
        .unwrap();
        match sub {
            Request::Submit {
                job: JobRequest::Cells(cells),
                wait,
            } => {
                assert!(wait);
                assert_eq!(cells[0].scenario, "MRAM-4TSB-WB");
                assert_eq!(cells[0].app, "sap");
                assert!(cells[0].warmup.is_none());
            }
            other => panic!("parsed {other:?}"),
        }
        let exp = parse_request(r#"{"op":"submit","experiment":"fig6","scale":"full"}"#).unwrap();
        match exp {
            Request::Submit {
                job: JobRequest::Experiment { name, scale },
                wait,
            } => {
                assert_eq!(name, "fig6");
                assert_eq!(scale, Scale::Full);
                assert!(!wait);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_requests_with_diagnostics() {
        for bad in [
            "not json",
            r#"{"noop":1}"#,
            r#"{"op":"frobnicate"}"#,
            r#"{"op":"status"}"#,
            r#"{"op":"status","job":"xyz"}"#,
            r#"{"op":"submit"}"#,
            r#"{"op":"submit","cells":[]}"#,
            r#"{"op":"submit","cells":[{"app":"sap"}]}"#,
            r#"{"op":"submit","experiment":"fig6","scale":"medium"}"#,
        ] {
            assert!(parse_request(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn response_lines_are_valid_single_line_json() {
        use super::super::json::Json;
        let key = Fingerprint::from_hex("0123456789abcdef0123456789abcdef").unwrap();
        let lines = [
            error_line("bad \"thing\"\nwith newline"),
            pong_line(),
            submit_line(key, WireState::Queued, true, 3),
            status_line(key, WireState::Running, 3, 1, 0, 1),
            shutdown_line(),
            note_event(key, "a/b", "corrupt entry"),
            done_event(key, WireState::Done, 3, 0, 2),
            result_event(key, 0, "a", &Err("boom".into())),
            result_event(key, 1, "b", &Ok((key, "doc\nlines\n".into(), false))),
        ];
        for line in lines {
            assert!(!line.contains('\n'), "multi-line: {line}");
            let v = Json::parse(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
            assert!(matches!(v, Json::Obj(_)));
        }
    }
}
