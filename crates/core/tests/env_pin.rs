//! Environment pinning: `SNOC_*` fallbacks are resolved exactly once —
//! when a [`SweepRunner`] (or a serve-mode server) is constructed — so
//! mutating the environment mid-flight cannot alter a job that has
//! already been accepted.
//!
//! This test mutates process-wide environment variables, so it lives in
//! its own integration-test binary (its own process) and runs the whole
//! scenario in one `#[test]` to keep the mutations ordered.

use snoc_core::scenario::Scenario;
use snoc_core::serve::json::Json;
use snoc_core::serve::{ServeOptions, Server};
use snoc_core::sweep::{RunSpec, SweepRunner};
use snoc_workload::table3;
use std::io::{BufRead, BufReader, Write};
use std::net::Shutdown;
use std::os::unix::net::UnixStream;

fn spec(label: &str) -> RunSpec {
    let cfg = Scenario::SttRam4TsbWb
        .config()
        .rebuild()
        .cycles(100, 400)
        .build();
    RunSpec::homogeneous(label, cfg, table3::by_name("sap").unwrap())
}

fn clear_env() {
    for var in ["SNOC_AUDIT", "SNOC_TELEMETRY", "SNOC_FAULTS", "SNOC_SHARDS"] {
        std::env::remove_var(var);
    }
}

#[test]
fn env_is_resolved_at_construction_and_never_mid_flight() {
    clear_env();

    // 1. A runner constructed under a clean environment: flipping
    //    SNOC_AUDIT afterwards must not instrument its cells.
    let runner = SweepRunner::new().cache(false);
    std::env::set_var("SNOC_AUDIT", "1");
    let results = runner.run_grid("env-pin/pinned", vec![spec("pinned")]);
    let metrics = results[0].outcome.as_ref().expect("cell runs");
    assert!(
        metrics.audit.is_none(),
        "a mid-flight env mutation leaked into an accepted grid"
    );

    // 2. The fallback still works where it should: a runner constructed
    //    *while* the variable is set picks it up.
    let late = SweepRunner::new().cache(false);
    let results = late.run_grid("env-pin/late", vec![spec("late")]);
    assert!(
        results[0]
            .outcome
            .as_ref()
            .expect("cell runs")
            .audit
            .is_some(),
        "construction-time capture must still honour the fallback"
    );
    clear_env();

    // 3. Server level: ServeOptions::new snapshots the environment at
    //    startup; a client mutating it afterwards cannot instrument a
    //    job the server accepts later.
    let socket = std::env::temp_dir().join(format!("snoc-env-pin-{}.sock", std::process::id()));
    let server = Server::start(ServeOptions::new(&socket)).expect("start");
    std::env::set_var("SNOC_AUDIT", "1");
    let lines = submit_and_fetch_results(&socket);
    for v in &lines {
        if v.get("event").and_then(Json::as_str) == Some("result") {
            assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
            assert_eq!(
                v.get("instrumented"),
                Some(&Json::Bool(false)),
                "job accepted by a clean-env server came back instrumented: {v:?}"
            );
        }
    }
    server.shutdown();

    // 4. And the positive control: a server *started* under SNOC_AUDIT
    //    resolves it into every job at startup, visibly.
    let server = Server::start(ServeOptions::new(&socket)).expect("restart");
    let lines = submit_and_fetch_results(&socket);
    let mut results = 0;
    for v in &lines {
        if v.get("event").and_then(Json::as_str) == Some("result") {
            results += 1;
            assert_eq!(
                v.get("instrumented"),
                Some(&Json::Bool(true)),
                "startup env must resolve into accepted jobs: {v:?}"
            );
        }
    }
    assert_eq!(results, 1);
    server.shutdown();
    clear_env();
}

/// Submits a one-cell job and returns the parsed `results` stream.
fn submit_and_fetch_results(socket: &std::path::Path) -> Vec<Json> {
    let submit = r#"{"op":"submit","cells":[{"label":"env","scenario":"MRAM-4TSB-WB","app":"sap","warmup":100,"measure":400}]}"#;
    let ack = &one_shot(socket, submit)[0];
    assert_eq!(ack.get("ok"), Some(&Json::Bool(true)), "ack: {ack:?}");
    let job = ack.get("job").and_then(Json::as_str).unwrap().to_string();
    one_shot(socket, &format!("{{\"op\":\"results\",\"job\":\"{job}\"}}"))
}

fn one_shot(socket: &std::path::Path, line: &str) -> Vec<Json> {
    let mut stream = UnixStream::connect(socket).expect("connect");
    writeln!(stream, "{line}").expect("send");
    stream.shutdown(Shutdown::Write).expect("half-close");
    BufReader::new(stream)
        .lines()
        .map(|l| Json::parse(&l.expect("read")).expect("parse"))
        .collect()
}
