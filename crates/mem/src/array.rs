//! Set-associative tag array with pluggable replacement.
//!
//! Used for the private L1s (32 KB, 4-way) and the L2 banks (1 MB
//! SRAM / 4 MB STT-RAM, 16-way), parameterized over per-line metadata.
//! True LRU is the default (the paper's policy); tree pseudo-LRU and
//! seeded random are available for ablations (see
//! [`crate::replacement`]).

use crate::replacement::{ReplacementKind, SetState};
use snoc_common::rng::SimRng;

/// One cache line's bookkeeping.
#[derive(Debug, Clone)]
pub struct Line<M> {
    tag: u64,
    valid: bool,
    lru: u64,
    /// Caller-owned metadata (coherence state, dirty bit, directory
    /// entry, ...).
    pub meta: M,
}

/// The outcome of an [`CacheArray::insert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eviction<M> {
    /// The replaced block's address (block-aligned).
    pub addr: u64,
    /// Its metadata at eviction time.
    pub meta: M,
}

/// A set-associative tag array.
#[derive(Debug, Clone)]
pub struct CacheArray<M> {
    sets: usize,
    ways: usize,
    block_bits: u32,
    lines: Vec<Line<M>>,
    stamp: u64,
    hits: u64,
    misses: u64,
    policy: ReplacementKind,
    set_state: Vec<SetState>,
    rng: Option<SimRng>,
}

impl<M: Default + Clone> CacheArray<M> {
    /// Creates an array of `capacity_bytes` with `ways` ways and
    /// `block_bytes` blocks.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity_bytes` divides evenly into at least one
    /// power-of-two set of `ways x block_bytes`.
    pub fn new(capacity_bytes: usize, ways: usize, block_bytes: usize) -> Self {
        Self::with_policy(capacity_bytes, ways, block_bytes, ReplacementKind::Lru, 0)
    }

    /// Creates an array with an explicit replacement policy; `seed`
    /// feeds the random policy (ignored otherwise).
    pub fn with_policy(
        capacity_bytes: usize,
        ways: usize,
        block_bytes: usize,
        policy: ReplacementKind,
        seed: u64,
    ) -> Self {
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        let sets = capacity_bytes / (ways * block_bytes);
        assert!(
            sets > 0,
            "capacity too small for {ways} ways of {block_bytes} B"
        );
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        Self {
            sets,
            ways,
            block_bits: block_bytes.trailing_zeros(),
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    lru: 0,
                    meta: M::default()
                };
                sets * ways
            ],
            stamp: 0,
            hits: 0,
            misses: 0,
            policy,
            set_state: (0..sets).map(|_| SetState::new(policy, ways)).collect(),
            rng: matches!(policy, ReplacementKind::Random)
                .then(|| SimRng::for_stream(seed, 0xCAC4E)),
        }
    }

    /// The replacement policy in force.
    pub fn policy(&self) -> ReplacementKind {
        self.policy
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> usize {
        1 << self.block_bits
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * self.block_bytes()
    }

    /// Hits recorded by `probe`.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded by `probe`.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.block_bits) as usize) & (self.sets - 1)
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr >> self.block_bits >> self.sets.trailing_zeros()
    }

    /// The block-aligned address of a line.
    fn addr_of(&self, set: usize, tag: u64) -> u64 {
        ((tag << self.sets.trailing_zeros()) | set as u64) << self.block_bits
    }

    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Looks up `addr`, updating LRU and hit/miss counters. Returns
    /// mutable metadata on a hit.
    pub fn probe(&mut self, addr: u64) -> Option<&mut M> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.stamp += 1;
        for way in 0..self.ways {
            let idx = self.slot(set, way);
            if self.lines[idx].valid && self.lines[idx].tag == tag {
                self.hits += 1;
                self.lines[idx].lru = self.stamp;
                self.set_state[set].touch(way, self.ways);
                return Some(&mut self.lines[idx].meta);
            }
        }
        self.misses += 1;
        None
    }

    /// Looks up `addr` without perturbing LRU or counters.
    pub fn peek(&self, addr: u64) -> Option<&M> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        (0..self.ways)
            .map(|w| &self.lines[self.slot(set, w)])
            .find(|l| l.valid && l.tag == tag)
            .map(|l| &l.meta)
    }

    /// Mutable variant of [`CacheArray::peek`].
    pub fn peek_mut(&mut self, addr: u64) -> Option<&mut M> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let ways = self.ways;
        (0..ways)
            .map(|w| self.slot(set, w))
            .find(|&i| self.lines[i].valid && self.lines[i].tag == tag)
            .map(|i| &mut self.lines[i].meta)
    }

    /// Installs `addr` with `meta`, evicting the LRU victim if the set
    /// is full. Returns the eviction, if any.
    ///
    /// # Panics
    ///
    /// Panics if the block is already present (callers must `probe`
    /// first).
    pub fn insert(&mut self, addr: u64, meta: M) -> Option<Eviction<M>> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        debug_assert!(
            self.peek(addr).is_none(),
            "inserting a block that is already present"
        );
        self.stamp += 1;
        // Prefer an invalid way.
        for way in 0..self.ways {
            let idx = self.slot(set, way);
            if !self.lines[idx].valid {
                self.lines[idx] = Line {
                    tag,
                    valid: true,
                    lru: self.stamp,
                    meta,
                };
                self.set_state[set].touch(way, self.ways);
                return None;
            }
        }
        // Evict the policy's victim.
        let stamps: Vec<u64> = (0..self.ways)
            .map(|w| self.lines[self.slot(set, w)].lru)
            .collect();
        let victim_way = self.set_state[set].victim(self.ways, &stamps, self.rng.as_mut());
        let victim = self.slot(set, victim_way);
        let old = &self.lines[victim];
        let evicted = Eviction {
            addr: self.addr_of(set, old.tag),
            meta: old.meta.clone(),
        };
        self.lines[victim] = Line {
            tag,
            valid: true,
            lru: self.stamp,
            meta,
        };
        self.set_state[set].touch(victim_way, self.ways);
        Some(evicted)
    }

    /// Removes `addr` if present, returning its metadata.
    pub fn invalidate(&mut self, addr: u64) -> Option<M> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        for way in 0..self.ways {
            let idx = self.slot(set, way);
            if self.lines[idx].valid && self.lines[idx].tag == tag {
                self.lines[idx].valid = false;
                return Some(std::mem::take(&mut self.lines[idx].meta));
            }
        }
        None
    }

    /// Iterates over all valid blocks as `(addr, &meta)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &M)> {
        (0..self.sets).flat_map(move |set| {
            (0..self.ways).filter_map(move |way| {
                let l = &self.lines[self.slot(set, way)];
                l.valid.then(|| (self.addr_of(set, l.tag), &l.meta))
            })
        })
    }
}

impl<M: Default + Clone> Default for CacheArray<M> {
    fn default() -> Self {
        Self::new(32 * 1024, 4, 128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> CacheArray<bool> {
        // 32 KB, 4-way, 128 B blocks: 64 sets.
        CacheArray::new(32 * 1024, 4, 128)
    }

    #[test]
    fn geometry_matches_table1() {
        let a = l1();
        assert_eq!(a.sets(), 64);
        assert_eq!(a.ways(), 4);
        assert_eq!(a.block_bytes(), 128);
        assert_eq!(a.capacity_bytes(), 32 * 1024);
        let l2 = CacheArray::<bool>::new(1024 * 1024, 16, 128);
        assert_eq!(l2.sets(), 512);
        let l2stt = CacheArray::<bool>::new(4 * 1024 * 1024, 16, 128);
        assert_eq!(l2stt.sets(), 2048);
    }

    #[test]
    fn probe_miss_then_hit() {
        let mut a = l1();
        assert!(a.probe(0x1000).is_none());
        a.insert(0x1000, true);
        assert_eq!(a.probe(0x1000), Some(&mut true));
        assert_eq!(a.hits(), 1);
        assert_eq!(a.misses(), 1);
    }

    #[test]
    fn same_block_offsets_hit_together() {
        let mut a = l1();
        a.insert(0x1000, false);
        assert!(a.probe(0x1000 + 127).is_some());
        assert!(a.probe(0x1000 + 128).is_none(), "next block differs");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut a = CacheArray::<u32>::new(4 * 128, 4, 128); // 1 set, 4 ways
        for i in 0..4u64 {
            a.insert(i * 128, i as u32);
        }
        // Touch 0, 1, 2 — way 3 is LRU.
        for i in 0..3u64 {
            a.probe(i * 128);
        }
        let ev = a.insert(4 * 128, 9).expect("set full");
        assert_eq!(ev.addr, 3 * 128);
        assert_eq!(ev.meta, 3);
    }

    #[test]
    fn insert_prefers_invalid_ways() {
        let mut a = CacheArray::<u32>::new(4 * 128, 4, 128);
        a.insert(0, 0);
        assert!(a.insert(128, 1).is_none(), "free ways left");
    }

    #[test]
    fn invalidate_removes() {
        let mut a = CacheArray::<u32>::new(32 * 1024, 4, 128);
        a.insert(0x40_0000, 7u32);
        assert_eq!(a.invalidate(0x40_0000), Some(7));
        assert!(a.probe(0x40_0000).is_none());
        assert_eq!(a.invalidate(0x40_0000), None);
    }

    #[test]
    fn eviction_reconstructs_block_address() {
        let mut a = CacheArray::<u32>::new(2 * 128 * 2, 2, 128); // 2 sets, 2 ways
                                                                 // Fill set 0 (addresses with set bit 0).
        a.insert(0x0000, 1);
        a.insert(0x0100, 2); // 0x100 = set 0 again? 0x100>>7 = 2 -> set 0.
        let ev = a.insert(0x0200, 3).unwrap();
        assert_eq!(ev.addr, 0x0000);
        assert!(a.peek(0x0100).is_some());
        assert!(a.peek(0x0200).is_some());
    }

    #[test]
    fn peek_does_not_touch_lru() {
        let mut a = CacheArray::<u32>::new(2 * 128, 2, 128); // 1 set, 2 ways
        a.insert(0, 0);
        a.insert(128, 1);
        // Peek way 0 repeatedly; it must still be the LRU victim.
        for _ in 0..5 {
            assert!(a.peek(0).is_some());
        }
        a.probe(128);
        let ev = a.insert(256, 2).unwrap();
        assert_eq!(ev.addr, 0);
    }

    #[test]
    fn iter_visits_valid_lines() {
        let mut a = l1();
        a.insert(0x1000, true);
        a.insert(0x2000, false);
        let mut addrs: Vec<u64> = a.iter().map(|(addr, _)| addr).collect();
        addrs.sort_unstable();
        assert_eq!(addrs, vec![0x1000, 0x2000]);
    }

    #[test]
    fn plru_and_random_policies_work_end_to_end() {
        use crate::replacement::ReplacementKind;
        for policy in [ReplacementKind::TreePlru, ReplacementKind::Random] {
            let mut a = CacheArray::<u32>::with_policy(4 * 128, 4, 128, policy, 42);
            assert_eq!(a.policy(), policy);
            for i in 0..4u64 {
                a.insert(i * 128, i as u32);
            }
            // A fifth insert evicts exactly one resident line.
            let ev = a.insert(4 * 128, 9).expect("set full");
            assert!(ev.addr < 4 * 128);
            let resident = (0..5u64).filter(|&i| a.peek(i * 128).is_some()).count();
            assert_eq!(resident, 4, "{policy:?}");
        }
    }

    #[test]
    fn plru_keeps_hot_lines_resident() {
        use crate::replacement::ReplacementKind;
        let mut a = CacheArray::<()>::with_policy(8 * 128, 8, 128, ReplacementKind::TreePlru, 0);
        // Line 0 is hot; a stream of other lines churns the set.
        a.insert(0, ());
        for i in 1..200u64 {
            assert!(a.probe(0).is_some(), "hot line evicted at step {i}");
            if a.probe(i * 128).is_none() {
                a.insert(i * 128, ());
            }
        }
    }

    #[test]
    fn capacity_effect_on_miss_rate() {
        // The 4x STT-RAM bank keeps a working set the SRAM bank
        // cannot: the capacity effect behind Figure 6's read-intensive
        // wins.
        let mut small = CacheArray::<()>::new(64 * 1024, 16, 128);
        let mut big = CacheArray::<()>::new(256 * 1024, 16, 128);
        let blocks: Vec<u64> = (0..1500u64).map(|i| i * 128).collect();
        for pass in 0..4 {
            for &b in &blocks {
                for a in [&mut small, &mut big] {
                    if a.probe(b).is_none() {
                        a.insert(b, ());
                    }
                }
                let _ = pass;
            }
        }
        assert!(big.misses() < small.misses() / 2);
    }
}
