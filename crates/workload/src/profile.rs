//! Benchmark profiles: the Table 3 characterization plus derived
//! generator parameters.

/// Which suite a benchmark belongs to (Figure 6 groups results by
/// suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Commercial server workloads (tpcc, sjas, sap, sjbb) —
    /// multi-threaded.
    Server,
    /// PARSEC — multi-threaded.
    Parsec,
    /// SPEC 2006 — multi-programmed (64 copies).
    Spec,
}

/// The paper's burstiness classification ("High/Low based on latency
/// between 2 consecutive requests to a L2 bank").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Burstiness {
    /// Requests cluster tightly after writes.
    High,
    /// Requests are spread out.
    Low,
}

/// One row of Table 3 plus derived model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkProfile {
    /// Benchmark name as printed in the paper.
    pub name: &'static str,
    /// Suite membership.
    pub suite: Suite,
    /// L1 misses per 1000 instructions.
    pub l1_mpki: f64,
    /// L2 misses per 1000 instructions.
    pub l2_mpki: f64,
    /// L2 writes per 1000 instructions.
    pub l2_wpki: f64,
    /// L2 reads per 1000 instructions.
    pub l2_rpki: f64,
    /// Burstiness class.
    pub bursty: Burstiness,
}

/// Fraction of dynamic instructions that are memory operations (the
/// generator's fixed load/store density; Table 1 allows one memory
/// operation per cycle out of a 2-wide pipeline).
pub const MEM_FRACTION: f64 = 0.30;

/// A no-traffic filler profile: cores running it execute compute and
/// L1 hits only. Used for the "alone" runs of the weighted-speedup
/// metric (one application on an otherwise idle machine).
pub const IDLE: BenchmarkProfile = BenchmarkProfile {
    name: "idle",
    suite: Suite::Spec,
    l1_mpki: 0.0,
    l2_mpki: 0.0,
    l2_wpki: 0.0,
    l2_rpki: 0.0,
    bursty: Burstiness::Low,
};

impl BenchmarkProfile {
    /// `true` for suites whose threads share data (coherence traffic).
    pub fn is_multithreaded(&self) -> bool {
        matches!(self.suite, Suite::Server | Suite::Parsec)
    }

    /// L2 accesses (reads + writes) per instruction.
    pub fn l2_apki(&self) -> f64 {
        self.l2_rpki + self.l2_wpki
    }

    /// Fraction of L2 accesses that are reads.
    pub fn read_share(&self) -> f64 {
        if self.l2_apki() == 0.0 {
            return 0.0;
        }
        self.l2_rpki / self.l2_apki()
    }

    /// L2 miss ratio (misses per L2 access), clamped to `[0, 1]`.
    pub fn l2_miss_ratio(&self) -> f64 {
        if self.l2_apki() == 0.0 {
            return 0.0;
        }
        (self.l2_mpki / self.l2_apki()).clamp(0.0, 1.0)
    }

    /// Capacity sensitivity `alpha` in `[0, 0.9]`: how much a larger L2
    /// shrinks the miss rate. Streaming applications (miss ratio
    /// near 1) gain nothing from capacity; read-intensive applications
    /// with reusable working sets gain the most. This is the derived
    /// knob behind the paper's observation that read-heavy benchmarks
    /// benefit from the 4x STT-RAM capacity.
    pub fn capacity_sensitivity(&self) -> f64 {
        0.9 * self.read_share() * (1.0 - self.l2_miss_ratio())
    }

    /// The effective L2 miss rate scale at `capacity_factor` times the
    /// baseline capacity: `factor^(-alpha)`.
    pub fn miss_scale(&self, capacity_factor: usize) -> f64 {
        (capacity_factor as f64).powf(-self.capacity_sensitivity())
    }

    /// Probability that an instruction issues an L2 read.
    pub fn p_l2_read(&self) -> f64 {
        self.l2_rpki / 1000.0
    }

    /// Probability that an instruction produces an L2 write
    /// (writeback).
    pub fn p_l2_write(&self) -> f64 {
        self.l2_wpki / 1000.0
    }

    /// Probability that an L2 access misses, at the given capacity
    /// factor.
    pub fn p_l2_miss(&self, capacity_factor: usize) -> f64 {
        (self.l2_miss_ratio() * self.miss_scale(capacity_factor)).clamp(0.0, 1.0)
    }

    /// `true` if replacing SRAM with STT-RAM is expected to hurt this
    /// application (write-intensive: Section 4.2's losers).
    pub fn is_write_intensive(&self) -> bool {
        self.l2_wpki > self.l2_rpki
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tpcc() -> BenchmarkProfile {
        BenchmarkProfile {
            name: "tpcc",
            suite: Suite::Server,
            l1_mpki: 51.47,
            l2_mpki: 6.06,
            l2_wpki: 40.9,
            l2_rpki: 10.57,
            bursty: Burstiness::High,
        }
    }

    fn libquantum() -> BenchmarkProfile {
        BenchmarkProfile {
            name: "libquantum",
            suite: Suite::Spec,
            l1_mpki: 12.5,
            l2_mpki: 12.5,
            l2_wpki: 0.0,
            l2_rpki: 12.5,
            bursty: Burstiness::Low,
        }
    }

    #[test]
    fn l2_accesses_equal_l1_misses_in_table3() {
        let p = tpcc();
        assert!((p.l2_apki() - p.l1_mpki).abs() < 1e-9);
    }

    #[test]
    fn write_intensity_classification() {
        assert!(tpcc().is_write_intensive());
        assert!(!libquantum().is_write_intensive());
        assert!(tpcc().read_share() < 0.25);
        assert_eq!(libquantum().read_share(), 1.0);
    }

    #[test]
    fn streaming_apps_have_no_capacity_sensitivity() {
        // libquantum misses on every L2 access: a bigger cache cannot
        // help, so alpha ~ 0 and the miss scale stays ~1.
        let p = libquantum();
        assert!(p.capacity_sensitivity() < 1e-9);
        assert!((p.miss_scale(4) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reusable_read_heavy_apps_benefit_from_capacity() {
        // hmmer: low miss ratio, read-leaning.
        let hmmer = BenchmarkProfile {
            name: "hmmer",
            suite: Suite::Spec,
            l1_mpki: 34.36,
            l2_mpki: 3.31,
            l2_wpki: 12.5,
            l2_rpki: 21.86,
            bursty: Burstiness::High,
        };
        assert!(hmmer.capacity_sensitivity() > 0.4);
        assert!(hmmer.miss_scale(4) < 0.6);
        assert!(hmmer.p_l2_miss(4) < hmmer.p_l2_miss(1));
    }

    #[test]
    fn probabilities_are_sane() {
        for p in [tpcc(), libquantum()] {
            assert!(p.p_l2_read() + p.p_l2_write() < MEM_FRACTION);
            assert!((0.0..=1.0).contains(&p.p_l2_miss(1)));
            assert!((0.0..=1.0).contains(&p.p_l2_miss(4)));
        }
    }

    #[test]
    fn multithreaded_flag_follows_suite() {
        assert!(tpcc().is_multithreaded());
        assert!(!libquantum().is_multithreaded());
    }
}
