//! Randomized property tests of the core data structures: LRU arrays
//! against a reference model, MSHR merging, directory invariants,
//! busy-table monotonicity, VC partitioning, histograms and the
//! wrap-around timestamp arithmetic. Cases are drawn from the
//! deterministic [`SimRng`] so every run replays the same inputs.

use sttram_noc_repro::common::ids::{BankId, CoreId};
use sttram_noc_repro::common::rng::SimRng;
use sttram_noc_repro::common::stats::Histogram;
use sttram_noc_repro::mem::array::CacheArray;
use sttram_noc_repro::mem::directory::DirEntry;
use sttram_noc_repro::mem::mshr::{Allocation, MissKind, MshrFile, Waiter};
use sttram_noc_repro::noc::busy::BusyTable;
use sttram_noc_repro::noc::estimator::{stamp_elapsed, stamp_of};
use sttram_noc_repro::noc::TrafficClass;

/// The tag array behaves exactly like a reference true-LRU model.
#[test]
fn cache_array_matches_reference_lru() {
    let mut rng = SimRng::for_stream(0xD00D, 1);
    for case in 0..32 {
        let len = 1 + rng.below(299);
        // 2 sets x 4 ways of 128-byte blocks.
        let mut array = CacheArray::<()>::new(2 * 4 * 128, 4, 128);
        let mut reference: Vec<Vec<u64>> = vec![Vec::new(); 2]; // MRU at the back
        for _ in 0..len {
            let op = rng.below(48) as u64;
            let block = op * 128;
            let set = (op % 2) as usize;
            let hit_model = reference[set].contains(&block);
            let hit_real = array.probe(block).is_some();
            assert_eq!(hit_real, hit_model, "case {case}: block {block}");
            if hit_model {
                reference[set].retain(|&b| b != block);
                reference[set].push(block);
            } else {
                let evicted = array.insert(block, ());
                if reference[set].len() == 4 {
                    let victim = reference[set].remove(0);
                    assert_eq!(evicted.map(|e| e.addr), Some(victim));
                } else {
                    assert!(evicted.is_none());
                }
                reference[set].push(block);
            }
        }
    }
}

/// MSHR merging: each block has at most one outstanding entry, all
/// waiters come back, and capacity is respected.
#[test]
fn mshr_merges_and_bounds() {
    let mut rng = SimRng::for_stream(0xD00D, 2);
    for _ in 0..32 {
        let blocks: Vec<u64> = (0..1 + rng.below(79))
            .map(|_| rng.below(12) as u64)
            .collect();
        let mut m = MshrFile::new(4);
        let mut outstanding: std::collections::HashMap<u64, usize> = Default::default();
        let mut rejected = 0usize;
        for (i, &b) in blocks.iter().enumerate() {
            let block = b * 128;
            match m.allocate(
                block,
                Waiter {
                    token: i as u64,
                    kind: MissKind::Read,
                },
            ) {
                Allocation::Primary => {
                    assert!(!outstanding.contains_key(&block));
                    outstanding.insert(block, 1);
                }
                Allocation::Secondary => {
                    *outstanding.get_mut(&block).unwrap() += 1;
                }
                Allocation::Full => {
                    assert!(outstanding.len() == 4 && !outstanding.contains_key(&block));
                    rejected += 1;
                }
            }
            assert!(m.len() <= 4);
        }
        let mut returned = 0usize;
        for (&block, &count) in &outstanding {
            let (waiters, _) = m.complete(block).expect("entry exists");
            assert_eq!(waiters.len(), count);
            returned += count;
        }
        assert_eq!(returned + rejected, blocks.len());
        assert!(m.is_empty());
    }
}

/// Directory invariant: an owner never coexists with sharers, under
/// any operation sequence.
#[test]
fn directory_invariant_holds() {
    let mut rng = SimRng::for_stream(0xD00D, 3);
    for _ in 0..32 {
        let mut d = DirEntry::uncached();
        for _ in 0..rng.below(200) {
            let op = rng.below(4) as u8;
            let core = rng.below(64) as u16;
            let c = CoreId::new(core);
            match op {
                0 => {
                    if d.owner().is_none() {
                        d.add_sharer(c);
                    }
                }
                1 => d.set_owner(c),
                2 => d.downgrade_owner(core.is_multiple_of(2)),
                _ => d.remove(c),
            }
            assert!(d.invariant_holds());
        }
    }
}

/// The busy horizon never moves backwards and service times chain.
#[test]
fn busy_table_is_monotone() {
    let mut rng = SimRng::for_stream(0xD00D, 4);
    for _ in 0..32 {
        let mut t = BusyTable::new([BankId::new(0)]);
        let mut now = 0u64;
        let mut last = 0u64;
        for _ in 0..1 + rng.below(59) {
            now += rng.below(200) as u64;
            let service = if rng.chance(0.5) { 33 } else { 3 };
            let until = t.on_forward(BankId::new(0), now, 9, service);
            assert!(until >= last, "horizon regressed: {until} < {last}");
            assert!(until >= now + 9 + service);
            last = until;
        }
    }
}

/// The VC partition always covers all channels exactly once.
#[test]
fn vc_partition_is_exact() {
    for vcs in 3usize..12 {
        let r = TrafficClass::Request.vc_range(vcs);
        let c = TrafficClass::Coherence.vc_range(vcs);
        let p = TrafficClass::Response.vc_range(vcs);
        assert_eq!(r.start, 0);
        assert_eq!(r.end, c.start);
        assert_eq!(c.end, p.start);
        assert_eq!(p.end, vcs);
        assert!(!r.is_empty() && !c.is_empty() && !p.is_empty());
    }
}

/// Histogram counts partition the samples: total preserved, each
/// sample in exactly one bin.
#[test]
fn histogram_partitions_samples() {
    let mut rng = SimRng::for_stream(0xD00D, 5);
    for _ in 0..32 {
        let samples: Vec<u64> = (0..rng.below(300)).map(|_| rng.below(400) as u64).collect();
        let mut h = Histogram::fig3();
        for &s in &samples {
            h.record(s);
        }
        assert_eq!(h.total(), samples.len() as u64);
        let fr = h.fractions();
        let sum: f64 = fr.iter().sum();
        if !samples.is_empty() {
            assert!((sum - 1.0).abs() < 1e-9);
        }
        // Cross-check one bin against a direct count.
        let below16 = samples.iter().filter(|&&s| s < 16).count() as u64;
        assert_eq!(h.counts()[0], below16);
    }
}

/// 8-bit timestamp round trips for any elapsed time below the wrap.
#[test]
fn stamps_round_trip() {
    let mut rng = SimRng::for_stream(0xD00D, 6);
    for _ in 0..256 {
        let start = rng.below(1_000_000) as u64;
        let elapsed = rng.below(256) as u64;
        let s = stamp_of(start);
        assert_eq!(stamp_elapsed(s, start + elapsed), elapsed);
    }
}
