//! Regenerates the paper's Figure 13 (parent-child distance sensitivity).
fn main() {
    let scale = snoc_bench::scale_from_args();
    snoc_bench::emit("fig13", &snoc_core::experiments::fig13::run(scale));
}
