//! Figure 14: the network-level WB scheme vs the per-bank write buffer
//! of Sun et al. (BUFF-20), plus the "+1 VC" variant — uncore latency
//! normalized to plain STT-RAM without buffering.

use crate::experiments::{norm, Scale};
use crate::report::Rows;
use crate::scenario::{buff20_config, plus_one_vc_config, Scenario};
use crate::sweep::{CellResult, Experiment, RunSpec, SweepRunner};
use snoc_common::config::SystemConfig;
use snoc_workload::table3::{self, figures};
use std::fmt;

/// The four compared designs.
pub const DESIGNS: [&str; 4] = ["STT-RAM", "BUFF-20", "WB", "+1 VC"];

fn design_config(i: usize) -> SystemConfig {
    match i {
        0 => Scenario::SttRam64Tsb.config(),
        1 => buff20_config(),
        2 => Scenario::SttRam4TsbWb.config(),
        3 => plus_one_vc_config(),
        _ => unreachable!(),
    }
}

/// One application's normalized uncore latency per design.
#[derive(Debug, Clone)]
pub struct Fig14Row {
    /// Application name ("AVG-n" for the average row).
    pub app: String,
    /// Normalized uncore latency per design (1.0 = plain STT-RAM).
    pub normalized: Vec<f64>,
}

/// The figure.
#[derive(Debug, Clone)]
pub struct Fig14Result {
    /// Average row first, then the bursty/write-intensive apps.
    pub rows: Vec<Fig14Row>,
}

/// The applications measured, in grid order: the averaging set
/// followed by any named app not already in it.
fn all_apps(scale: Scale) -> (Vec<&'static str>, Vec<&'static str>) {
    let named = scale.take_apps(figures::FIG14).to_vec();
    let avg_apps: Vec<&str> = match scale {
        Scale::Quick => named.clone(),
        Scale::Full => {
            let mut v: Vec<&str> = Vec::new();
            v.extend(figures::FIG6_SERVER);
            v.extend(figures::FIG6_PARSEC);
            v.extend(figures::FIG6_SPEC);
            v
        }
    };
    (named, avg_apps)
}

/// The write-buffer comparison: each measured app × the four designs.
pub struct Fig14;

impl Experiment for Fig14 {
    type Output = Fig14Result;

    fn name(&self) -> &str {
        "fig14"
    }

    fn grid(&self, scale: Scale) -> Vec<RunSpec> {
        let (named, avg_apps) = all_apps(scale);
        let extras = named.iter().filter(|n| !avg_apps.contains(n));
        avg_apps
            .iter()
            .chain(extras)
            .flat_map(|name| {
                let p = table3::by_name(name).expect("known app");
                (0..DESIGNS.len()).map(move |i| {
                    RunSpec::homogeneous(
                        format!("{}/{name}", DESIGNS[i]),
                        scale.apply(design_config(i)),
                        p,
                    )
                })
            })
            .collect()
    }

    fn assemble(&self, scale: Scale, cells: Vec<CellResult>) -> Fig14Result {
        let (named, avg_apps) = all_apps(scale);
        let n = DESIGNS.len();
        let latency_row = |a: usize| -> Vec<f64> {
            (0..n)
                .map(|i| cells[a * n + i].metrics().uncore_latency())
                .collect()
        };

        let mut rows = Vec::new();
        let mut avg = vec![0.0; n];
        let mut named_rows = Vec::new();
        for (a, name) in avg_apps.iter().enumerate() {
            let lat = latency_row(a);
            for (i, v) in lat.iter().enumerate() {
                avg[i] += norm(*v, lat[0]);
            }
            if named.contains(name) {
                named_rows.push(Fig14Row {
                    app: name.to_string(),
                    normalized: lat.iter().map(|v| norm(*v, lat[0])).collect(),
                });
            }
        }
        for v in &mut avg {
            *v /= avg_apps.len() as f64;
        }
        rows.push(Fig14Row {
            app: format!("AVG-{}", avg_apps.len()),
            normalized: avg,
        });
        // Named apps not in the average set follow it in the grid.
        for (e, name) in named.iter().filter(|n| !avg_apps.contains(n)).enumerate() {
            let lat = latency_row(avg_apps.len() + e);
            named_rows.push(Fig14Row {
                app: name.to_string(),
                normalized: lat.iter().map(|v| norm(*v, lat[0])).collect(),
            });
        }
        rows.extend(named_rows);
        Fig14Result { rows }
    }
}

/// Runs the comparison through the [`SweepRunner`]. At full scale the
/// average row covers the Figure 6 application set; quick runs use the
/// named apps only.
pub fn run(scale: Scale) -> Fig14Result {
    SweepRunner::from_env().run(&Fig14, scale)
}

impl fmt::Display for Fig14Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 14: uncore latency normalized to STT-RAM without buffering"
        )?;
        write!(f, "{:10}", "app")?;
        for d in DESIGNS {
            write!(f, " {:>10}", d)?;
        }
        writeln!(f)?;
        for r in &self.rows {
            write!(f, "{:10}", r.app)?;
            for v in &r.normalized {
                write!(f, " {:>10.3}", v)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl Rows for Fig14Result {
    fn header(&self) -> Vec<String> {
        DESIGNS.iter().map(|d| d.to_string()).collect()
    }

    fn rows(&self) -> Vec<(String, Vec<f64>)> {
        self.rows
            .iter()
            .map(|r| (r.app.clone(), r.normalized.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_designs_measured() {
        let r = run(Scale::Quick);
        assert!(r.rows.len() >= 3);
        for row in &r.rows {
            assert_eq!(row.normalized.len(), 4);
            assert!((row.normalized[0] - 1.0).abs() < 1e-9 || row.app.starts_with("AVG"));
            assert!(
                row.normalized.iter().all(|&v| v > 0.2 && v < 3.0),
                "{row:?}"
            );
        }
    }

    #[test]
    fn buff20_reduces_latency_for_bursty_apps() {
        // The write buffer absorbs writes at SRAM speed: uncore
        // latency must drop vs plain STT-RAM for a write-heavy app.
        let r = run(Scale::Quick);
        let named = &r.rows[1]; // first named app (tpcc)
        assert!(
            named.normalized[1] < 1.0,
            "BUFF-20 should beat plain STT-RAM: {:?}",
            named.normalized
        );
    }
}
