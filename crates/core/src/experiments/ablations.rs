//! Ablations of the design choices `DESIGN.md` calls out: the hold
//! release slack, the WB sampling window, the request-class VC count,
//! and the bank intake depth. Each sweeps one knob of the WB design on
//! a bursty, write-intensive workload while everything else stays at
//! the paper's configuration.

use crate::experiments::Scale;
use crate::scenario::Scenario;
use crate::system::System;
use snoc_workload::table3;
use std::fmt;

/// One knob sweep.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Knob name.
    pub knob: &'static str,
    /// The values swept (as printed).
    pub values: Vec<String>,
    /// Instruction throughput at each value.
    pub throughput: Vec<f64>,
    /// Mean uncore round trip at each value.
    pub uncore_rtt: Vec<f64>,
    /// Packets held at parents at each value.
    pub held: Vec<u64>,
}

/// All four sweeps.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Application used.
    pub app: &'static str,
    /// The sweeps.
    pub sweeps: Vec<Sweep>,
}

/// Runs the ablations on `lbm` (bursty, write-intensive).
pub fn run(scale: Scale) -> AblationResult {
    let p = table3::by_name("lbm").expect("lbm is in Table 3");
    let base = || scale.apply(Scenario::SttRam4TsbWb.config());
    let mut sweeps = Vec::new();

    let mut measure = |cfgs: Vec<(String, snoc_common::config::SystemConfig)>,
                       knob: &'static str| {
        let mut s = Sweep {
            knob,
            values: Vec::new(),
            throughput: Vec::new(),
            uncore_rtt: Vec::new(),
            held: Vec::new(),
        };
        for (label, cfg) in cfgs {
            let m = System::homogeneous(cfg, p).run();
            s.values.push(label);
            s.throughput.push(m.instruction_throughput());
            s.uncore_rtt.push(m.uncore_rtt);
            s.held.push(m.held_packets);
        }
        sweeps.push(s);
    };

    measure(
        [0u64, 4, 8, 16]
            .into_iter()
            .map(|v| {
                let mut c = base();
                c.noc.hold_slack = v;
                (v.to_string(), c)
            })
            .collect(),
        "hold release slack (cycles)",
    );
    measure(
        [25u32, 100, 400]
            .into_iter()
            .map(|v| {
                let mut c = base();
                c.wb_window = v;
                (v.to_string(), c)
            })
            .collect(),
        "WB sampling window (requests)",
    );
    measure(
        [4usize, 5, 6, 7, 8]
            .into_iter()
            .map(|v| {
                let mut c = base();
                c.noc.vcs_per_port = v;
                (v.to_string(), c)
            })
            .collect(),
        "virtual channels per port",
    );
    measure(
        [1usize, 4, 16]
            .into_iter()
            .map(|v| {
                let mut c = base();
                c.mem.bank_queue = v;
                (v.to_string(), c)
            })
            .collect(),
        "bank intake queue depth",
    );

    AblationResult { app: p.name, sweeps }
}

impl fmt::Display for AblationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Design-choice ablations on {} (MRAM-4TSB-WB)", self.app)?;
        for s in &self.sweeps {
            writeln!(f, "--- {} ---", s.knob)?;
            writeln!(f, "{:>10} {:>12} {:>12} {:>10}", "value", "IT", "uncore RTT", "held")?;
            for i in 0..s.values.len() {
                writeln!(
                    f,
                    "{:>10} {:>12.2} {:>12.1} {:>10}",
                    s.values[i], s.throughput[i], s.uncore_rtt[i], s.held[i]
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_cover_all_knobs() {
        let r = run(Scale::Quick);
        assert_eq!(r.sweeps.len(), 4);
        for s in &r.sweeps {
            assert!(s.throughput.iter().all(|&t| t > 0.0), "{}", s.knob);
            assert_eq!(s.values.len(), s.throughput.len());
        }
        // More VCs never hurt throughput catastrophically.
        let vcs = &r.sweeps[2];
        let min = vcs.throughput.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vcs.throughput.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 2.0, "VC sweep should be smooth: {:?}", vcs.throughput);
    }
}
