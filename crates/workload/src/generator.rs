//! Instruction-stream generators.
//!
//! [`ProfileStream`] drives the profile-driven mode: every L2 event is
//! drawn at the Table 3 rate and its classification (L2 vs L1 hit,
//! hit vs miss, destination bank) is encoded into the address bits so
//! the system's memory port can act on it without tag state.
//! [`FullStackStream`] emits real addresses over hot/warm/cold/shared
//! working sets to drive the full L1/L2/MESI hierarchy.

use crate::burst::BurstModulator;
use crate::profile::{BenchmarkProfile, MEM_FRACTION};
use snoc_common::ids::CoreId;
use snoc_common::rng::SimRng;
use snoc_cpu::{Instr, InstructionStream};

/// A stable per-application tag (shared bank-popularity seed).
fn app_tag(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

const MARKER_BIT: u64 = 1 << 63;
const L2_BIT: u64 = 1 << 62;
const MISS_BIT: u64 = 1 << 61;
const BANK_SHIFT: u32 = 52;
const BANK_MASK: u64 = 0xFF;
const BLOCK_SHIFT: u32 = 7; // 128-byte blocks

/// The decoded classification of a profile-mode address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileAccess {
    /// `true` if the access reaches the L2 (an L1 miss); `false` for
    /// an L1 hit.
    pub l2: bool,
    /// For L2 accesses: misses in the L2 (goes to memory).
    pub miss: bool,
    /// Destination bank.
    pub bank: u16,
}

/// Encodes a profile-mode address.
pub fn encode(access: ProfileAccess, seq: u64) -> u64 {
    let mut a = MARKER_BIT | (seq << BLOCK_SHIFT) & ((1 << BANK_SHIFT) - 1);
    if access.l2 {
        a |= L2_BIT;
    }
    if access.miss {
        a |= MISS_BIT;
    }
    a |= ((access.bank as u64) & BANK_MASK) << BANK_SHIFT;
    a
}

/// Decodes a profile-mode address; `None` for ordinary addresses.
pub fn decode(addr: u64) -> Option<ProfileAccess> {
    if addr & MARKER_BIT == 0 {
        return None;
    }
    Some(ProfileAccess {
        l2: addr & L2_BIT != 0,
        miss: addr & MISS_BIT != 0,
        bank: ((addr >> BANK_SHIFT) & BANK_MASK) as u16,
    })
}

/// A profile-driven instruction stream: the L2 side sees exactly the
/// Table 3 characterization.
#[derive(Debug)]
pub struct ProfileStream {
    profile: BenchmarkProfile,
    rng: SimRng,
    burst: BurstModulator,
    p_miss: f64,
    seq: u64,
}

impl ProfileStream {
    /// Creates the stream for one core. `capacity_factor` is the L2
    /// capacity multiple relative to the SRAM baseline (4 for
    /// STT-RAM), which scales the miss rate by the profile's capacity
    /// sensitivity.
    pub fn new(
        profile: &BenchmarkProfile,
        core: CoreId,
        banks: usize,
        capacity_factor: usize,
        seed: u64,
    ) -> Self {
        let mut rng = SimRng::for_stream(seed, 0x1000 + core.index() as u64);
        let shared = if profile.is_multithreaded() {
            0.25
        } else {
            0.12
        };
        let burst = BurstModulator::new(
            profile.bursty,
            banks,
            &mut rng,
            app_tag(profile.name),
            shared,
        );
        Self {
            profile: *profile,
            rng,
            burst,
            p_miss: profile.p_l2_miss(capacity_factor),
            // The low six bits carry the core id so encoded addresses
            // are globally unique (reply correlation is keyed on the
            // address).
            seq: core.index() as u64,
        }
    }

    /// The profile driving this stream.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }
}

impl InstructionStream for ProfileStream {
    fn next_instr(&mut self) -> Instr {
        let mult = self.burst.tick(&mut self.rng);
        let p_read = (self.profile.p_l2_read() * mult).min(MEM_FRACTION);
        let p_write = (self.profile.p_l2_write() * mult).min(MEM_FRACTION - p_read);
        let p_l1_hit = (MEM_FRACTION - p_read - p_write).max(0.0);
        let u = self.rng.unit();
        self.seq = self.seq.wrapping_add(64);
        if u < p_read {
            let access = ProfileAccess {
                l2: true,
                miss: self.rng.chance(self.p_miss),
                bank: self.burst.pick_bank(&mut self.rng),
            };
            Instr::Load {
                addr: encode(access, self.seq),
            }
        } else if u < p_read + p_write {
            let access = ProfileAccess {
                l2: true,
                miss: self.rng.chance(self.p_miss),
                bank: self.burst.pick_bank(&mut self.rng),
            };
            Instr::Store {
                addr: encode(access, self.seq),
            }
        } else if u < p_read + p_write + p_l1_hit {
            let access = ProfileAccess {
                l2: false,
                miss: false,
                bank: 0,
            };
            Instr::Load {
                addr: encode(access, self.seq),
            }
        } else {
            Instr::NonMem
        }
    }
}

/// A full-stack address stream over hot/warm/cold/shared working sets.
///
/// * **hot** — a small per-core set that fits in the L1 (re-use hits).
/// * **warm** — a per-core set sized between the SRAM and STT-RAM L2
///   shares (L1 misses; the capacity effect emerges in real tags).
/// * **cold** — an advancing stream (compulsory L2 misses).
/// * **shared** — a global set touched by all cores of a
///   multi-threaded workload (coherence traffic).
#[derive(Debug)]
pub struct FullStackStream {
    rng: SimRng,
    burst: BurstModulator,
    core: CoreId,
    p_hot: f64,
    p_warm: f64,
    p_cold: f64,
    p_shared: f64,
    p_store: f64,
    hot_blocks: u64,
    warm_blocks: u64,
    shared_blocks: u64,
    cold_next: u64,
}

impl FullStackStream {
    /// Creates the stream for one core.
    pub fn new(profile: &BenchmarkProfile, core: CoreId, banks: usize, seed: u64) -> Self {
        let mut rng = SimRng::for_stream(seed, 0x2000 + core.index() as u64);
        let shared = if profile.is_multithreaded() {
            0.25
        } else {
            0.12
        };
        let burst = BurstModulator::new(
            profile.bursty,
            banks,
            &mut rng,
            app_tag(profile.name),
            shared,
        );
        // Calibration heuristics (see DESIGN.md): the probability an
        // access leaves the L1 tracks l1mpki; among those, the cold
        // share tracks the L2 miss ratio.
        let p_l1_miss = (profile.l1_mpki / 1000.0 / MEM_FRACTION).min(0.9);
        let p_shared = if profile.is_multithreaded() {
            0.10 * p_l1_miss
        } else {
            0.0
        };
        let p_cold = profile.l2_miss_ratio() * (p_l1_miss - p_shared);
        let p_warm = (p_l1_miss - p_shared - p_cold).max(0.0);
        let p_hot = (1.0 - p_l1_miss).max(0.0);
        let p_store = 1.0 - profile.read_share();
        Self {
            rng,
            burst,
            core,
            p_hot,
            p_warm,
            p_cold,
            p_shared,
            p_store,
            hot_blocks: 64,      // 8 KB: fits the 32 KB L1
            warm_blocks: 12_288, // 1.5 MB/core: misses 1 MB SRAM share,
            // fits the 4 MB STT-RAM share
            shared_blocks: 4_096,
            cold_next: 0,
        }
    }

    fn private_base(&self) -> u64 {
        (self.core.index() as u64 + 1) << 40
    }

    fn pick_addr(&mut self) -> u64 {
        let u = self.rng.unit() * MEM_FRACTION.max(1e-9);
        // Normalized categories within the memory fraction.
        let total = self.p_hot + self.p_warm + self.p_cold + self.p_shared;
        let u = u / MEM_FRACTION * total;
        if u < self.p_hot {
            self.private_base()
                | (1 << 32)
                | ((self.rng.below(self.hot_blocks as usize) as u64) << 7)
        } else if u < self.p_hot + self.p_warm {
            self.private_base()
                | (2 << 32)
                | ((self.rng.below(self.warm_blocks as usize) as u64) << 7)
        } else if u < self.p_hot + self.p_warm + self.p_cold {
            self.cold_next += 1;
            self.private_base() | (3 << 32) | (self.cold_next << 7)
        } else {
            (1 << 55) | ((self.rng.below(self.shared_blocks as usize) as u64) << 7)
        }
    }
}

impl InstructionStream for FullStackStream {
    fn next_instr(&mut self) -> Instr {
        let mult = self.burst.tick(&mut self.rng);
        let p_mem = (MEM_FRACTION * mult).min(0.95);
        if !self.rng.chance(p_mem) {
            return Instr::NonMem;
        }
        let addr = self.pick_addr();
        if self.rng.chance(self.p_store) {
            Instr::Store { addr }
        } else {
            Instr::Load { addr }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table3;

    #[test]
    fn encode_decode_round_trip() {
        for access in [
            ProfileAccess {
                l2: true,
                miss: false,
                bank: 63,
            },
            ProfileAccess {
                l2: true,
                miss: true,
                bank: 0,
            },
            ProfileAccess {
                l2: false,
                miss: false,
                bank: 0,
            },
        ] {
            let addr = encode(access, 12345);
            assert_eq!(decode(addr), Some(access));
        }
        assert_eq!(
            decode(0x1000),
            None,
            "ordinary addresses are not profile-coded"
        );
    }

    #[test]
    fn streams_of_different_cores_never_collide() {
        use snoc_common::ids::CoreId;
        let p = crate::table3::by_name("tpcc").unwrap();
        let mut seen = std::collections::HashSet::new();
        for core in 0..8u16 {
            let mut s = ProfileStream::new(p, CoreId::new(core), 64, 1, 9);
            for _ in 0..2_000 {
                if let Instr::Load { addr } | Instr::Store { addr } = s.next_instr() {
                    if decode(addr).unwrap().l2 {
                        assert!(seen.insert(addr), "collision on {addr:#x}");
                    }
                }
            }
        }
    }

    #[test]
    fn encoded_sequence_varies_block_bits() {
        let a = encode(
            ProfileAccess {
                l2: true,
                miss: false,
                bank: 1,
            },
            1,
        );
        let b = encode(
            ProfileAccess {
                l2: true,
                miss: false,
                bank: 1,
            },
            2,
        );
        assert_ne!(a, b);
        assert_eq!(decode(a), decode(b));
    }

    #[test]
    fn profile_stream_matches_table3_rates() {
        let p = table3::by_name("tpcc").unwrap();
        let mut s = ProfileStream::new(p, CoreId::new(0), 64, 1, 42);
        let n = 400_000;
        let (mut reads, mut writes) = (0u64, 0u64);
        for _ in 0..n {
            match s.next_instr() {
                Instr::Load { addr } => {
                    if decode(addr).unwrap().l2 {
                        reads += 1;
                    }
                }
                Instr::Store { addr } => {
                    if decode(addr).unwrap().l2 {
                        writes += 1;
                    }
                }
                Instr::NonMem => {}
            }
        }
        let rpki = reads as f64 * 1000.0 / n as f64;
        let wpki = writes as f64 * 1000.0 / n as f64;
        assert!(
            (rpki - p.l2_rpki).abs() / p.l2_rpki < 0.15,
            "rpki {rpki} vs {}",
            p.l2_rpki
        );
        assert!(
            (wpki - p.l2_wpki).abs() / p.l2_wpki < 0.15,
            "wpki {wpki} vs {}",
            p.l2_wpki
        );
    }

    #[test]
    fn capacity_factor_reduces_misses_for_reusable_apps() {
        let p = table3::by_name("hmmer").unwrap();
        let count_misses = |factor: usize| {
            let mut s = ProfileStream::new(p, CoreId::new(0), 64, factor, 42);
            let mut misses = 0u64;
            for _ in 0..200_000 {
                if let Instr::Load { addr } | Instr::Store { addr } = s.next_instr() {
                    let a = decode(addr).unwrap();
                    if a.l2 && a.miss {
                        misses += 1;
                    }
                }
            }
            misses
        };
        let at1 = count_misses(1);
        let at4 = count_misses(4);
        assert!(
            (at4 as f64) < 0.7 * at1 as f64,
            "4x capacity should cut misses: {at1} -> {at4}"
        );
    }

    #[test]
    fn deterministic_given_seed_and_core() {
        let p = table3::by_name("lbm").unwrap();
        let mut a = ProfileStream::new(p, CoreId::new(5), 64, 4, 7);
        let mut b = ProfileStream::new(p, CoreId::new(5), 64, 4, 7);
        for _ in 0..1000 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
        let mut c = ProfileStream::new(p, CoreId::new(6), 64, 4, 7);
        let same = (0..1000)
            .filter(|_| a.next_instr() == c.next_instr())
            .count();
        assert!(same < 1000, "different cores get different streams");
    }

    #[test]
    fn full_stack_stream_respects_sharing_flag() {
        let shared_frac = |name: &str| {
            let p = table3::by_name(name).unwrap();
            let mut s = FullStackStream::new(p, CoreId::new(0), 64, 3);
            let mut shared = 0u64;
            let mut mem = 0u64;
            for _ in 0..100_000 {
                if let Instr::Load { addr } | Instr::Store { addr } = s.next_instr() {
                    mem += 1;
                    if addr & (1 << 55) != 0 {
                        shared += 1;
                    }
                }
            }
            shared as f64 / mem as f64
        };
        assert!(shared_frac("tpcc") > 0.001, "server apps share data");
        assert_eq!(shared_frac("mcf"), 0.0, "SPEC copies are private");
    }

    #[test]
    fn full_stack_write_share_tracks_profile() {
        let write_frac = |name: &str| {
            let p = table3::by_name(name).unwrap();
            let mut s = FullStackStream::new(p, CoreId::new(0), 64, 3);
            let (mut st, mut mem) = (0u64, 0u64);
            for _ in 0..100_000 {
                match s.next_instr() {
                    Instr::Store { .. } => {
                        st += 1;
                        mem += 1;
                    }
                    Instr::Load { .. } => mem += 1,
                    Instr::NonMem => {}
                }
            }
            st as f64 / mem as f64
        };
        assert!(write_frac("tpcc") > write_frac("libqntm") + 0.3);
    }

    #[test]
    fn full_stack_cold_stream_advances() {
        let p = table3::by_name("milc").unwrap(); // streaming profile
        let mut s = FullStackStream::new(p, CoreId::new(0), 64, 3);
        let mut cold_addrs = std::collections::HashSet::new();
        for _ in 0..50_000 {
            if let Instr::Load { addr } | Instr::Store { addr } = s.next_instr() {
                if addr & (3 << 32) == (3 << 32) {
                    cold_addrs.insert(addr);
                }
            }
        }
        assert!(
            cold_addrs.len() > 500,
            "cold region must stream: {}",
            cold_addrs.len()
        );
    }
}
