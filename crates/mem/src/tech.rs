//! SRAM / STT-RAM technology parameters (Table 2 of the paper, 32 nm).

use snoc_common::config::MemTech;

/// Per-bank technology parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechParams {
    /// Technology.
    pub tech: MemTech,
    /// Bank capacity in bytes.
    pub capacity_bytes: usize,
    /// Bank area in mm^2.
    pub area_mm2: f64,
    /// Energy per read access in nJ.
    pub read_energy_nj: f64,
    /// Energy per write access in nJ.
    pub write_energy_nj: f64,
    /// Leakage power at 80C in mW.
    pub leakage_mw: f64,
    /// Read latency in ns.
    pub read_ns: f64,
    /// Write latency in ns.
    pub write_ns: f64,
    /// Read latency in cycles at 3 GHz.
    pub read_cycles: u64,
    /// Write latency in cycles at 3 GHz.
    pub write_cycles: u64,
}

impl TechParams {
    /// The paper's 1 MB SRAM bank (Table 2).
    pub fn sram_1mb() -> Self {
        Self {
            tech: MemTech::Sram,
            capacity_bytes: 1024 * 1024,
            area_mm2: 3.03,
            read_energy_nj: 0.168,
            write_energy_nj: 0.168,
            leakage_mw: 444.6,
            read_ns: 0.702,
            write_ns: 0.702,
            read_cycles: 3,
            write_cycles: 3,
        }
    }

    /// The paper's 4 MB STT-RAM bank (Table 2).
    pub fn stt_ram_4mb() -> Self {
        Self {
            tech: MemTech::SttRam,
            capacity_bytes: 4 * 1024 * 1024,
            area_mm2: 3.39,
            read_energy_nj: 0.278,
            write_energy_nj: 0.765,
            leakage_mw: 190.5,
            read_ns: 0.880,
            write_ns: 10.67,
            read_cycles: 3,
            write_cycles: 33,
        }
    }

    /// The parameters for a [`MemTech`].
    pub fn of(tech: MemTech) -> Self {
        match tech {
            MemTech::Sram => Self::sram_1mb(),
            MemTech::SttRam => Self::stt_ram_4mb(),
        }
    }

    /// Leakage energy in nJ over `cycles` cycles at `clock_ghz`.
    pub fn leakage_nj(&self, cycles: u64, clock_ghz: f64) -> f64 {
        // mW * ns = pJ; convert to nJ.
        let ns = cycles as f64 / clock_ghz;
        self.leakage_mw * ns * 1e-3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        let sram = TechParams::sram_1mb();
        let stt = TechParams::stt_ram_4mb();
        assert_eq!(sram.read_cycles, 3);
        assert_eq!(sram.write_cycles, 3);
        assert_eq!(stt.read_cycles, 3);
        assert_eq!(stt.write_cycles, 33);
        assert_eq!(stt.capacity_bytes, 4 * sram.capacity_bytes);
        assert!(stt.leakage_mw < sram.leakage_mw / 2.0);
        assert!(stt.write_energy_nj > 4.0 * stt.read_energy_nj / 2.0);
        // Near-equal area despite 4x capacity.
        assert!((stt.area_mm2 - sram.area_mm2).abs() < 0.5);
    }

    #[test]
    fn of_selects_by_tech() {
        assert_eq!(TechParams::of(MemTech::Sram), TechParams::sram_1mb());
        assert_eq!(TechParams::of(MemTech::SttRam), TechParams::stt_ram_4mb());
    }

    #[test]
    fn leakage_energy_scales_with_time() {
        let sram = TechParams::sram_1mb();
        let one = sram.leakage_nj(3_000_000, 3.0); // 1 ms
                                                   // 444.6 mW for 1 ms = 444.6 uJ = 444_600 nJ.
        assert!((one - 444_600.0).abs() / 444_600.0 < 1e-9);
        assert_eq!(sram.leakage_nj(0, 3.0), 0.0);
    }
}
