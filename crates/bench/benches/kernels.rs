//! Microbenchmarks of the substrate kernels: router allocation, cache
//! array probes, bank service, stream generation and a bare network
//! step, on the dependency-free harness.
use snoc_bench::harness;
use snoc_common::config::SystemConfig;
use snoc_common::geom::{Coord, Layer};
use snoc_common::ids::CoreId;
use snoc_cpu::InstructionStream;
use snoc_mem::array::CacheArray;
use snoc_mem::bank_ctrl::{BankController, BankJob, BankOp};
use snoc_noc::{Network, NetworkParams, Packet, PacketKind};
use snoc_workload::{table3, ProfileStream};

fn main() {
    harness::bench("kernels/cache_array_probe", {
        let mut a = CacheArray::<u8>::new(1024 * 1024, 16, 128);
        for i in 0..4096u64 {
            a.insert(i * 128, 0);
        }
        let mut i = 0u64;
        move || {
            i = i.wrapping_add(12345);
            a.probe((i % 8192) * 128).is_some()
        }
    });

    harness::bench("kernels/bank_write_service", || {
        let mut bank = BankController::new(3, 33, None);
        for t in 0..8 {
            bank.enqueue(
                BankJob {
                    op: BankOp::Write,
                    token: t,
                    addr: t * 128,
                    arrived: 0,
                },
                0,
            );
        }
        bank.run_until_idle(0, 1000)
    });

    harness::bench("kernels/profile_stream", {
        let p = table3::by_name("tpcc").unwrap();
        let mut s = ProfileStream::new(p, CoreId::new(0), 64, 4, 1);
        move || s.next_instr()
    });

    harness::bench("kernels/network_1k_cycles_loaded", || {
        let cfg = SystemConfig::default();
        let mut net = Network::new(NetworkParams::from_config(&cfg));
        for i in 0..64u64 {
            let src = Coord::new((i % 8) as u8, ((i / 8) % 8) as u8, Layer::Core);
            let dst = Coord::new(((i * 5) % 8) as u8, ((i * 11) % 8) as u8, Layer::Cache);
            net.inject(Packet::new(PacketKind::BankRead, src, dst, i, i));
        }
        net.run(1_000);
        net.stats().delivered
    });
}
