//! Figure 8: uncore (interconnect + cache) energy normalized to the
//! SRAM baseline. The plot compares SRAM-64TSB, MRAM-64TSB and the
//! three proposed schemes.

use crate::experiments::{fig6, norm, Scale};
use crate::scenario::Scenario;
use snoc_workload::table3::figures;
use snoc_workload::Suite;
use std::fmt;

/// The scenarios shown in Figure 8, as indices into [`Scenario::ALL`].
pub const FIG8_SCENARIOS: [usize; 5] = [0, 1, 3, 4, 5];

/// One application's normalized energy series.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Application name.
    pub app: &'static str,
    /// Suite.
    pub suite: Suite,
    /// Normalized energy per Figure 8 scenario.
    pub normalized: Vec<f64>,
}

/// The figure.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// Per-app rows.
    pub rows: Vec<Fig8Row>,
}

impl Fig8Result {
    /// Mean normalized energy per scenario across all rows.
    pub fn average(&self) -> Vec<f64> {
        let mut avg = vec![0.0; FIG8_SCENARIOS.len()];
        for r in &self.rows {
            for (i, v) in r.normalized.iter().enumerate() {
                avg[i] += v;
            }
        }
        for v in &mut avg {
            *v /= self.rows.len().max(1) as f64;
        }
        avg
    }
}

/// Runs the energy comparison over the Figure 6 application set.
pub fn run(scale: Scale) -> Fig8Result {
    let mut apps: Vec<&str> = Vec::new();
    apps.extend(scale.take_apps(figures::FIG6_SERVER));
    apps.extend(scale.take_apps(figures::FIG6_PARSEC));
    apps.extend(scale.take_apps(figures::FIG6_SPEC));
    let rows = fig6::sweep(scale, &apps)
        .into_iter()
        .map(|r| {
            let base = r.energy_nj[0];
            Fig8Row {
                app: r.app,
                suite: r.suite,
                normalized: FIG8_SCENARIOS
                    .iter()
                    .map(|&i| norm(r.energy_nj[i], base))
                    .collect(),
            }
        })
        .collect();
    Fig8Result { rows }
}

impl fmt::Display for Fig8Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 8: uncore energy normalized to SRAM-64TSB")?;
        write!(f, "{:12}", "benchmark")?;
        for &i in &FIG8_SCENARIOS {
            write!(f, " {:>14}", Scenario::ALL[i].name())?;
        }
        writeln!(f)?;
        for r in &self.rows {
            write!(f, "{:12}", r.app)?;
            for v in &r.normalized {
                write!(f, " {:>14.3}", v)?;
            }
            writeln!(f)?;
        }
        write!(f, "{:12}", "Avg.")?;
        for v in self.average() {
            write!(f, " {:>14.3}", v)?;
        }
        writeln!(f)?;
        let wb = *self.average().last().unwrap_or(&1.0);
        writeln!(
            f,
            "average saving with MRAM-4TSB-WB: {:.0}% (paper: ~54%)",
            (1.0 - wb) * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stt_roughly_halves_uncore_energy() {
        let r = run(Scale::Quick);
        let avg = r.average();
        assert!((avg[0] - 1.0).abs() < 1e-9, "baseline is 1.0");
        // Leakage dominance: every STT scheme lands near ~0.45.
        for v in &avg[1..] {
            assert!((0.35..0.70).contains(v), "normalized energy {v}");
        }
    }
}
