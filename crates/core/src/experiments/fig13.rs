//! Figure 13: sensitivity to the parent-child distance H — (a) the
//! number of re-orderable requests a parent sees at H = 1/2/3, and
//! (b) the average IPC improvement of the WB scheme over the
//! STT-RAM-4TSB baseline at each H.

use crate::experiments::{norm, Scale};
use crate::scenario::Scenario;
use crate::system::System;
use snoc_workload::table3::{self, figures};
use std::fmt;

/// The figure's two panels.
#[derive(Debug, Clone)]
pub struct Fig13Result {
    /// Applications measured.
    pub apps: Vec<&'static str>,
    /// `requests[a][h-1]`: mean buffered requests H hops from their
    /// destination when a write is forwarded.
    pub requests: Vec<[f64; 3]>,
    /// Average IPC improvement (%) of WB over the 4-TSB round-robin
    /// baseline, per H in 1..=3.
    pub ipc_improvement_pct: [f64; 3],
}

/// Runs both panels.
pub fn run(scale: Scale) -> Fig13Result {
    let apps: Vec<&'static str> = scale
        .take_apps(figures::FIG3)
        .iter()
        .map(|n| table3::by_name(n).expect("known app").name)
        .collect();

    // Panel (a): queue depth by hop distance, from the 4-TSB baseline.
    let mut requests = Vec::new();
    for name in &apps {
        let p = table3::by_name(name).unwrap();
        let cfg = scale.apply(Scenario::SttRam4Tsb.config());
        let mut sys = System::homogeneous(cfg, p);
        sys.run();
        let net = sys.network();
        requests.push([
            net.queue_mean_at_hops(1),
            net.queue_mean_at_hops(2),
            net.queue_mean_at_hops(3),
        ]);
    }

    // Panel (b): WB vs baseline at each re-ordering distance.
    let mut improvement = [0.0; 3];
    for (hi, h) in (1..=3u32).enumerate() {
        let mut sum = 0.0;
        for name in &apps {
            let p = table3::by_name(name).unwrap();
            let mut base_cfg = scale.apply(Scenario::SttRam4Tsb.config());
            base_cfg.parent_hops = h;
            let base = System::homogeneous(base_cfg, p).run().instruction_throughput();
            let mut wb_cfg = scale.apply(Scenario::SttRam4TsbWb.config());
            wb_cfg.parent_hops = h;
            let wb = System::homogeneous(wb_cfg, p).run().instruction_throughput();
            sum += (norm(wb, base) - 1.0) * 100.0;
        }
        improvement[hi] = sum / apps.len() as f64;
    }

    Fig13Result { apps, requests, ipc_improvement_pct: improvement }
}

impl fmt::Display for Fig13Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 13a: requests in a router destined H hops away (at write forwards)")?;
        writeln!(f, "{:10} {:>7} {:>7} {:>7}", "app", "1 hop", "2 hop", "3 hop")?;
        for (name, r) in self.apps.iter().zip(&self.requests) {
            writeln!(f, "{:10} {:>7.2} {:>7.2} {:>7.2}", name, r[0], r[1], r[2])?;
        }
        let n = self.apps.len().max(1) as f64;
        let avg: Vec<f64> = (0..3)
            .map(|h| self.requests.iter().map(|r| r[h]).sum::<f64>() / n)
            .collect();
        writeln!(f, "{:10} {:>7.2} {:>7.2} {:>7.2}", "Avg.", avg[0], avg[1], avg[2])?;
        writeln!(f, "Figure 13b: avg IPC improvement of WB over 4TSB-RR per hop distance")?;
        for (h, v) in self.ipc_improvement_pct.iter().enumerate() {
            writeln!(f, "H = {}: {:+.1}%", h + 1, v)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn farther_parents_see_more_requests() {
        let r = run(Scale::Quick);
        let n = r.apps.len() as f64;
        let avg: Vec<f64> =
            (0..3).map(|h| r.requests.iter().map(|q| q[h]).sum::<f64>() / n).collect();
        // More routers lie 2-3 hops from a destination than 1 hop, so
        // the sampled counts grow with H.
        assert!(
            avg[2] >= avg[0],
            "H=3 ({:.3}) should see at least as many as H=1 ({:.3})",
            avg[2],
            avg[0]
        );
    }
}
