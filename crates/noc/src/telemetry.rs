//! Time-series NoC instrumentation (telemetry).
//!
//! The evaluation figures are end-of-run aggregates; this module
//! records *where* the time goes while a run is in flight, without
//! perturbing it:
//!
//! * **Per-epoch time series** — every [`TelemetryConfig::epoch`]
//!   cycles the collector samples router/link utilization, per-VC
//!   occupancy, the flits buffered at the wide region TSBs, the
//!   busy-table busy fraction across parent routers and the
//!   delivered/held-cycle deltas ([`EpochRow`]).
//! * **Latency histograms** — log2-bucketed end-to-end latency per
//!   traffic class and per hop count, plus the distribution of parent
//!   hold delays and the signed window-based estimator error.
//! * **Flit trace** — a bounded ring of [`TraceEvent`]s (inject, VC
//!   allocation, switch traversal, ejection, delivery) with cycle
//!   stamps, serializable as JSONL, sufficient to replay the life of
//!   the packets it retains.
//!
//! The collector follows the [`crate::audit::NetAuditor`] pattern: it
//! is `Option<Box<_>>` off the hot state in [`crate::Network`], wired
//! through [`crate::NetworkParams::telemetry`] or the `SNOC_TELEMETRY`
//! environment variable (`1`/`true`/`on`; `SNOC_TELEMETRY_EPOCH` and
//! `SNOC_TELEMETRY_TRACE` override the sampling period and the trace
//! capacity). When it is `None` — the default — every hook is a single
//! branch on a cold pointer and the simulation is byte-identical to an
//! uninstrumented build.

use crate::packet::TrafficClass;
use crate::router::{Router, PORTS};
use crate::workspace::WsView;
use snoc_common::geom::{Coord, Direction, Layer};
use snoc_common::stats::{Accumulator, Histogram};
use snoc_common::Cycle;

/// Log2 bucket upper edges for end-to-end latency histograms.
pub const LATENCY_EDGES: [u64; 13] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

/// Log2 bucket upper edges for parent hold-delay histograms.
pub const HOLD_EDGES: [u64; 11] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// Hop counts tracked with their own latency histogram; longer paths
/// fold into the last slot.
pub const MAX_TRACKED_HOPS: usize = 16;

/// Configuration of the telemetry collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Cycles between time-series samples.
    pub epoch: Cycle,
    /// Flit-trace ring capacity in events (0 disables the trace).
    pub trace_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            epoch: 64,
            trace_capacity: 4096,
        }
    }
}

impl TelemetryConfig {
    /// Reads the `SNOC_TELEMETRY` / `SNOC_TELEMETRY_EPOCH` /
    /// `SNOC_TELEMETRY_TRACE` environment hooks: `None` when telemetry
    /// is off.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("SNOC_TELEMETRY").ok()?;
        let mut cfg = match raw.to_ascii_lowercase().as_str() {
            "1" | "true" | "on" => Self::default(),
            _ => return None,
        };
        if let Some(epoch) = std::env::var("SNOC_TELEMETRY_EPOCH")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            cfg.epoch = epoch;
        }
        if let Some(cap) = std::env::var("SNOC_TELEMETRY_TRACE")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            cfg.trace_capacity = cap;
        }
        Some(cfg)
    }
}

/// Which lifecycle point a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceStage {
    /// The packet entered its source NI injection queue.
    Inject,
    /// A router granted the head flit an output VC (VC allocation).
    VcAlloc,
    /// Flits crossed a router's crossbar onto an outbound link.
    Switch,
    /// Flits crossed the crossbar into the local ejection port.
    Eject,
    /// The assembled packet left the destination NI outbox.
    Deliver,
}

impl TraceStage {
    /// Stable lowercase name used in the JSONL rendering.
    pub fn name(self) -> &'static str {
        match self {
            TraceStage::Inject => "inject",
            TraceStage::VcAlloc => "va",
            TraceStage::Switch => "switch",
            TraceStage::Eject => "eject",
            TraceStage::Deliver => "deliver",
        }
    }
}

fn dir_name(dir: Direction) -> &'static str {
    match dir {
        Direction::East => "east",
        Direction::West => "west",
        Direction::North => "north",
        Direction::South => "south",
        Direction::Down => "down",
        Direction::Up => "up",
        Direction::Local => "local",
    }
}

/// One flit-level event in the bounded trace ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle the event happened.
    pub cycle: Cycle,
    /// The packet's monotonic lifetime identity ([`crate::Packet::uid`]).
    pub uid: u64,
    /// Lifecycle point.
    pub stage: TraceStage,
    /// Where it happened.
    pub at: Coord,
    /// Outbound direction (or [`Direction::Local`] at endpoints).
    pub dir: Direction,
    /// The VC involved (output VC for VA/switch, 0 at endpoints).
    pub vc: u8,
}

impl TraceEvent {
    /// One JSON object, the line format of the trace file.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"cycle\":{},\"uid\":{},\"stage\":\"{}\",\"x\":{},\"y\":{},\"layer\":\"{}\",\"dir\":\"{}\",\"vc\":{}}}",
            self.cycle,
            self.uid,
            self.stage.name(),
            self.at.x,
            self.at.y,
            if self.at.layer == Layer::Core { "core" } else { "cache" },
            dir_name(self.dir),
            self.vc,
        )
    }
}

/// One time-series sample, taken every [`TelemetryConfig::epoch`]
/// cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRow {
    /// Cycle the sample was taken.
    pub cycle: Cycle,
    /// Packets in flight (injected or queued, not yet consumed).
    pub in_flight: usize,
    /// Flits buffered across all routers.
    pub buffered: usize,
    /// Flits buffered at routers whose Down port is a wide region TSB.
    pub tsb_buffered: usize,
    /// Fraction of child banks their parents predict busy right now.
    pub busy_frac: f64,
    /// Packets delivered since the previous sample.
    pub delivered_delta: u64,
    /// Hold cycles accumulated at parents since the previous sample.
    pub held_cycles_delta: u64,
}

fn class_slot(class: TrafficClass) -> usize {
    match class {
        TrafficClass::Request => 0,
        TrafficClass::Coherence => 1,
        TrafficClass::Response => 2,
    }
}

/// Display names parallel to the class-indexed arrays.
pub const CLASS_NAMES: [&str; 3] = ["request", "coherence", "response"];

/// The per-network telemetry collector.
#[derive(Debug, Clone)]
pub struct NetTelemetry {
    cfg: TelemetryConfig,
    vcs: usize,
    /// Per router: sum of epoch-sampled `occupancy_byte()` values.
    util_sum: Vec<u64>,
    /// Per router: hold delays closed at VA (sum, count).
    hold_sum: Vec<u64>,
    hold_count: Vec<u64>,
    /// Per router: flits sent out of each port (direction-indexed).
    link_flits: Vec<[u64; PORTS]>,
    /// Per VC index: epoch-sampled buffered flits summed over all
    /// routers and ports.
    vc_occ_sum: Vec<u64>,
    epoch_samples: u64,
    class_latency: [Histogram; 3],
    hop_latency: Vec<Histogram>,
    hold_delay: Histogram,
    /// Signed WB estimator error (sample - estimate before the sample).
    estimator_error: Accumulator,
    series: Vec<EpochRow>,
    prev_delivered: u64,
    prev_held_cycles: u64,
    trace: Vec<TraceEvent>,
    trace_head: usize,
    trace_dropped: u64,
}

impl NetTelemetry {
    /// Creates an empty collector for `routers` routers with `vcs` VCs
    /// per port.
    pub fn new(cfg: TelemetryConfig, routers: usize, vcs: usize) -> Self {
        Self {
            cfg,
            vcs,
            util_sum: vec![0; routers],
            hold_sum: vec![0; routers],
            hold_count: vec![0; routers],
            link_flits: vec![[0; PORTS]; routers],
            vc_occ_sum: vec![0; vcs],
            epoch_samples: 0,
            class_latency: std::array::from_fn(|_| Histogram::new(&LATENCY_EDGES)),
            hop_latency: (0..MAX_TRACKED_HOPS)
                .map(|_| Histogram::new(&LATENCY_EDGES))
                .collect(),
            hold_delay: Histogram::new(&HOLD_EDGES),
            estimator_error: Accumulator::new(),
            series: Vec::new(),
            prev_delivered: 0,
            prev_held_cycles: 0,
            trace: Vec::with_capacity(cfg.trace_capacity.min(4096)),
            trace_head: 0,
            trace_dropped: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> TelemetryConfig {
        self.cfg
    }

    fn push_trace(&mut self, event: TraceEvent) {
        if self.cfg.trace_capacity == 0 {
            return;
        }
        if self.trace.len() < self.cfg.trace_capacity {
            self.trace.push(event);
        } else {
            // Overwrite the oldest event; `trace_head` is the ring's
            // logical start.
            self.trace[self.trace_head] = event;
            self.trace_head = (self.trace_head + 1) % self.trace.len();
            self.trace_dropped += 1;
        }
    }

    /// A packet entered its source NI.
    pub fn note_inject(&mut self, uid: u64, at: Coord, cycle: Cycle) {
        self.push_trace(TraceEvent {
            cycle,
            uid,
            stage: TraceStage::Inject,
            at,
            dir: Direction::Local,
            vc: 0,
        });
    }

    /// A router granted an output VC to a head flit.
    pub fn note_va(&mut self, uid: u64, at: Coord, dir: Direction, vc: u8, cycle: Cycle) {
        self.push_trace(TraceEvent {
            cycle,
            uid,
            stage: TraceStage::VcAlloc,
            at,
            dir,
            vc,
        });
    }

    /// A VA grant closed a bank-aware hold of `delay` cycles at
    /// `router`.
    pub fn note_hold(&mut self, router: usize, delay: Cycle) {
        self.hold_sum[router] += delay;
        self.hold_count[router] += 1;
        self.hold_delay.record(delay);
    }

    /// `nflits` flits left `router` through `dir` (crossbar traversal;
    /// `dir == Local` is ejection into the NI).
    #[allow(clippy::too_many_arguments)]
    pub fn note_link(
        &mut self,
        router: usize,
        at: Coord,
        uid: u64,
        dir: Direction,
        vc: u8,
        nflits: u8,
        cycle: Cycle,
    ) {
        self.link_flits[router][dir.port()] += nflits as u64;
        let stage = if dir == Direction::Local {
            TraceStage::Eject
        } else {
            TraceStage::Switch
        };
        self.push_trace(TraceEvent {
            cycle,
            uid,
            stage,
            at,
            dir,
            vc,
        });
    }

    /// An assembled packet left the destination outbox.
    pub fn note_deliver(
        &mut self,
        uid: u64,
        at: Coord,
        class: TrafficClass,
        hops: u32,
        latency: Cycle,
        cycle: Cycle,
    ) {
        self.class_latency[class_slot(class)].record(latency);
        let slot = (hops as usize).min(MAX_TRACKED_HOPS - 1);
        self.hop_latency[slot].record(latency);
        self.push_trace(TraceEvent {
            cycle,
            uid,
            stage: TraceStage::Deliver,
            at,
            dir: Direction::Local,
            vc: 0,
        });
    }

    /// The window-based estimator closed a congestion sample; `before`
    /// is the smoothed estimate it was about to update.
    pub fn note_estimator(&mut self, before: Cycle, sample: Cycle) {
        self.estimator_error.record(sample as f64 - before as f64);
    }

    /// End-of-cycle hook: samples the time series on epoch boundaries.
    /// `wide_down[i]` marks routers whose Down port is a wide TSB.
    pub fn on_cycle_end(
        &mut self,
        now: Cycle,
        routers: &[Router],
        ws: &WsView<'_>,
        in_flight: usize,
        delivered: u64,
        wide_down: &[bool],
    ) {
        if self.cfg.epoch == 0 || !now.is_multiple_of(self.cfg.epoch) {
            return;
        }
        self.epoch_samples += 1;
        let mut buffered = 0;
        let mut tsb_buffered = 0;
        let mut busy = 0usize;
        let mut children = 0usize;
        let mut held_cycles = 0u64;
        for (i, r) in routers.iter().enumerate() {
            self.util_sum[i] += ws.occupancy_byte(i) as u64;
            buffered += ws.buffered(i);
            if wide_down[i] {
                tsb_buffered += ws.buffered(i);
            }
            if !r.children().is_empty() {
                busy += r.busy.busy_now(now);
                children += r.children().len();
            }
            held_cycles += r.stats.held_cycles;
            for port in 0..PORTS {
                for (vc, sum) in self.vc_occ_sum.iter_mut().enumerate() {
                    *sum += ws.vc(i, port, vc).len() as u64;
                }
            }
        }
        let busy_frac = if children == 0 {
            0.0
        } else {
            busy as f64 / children as f64
        };
        self.series.push(EpochRow {
            cycle: now,
            in_flight,
            buffered,
            tsb_buffered,
            busy_frac,
            delivered_delta: delivered - self.prev_delivered,
            held_cycles_delta: held_cycles.saturating_sub(self.prev_held_cycles),
        });
        self.prev_delivered = delivered;
        self.prev_held_cycles = held_cycles;
    }

    /// Clears all collected data (end of warm-up), keeping the
    /// configuration.
    pub fn reset(&mut self) {
        let cfg = self.cfg;
        let (routers, vcs) = (self.util_sum.len(), self.vcs);
        *self = Self::new(cfg, routers, vcs);
    }

    /// Freezes the collected data into an owned summary.
    pub fn summary(&self) -> TelemetrySummary {
        let samples = self.epoch_samples.max(1);
        let router_util = self
            .util_sum
            .iter()
            .map(|&s| s as f64 / (samples as f64 * 255.0))
            .collect();
        let router_hold_mean = self
            .hold_sum
            .iter()
            .zip(&self.hold_count)
            .map(|(&s, &n)| if n == 0 { 0.0 } else { s as f64 / n as f64 })
            .collect();
        let vc_occupancy_mean = self
            .vc_occ_sum
            .iter()
            .map(|&s| s as f64 / samples as f64)
            .collect();
        // The ring's logical order is head..end then start..head.
        let mut trace = Vec::with_capacity(self.trace.len());
        trace.extend_from_slice(&self.trace[self.trace_head..]);
        trace.extend_from_slice(&self.trace[..self.trace_head]);
        TelemetrySummary {
            epoch: self.cfg.epoch,
            epochs_sampled: self.epoch_samples,
            router_util,
            router_hold_mean,
            router_hold_count: self.hold_count.clone(),
            link_flits: self.link_flits.clone(),
            vc_occupancy_mean,
            class_latency: self.class_latency.clone(),
            hop_latency: self.hop_latency.clone(),
            hold_delay: self.hold_delay.clone(),
            estimator_error: self.estimator_error,
            series: self.series.clone(),
            trace,
            trace_dropped: self.trace_dropped,
        }
    }
}

/// The frozen output of a telemetry-instrumented run, attached to the
/// run's metrics. Router-indexed vectors are ordered core layer first,
/// then cache layer, row-major within each layer (the same order as
/// [`crate::Network::routers`]).
#[derive(Debug, Clone)]
pub struct TelemetrySummary {
    /// Sampling period of the time series.
    pub epoch: Cycle,
    /// Number of time-series samples taken.
    pub epochs_sampled: u64,
    /// Mean buffer occupancy per router as a 0..=1 fraction.
    pub router_util: Vec<f64>,
    /// Mean bank-aware hold delay per router (0 where nothing held).
    pub router_hold_mean: Vec<f64>,
    /// Holds closed per router.
    pub router_hold_count: Vec<u64>,
    /// Flits sent per router per output port (direction-indexed).
    pub link_flits: Vec<[u64; PORTS]>,
    /// Mean buffered flits per VC index, summed over routers and ports.
    pub vc_occupancy_mean: Vec<f64>,
    /// End-to-end latency per traffic class ([`CLASS_NAMES`] order).
    pub class_latency: [Histogram; 3],
    /// End-to-end latency per hop count (last slot = longer).
    pub hop_latency: Vec<Histogram>,
    /// Distribution of bank-aware hold delays.
    pub hold_delay: Histogram,
    /// Signed window-based estimator error (sample - prior estimate).
    pub estimator_error: Accumulator,
    /// The per-epoch time series.
    pub series: Vec<EpochRow>,
    /// Retained trace events, oldest first.
    pub trace: Vec<TraceEvent>,
    /// Events evicted from the ring after it filled.
    pub trace_dropped: u64,
}

impl TelemetrySummary {
    /// The trace as JSON lines, oldest event first.
    pub fn trace_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.trace {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Mean busy-table busy fraction over the time series.
    pub fn mean_busy_frac(&self) -> f64 {
        if self.series.is_empty() {
            return 0.0;
        }
        self.series.iter().map(|r| r.busy_frac).sum::<f64>() / self.series.len() as f64
    }

    /// One-line digest for observers.
    pub fn digest(&self) -> String {
        format!(
            "epochs={} delivered={} trace_events={} trace_dropped={} mean_busy_frac={:.3} est_err_mean={:.2} holds={}",
            self.epochs_sampled,
            self.class_latency.iter().map(Histogram::total).sum::<u64>(),
            self.trace.len(),
            self.trace_dropped,
            self.mean_busy_frac(),
            self.estimator_error.mean(),
            self.hold_delay.total(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at() -> Coord {
        Coord::new(1, 2, Layer::Cache)
    }

    #[test]
    fn trace_ring_keeps_the_newest_events_in_order() {
        let cfg = TelemetryConfig {
            epoch: 64,
            trace_capacity: 4,
        };
        let mut t = NetTelemetry::new(cfg, 2, 6);
        for uid in 0..10 {
            t.note_inject(uid, at(), uid);
        }
        let s = t.summary();
        assert_eq!(s.trace_dropped, 6);
        let uids: Vec<u64> = s.trace.iter().map(|e| e.uid).collect();
        assert_eq!(uids, vec![6, 7, 8, 9], "oldest-first, newest retained");
    }

    #[test]
    fn zero_capacity_disables_the_trace() {
        let cfg = TelemetryConfig {
            epoch: 64,
            trace_capacity: 0,
        };
        let mut t = NetTelemetry::new(cfg, 1, 6);
        t.note_inject(1, at(), 0);
        let s = t.summary();
        assert!(s.trace.is_empty());
        assert_eq!(s.trace_dropped, 0);
    }

    #[test]
    fn latency_lands_in_class_and_hop_histograms() {
        let mut t = NetTelemetry::new(TelemetryConfig::default(), 1, 6);
        t.note_deliver(1, at(), TrafficClass::Request, 3, 37, 100);
        t.note_deliver(2, at(), TrafficClass::Response, 99, 37, 101);
        let s = t.summary();
        assert_eq!(s.class_latency[0].total(), 1);
        assert_eq!(s.class_latency[2].total(), 1);
        assert_eq!(s.hop_latency[3].total(), 1);
        assert_eq!(
            s.hop_latency[MAX_TRACKED_HOPS - 1].total(),
            1,
            "overlong paths fold into the last slot"
        );
    }

    #[test]
    fn hold_and_estimator_samples_aggregate() {
        let mut t = NetTelemetry::new(TelemetryConfig::default(), 3, 6);
        t.note_hold(1, 10);
        t.note_hold(1, 30);
        t.note_estimator(5, 9);
        t.note_estimator(9, 5);
        let s = t.summary();
        assert_eq!(s.router_hold_count, vec![0, 2, 0]);
        assert_eq!(s.router_hold_mean[1], 20.0);
        assert_eq!(s.hold_delay.total(), 2);
        assert_eq!(s.estimator_error.count(), 2);
        assert_eq!(s.estimator_error.sum(), 0.0, "+4 then -4");
    }

    #[test]
    fn trace_event_json_shape() {
        let e = TraceEvent {
            cycle: 12,
            uid: 34,
            stage: TraceStage::Switch,
            at: Coord::new(5, 6, Layer::Core),
            dir: Direction::East,
            vc: 2,
        };
        assert_eq!(
            e.to_json(),
            "{\"cycle\":12,\"uid\":34,\"stage\":\"switch\",\"x\":5,\"y\":6,\"layer\":\"core\",\"dir\":\"east\",\"vc\":2}"
        );
    }

    #[test]
    fn from_env_shapes() {
        // Only the parsing helpers are testable without touching the
        // process environment; `from_env` itself is covered by the
        // determinism integration test.
        assert_eq!(TelemetryConfig::default().epoch, 64);
        assert_eq!(TelemetryConfig::default().trace_capacity, 4096);
    }

    #[test]
    fn reset_clears_data_but_keeps_config() {
        let cfg = TelemetryConfig {
            epoch: 32,
            trace_capacity: 8,
        };
        let mut t = NetTelemetry::new(cfg, 2, 6);
        t.note_inject(1, at(), 0);
        t.note_hold(0, 5);
        t.reset();
        assert_eq!(t.config(), cfg);
        let s = t.summary();
        assert!(s.trace.is_empty());
        assert_eq!(s.hold_delay.total(), 0);
        assert_eq!(s.epochs_sampled, 0);
    }

    #[test]
    fn note_link_uses_eject_stage_on_the_local_port() {
        let mut t = NetTelemetry::new(TelemetryConfig::default(), 2, 6);
        t.note_link(0, at(), 7, Direction::Local, 1, 2, 50);
        t.note_link(1, at(), 8, Direction::Up, 3, 1, 51);
        let s = t.summary();
        assert_eq!(s.link_flits[0][Direction::Local.port()], 2);
        assert_eq!(s.link_flits[1][Direction::Up.port()], 1);
        assert_eq!(s.trace[0].stage, TraceStage::Eject);
        assert_eq!(s.trace[1].stage, TraceStage::Switch);
    }
}
