//! Criterion bench for the paper's fig12: prints the quick-scale
//! reproduction once, then times one representative simulation run.
use criterion::{criterion_group, criterion_main, Criterion};
use snoc_core::experiments::{fig12, Scale};
use snoc_core::scenario::Scenario;
use snoc_core::system::System;
use snoc_workload::table3 as t3;

fn bench(c: &mut Criterion) {
    // Print the reproduced figure/table (quick scale) once.
    println!("{}", fig12::run(Scale::Quick));
    let app = t3::by_name("sclust").unwrap();
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("run/sclust/SttRam4TsbWb", |b| {
        b.iter(|| System::homogeneous(Scale::Quick.apply(Scenario::SttRam4TsbWb.config()), app).run())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
