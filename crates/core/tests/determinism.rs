//! Differential determinism on the optimized hot path: the
//! activity-driven, allocation-free cycle loop must produce the exact
//! same `RunMetrics` run-to-run — with and without the invariant
//! auditor riding along — for both a plain SRAM baseline and the
//! paper's full STT-RAM + bank-aware-arbitration configuration.
//!
//! One `#[test]` on purpose: it toggles the process-wide `SNOC_AUDIT`
//! and `SNOC_TELEMETRY` environment variables, which must not race a
//! parallel test.

use snoc_core::experiments::Scale;
use snoc_core::metrics::RunMetrics;
use snoc_core::scenario::Scenario;
use snoc_core::system::System;
use snoc_workload::table3 as t3;

fn run_cell(scenario: Scenario) -> RunMetrics {
    let app = t3::by_name("sap").unwrap();
    System::homogeneous(Scale::Quick.apply(scenario.config()), app).run()
}

/// The full metrics record as a comparable string, minus the audit and
/// telemetry attachments (present only on instrumented runs; everything
/// the simulation computed must match bit-for-bit).
fn fingerprint(m: &RunMetrics) -> String {
    let mut m = m.clone();
    m.audit = None;
    m.telemetry = None;
    format!("{m:?}")
}

#[test]
fn quick_cells_are_deterministic_and_audit_clean() {
    for scenario in [Scenario::Sram64Tsb, Scenario::SttRam4TsbWb] {
        let first = run_cell(scenario);
        let second = run_cell(scenario);
        assert_eq!(
            fingerprint(&first),
            fingerprint(&second),
            "{scenario:?}: repeated runs diverged"
        );

        std::env::set_var("SNOC_AUDIT", "1");
        let audited = run_cell(scenario);
        std::env::remove_var("SNOC_AUDIT");

        let report = audited
            .audit
            .clone()
            .expect("SNOC_AUDIT enables the auditor");
        assert!(
            report.clean(),
            "{scenario:?}: audit violations: {:?}",
            report.samples
        );
        assert!(report.checked_cycles > 0, "auditor must have run");
        assert_eq!(
            fingerprint(&first),
            fingerprint(&audited),
            "{scenario:?}: auditing changed simulated behaviour"
        );

        std::env::set_var("SNOC_TELEMETRY", "1");
        let instrumented = run_cell(scenario);
        std::env::remove_var("SNOC_TELEMETRY");

        let summary = instrumented
            .telemetry
            .clone()
            .expect("SNOC_TELEMETRY enables the collector");
        assert!(summary.epochs_sampled > 0, "collector must have sampled");
        assert!(
            summary.class_latency.iter().any(|h| h.total() > 0),
            "{scenario:?}: no latencies recorded"
        );
        assert_eq!(
            fingerprint(&first),
            fingerprint(&instrumented),
            "{scenario:?}: telemetry changed simulated behaviour"
        );
    }
}
