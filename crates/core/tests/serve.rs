//! Tier-1 integration tests for the `snoc-serve` sweep service:
//! concurrent clients with overlapping grids dedup against one cache,
//! a panicking cell leaves the server serving, and every result that
//! comes back over the wire is byte-identical to the same spec run
//! through [`SweepRunner`] directly — with caching on and off.

use snoc_core::cellcache;
use snoc_core::serve::json::Json;
use snoc_core::serve::protocol::{CellRequest, JobRequest};
use snoc_core::serve::{jobs, ServeOptions, Server};
use snoc_core::sweep::SweepRunner;
use snoc_noc::NocEnv;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::Shutdown;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};

fn sock(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("snoc-serve-{}-{tag}.sock", std::process::id()))
}

/// Hermetic server options: the test process environment must never
/// leak into a job, whatever other tests set.
fn hermetic(tag: &str) -> ServeOptions {
    let mut opts = ServeOptions::new(sock(tag));
    opts.env = NocEnv::default();
    opts
}

/// One-shot client: send a line, half-close, collect the parsed
/// response lines until the server closes the stream.
fn request(socket: &Path, line: &str) -> Vec<Json> {
    let mut stream = UnixStream::connect(socket).expect("connect");
    writeln!(stream, "{line}").expect("send");
    stream.shutdown(Shutdown::Write).expect("half-close");
    BufReader::new(stream)
        .lines()
        .map(|l| {
            let l = l.expect("read line");
            Json::parse(&l).unwrap_or_else(|e| panic!("bad response {l:?}: {e}"))
        })
        .collect()
}

fn str_of<'j>(v: &'j Json, key: &str) -> &'j str {
    v.get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("no '{key}' in {v:?}"))
}

fn num_of(v: &Json, key: &str) -> u64 {
    v.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("no '{key}' in {v:?}"))
}

fn cell_line(label: &str, scenario: &str, app: &str) -> String {
    format!(
        "{{\"label\":\"{label}\",\"scenario\":\"{scenario}\",\"app\":\"{app}\",\
         \"warmup\":100,\"measure\":400}}"
    )
}

fn submit_line(cells: &[String], wait: bool) -> String {
    format!(
        "{{\"op\":\"submit\",\"wait\":{wait},\"cells\":[{}]}}",
        cells.join(",")
    )
}

fn cell_req(label: &str, scenario: &str, app: &str) -> CellRequest {
    CellRequest {
        label: Some(label.to_string()),
        scenario: scenario.to_string(),
        app: app.to_string(),
        warmup: Some(100),
        measure: Some(400),
        regions: None,
    }
}

#[test]
fn concurrent_clients_dedup_jobs_and_share_the_cell_cache() {
    let server = Server::start(hermetic("concurrent")).expect("start");
    let socket = server.socket().to_path_buf();

    // Three distinct cells; five clients submit overlapping pairs, and
    // two of the clients submit the *same* grid.
    let a = || cell_line("a", "SRAM-64TSB", "sap");
    let b = || cell_line("b", "MRAM-64TSB", "tpcc");
    let c = || cell_line("c", "MRAM-4TSB-WB", "sap");
    let grids = [
        vec![a(), b()],
        vec![a(), b()], // identical to client 0's — must dedup
        vec![b(), c()],
        vec![c(), a()],
        vec![a(), b()], // identical again
    ];

    let outcomes: Vec<(String, bool, Json)> = std::thread::scope(|scope| {
        let handles: Vec<_> = grids
            .iter()
            .map(|cells| {
                let socket = socket.clone();
                scope.spawn(move || {
                    let lines = request(&socket, &submit_line(cells, true));
                    let ack = &lines[0];
                    assert_eq!(ack.get("ok"), Some(&Json::Bool(true)), "ack: {ack:?}");
                    let done = lines.last().expect("stream ends with done").clone();
                    assert_eq!(str_of(&done, "event"), "done");
                    assert_eq!(str_of(&done, "state"), "done");
                    assert_eq!(num_of(&done, "failed"), 0);
                    (
                        str_of(ack, "job").to_string(),
                        ack.get("deduped") == Some(&Json::Bool(true)),
                        done,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    // The three identical submissions share one job key, interned once.
    assert_eq!(outcomes[0].0, outcomes[1].0);
    assert_eq!(outcomes[0].0, outcomes[4].0);
    assert_ne!(outcomes[0].0, outcomes[2].0);
    let fresh = [&outcomes[0], &outcomes[1], &outcomes[4]]
        .iter()
        .filter(|(_, deduped, _)| !deduped)
        .count();
    assert_eq!(fresh, 1, "identical grids intern exactly one job");

    // Across the three *distinct* jobs (6 cells, 3 distinct), the
    // shared cache means exactly 3 simulations and 3 hits.
    let per_job: HashMap<&str, u64> = outcomes
        .iter()
        .map(|(key, _, done)| (key.as_str(), num_of(done, "cache_hits")))
        .collect();
    assert_eq!(per_job.len(), 3);
    assert_eq!(per_job.values().sum::<u64>(), 3, "hits: {per_job:?}");

    // Late resubmission of a finished grid: acknowledged as deduped
    // and already done, with the full event history replayed — one
    // event per cell and the terminator, never a truncated stream.
    let lines = request(&socket, &submit_line(&grids[2], true));
    assert_eq!(lines[0].get("deduped"), Some(&Json::Bool(true)));
    assert_eq!(str_of(&lines[0], "state"), "done");
    let replayed: Vec<&str> = lines[1..].iter().map(|v| str_of(v, "event")).collect();
    assert_eq!(replayed, ["cell", "cell", "done"], "replayed: {lines:?}");

    // `status` agrees.
    let status = request(
        &socket,
        &format!("{{\"op\":\"status\",\"job\":\"{}\"}}", outcomes[0].0),
    );
    assert_eq!(str_of(&status[0], "state"), "done");
    assert_eq!(num_of(&status[0], "cells"), 2);
    assert_eq!(num_of(&status[0], "done"), 2);

    server.shutdown();
    assert!(!socket.exists(), "socket file removed on shutdown");
}

#[test]
fn a_panicking_cell_fails_alone_and_the_server_keeps_serving() {
    let server = Server::start(hermetic("panic")).expect("start");
    let socket = server.socket();

    // `regions:3` cannot tile the 8x8 mesh; the System constructor
    // panics on the worker thread, inside the runner's per-cell guard.
    let bad = "{\"label\":\"bad\",\"scenario\":\"SRAM-64TSB\",\"app\":\"sap\",\
               \"warmup\":100,\"measure\":400,\"regions\":3}"
        .to_string();
    let cells = [
        cell_line("good-1", "SRAM-64TSB", "sap"),
        bad,
        cell_line("good-2", "MRAM-4TSB-WB", "tpcc"),
    ];
    let lines = request(socket, &submit_line(&cells, true));
    let done = lines.last().expect("done event");
    assert_eq!(
        str_of(done, "state"),
        "done",
        "job completes despite the panic"
    );
    assert_eq!(num_of(done, "failed"), 1);
    let job = str_of(&lines[0], "job").to_string();

    // Results: the panicked cell carries an error, its neighbours
    // decode cleanly.
    let results = request(socket, &format!("{{\"op\":\"results\",\"job\":\"{job}\"}}"));
    let cells_back: Vec<&Json> = results
        .iter()
        .filter(|v| v.get("event").and_then(Json::as_str) == Some("result"))
        .collect();
    assert_eq!(cells_back.len(), 3);
    for v in &cells_back {
        let ok = v.get("ok").and_then(Json::as_bool).unwrap();
        match str_of(v, "label") {
            "bad" => {
                assert!(!ok);
                assert!(!str_of(v, "error").is_empty());
            }
            _ => {
                assert!(ok);
                let key = snoc_common::fingerprint::Fingerprint::from_hex(str_of(v, "metrics_key"))
                    .expect("hex key");
                cellcache::decode_metrics(str_of(v, "metrics"), key).expect("decodes");
            }
        }
    }

    // The server is still alive and still runs jobs.
    let pong = request(socket, "{\"op\":\"ping\"}");
    assert_eq!(pong[0].get("pong"), Some(&Json::Bool(true)));
    let again = request(
        socket,
        &submit_line(&[cell_line("after", "SRAM-64TSB", "mcf")], true),
    );
    let done = again.last().unwrap();
    assert_eq!(str_of(done, "state"), "done");
    assert_eq!(num_of(done, "failed"), 0);
}

#[test]
fn served_results_are_byte_identical_to_a_direct_sweep() {
    for cache in [true, false] {
        let tag = if cache {
            "bytes-cached"
        } else {
            "bytes-uncached"
        };
        let mut opts = hermetic(tag);
        opts.cache = cache;
        let server = Server::start(opts).expect("start");

        let wire_cells = [
            cell_line("x", "MRAM-4TSB-WB", "sap"),
            cell_line("y", "SRAM-64TSB", "vips"),
        ];
        let ack = &request(server.socket(), &submit_line(&wire_cells, false))[0];
        let job = str_of(ack, "job").to_string();
        let results = request(
            server.socket(),
            &format!("{{\"op\":\"results\",\"job\":\"{job}\"}}"),
        );

        // The same grid, straight through the sweep runner (hermetic
        // env, no cache — the reference path).
        let req = JobRequest::Cells(vec![
            cell_req("x", "MRAM-4TSB-WB", "sap"),
            cell_req("y", "SRAM-64TSB", "vips"),
        ]);
        let (_, grid) = jobs::build_grid(&req).expect("grid");
        let grid: Vec<_> = grid
            .into_iter()
            .map(|s| s.resolve_env(&NocEnv::default()))
            .collect();
        assert_eq!(jobs::job_key(&grid).to_hex(), job, "wire job key matches");
        let direct = SweepRunner::new()
            .noc_env(NocEnv::default())
            .cache(false)
            .run_grid("serve-reference", grid);

        let mut compared = 0;
        for v in &results {
            if v.get("event").and_then(Json::as_str) != Some("result") {
                continue;
            }
            assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
            let index = num_of(v, "index") as usize;
            let key = snoc_common::fingerprint::Fingerprint::from_hex(str_of(v, "metrics_key"))
                .expect("hex key");
            let reference = cellcache::encode_metrics(
                direct[index].outcome.as_ref().expect("direct run succeeds"),
                key,
            );
            assert_eq!(
                str_of(v, "metrics"),
                reference,
                "cell {index} (cache={cache}) must be byte-identical"
            );
            compared += 1;
        }
        assert_eq!(compared, 2);
        server.shutdown();
    }
}

#[test]
fn shutdown_aborts_queued_jobs_and_unblocks_waiting_clients() {
    let server = Server::start(hermetic("abort")).expect("start");
    let socket = server.socket().to_path_buf();

    // Keep the executor busy, then queue a second job behind it and
    // shut down: the waiter must get a terminal event, not a hang.
    let busy: Vec<String> = (0..4)
        .map(|i| cell_line(&format!("busy-{i}"), "MRAM-4TSB-WB", "sap"))
        .collect();
    let queued = [cell_line("stuck", "SRAM-64TSB", "tpcc")];
    // The queued job's key, computed the same way the server does, so
    // the main thread can poll for the submission having landed before
    // it pulls the rug.
    let (_, grid) = jobs::build_grid(&JobRequest::Cells(vec![cell_req(
        "stuck",
        "SRAM-64TSB",
        "tpcc",
    )]))
    .expect("grid");
    let grid: Vec<_> = grid
        .into_iter()
        .map(|s| s.resolve_env(&NocEnv::default()))
        .collect();
    let stuck_key = jobs::job_key(&grid).to_hex();

    let waiter = std::thread::spawn({
        let socket = socket.clone();
        move || {
            let first = request(&socket, &submit_line(&busy, false));
            assert_eq!(first[0].get("ok"), Some(&Json::Bool(true)));
            request(&socket, &submit_line(&queued, true))
        }
    });
    // Wait until the server has accepted the queued job, then stop the
    // server under it.
    loop {
        let st = request(
            &socket,
            &format!("{{\"op\":\"status\",\"job\":\"{stuck_key}\"}}"),
        );
        if st[0].get("ok") == Some(&Json::Bool(true)) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let bye = request(&socket, "{\"op\":\"shutdown\"}");
    assert_eq!(bye[0].get("shutting_down"), Some(&Json::Bool(true)));
    server.wait();

    let lines = waiter.join().expect("waiter");
    let done = lines.last().expect("terminal event");
    assert_eq!(str_of(done, "event"), "done");
    // Depending on timing the queued job either ran to completion
    // (executor got to it first) or was aborted — both are terminal;
    // a hang or a dropped connection is the bug.
    assert!(matches!(str_of(done, "state"), "done" | "aborted"));
}
