//! Experiment runners regenerating every table and figure of the
//! paper's evaluation section (see `DESIGN.md` for the index).
//!
//! Each module exposes `run(scale) -> <FigureResult>`; results
//! implement [`std::fmt::Display`] to print the same rows/series the
//! paper reports. [`Scale`] trades cycles for fidelity so the same
//! experiments serve both the Criterion benches (quick) and the
//! `repro-*` binaries (full).

pub mod ablations;
pub mod fig10;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig3;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table2;
pub mod table3;

use snoc_common::config::SystemConfig;

/// How long each simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few thousand cycles per run: for smoke tests and Criterion.
    Quick,
    /// The full evaluation lengths used by the `repro-*` binaries.
    Full,
}

impl Scale {
    /// `(warmup, measure)` cycles.
    pub fn cycles(self) -> (u64, u64) {
        match self {
            Scale::Quick => (500, 3_000),
            Scale::Full => (2_000, 16_000),
        }
    }

    /// Applies the scale to a configuration.
    pub fn apply(self, mut cfg: SystemConfig) -> SystemConfig {
        let (warmup, measure) = self.cycles();
        cfg.warmup_cycles = warmup;
        cfg.measure_cycles = measure;
        cfg
    }

    /// Caps an application list for quick runs.
    pub fn take_apps<'a>(self, apps: &'a [&'a str]) -> &'a [&'a str] {
        match self {
            Scale::Quick => &apps[..apps.len().min(3)],
            Scale::Full => apps,
        }
    }
}

/// Renders a normalized value the way the paper's bar charts read.
pub(crate) fn norm(v: f64, base: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        v / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_differ() {
        assert!(Scale::Quick.cycles().1 < Scale::Full.cycles().1);
        let cfg = Scale::Quick.apply(SystemConfig::default());
        assert_eq!(cfg.measure_cycles, 3_000);
    }

    #[test]
    fn quick_caps_app_lists() {
        let apps = ["a", "b", "c", "d", "e"];
        assert_eq!(Scale::Quick.take_apps(&apps).len(), 3);
        assert_eq!(Scale::Full.take_apps(&apps).len(), 5);
    }

    #[test]
    fn norm_guards_zero() {
        assert_eq!(norm(1.0, 0.0), 0.0);
        assert_eq!(norm(3.0, 2.0), 1.5);
    }
}
