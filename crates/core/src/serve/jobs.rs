//! Job construction and identity: turning a [`JobRequest`] into a
//! [`RunSpec`] grid, and fingerprinting that grid into the job key
//! that makes submission idempotent.

use super::protocol::{CellRequest, JobRequest};
use crate::experiments::Scale;
use crate::scenario::Scenario;
use crate::sweep::{Experiment, RunSpec};
use snoc_common::fingerprint::{Fingerprint, StableHasher};
use snoc_workload::table3;

/// Schema tag folded into every job key; bump if the key's coverage
/// changes so old and new servers never alias jobs.
const JOB_SCHEMA: &str = "snoc-job/1";

/// Resolves a scenario by its printed name (`Scenario::name`).
pub fn scenario_by_name(name: &str) -> Option<Scenario> {
    [
        Scenario::Sram64Tsb,
        Scenario::SttRam64Tsb,
        Scenario::SttRam4Tsb,
        Scenario::SttRam4TsbSs,
        Scenario::SttRam4TsbRca,
        Scenario::SttRam4TsbWb,
    ]
    .into_iter()
    .find(|s| s.name() == name)
}

/// The grid of a checked-in experiment, by name.
pub fn experiment_grid(name: &str, scale: Scale) -> Option<Vec<RunSpec>> {
    use crate::experiments::*;
    Some(match name {
        "table2" => table2::Table2Exp.grid(scale),
        "table3" => table3::Table3.grid(scale),
        "fig3" => fig3::Fig3.grid(scale),
        "fig6" => fig6::Fig6.grid(scale),
        "fig7" => fig7::Fig7.grid(scale),
        "fig8" => fig8::Fig8.grid(scale),
        "fig9" => fig9::Fig9.grid(scale),
        "fig10" => fig10::Fig10.grid(scale),
        "fig12" => fig12::Fig12.grid(scale),
        "fig13" => fig13::Fig13.grid(scale),
        "fig14" => fig14::Fig14.grid(scale),
        "ablations" => ablations::Ablations.grid(scale),
        "scaling" => scaling::Scaling.grid(scale),
        _ => return None,
    })
}

fn cell_spec(cell: &CellRequest) -> Result<RunSpec, String> {
    let scenario = scenario_by_name(&cell.scenario)
        .ok_or_else(|| format!("unknown scenario '{}'", cell.scenario))?;
    let profile =
        table3::by_name(&cell.app).ok_or_else(|| format!("unknown app '{}'", cell.app))?;
    let (quick_warmup, quick_measure) = Scale::Quick.cycles();
    let mut cfg = scenario
        .config()
        .rebuild()
        .cycles(
            cell.warmup.unwrap_or(quick_warmup),
            cell.measure.unwrap_or(quick_measure),
        )
        .build();
    if let Some(regions) = cell.regions {
        // Deliberately unvalidated here: a nonsense value panics the
        // cell's worker at System construction, which the runner
        // isolates — the job completes with that cell marked failed.
        cfg.regions = regions;
    }
    let label = cell
        .label
        .clone()
        .unwrap_or_else(|| format!("{}/{}", scenario.name(), cell.app));
    Ok(RunSpec::homogeneous(label, cfg, profile))
}

/// Builds the grid a request describes, or a client-facing diagnostic.
pub fn build_grid(req: &JobRequest) -> Result<(String, Vec<RunSpec>), String> {
    match req {
        JobRequest::Experiment { name, scale } => {
            let grid = experiment_grid(name, *scale)
                .ok_or_else(|| format!("unknown experiment '{name}'"))?;
            if grid.is_empty() {
                return Err(format!("experiment '{name}' has no simulation cells"));
            }
            Ok((name.clone(), grid))
        }
        JobRequest::Cells(cells) => {
            let grid = cells.iter().map(cell_spec).collect::<Result<Vec<_>, _>>()?;
            Ok(("cells".to_string(), grid))
        }
    }
}

/// The content key of a whole grid: every modeled input of every cell,
/// plus labels and cell order (two jobs that would print different
/// reports are different jobs). Host-parallelism knobs (`noc.shards`,
/// worker counts) are excluded, exactly as in the per-cell key.
pub fn job_key(grid: &[RunSpec]) -> Fingerprint {
    let mut h = StableHasher::new();
    h.write_str(JOB_SCHEMA);
    h.write_usize(grid.len());
    for spec in grid {
        h.write_str(&spec.label);
        spec.cfg.hash_into(&mut h);
        h.write_str(&spec.workload.name);
        h.write_usize(spec.workload.apps.len());
        for app in &spec.workload.apps {
            h.write_str(app.name);
        }
        h.write_u8(match spec.mode {
            crate::system::DriveMode::Profile => 0,
            crate::system::DriveMode::FullStack => 1,
        });
        // Instrumentation changes what a job computes (and makes its
        // cells uncacheable); the Debug renderings cover every knob.
        for opt in [
            format!("{:?}", spec.audit),
            format!("{:?}", spec.telemetry),
            format!("{:?}", spec.faults),
        ] {
            h.write_str(&opt);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::protocol::JobRequest;

    fn cell(label: &str, app: &str) -> CellRequest {
        CellRequest {
            label: Some(label.to_string()),
            scenario: "MRAM-4TSB-WB".into(),
            app: app.into(),
            warmup: Some(100),
            measure: Some(400),
            regions: None,
        }
    }

    #[test]
    fn raw_cells_build_and_key_deterministically() {
        let req = JobRequest::Cells(vec![cell("a", "sap"), cell("b", "tpcc")]);
        let (name, grid) = build_grid(&req).unwrap();
        assert_eq!(name, "cells");
        assert_eq!(grid.len(), 2);
        assert_eq!(grid[0].label, "a");
        let (_, again) = build_grid(&req).unwrap();
        assert_eq!(job_key(&grid), job_key(&again), "same request, same key");
    }

    #[test]
    fn labels_and_order_distinguish_jobs() {
        let (_, base) = build_grid(&JobRequest::Cells(vec![cell("a", "sap")])).unwrap();
        let (_, relabel) = build_grid(&JobRequest::Cells(vec![cell("b", "sap")])).unwrap();
        assert_ne!(
            job_key(&base),
            job_key(&relabel),
            "label is part of identity"
        );
        let (_, ab) = build_grid(&JobRequest::Cells(vec![
            cell("a", "sap"),
            cell("b", "tpcc"),
        ]))
        .unwrap();
        let (_, ba) = build_grid(&JobRequest::Cells(vec![
            cell("b", "tpcc"),
            cell("a", "sap"),
        ]))
        .unwrap();
        assert_ne!(job_key(&ab), job_key(&ba), "order is part of identity");
    }

    #[test]
    fn experiment_registry_resolves_every_repro_name() {
        for name in [
            "table3",
            "fig3",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig12",
            "fig13",
            "fig14",
            "ablations",
            "scaling",
        ] {
            let grid = experiment_grid(name, Scale::Quick)
                .unwrap_or_else(|| panic!("unknown experiment {name}"));
            assert!(!grid.is_empty(), "{name} grid is empty");
        }
        assert!(experiment_grid("fig99", Scale::Quick).is_none());
    }

    #[test]
    fn bad_names_are_diagnosed_not_panicked() {
        let bad_scenario = JobRequest::Cells(vec![CellRequest {
            scenario: "NVRAM-9000".into(),
            ..cell("x", "sap")
        }]);
        assert!(build_grid(&bad_scenario)
            .unwrap_err()
            .contains("NVRAM-9000"));
        let bad_app = JobRequest::Cells(vec![CellRequest {
            app: "doom".into(),
            ..cell("x", "sap")
        }]);
        assert!(build_grid(&bad_app).unwrap_err().contains("doom"));
        let bad_exp = JobRequest::Experiment {
            name: "fig99".into(),
            scale: Scale::Quick,
        };
        assert!(build_grid(&bad_exp).unwrap_err().contains("fig99"));
    }
}
