//! Benchmark harness for the STT-RAM NoC reproduction.
//!
//! One `repro-*` binary per table/figure regenerates the paper's
//! rows/series at full scale (pass `--quick` for a fast pass), and one
//! bench per table/figure prints the quick-scale result and times a
//! representative kernel on the dependency-free [`harness`].

pub mod harness;

use snoc_core::experiments::Scale;
use snoc_core::report::{self, Rows};
use std::fmt::Display;

/// Validates the process arguments against an allow-list and returns
/// the flags that were actually passed (deduplicated, in first-seen
/// order). Anything not in `allowed` — a misspelled `--qiuck`, a flag
/// meant for a different binary — aborts with exit code 2 *before* the
/// caller runs any experiment or writes any file, so a typo can never
/// silently run the wrong configuration over checked-in results.
pub fn strict_flags(allowed: &[&str]) -> Vec<String> {
    let mut seen: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if !allowed.contains(&arg.as_str()) {
            eprintln!("error: unrecognized argument `{arg}`");
            eprintln!("usage: {} [{}]", bin_name(), allowed.join("] ["));
            std::process::exit(2);
        }
        if !seen.contains(&arg) {
            seen.push(arg);
        }
    }
    seen
}

/// The executable name for usage messages, without the path.
pub fn bin_name() -> String {
    std::env::args()
        .next()
        .as_deref()
        .and_then(|p| {
            std::path::Path::new(p)
                .file_name()?
                .to_str()
                .map(String::from)
        })
        .unwrap_or_else(|| "repro".into())
}

/// Parses the experiment scale from the command line (`--quick` for
/// the reduced configuration; full scale otherwise). Any other
/// argument is rejected with a non-zero exit.
pub fn scale_from_args() -> Scale {
    if strict_flags(&["--quick"]).is_empty() {
        Scale::Full
    } else {
        Scale::Quick
    }
}

/// Prints an experiment result to stdout and dumps its text/CSV
/// renderings into the results directory (`SNOC_RESULTS_DIR`, default
/// `results/`). Diagnostics go to stderr so stdout stays a clean,
/// reproducible report.
pub fn emit<R: Rows + Display>(name: &str, result: &R) {
    println!("{result}");
    let dir = std::env::var("SNOC_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    match report::save(&dir, name, result) {
        Ok((txt, csv)) => eprintln!("wrote {} and {}", txt.display(), csv.display()),
        Err(e) => eprintln!("could not write results under {dir}: {e}"),
    }
}
