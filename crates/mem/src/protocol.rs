//! The message vocabulary of the two-level directory MESI protocol.
//!
//! These are protocol-level messages; the full-system simulator maps
//! them onto network packets (`snoc-noc`'s `PacketKind`) and back. The
//! protocol is *home-centric*: an owner responding to a forward sends
//! its dirty block back to the home bank, which then answers the
//! requestor — every ownership change funnels through the (STT-RAM)
//! home line, matching the paper's write-pressure model.

use snoc_common::ids::{BankId, CoreId};

/// Messages an L1 cache emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1Msg {
    /// Read miss: fetch a shared copy.
    GetS {
        /// Block-aligned address.
        block: u64,
        /// Home bank.
        home: BankId,
    },
    /// Write miss or S->M upgrade: fetch/claim an exclusive copy.
    GetM {
        /// Block-aligned address.
        block: u64,
        /// Home bank.
        home: BankId,
    },
    /// Voluntary dirty eviction carrying data (an STT-RAM write at the
    /// home bank).
    PutM {
        /// Block-aligned address.
        block: u64,
        /// Home bank.
        home: BankId,
    },
    /// Data written back in response to a forward (also an STT-RAM
    /// write at the home bank); carries the home's transaction id.
    FwdData {
        /// Block-aligned address.
        block: u64,
        /// Home bank.
        home: BankId,
        /// Home transaction this answers.
        txn: u64,
    },
    /// The owner no longer holds the block (silent E eviction raced
    /// with the forward): the home should serve from its own array.
    FwdMiss {
        /// Block-aligned address.
        block: u64,
        /// Home bank.
        home: BankId,
        /// Home transaction this answers.
        txn: u64,
    },
    /// Acknowledges an invalidation.
    InvAck {
        /// Block-aligned address.
        block: u64,
        /// Home bank.
        home: BankId,
    },
}

impl L1Msg {
    /// The home bank this message is addressed to.
    pub fn home(&self) -> BankId {
        match *self {
            L1Msg::GetS { home, .. }
            | L1Msg::GetM { home, .. }
            | L1Msg::PutM { home, .. }
            | L1Msg::FwdData { home, .. }
            | L1Msg::FwdMiss { home, .. }
            | L1Msg::InvAck { home, .. } => home,
        }
    }

    /// The block address.
    pub fn block(&self) -> u64 {
        match *self {
            L1Msg::GetS { block, .. }
            | L1Msg::GetM { block, .. }
            | L1Msg::PutM { block, .. }
            | L1Msg::FwdData { block, .. }
            | L1Msg::FwdMiss { block, .. }
            | L1Msg::InvAck { block, .. } => block,
        }
    }
}

/// Messages a home L2 bank emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankMsg {
    /// Data reply to a requestor; `exclusive` grants E/M.
    Data {
        /// Block-aligned address.
        block: u64,
        /// Destination core.
        to: CoreId,
        /// Grants exclusivity (GetM reply, or GetS on an uncached
        /// block).
        exclusive: bool,
    },
    /// Invalidate a sharer's copy.
    Inv {
        /// Block-aligned address.
        block: u64,
        /// The sharer to invalidate.
        to: CoreId,
    },
    /// Ask the owner for the block on behalf of a read.
    FwdGetS {
        /// Block-aligned address.
        block: u64,
        /// The current owner.
        to: CoreId,
        /// Transaction id echoed by the owner's response.
        txn: u64,
    },
    /// Ask the owner to relinquish the block on behalf of a write.
    FwdGetM {
        /// Block-aligned address.
        block: u64,
        /// The current owner.
        to: CoreId,
        /// Transaction id echoed by the owner's response.
        txn: u64,
    },
    /// Fetch the block from memory (L2 miss).
    Fetch {
        /// Block-aligned address.
        block: u64,
    },
    /// Write a dirty evicted home line back to memory.
    WriteMem {
        /// Block-aligned address.
        block: u64,
    },
}

/// Messages delivered *to* an L1 cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1In {
    /// Fill data from the home bank.
    Data {
        /// Block-aligned address.
        block: u64,
        /// Install in E/M rather than S.
        exclusive: bool,
    },
    /// Invalidation from the directory.
    Inv {
        /// Block-aligned address.
        block: u64,
        /// Home bank to acknowledge.
        home: BankId,
    },
    /// Forward: supply the block for a reader.
    FwdGetS {
        /// Block-aligned address.
        block: u64,
        /// Home bank.
        home: BankId,
        /// Transaction to echo.
        txn: u64,
    },
    /// Forward: relinquish the block for a writer.
    FwdGetM {
        /// Block-aligned address.
        block: u64,
        /// Home bank.
        home: BankId,
        /// Transaction to echo.
        txn: u64,
    },
}

/// Messages delivered *to* a home bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankIn {
    /// Read request.
    GetS {
        /// Block-aligned address.
        block: u64,
        /// Requesting core.
        from: CoreId,
    },
    /// Write/upgrade request.
    GetM {
        /// Block-aligned address.
        block: u64,
        /// Requesting core.
        from: CoreId,
    },
    /// Voluntary dirty writeback.
    PutM {
        /// Block-aligned address.
        block: u64,
        /// Evicting core.
        from: CoreId,
    },
    /// Owner's data in response to a forward.
    FwdData {
        /// Block-aligned address.
        block: u64,
        /// Responding core.
        from: CoreId,
        /// The transaction being answered.
        txn: u64,
    },
    /// Owner lost the line; serve from the home array.
    FwdMiss {
        /// Block-aligned address.
        block: u64,
        /// Responding core.
        from: CoreId,
        /// The transaction being answered.
        txn: u64,
    },
    /// A sharer acknowledged an invalidation.
    InvAck {
        /// Block-aligned address.
        block: u64,
        /// Acknowledging core.
        from: CoreId,
    },
    /// The memory fill for an outstanding L2 miss arrived.
    Fill {
        /// Block-aligned address.
        block: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1msg_accessors() {
        let m = L1Msg::GetS {
            block: 0x1000,
            home: BankId::new(9),
        };
        assert_eq!(m.home(), BankId::new(9));
        assert_eq!(m.block(), 0x1000);
        let m = L1Msg::FwdData {
            block: 0x2000,
            home: BankId::new(1),
            txn: 5,
        };
        assert_eq!(m.home(), BankId::new(1));
        assert_eq!(m.block(), 0x2000);
    }
}
