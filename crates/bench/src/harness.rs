//! A dependency-free micro-benchmark harness.
//!
//! The registry is unreachable in the offline build environments this
//! repository targets, so the `benches/` binaries time themselves with
//! this Criterion-lite shim instead of pulling `criterion`: warm up,
//! run timed batches until a time budget is spent, report mean /
//! best / worst per iteration.

use std::time::{Duration, Instant};

/// One benchmark's timing summary.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Iterations measured.
    pub iters: u64,
    /// Mean wall-clock per iteration.
    pub mean: Duration,
    /// Fastest single iteration.
    pub best: Duration,
    /// Slowest single iteration.
    pub worst: Duration,
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Times `f` under the default budget (300 ms warm-up, 3 s measure)
/// and prints a `name  mean ... (best ... worst ..., N iters)` line.
pub fn bench<R>(name: &str, f: impl FnMut() -> R) -> Timing {
    bench_with(name, Duration::from_millis(300), Duration::from_secs(3), f)
}

/// [`bench`] with explicit warm-up and measurement budgets.
pub fn bench_with<R>(
    name: &str,
    warmup: Duration,
    measure: Duration,
    mut f: impl FnMut() -> R,
) -> Timing {
    let start = Instant::now();
    while start.elapsed() < warmup {
        std::hint::black_box(f());
    }
    let mut iters = 0u64;
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    let mut worst = Duration::ZERO;
    while total < measure {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let dt = t0.elapsed();
        iters += 1;
        total += dt;
        best = best.min(dt);
        worst = worst.max(dt);
    }
    let timing = Timing {
        iters,
        mean: total / iters.max(1) as u32,
        best,
        worst,
    };
    println!(
        "{name:48} {:>10}/iter  (best {:>10}, worst {:>10}, {} iters)",
        fmt_duration(timing.mean),
        fmt_duration(timing.best),
        fmt_duration(timing.worst),
        timing.iters
    );
    timing
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_is_positive_and_ordered() {
        let mut x = 0u64;
        let t = bench_with(
            "harness/self-test",
            Duration::from_millis(1),
            Duration::from_millis(20),
            || {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                x
            },
        );
        assert!(t.iters > 0);
        assert!(t.best <= t.mean && t.mean <= t.worst);
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
