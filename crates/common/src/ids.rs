//! Strongly-typed identifiers.
//!
//! The simulated chip has two stacked 8x8 meshes. Routers are numbered
//! the way the paper numbers them: the core layer holds nodes `0..64`,
//! the cache layer holds nodes `64..128`. Within a layer we use a
//! layer-local [`NodeId`] in `0..64`; the layer itself is carried
//! separately (see [`crate::geom::Layer`]) so the type system prevents
//! mixing a core-layer router with the cache bank below it.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $short:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u16);

        impl $name {
            /// Creates an identifier from a raw index.
            pub const fn new(raw: u16) -> Self {
                Self(raw)
            }

            /// Returns the raw index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw index as `u16`.
            pub const fn raw(self) -> u16 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($short, "{}"), self.0)
            }
        }

        impl From<u16> for $name {
            fn from(raw: u16) -> Self {
                Self::new(raw)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// A layer-local router/node index (`0..width*height`).
    ///
    /// The same `NodeId` names the router at a given (x, y) position in
    /// *either* layer; pair it with a [`crate::geom::Layer`] to obtain a
    /// unique position on the chip.
    NodeId,
    "n"
);

id_type!(
    /// A processor core. Core `i` sits at core-layer node `i`.
    CoreId,
    "c"
);

id_type!(
    /// An L2 cache bank. Bank `i` sits at cache-layer node `i`
    /// (paper numbering: chip node `64 + i`).
    BankId,
    "b"
);

id_type!(
    /// A logical region of the cache layer (Section 3.4 of the paper).
    RegionId,
    "r"
);

id_type!(
    /// An on-chip memory controller (four, one per cache-layer corner).
    McId,
    "mc"
);

id_type!(
    /// A packet identifier, unique within one simulation run.
    PacketId,
    "p"
);

/// The flat key of one virtual channel in a workspace-wide
/// structure-of-arrays store: `(router, port, vc)` collapsed to
/// `router * ports * vcs + port * vcs + vc`.
///
/// Input-VC lanes and output-VC lanes share this index space (an
/// output VC `(router, port, vc)` is credit-matched to the downstream
/// input VC it feeds), so one key addresses both sides of a link's
/// flow-control state. The geometry (`ports`, `vcs`) is carried by the
/// store, not the key; composing and decomposing against a different
/// geometry is a bug the paired helpers make hard to write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VcKey(u32);

impl VcKey {
    /// Composes a key from its coordinates under a `(ports, vcs)`
    /// geometry.
    pub const fn compose(router: usize, port: usize, vc: usize, ports: usize, vcs: usize) -> Self {
        debug_assert!(port < ports && vc < vcs);
        Self(((router * ports + port) * vcs + vc) as u32)
    }

    /// Wraps an already-flat lane index.
    pub const fn from_lane(lane: usize) -> Self {
        Self(lane as u32)
    }

    /// The flat lane index (the array subscript).
    pub const fn lane(self) -> usize {
        self.0 as usize
    }

    /// Splits the key back into `(router, port, vc)` under the same
    /// geometry it was composed with.
    pub const fn decompose(self, ports: usize, vcs: usize) -> (usize, usize, usize) {
        let lane = self.0 as usize;
        (lane / (ports * vcs), (lane / vcs) % ports, lane % vcs)
    }
}

impl fmt::Display for VcKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vc#{}", self.0)
    }
}

impl NodeId {
    /// The node's id in the paper's whole-chip numbering, where the
    /// cache layer is offset by the number of nodes per layer.
    pub fn chip_index(self, layer_is_cache: bool, nodes_per_layer: usize) -> usize {
        if layer_is_cache {
            self.index() + nodes_per_layer
        } else {
            self.index()
        }
    }
}

impl CoreId {
    /// The core-layer node this core is attached to.
    pub fn node(self) -> NodeId {
        NodeId::new(self.0)
    }
}

impl BankId {
    /// The cache-layer node this bank is attached to.
    pub fn node(self) -> NodeId {
        NodeId::new(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        let n = NodeId::new(91);
        assert_eq!(n.index(), 91);
        assert_eq!(usize::from(n), 91);
        assert_eq!(NodeId::from(91u16), n);
        assert_eq!(n.to_string(), "n91");
    }

    #[test]
    fn core_and_bank_map_to_their_nodes() {
        assert_eq!(CoreId::new(27).node(), NodeId::new(27));
        assert_eq!(BankId::new(27).node(), NodeId::new(27));
    }

    #[test]
    fn chip_index_offsets_cache_layer() {
        let n = NodeId::new(27);
        assert_eq!(n.chip_index(false, 64), 27);
        assert_eq!(n.chip_index(true, 64), 91);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let set: HashSet<BankId> = (0..8).map(BankId::new).collect();
        assert_eq!(set.len(), 8);
        assert!(BankId::new(3) < BankId::new(4));
    }

    #[test]
    fn display_prefixes_are_distinct() {
        assert_eq!(CoreId::new(1).to_string(), "c1");
        assert_eq!(BankId::new(1).to_string(), "b1");
        assert_eq!(RegionId::new(1).to_string(), "r1");
        assert_eq!(McId::new(1).to_string(), "mc1");
        assert_eq!(PacketId::new(1).to_string(), "p1");
    }
}
