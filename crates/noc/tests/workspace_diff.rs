//! Differential test: the workspace-backed router against a naive
//! reference implementation, plus property tests for the allocation
//! bitmask sweeps.
//!
//! The reference router is written independently of the production
//! code (same idiom as `routing_diff.rs`): per-VC `VecDeque` buffers,
//! scalar credit counters and explicit `Option` allocation state,
//! stepped with the textbook two-phase VA/SA round-robin. Both routers
//! are driven in lockstep by the same randomized multi-flit traffic
//! and credit-return schedule for thousands of cycles; every switch
//! move and every piece of observable state (buffer contents, routes,
//! owners, credits) must agree, cycle by cycle.

use snoc_common::config::{ArbitrationPolicy, Estimator, NocConfig, RequestPathMode, TsbPlacement};
use snoc_common::geom::{Coord, Direction, Layer};
use snoc_common::ids::{BankId, NodeId, PacketId};
use snoc_common::rng::SimRng;
use snoc_common::Cycle;
use snoc_noc::network::{Network, NetworkParams};
use snoc_noc::packet::{Flit, Packet, PacketKind};
use snoc_noc::parent::ChildInfo;
use snoc_noc::router::{NetView, OutRoute, Router, StepParams, PORTS};
use snoc_noc::workspace::NocWorkspace;
use std::collections::VecDeque;

const VCS: usize = 6;
const DEPTH: usize = 5;
const STAGES: Cycle = 2;

fn at() -> Coord {
    Coord::new(3, 3, Layer::Cache)
}

/// A network view with one fixed route (and optional destination
/// bank) per packet, so routing is an explicit test input instead of
/// a function of coordinates.
struct TestView {
    packets: Vec<Packet>,
    routes: Vec<Direction>,
    banks: Vec<Option<BankId>>,
}

impl TestView {
    fn new() -> Self {
        Self {
            packets: Vec::new(),
            routes: Vec::new(),
            banks: Vec::new(),
        }
    }

    fn add(&mut self, kind: PacketKind, route: Direction, bank: Option<BankId>) -> PacketId {
        let id = PacketId::new(self.packets.len() as u16);
        let mut p = Packet::new(kind, Coord::new(0, 0, Layer::Core), at(), 0, 0);
        p.id = id;
        self.packets.push(p);
        self.routes.push(route);
        self.banks.push(bank);
        id
    }
}

impl NetView for TestView {
    fn packet(&self, id: PacketId) -> &Packet {
        &self.packets[id.index()]
    }
    fn route(&self, _at: Coord, packet: &Packet) -> Direction {
        self.routes[packet.id.index()]
    }
    fn dest_bank(&self, packet: &Packet) -> Option<BankId> {
        self.banks[packet.id.index()]
    }
}

/// One granted move of the reference router.
#[derive(Debug, PartialEq, Eq)]
struct RefMove {
    in_port: usize,
    in_vc: usize,
    out_dir: Direction,
    out_vc: usize,
    flits: Vec<(PacketId, u16, bool, bool)>,
}

/// First eligible index in rotating order starting after `last`.
fn rotate_pick(last: usize, n: usize, mut eligible: impl FnMut(usize) -> bool) -> Option<usize> {
    (1..=n).map(|off| (last + off) % n).find(|&i| eligible(i))
}

/// The naive reference: nested queues and scalars, no bitmasks, no
/// shared lane store. Implements plain round-robin VA/SA (the
/// `SystemConfig::default()` fast path) from the allocation spec:
/// a head flit that has cleared the pipeline claims a free credited
/// output VC of its class (preferring empty downstream buffers), and
/// each output port grants one routed, ready, credited input VC per
/// cycle in rotating priority, at most one grant per input port.
struct RefRouter {
    inputs: Vec<VecDeque<Flit>>,
    route: Vec<Option<(usize, usize)>>,
    credits: Vec<u8>,
    owner: Vec<Option<(usize, usize)>>,
    va_rr: [usize; PORTS],
    sa_rr: [usize; PORTS],
}

impl RefRouter {
    fn new() -> Self {
        Self {
            inputs: (0..PORTS * VCS).map(|_| VecDeque::new()).collect(),
            route: vec![None; PORTS * VCS],
            credits: vec![DEPTH as u8; PORTS * VCS],
            owner: vec![None; PORTS * VCS],
            va_rr: [0; PORTS],
            sa_rr: [0; PORTS],
        }
    }

    fn step_va(&mut self, view: &TestView, now: Cycle) {
        for flat in 0..PORTS * VCS {
            let Some(front) = self.inputs[flat].front() else {
                continue;
            };
            if !front.head || self.route[flat].is_some() || front.ready_at > now {
                continue;
            }
            let packet = view.packet(front.packet);
            let dp = view.route(at(), packet).port();
            let range = packet.kind.class().vc_range(VCS);
            let free = |v: usize| {
                range.contains(&v)
                    && self.owner[dp * VCS + v].is_none()
                    && self.credits[dp * VCS + v] > 0
            };
            let pick = rotate_pick(self.va_rr[dp], VCS, |v| {
                free(v) && self.credits[dp * VCS + v] == DEPTH as u8
            })
            .or_else(|| rotate_pick(self.va_rr[dp], VCS, free));
            if let Some(v) = pick {
                self.va_rr[dp] = v;
                self.owner[dp * VCS + v] = Some((flat / VCS, flat % VCS));
                self.route[flat] = Some((dp, v));
            }
        }
    }

    fn step_sa(&mut self, now: Cycle) -> Vec<RefMove> {
        let mut moves = Vec::new();
        let mut used = [false; PORTS];
        for out_dir in Direction::ALL {
            let op = out_dir.port();
            let n = PORTS * VCS;
            let rr = self.sa_rr[op];
            // Rotating priority: indices above the last winner first.
            let order = (rr + 1..n).chain(0..=rr);
            let mut winner = None;
            for i in order {
                if used[i / VCS] {
                    continue;
                }
                let Some((dp, ov)) = self.route[i] else {
                    continue;
                };
                if dp != op || self.credits[op * VCS + ov] == 0 {
                    continue;
                }
                match self.inputs[i].front() {
                    Some(f) if f.ready_at <= now => {}
                    _ => continue,
                }
                winner = Some((i, ov));
                break;
            }
            let Some((i, ov)) = winner else { continue };
            self.sa_rr[op] = i;
            used[i / VCS] = true;
            let flit = self.inputs[i].pop_front().expect("winner has a flit");
            self.credits[op * VCS + ov] -= 1;
            if flit.tail {
                self.owner[op * VCS + ov] = None;
                self.route[i] = None;
            }
            moves.push(RefMove {
                in_port: i / VCS,
                in_vc: i % VCS,
                out_dir,
                out_vc: ov,
                flits: vec![(flit.packet, flit.seq, flit.head, flit.tail)],
            });
        }
        moves
    }
}

fn params(now: Cycle, policy: ArbitrationPolicy) -> StepParams {
    StepParams {
        now,
        policy,
        max_hold: 32,
        hold_slack: 4,
        wide_down: false,
        tsb_extra: 0,
        blocked: 0,
    }
}

/// A packet mid-injection into one input VC.
struct Stream {
    flits: VecDeque<Flit>,
}

fn random_packet(view: &mut TestView, rng: &mut SimRng) -> (PacketId, usize) {
    let (kind, bank) = match rng.below(4) {
        0 => (PacketKind::BankRead, None),
        1 => (PacketKind::Inv, None),
        2 => (PacketKind::DataReply, None),
        _ => (PacketKind::BankWrite, None),
    };
    let dir = Direction::ALL[rng.below(PORTS)];
    let id = view.add(kind, dir, bank);
    let nflits = 1 + rng.below(4);
    (id, nflits)
}

fn assert_same_state(ws: &NocWorkspace, r: &Router, rf: &RefRouter, cycle: Cycle) {
    for port in 0..PORTS {
        for vc in 0..VCS {
            let flat = port * VCS + vc;
            let real = r.input_vc(ws, port, vc);
            let q = &rf.inputs[flat];
            assert_eq!(real.len(), q.len(), "cycle {cycle}: len at {port}/{vc}");
            for (k, want) in q.iter().enumerate() {
                let got = real.flit(k);
                assert_eq!(
                    (got.packet, got.seq, got.head, got.tail),
                    (want.packet, want.seq, want.head, want.tail),
                    "cycle {cycle}: flit {k} at {port}/{vc}"
                );
            }
            let want_route = rf.route[flat].map(|(dp, v)| OutRoute {
                dir: Direction::ALL[dp],
                vc: v,
            });
            assert_eq!(
                real.route(),
                want_route,
                "cycle {cycle}: route at {port}/{vc}"
            );
            let out = ws.port(0, port);
            assert_eq!(
                out.credits(vc),
                rf.credits[flat],
                "cycle {cycle}: credits at {port}/{vc}"
            );
            assert_eq!(
                out.owner(vc),
                rf.owner[flat].map(|(p, v)| (p as u8, v as u8)),
                "cycle {cycle}: owner at {port}/{vc}"
            );
        }
    }
}

#[test]
fn workspace_router_matches_the_naive_reference_over_mixed_traffic() {
    let mut ws = NocWorkspace::new(1, VCS, DEPTH);
    let mut r = Router::new(0, at(), VCS, DEPTH, vec![]);
    let mut rf = RefRouter::new();
    let mut view = TestView::new();
    let mut rng = SimRng::for_stream(0xD1FF, 0);

    // Per input VC: the packet currently being injected and the
    // upstream link credits gating it.
    let mut streams: Vec<Option<Stream>> = (0..PORTS * VCS).map(|_| None).collect();
    let mut upstream: Vec<u8> = vec![DEPTH as u8; PORTS * VCS];
    // Scheduled downstream credit returns: (due, out port, out vc).
    let mut returns: Vec<(Cycle, usize, usize)> = Vec::new();
    let mut total_moves = 0usize;

    let horizon = 4_000;
    for cycle in 0..horizon + 500 {
        // Downstream neighbours return credits.
        for &(due, dp, ov) in &returns {
            if due == cycle {
                r.return_credit(&mut ws, Direction::ALL[dp], ov, 1);
                rf.credits[dp * VCS + ov] += 1;
            }
        }
        returns.retain(|&(due, _, _)| due != cycle);

        // Start a new packet on a free lane of its class (injection
        // stops at the horizon so the tail of the run drains).
        if cycle < horizon && rng.chance(0.7) {
            let (id, nflits) = random_packet(&mut view, &mut rng);
            let class = view.packet(id).kind.class();
            let port = rng.below(PORTS);
            let lane = class
                .vc_range(VCS)
                .find(|&v| streams[port * VCS + v].is_none());
            if let Some(vc) = lane {
                streams[port * VCS + vc] = Some(Stream {
                    flits: Flit::sequence(id, nflits).collect(),
                });
            }
        }

        // One flit per lane per cycle, gated by upstream credits —
        // identical arrivals into both routers.
        for flat in 0..PORTS * VCS {
            let Some(stream) = &mut streams[flat] else {
                continue;
            };
            if upstream[flat] == 0 {
                continue;
            }
            let mut flit = stream.flits.pop_front().expect("streams are non-empty");
            flit.ready_at = cycle + STAGES;
            upstream[flat] -= 1;
            r.accept(&mut ws, flat / VCS, flat % VCS, flit);
            rf.inputs[flat].push_back(flit);
            if stream.flits.is_empty() {
                streams[flat] = None;
            }
        }

        // Both routers step VA then SA within the cycle.
        let p = params(cycle, ArbitrationPolicy::RoundRobin);
        r.step_va(&mut ws, &view, p);
        let moves: Vec<RefMove> = r
            .step_sa(&mut ws, &view, p)
            .iter()
            .map(|m| RefMove {
                in_port: m.in_port,
                in_vc: m.in_vc,
                out_dir: m.out_dir,
                out_vc: m.out_vc,
                flits: m
                    .flits
                    .iter()
                    .map(|f| (f.packet, f.seq, f.head, f.tail))
                    .collect(),
            })
            .collect();
        rf.step_va(&view, cycle);
        let want = rf.step_sa(cycle);
        assert_eq!(moves, want, "cycle {cycle}: switch moves diverged");
        total_moves += moves.len();

        for m in &moves {
            upstream[m.in_port * VCS + m.in_vc] += m.flits.len() as u8;
            let delay = 1 + rng.below(6) as u64;
            for _ in 0..m.flits.len() {
                returns.push((cycle + delay, m.out_dir.port(), m.out_vc));
            }
        }

        if cycle % 64 == 0 || cycle >= horizon {
            assert_same_state(&ws, &r, &rf, cycle);
        }
    }

    assert!(total_moves > 2_000, "traffic too thin: {total_moves} moves");
    assert_eq!(ws.buffered(0), 0, "run must drain");
    assert!(rf.inputs.iter().all(VecDeque::is_empty));
}

/// Property tests for the allocation sweeps, including the bank-aware
/// policy the reference above does not model: whatever the traffic
/// and busy-table state, allocation must never double-grant an output
/// VC and credits must stay within `0..=depth`.
#[test]
fn allocation_sweep_never_double_grants_and_credits_stay_bounded() {
    let children = vec![
        ChildInfo {
            bank: BankId::new(9),
            base_latency: 4,
            first_hop: Direction::South,
            hops: 2,
        },
        ChildInfo {
            bank: BankId::new(10),
            base_latency: 3,
            first_hop: Direction::East,
            hops: 1,
        },
    ];
    let mut ws = NocWorkspace::new(1, VCS, DEPTH);
    let mut r = Router::new(0, at(), VCS, DEPTH, children);
    let mut view = TestView::new();
    let mut rng = SimRng::for_stream(0xBA2C, 1);
    let policy = ArbitrationPolicy::BankAware {
        estimator: Estimator::WindowBased,
    };

    let mut streams: Vec<Option<Stream>> = (0..PORTS * VCS).map(|_| None).collect();
    let mut upstream: Vec<u8> = vec![DEPTH as u8; PORTS * VCS];
    let mut returns: Vec<(Cycle, usize, usize)> = Vec::new();
    // Per output lane: credits spent and not yet returned.
    let mut outstanding = [0u8; PORTS * VCS];
    let mut total_moves = 0usize;

    let horizon = 3_000;
    for cycle in 0..horizon + 500 {
        for &(due, dp, ov) in &returns {
            if due == cycle {
                r.return_credit(&mut ws, Direction::ALL[dp], ov, 1);
                outstanding[dp * VCS + ov] -= 1;
            }
        }
        returns.retain(|&(due, _, _)| due != cycle);

        if cycle < horizon && rng.chance(0.6) {
            // Half the traffic is bank requests to managed children,
            // so the hold/release and priority paths all run.
            let (kind, bank) = match rng.below(6) {
                0 | 1 => (PacketKind::BankRead, Some(BankId::new(9))),
                2 => (PacketKind::BankWrite, Some(BankId::new(10))),
                3 => (PacketKind::Inv, None),
                4 => (PacketKind::DataReply, None),
                _ => (PacketKind::Writeback, Some(BankId::new(9))),
            };
            let dir = Direction::ALL[rng.below(PORTS)];
            let id = view.add(kind, dir, bank);
            let nflits = 1 + rng.below(4);
            let port = rng.below(PORTS);
            let class = view.packet(id).kind.class();
            if let Some(vc) = class
                .vc_range(VCS)
                .find(|&v| streams[port * VCS + v].is_none())
            {
                streams[port * VCS + vc] = Some(Stream {
                    flits: Flit::sequence(id, nflits).collect(),
                });
            }
        }
        if cycle < horizon && rng.chance(0.1) {
            let bank = BankId::new(if rng.chance(0.5) { 9 } else { 10 });
            r.busy.force_busy(bank, cycle + 1 + rng.below(30) as u64);
        }

        for flat in 0..PORTS * VCS {
            let Some(stream) = &mut streams[flat] else {
                continue;
            };
            if upstream[flat] == 0 {
                continue;
            }
            let mut flit = stream.flits.pop_front().expect("streams are non-empty");
            flit.ready_at = cycle + STAGES;
            upstream[flat] -= 1;
            r.accept(&mut ws, flat / VCS, flat % VCS, flit);
            if stream.flits.is_empty() {
                streams[flat] = None;
            }
        }

        let p = params(cycle, policy);
        r.step_va(&mut ws, &view, p);
        let moves = r.step_sa(&mut ws, &view, p);
        total_moves += moves.len();

        // SA properties: one grant per output port, one per input port.
        let mut out_seen = [false; PORTS];
        let mut in_seen = [false; PORTS];
        for m in moves {
            assert!(!out_seen[m.out_dir.port()], "output port double-granted");
            assert!(!in_seen[m.in_port], "input port double-granted");
            out_seen[m.out_dir.port()] = true;
            in_seen[m.in_port] = true;
            assert!(!m.flits.is_empty());
        }

        let scheduled: Vec<(usize, usize, usize)> = moves
            .iter()
            .map(|m| (m.in_port * VCS + m.in_vc, m.out_dir.port(), m.out_vc))
            .collect();
        for (in_flat, dp, ov) in scheduled {
            upstream[in_flat] += 1;
            outstanding[dp * VCS + ov] += 1;
            let delay = 1 + rng.below(6) as u64;
            returns.push((cycle + delay, dp, ov));
        }

        // VA properties: every routed input VC targets a distinct
        // output VC, every owner points back at its input VC, and
        // credit conservation holds lane by lane.
        let mut claimed = std::collections::HashSet::new();
        for port in 0..PORTS {
            for vc in 0..VCS {
                if let Some(route) = r.input_vc(&ws, port, vc).route() {
                    assert!(
                        claimed.insert((route.dir.port(), route.vc)),
                        "cycle {cycle}: output VC double-granted"
                    );
                    assert_eq!(
                        ws.port(0, route.dir.port()).owner(route.vc),
                        Some((port as u8, vc as u8)),
                        "cycle {cycle}: owner does not point back"
                    );
                }
                let flat = port * VCS + vc;
                let credits = ws.port(0, port).credits(vc);
                assert!(credits as usize <= DEPTH, "credit overflow");
                assert_eq!(
                    credits + outstanding[flat],
                    DEPTH as u8,
                    "cycle {cycle}: credit conservation at {port}/{vc}"
                );
            }
        }
        for (port, vc) in (0..PORTS).flat_map(|p| (0..VCS).map(move |v| (p, v))) {
            if let Some((ip, iv)) = ws.port(0, port).owner(vc) {
                assert_eq!(
                    r.input_vc(&ws, ip as usize, iv as usize)
                        .route()
                        .map(|o| (o.dir.port(), o.vc)),
                    Some((port, vc)),
                    "cycle {cycle}: owned output VC without a matching route"
                );
            }
        }
    }

    assert!(total_moves > 1_500, "traffic too thin: {total_moves} moves");
    assert_eq!(ws.buffered(0), 0, "run must drain (no livelock from holds)");
}

/// Every observable piece of lane state must agree between two
/// networks, router by router (the sharded stepper against the serial
/// reference).
fn assert_networks_match(a: &Network, b: &Network, cycle: Cycle) {
    let vcs = a.params().noc.vcs_per_port;
    let (va, vb) = (a.ws_view(), b.ws_view());
    assert_eq!(va.routers(), vb.routers());
    for i in 0..va.routers() {
        assert_eq!(
            va.buffered(i),
            vb.buffered(i),
            "cycle {cycle}: buffered at router {i}"
        );
        for port in 0..PORTS {
            let (pa, pb) = (va.port(i, port), vb.port(i, port));
            for vc in 0..vcs {
                assert_eq!(
                    pa.credits(vc),
                    pb.credits(vc),
                    "cycle {cycle}: credits at {i}/{port}/{vc}"
                );
                assert_eq!(
                    pa.owner(vc),
                    pb.owner(vc),
                    "cycle {cycle}: owner at {i}/{port}/{vc}"
                );
                let (qa, qb) = (va.vc(i, port, vc), vb.vc(i, port, vc));
                assert_eq!(
                    qa.len(),
                    qb.len(),
                    "cycle {cycle}: queue length at {i}/{port}/{vc}"
                );
                assert_eq!(
                    qa.route(),
                    qb.route(),
                    "cycle {cycle}: route at {i}/{port}/{vc}"
                );
                for k in 0..qa.len() {
                    let (fa, fb) = (qa.flit(k), qb.flit(k));
                    assert_eq!(
                        (fa.seq, fa.head, fa.tail, fa.ready_at),
                        (fb.seq, fb.head, fb.tail, fb.ready_at),
                        "cycle {cycle}: flit {k} at {i}/{port}/{vc}"
                    );
                }
            }
        }
    }
}

/// Drives one serial network and sharded clones of it in randomized
/// lockstep at an arbitrary geometry: identical traffic into each,
/// deliveries compared node by node every cycle, every lane of every
/// router compared periodically, and aggregate statistics compared at
/// the end.
fn lockstep_sharded(
    width: u8,
    height: u8,
    regions: usize,
    shard_counts: &[usize],
    horizon: u64,
    drain: u64,
    min_offered: usize,
) {
    let mk = |shards: usize| {
        Network::new(NetworkParams {
            noc: NocConfig {
                width,
                height,
                shards,
                ..NocConfig::default()
            },
            path_mode: RequestPathMode::RegionTsbs,
            regions,
            placement: TsbPlacement::Corner,
            parent_hops: 2,
            arbitration: ArbitrationPolicy::BankAware {
                estimator: Estimator::WindowBased,
            },
            wb_window: 4,
            bank_read_latency: 3,
            bank_write_latency: 33,
            cache_outbox_cap: 4,
            core_outbox_cap: 64,
            max_hold: 99,
            hold_slack: 0,
            audit: None,
            telemetry: None,
            faults: None,
        })
    };
    let mut nets: Vec<Network> = shard_counts.iter().map(|&s| mk(s)).collect();
    let npl = nets[0].mesh().nodes_per_layer();
    let mut rng = SimRng::for_stream(0x5AAD, ((width as u64) << 8) | height as u64);
    let mut delivered = 0usize;
    let mut offered = 0usize;

    for cycle in 0..horizon + drain {
        if cycle < horizon && rng.chance(0.5) {
            // One identical randomized packet into every network.
            let token = offered as u64;
            let s = rng.below(npl) as u16;
            let d = rng.below(npl) as u16;
            let (kind, up) = match rng.below(5) {
                0 => (PacketKind::BankRead, true),
                1 => (PacketKind::BankWrite, true),
                2 => (PacketKind::Writeback, true),
                3 => (PacketKind::DataReply, false),
                _ => (PacketKind::Inv, false),
            };
            for net in &mut nets {
                let mesh = net.mesh();
                let (src, dst) = if up {
                    (
                        mesh.coord(NodeId::new(s), Layer::Core),
                        mesh.coord(NodeId::new(d), Layer::Cache),
                    )
                } else {
                    (
                        mesh.coord(NodeId::new(s), Layer::Cache),
                        mesh.coord(NodeId::new(d), Layer::Core),
                    )
                };
                net.inject(Packet::new(kind, src, dst, token, token));
            }
            offered += 1;
        }
        for net in &mut nets {
            net.step();
        }
        // Deliveries must agree node by node, cycle by cycle.
        for node in 0..2 * npl {
            let mesh = nets[0].mesh();
            let at = if node < npl {
                mesh.coord(NodeId::new(node as u16), Layer::Core)
            } else {
                mesh.coord(NodeId::new((node - npl) as u16), Layer::Cache)
            };
            let tokens = |net: &mut Network| -> Vec<u64> {
                net.drain_delivered(at).iter().map(|p| p.token).collect()
            };
            let (serial, sharded) = nets.split_first_mut().expect("at least one network");
            let ta = tokens(serial);
            for (i, net) in sharded.iter_mut().enumerate() {
                assert_eq!(
                    ta,
                    tokens(net),
                    "cycle {cycle}: deliveries at {at} ({} shards)",
                    shard_counts[i + 1]
                );
            }
            delivered += ta.len();
        }
        if cycle % 64 == 0 || cycle >= horizon + drain - 100 {
            for i in 1..nets.len() {
                assert_networks_match(&nets[0], &nets[i], cycle);
            }
        }
    }

    assert!(offered > min_offered, "traffic too thin: {offered} offered");
    assert_eq!(delivered, offered, "every packet arrives everywhere");
    for net in &nets {
        assert_eq!(net.in_flight(), 0, "runs must drain");
        assert_eq!(net.stats().delivered, offered as u64);
    }
    let s0 = nets[0].stats();
    for net in &nets[1..] {
        let s = net.stats();
        assert_eq!(
            (s.latency.mean(), s.vertical_flits, s.tag_acks),
            (s0.latency.mean(), s0.vertical_flits, s0.tag_acks),
            "aggregate statistics must be byte-identical"
        );
    }
}

/// The randomized lockstep of the whole network under the partitioned
/// stepper at the paper's 8x8 point: identical traffic drives a serial
/// network and sharded ones (2 and 4 partitions).
#[test]
fn partitioned_stepper_stays_in_lockstep_with_the_serial_network() {
    lockstep_sharded(8, 8, 4, &[1, 2, 4], 1_500, 1_000, 500);
}

/// The same lockstep at a non-square mesh: 4x8, 4 regions (2x2 tiles
/// of 2x4 nodes), pinning `PartitionMap` band alignment when the band
/// size (2 * width routers) differs between the mesh axes.
#[test]
fn partitioned_stepper_lockstep_holds_at_4x8() {
    lockstep_sharded(4, 8, 4, &[1, 2, 4], 1_200, 900, 300);
}

/// The same lockstep at 16x16 with 16 regions: 512 routers, 21504
/// VC lanes — `VcKey` packing and shard partitioning well beyond the
/// 8x8 point (shorter horizon; each cycle steps 4x the routers).
#[test]
fn partitioned_stepper_lockstep_holds_at_16x16() {
    lockstep_sharded(16, 16, 16, &[1, 2, 4], 400, 900, 100);
}

/// Warm-state reuse's contract: `Network::reset` must hand back a
/// network that is move-for-move identical to a freshly constructed
/// one. A network is dirtied with randomized traffic (reset while
/// packets are still in flight, so buffers, arenas, holds and RNG-fed
/// arbiter state are all non-trivial), reset with the same parameters,
/// then driven in lockstep against a brand-new network — at 1 shard
/// and at 4.
#[test]
fn reset_network_stays_in_lockstep_with_a_fresh_one() {
    for shards in [1usize, 4] {
        let params = NetworkParams {
            noc: NocConfig {
                shards,
                ..NocConfig::default()
            },
            path_mode: RequestPathMode::RegionTsbs,
            regions: 4,
            placement: TsbPlacement::Corner,
            parent_hops: 2,
            arbitration: ArbitrationPolicy::BankAware {
                estimator: Estimator::WindowBased,
            },
            wb_window: 4,
            bank_read_latency: 3,
            bank_write_latency: 33,
            cache_outbox_cap: 4,
            core_outbox_cap: 64,
            max_hold: 99,
            hold_slack: 0,
            audit: None,
            telemetry: None,
            faults: None,
        };

        // Dirty a network: sustained traffic, stopped mid-flight.
        let mut reused = Network::new(params);
        let mut dirt = SimRng::for_stream(0xD1E7, shards as u64);
        for _ in 0..300 {
            if dirt.chance(0.7) {
                let s = dirt.below(64) as u16;
                let d = dirt.below(64) as u16;
                let mesh = reused.mesh();
                let src = mesh.coord(NodeId::new(s), Layer::Core);
                let dst = mesh.coord(NodeId::new(d), Layer::Cache);
                reused.inject(Packet::new(PacketKind::BankWrite, src, dst, s as u64, 0));
            }
            reused.step();
        }
        assert!(reused.in_flight() > 0, "dirtying left nothing in flight");
        reused.reset(params);

        let mut nets = [reused, Network::new(params)];
        let mut rng = SimRng::for_stream(0x5AAD, 1);
        let mut delivered = 0usize;
        let mut offered = 0usize;
        let horizon = 800u64;
        for cycle in 0..horizon + 700 {
            if cycle < horizon && rng.chance(0.5) {
                let token = offered as u64;
                let s = rng.below(64) as u16;
                let d = rng.below(64) as u16;
                let (kind, up) = match rng.below(5) {
                    0 => (PacketKind::BankRead, true),
                    1 => (PacketKind::BankWrite, true),
                    2 => (PacketKind::Writeback, true),
                    3 => (PacketKind::DataReply, false),
                    _ => (PacketKind::Inv, false),
                };
                for net in &mut nets {
                    let mesh = net.mesh();
                    let (src, dst) = if up {
                        (
                            mesh.coord(NodeId::new(s), Layer::Core),
                            mesh.coord(NodeId::new(d), Layer::Cache),
                        )
                    } else {
                        (
                            mesh.coord(NodeId::new(s), Layer::Cache),
                            mesh.coord(NodeId::new(d), Layer::Core),
                        )
                    };
                    net.inject(Packet::new(kind, src, dst, token, token));
                }
                offered += 1;
            }
            for net in &mut nets {
                net.step();
            }
            for node in 0..128u16 {
                let mesh = nets[0].mesh();
                let at = if node < 64 {
                    mesh.coord(NodeId::new(node), Layer::Core)
                } else {
                    mesh.coord(NodeId::new(node - 64), Layer::Cache)
                };
                let [a, b] = &mut nets;
                let ta: Vec<u64> = a.drain_delivered(at).iter().map(|p| p.token).collect();
                let tb: Vec<u64> = b.drain_delivered(at).iter().map(|p| p.token).collect();
                assert_eq!(
                    ta, tb,
                    "cycle {cycle}: deliveries at {at} (reset vs fresh, {shards} shard(s))"
                );
                delivered += ta.len();
            }
            if cycle % 64 == 0 || cycle >= horizon + 600 {
                assert_networks_match(&nets[0], &nets[1], cycle);
            }
        }

        assert!(offered > 250, "traffic too thin: {offered} offered");
        assert_eq!(delivered, offered, "every packet arrives in both");
        let (sa, sb) = (nets[0].stats(), nets[1].stats());
        assert_eq!(
            (
                sa.delivered,
                sa.latency.mean(),
                sa.vertical_flits,
                sa.tag_acks
            ),
            (
                sb.delivered,
                sb.latency.mean(),
                sb.vertical_flits,
                sb.tag_acks
            ),
            "reset network's statistics must match a fresh one's ({shards} shard(s))"
        );
    }
}
