//! Differential determinism on the optimized hot path: the
//! activity-driven, allocation-free cycle loop must produce the exact
//! same `RunMetrics` run-to-run — with and without the invariant
//! auditor riding along, and at any intra-run mesh shard count — for
//! both a plain SRAM baseline and the paper's full STT-RAM +
//! bank-aware-arbitration configuration.
//!
//! One `#[test]` on purpose: it toggles the process-wide `SNOC_AUDIT`,
//! `SNOC_TELEMETRY` and `SNOC_SHARDS` environment variables, which
//! must not race a parallel test.

use snoc_core::experiments::Scale;
use snoc_core::metrics::RunMetrics;
use snoc_core::scenario::Scenario;
use snoc_core::system::System;
use snoc_noc::FaultPlan;
use snoc_workload::table3 as t3;

fn run_cell(scenario: Scenario) -> RunMetrics {
    run_sharded(scenario, 0, false)
}

/// A quick cell at an explicit shard count (0 = leave the config
/// unset, deferring to `SNOC_SHARDS`), optionally under a
/// deterministic fault campaign.
fn run_sharded(scenario: Scenario, shards: usize, faulted: bool) -> RunMetrics {
    let app = t3::by_name("sap").unwrap();
    let mut cfg = Scale::Quick.apply(scenario.config());
    cfg.noc.shards = shards;
    let mut sys = System::homogeneous(cfg, app);
    if faulted {
        sys.enable_faults(FaultPlan {
            seed: 7,
            tsb_rate: 2e-3,
            link_rate: 4e-3,
            port_rate: 4e-3,
            bank_rate: 8e-3,
            kill_tsb_at: Some(400),
            ..FaultPlan::default()
        });
    }
    sys.run()
}

/// The full metrics record as a comparable string, minus the audit and
/// telemetry attachments (present only on instrumented runs; everything
/// the simulation computed must match bit-for-bit).
fn fingerprint(m: &RunMetrics) -> String {
    let mut m = m.clone();
    m.audit = None;
    m.telemetry = None;
    format!("{m:?}")
}

#[test]
fn quick_cells_are_deterministic_and_audit_clean() {
    for scenario in [Scenario::Sram64Tsb, Scenario::SttRam4TsbWb] {
        let first = run_cell(scenario);
        let second = run_cell(scenario);
        assert_eq!(
            fingerprint(&first),
            fingerprint(&second),
            "{scenario:?}: repeated runs diverged"
        );

        std::env::set_var("SNOC_AUDIT", "1");
        let audited = run_cell(scenario);
        std::env::remove_var("SNOC_AUDIT");

        let report = audited
            .audit
            .clone()
            .expect("SNOC_AUDIT enables the auditor");
        assert!(
            report.clean(),
            "{scenario:?}: audit violations: {:?}",
            report.samples
        );
        assert!(report.checked_cycles > 0, "auditor must have run");
        assert_eq!(
            fingerprint(&first),
            fingerprint(&audited),
            "{scenario:?}: auditing changed simulated behaviour"
        );

        std::env::set_var("SNOC_TELEMETRY", "1");
        let instrumented = run_cell(scenario);
        std::env::remove_var("SNOC_TELEMETRY");

        let summary = instrumented
            .telemetry
            .clone()
            .expect("SNOC_TELEMETRY enables the collector");
        assert!(summary.epochs_sampled > 0, "collector must have sampled");
        assert!(
            summary.class_latency.iter().any(|h| h.total() > 0),
            "{scenario:?}: no latencies recorded"
        );
        assert_eq!(
            fingerprint(&first),
            fingerprint(&instrumented),
            "{scenario:?}: telemetry changed simulated behaviour"
        );

        // The partitioned stepper: fingerprints must be byte-identical
        // at any shard count — plain, audited and faulted.
        for shards in [2, 4] {
            let sharded = run_sharded(scenario, shards, false);
            assert_eq!(
                fingerprint(&first),
                fingerprint(&sharded),
                "{scenario:?}: {shards} shards diverged from serial"
            );

            std::env::set_var("SNOC_AUDIT", "1");
            let audited = run_sharded(scenario, shards, false);
            std::env::remove_var("SNOC_AUDIT");
            let report = audited.audit.clone().expect("auditor is on");
            assert!(
                report.clean(),
                "{scenario:?}: {shards}-shard audit violations: {:?}",
                report.samples
            );
            assert_eq!(
                fingerprint(&first),
                fingerprint(&audited),
                "{scenario:?}: audited {shards}-shard run diverged"
            );
        }
        let faulted_serial = run_sharded(scenario, 1, true);
        for shards in [2, 4] {
            let faulted = run_sharded(scenario, shards, true);
            assert_eq!(
                fingerprint(&faulted_serial),
                fingerprint(&faulted),
                "{scenario:?}: faulted {shards}-shard run diverged"
            );
        }

        // The `SNOC_SHARDS` environment knob resolves into the same
        // partitioned stepper (config left unset).
        std::env::set_var("SNOC_SHARDS", "4");
        let via_env = run_sharded(scenario, 0, false);
        std::env::remove_var("SNOC_SHARDS");
        assert_eq!(
            fingerprint(&first),
            fingerprint(&via_env),
            "{scenario:?}: SNOC_SHARDS=4 diverged from serial"
        );
    }
}

/// Shard invariance beyond the 8x8 point: one 16x16 / 16-region /
/// 2-layer cell, serial vs 4 shards, byte-identical metrics. Uses the
/// race-free `noc.shards` config field only (no env toggles), so this
/// can be its own `#[test]`.
#[test]
fn sixteen_by_sixteen_cell_is_shard_invariant() {
    let app = t3::by_name("sap").unwrap();
    let run = |shards: usize| {
        let mut cfg = Scenario::SttRam4TsbWb
            .config_at(16, 16, 16, 2)
            .rebuild()
            .cycles(200, 1_200)
            .build();
        cfg.noc.shards = shards;
        System::homogeneous(cfg, app).run()
    };
    let serial = run(1);
    let sharded = run(4);
    assert!(
        serial.instruction_throughput() > 0.0,
        "16x16 cell made no progress"
    );
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&sharded),
        "16x16/K16/L2: 4 shards diverged from serial"
    );
}
