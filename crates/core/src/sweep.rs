//! The sweep engine: declarative simulation grids executed on a
//! worker pool.
//!
//! Every figure and table of the evaluation reduces to the same shape
//! of work — *run a grid of independent simulations, then fold the
//! per-cell metrics into the figure's rows*. This module factors that
//! shape out:
//!
//! * [`RunSpec`] — one cell: a labelled `(workload, drive mode,
//!   configuration)` triple.
//! * [`Experiment`] — a figure/table: `grid(scale)` enumerates its
//!   cells deterministically and `assemble(scale, cells)` folds the
//!   results (delivered back **in grid order**) into the figure's
//!   output type.
//! * [`SweepRunner`] — executes a grid on `1..=N` `std::thread`
//!   workers. Each worker owns a deque seeded with a contiguous block
//!   of the grid and *steals* from the tail of a neighbour's deque
//!   when its own runs dry, so the schedule is dynamic, but results
//!   land in indexed slots: the output order — and, because every
//!   simulation is a deterministic function of its spec, the output
//!   *values* — are identical for any thread count.
//!
//! A cell that panics (a config assertion, an internal invariant) is
//! caught on its worker and reported as [`CellError`] in that cell's
//! slot; the rest of the grid still runs.
//!
//! # Incremental sweeps
//!
//! Two optimizations (both on by default) make re-running a sweep much
//! cheaper than its first run without changing a single output byte:
//!
//! * **Result caching** — plain cells (no fault/audit/telemetry
//!   instrumentation) are memoized under their content key
//!   ([`cellcache::cell_key`]) in an in-process map that lives as long
//!   as the runner (so repeated `run_grid` calls on one runner are
//!   warm), and additionally
//!   in an on-disk store when `SNOC_CACHE_DIR` (or
//!   [`SweepRunner::cache_dir`]) points somewhere. `SNOC_SWEEP_CACHE=0`
//!   or [`SweepRunner::cache`]`(false)` disables it.
//! * **Warm-state reuse** — after a cell finishes, its worker keeps the
//!   fully-allocated [`System`] and rebuilds the next cell *in place*
//!   ([`System::reset_for_cell`]), reusing the NoC workspace, packet
//!   arena, routing tables and scratch instead of reallocating them.
//!   `SNOC_SWEEP_WARM=0` or [`SweepRunner::warm_reuse`]`(false)` falls
//!   back to a fresh `System` per cell.
//!
//! # Example
//!
//! ```
//! use snoc_core::experiments::{fig7, Scale};
//! use snoc_core::sweep::SweepRunner;
//!
//! let result = SweepRunner::new().threads(2).run(&fig7::Fig7, Scale::Quick);
//! assert!(!result.rows.is_empty());
//! ```

use crate::cellcache::{self, CellCache};
use crate::experiments::Scale;
use crate::metrics::RunMetrics;
use crate::observer::{NullObserver, RunObserver, SweepSummary};
use crate::system::{DriveMode, System};
use snoc_common::config::SystemConfig;
use snoc_noc::{AuditConfig, FaultPlan, NocEnv, TelemetryConfig};
use snoc_workload::mixes::Workload;
use snoc_workload::BenchmarkProfile;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One grid cell: everything needed to build and run a [`System`].
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Cell label shown by observers (e.g. `"MRAM-4TSB-WB/lbm"`).
    pub label: String,
    /// The per-core application assignment.
    pub workload: Workload,
    /// Profile-driven or full-stack simulation.
    pub mode: DriveMode,
    /// The system configuration (scale already applied).
    pub cfg: SystemConfig,
    /// Optional NoC fault-injection campaign for this cell (applied
    /// programmatically — workers never mutate the environment).
    pub faults: Option<FaultPlan>,
    /// Optional NoC invariant auditing for this cell (programmatic
    /// counterpart of `SNOC_AUDIT`, same env-race-free contract as
    /// `faults`).
    pub audit: Option<AuditConfig>,
    /// Optional NoC telemetry collection for this cell (programmatic
    /// counterpart of `SNOC_TELEMETRY`).
    pub telemetry: Option<TelemetryConfig>,
}

impl RunSpec {
    /// A profile-driven cell running `profile` on all cores — the
    /// shape used by almost every figure.
    pub fn homogeneous(
        label: impl Into<String>,
        cfg: SystemConfig,
        profile: &'static BenchmarkProfile,
    ) -> Self {
        let cores = cfg.cores();
        Self {
            label: label.into(),
            workload: Workload {
                name: profile.name.to_string(),
                apps: vec![profile; cores],
            },
            mode: DriveMode::Profile,
            cfg,
            faults: None,
            audit: None,
            telemetry: None,
        }
    }

    /// A cell with an explicit workload and drive mode (mixes, full
    /// stack).
    pub fn mixed(
        label: impl Into<String>,
        cfg: SystemConfig,
        workload: Workload,
        mode: DriveMode,
    ) -> Self {
        Self {
            label: label.into(),
            workload,
            mode,
            cfg,
            faults: None,
            audit: None,
            telemetry: None,
        }
    }

    /// Attaches a fault-injection campaign to this cell.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Switches on NoC invariant auditing for this cell.
    pub fn with_audit(mut self, cfg: AuditConfig) -> Self {
        self.audit = Some(cfg);
        self
    }

    /// Switches on NoC telemetry collection for this cell.
    pub fn with_telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.telemetry = Some(cfg);
        self
    }

    /// Pins the intra-run mesh partition count for this cell
    /// (programmatic alternative to `SNOC_SHARDS`, race-free under
    /// parallel sweeps). Run fingerprints are byte-identical at any
    /// value; this is purely a host-parallelism knob.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.cfg.noc.shards = shards.max(1);
        self
    }

    /// Folds a captured environment snapshot into this spec's explicit
    /// fields: programmatic settings win, the snapshot fills whatever
    /// was left unset. After this, running the spec touches no
    /// environment variable at all — the runner builds its [`System`]s
    /// against the hermetic [`NocEnv::default`].
    pub fn resolve_env(mut self, env: &NocEnv) -> Self {
        if self.audit.is_none() {
            self.audit = env.audit;
        }
        if self.telemetry.is_none() {
            self.telemetry = env.telemetry;
        }
        if self.faults.is_none() {
            self.faults = env.faults;
        }
        if self.cfg.noc.shards == 0 {
            self.cfg.noc.shards = env.shards.unwrap_or(1);
        }
        self
    }
}

/// Why a cell produced no metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellError {
    /// The simulation (or its construction) panicked on the worker.
    Panicked(String),
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellError::Panicked(msg) => write!(f, "cell panicked: {msg}"),
        }
    }
}

impl std::error::Error for CellError {}

/// The outcome of one grid cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Position in the grid (results are returned sorted by this).
    pub index: usize,
    /// The spec's label.
    pub label: String,
    /// Wall-clock spent simulating this cell.
    pub wall: Duration,
    /// Simulated cycles (warm-up + measurement; 0 on failure).
    pub sim_cycles: u64,
    /// Whether the result was served from the cell cache instead of
    /// simulated.
    pub cached: bool,
    /// The metrics, or the reason there are none.
    pub outcome: Result<RunMetrics, CellError>,
}

impl CellResult {
    /// The cell's metrics.
    ///
    /// # Panics
    ///
    /// Re-raises a failed cell's error, labelled. Experiments that can
    /// degrade gracefully should match on [`CellResult::outcome`]
    /// instead.
    pub fn metrics(&self) -> &RunMetrics {
        match &self.outcome {
            Ok(m) => m,
            Err(e) => panic!("cell '{}': {e}", self.label),
        }
    }
}

/// A figure or table expressed as a declarative sweep.
///
/// `grid(scale)` must be deterministic: [`SweepRunner`] guarantees the
/// `Vec<CellResult>` handed to `assemble` is in grid order, so an
/// implementation may re-enumerate the same structure there and zip.
pub trait Experiment {
    /// What `assemble` produces (the figure's result type).
    type Output;

    /// Short name for observers and reports (e.g. `"fig7"`).
    fn name(&self) -> &str;

    /// The cells to simulate, in presentation order.
    fn grid(&self, scale: Scale) -> Vec<RunSpec>;

    /// Folds the per-cell results (grid order) into the output.
    fn assemble(&self, scale: Scale, cells: Vec<CellResult>) -> Self::Output;
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Executes experiment grids on a `std::thread` worker pool.
///
/// ```
/// use snoc_core::experiments::{table3, Scale};
/// use snoc_core::observer::NullObserver;
/// use snoc_core::sweep::SweepRunner;
///
/// let out = SweepRunner::new()
///     .threads(2)
///     .observer(NullObserver)
///     .run(&table3::Table3, Scale::Quick);
/// assert!(!out.rows.is_empty());
/// ```
pub struct SweepRunner {
    threads: usize,
    observer: Box<dyn RunObserver>,
    cache: bool,
    warm: bool,
    cache_dir: Option<PathBuf>,
    // Environment fallbacks, captured once at construction. Workers
    // never read the environment: a mid-flight mutation cannot alter a
    // grid this runner was already handed.
    env: NocEnv,
    // Lives as long as the runner, so repeated `run_grid` calls on one
    // runner serve repeated cells from memory even without a disk
    // store. `Arc` so several runners (the sweep server builds one per
    // job) can share one cache.
    cell_cache: OnceLock<Arc<CellCache>>,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepRunner {
    /// A silent single-threaded runner (the deterministic baseline).
    /// Result caching and warm-state reuse are on; the on-disk store
    /// is off until [`SweepRunner::cache_dir`] points somewhere. The
    /// NoC environment fallbacks (`SNOC_AUDIT`/`SNOC_TELEMETRY`/
    /// `SNOC_FAULTS`/`SNOC_SHARDS`) are snapshotted *now*: grids run
    /// later see this moment's environment, never a mid-flight
    /// mutation ([`SweepRunner::noc_env`] overrides the snapshot).
    pub fn new() -> Self {
        Self {
            threads: 1,
            observer: Box::new(NullObserver),
            cache: true,
            warm: true,
            cache_dir: None,
            env: NocEnv::capture(),
            cell_cache: OnceLock::new(),
        }
    }

    /// A runner configured from the environment, as the `repro-*`
    /// binaries do: `SNOC_THREADS` sets the worker count (default: the
    /// machine's available parallelism), `SNOC_PROGRESS=0` silences
    /// the per-cell progress lines, `SNOC_CACHE_DIR` roots the on-disk
    /// result store, and `SNOC_SWEEP_CACHE=0` / `SNOC_SWEEP_WARM=0`
    /// switch off result caching / warm-state reuse.
    pub fn from_env() -> Self {
        let threads = std::env::var("SNOC_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        let off = |var: &str| std::env::var(var).is_ok_and(|v| v == "0");
        let mut runner = Self::new()
            .threads(threads)
            .cache(!off("SNOC_SWEEP_CACHE"))
            .warm_reuse(!off("SNOC_SWEEP_WARM"));
        runner.cache_dir = cellcache::dir_from_env();
        if off("SNOC_PROGRESS") {
            runner
        } else {
            runner.observer(crate::observer::ProgressObserver::new())
        }
    }

    /// Sets the worker count (clamped to ≥ 1; also clamped to the grid
    /// size at run time).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Replaces the observer.
    pub fn observer(mut self, o: impl RunObserver + 'static) -> Self {
        self.observer = Box::new(o);
        self
    }

    /// Switches result caching on or off (programmatic counterpart of
    /// `SNOC_SWEEP_CACHE`, race-free for tests and benches).
    pub fn cache(mut self, on: bool) -> Self {
        self.cache = on;
        self
    }

    /// Switches warm-state reuse on or off (programmatic counterpart
    /// of `SNOC_SWEEP_WARM`).
    pub fn warm_reuse(mut self, on: bool) -> Self {
        self.warm = on;
        self
    }

    /// Roots the on-disk result store at `dir` (programmatic
    /// counterpart of `SNOC_CACHE_DIR`; implies nothing unless result
    /// caching is on).
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        // A cache that was already materialized is rooted at the old
        // directory; drop it rather than serve from the wrong store.
        self.cell_cache = OnceLock::new();
        self
    }

    /// Replaces the environment snapshot taken at construction.
    /// `NocEnv::default()` makes the runner fully hermetic (no audit/
    /// telemetry/fault fallbacks, serial stepping unless a spec pins
    /// `noc.shards`); a snapshot captured at server startup pins every
    /// job of a long-running process to that one resolution.
    pub fn noc_env(mut self, env: NocEnv) -> Self {
        self.env = env;
        self
    }

    /// Shares a pre-built cell cache with this runner instead of
    /// letting it materialize its own. This is how the sweep server
    /// serves repeat cells across jobs and clients: every per-job
    /// runner is handed the same `Arc`. Overrides any
    /// [`SweepRunner::cache_dir`] already applied (the shared cache
    /// carries its own disk root).
    pub fn shared_cache(mut self, cache: Arc<CellCache>) -> Self {
        self.cell_cache = OnceLock::new();
        let _ = self.cell_cache.set(cache);
        self
    }

    /// Runs the experiment end to end: grid → sweep → assemble.
    pub fn run<E: Experiment>(&self, exp: &E, scale: Scale) -> E::Output {
        let cells = self.run_grid(exp.name(), exp.grid(scale));
        exp.assemble(scale, cells)
    }

    /// Executes a raw grid and returns the results **in grid order**,
    /// one [`CellResult`] per spec, regardless of which worker
    /// finished which cell when.
    pub fn run_grid(&self, name: &str, grid: Vec<RunSpec>) -> Vec<CellResult> {
        let n = grid.len();
        let threads = self.threads.min(n.max(1));
        let observer: &dyn RunObserver = &*self.observer;
        observer.sweep_started(name, n, threads);
        let t0 = Instant::now();

        // Resolve the environment snapshot into every spec's explicit
        // fields up front: from here on, running the grid touches no
        // environment variable (workers build their `System`s against
        // the hermetic `NocEnv::default`), so mutating the process
        // environment mid-flight cannot alter a grid already accepted.
        let env = self.env;
        let pinned = NocEnv::default();

        // Workers claim cells from per-worker stealing deques and
        // deposit results in indexed slots — completion order never
        // leaks into the output.
        let specs: Vec<Mutex<Option<RunSpec>>> = grid
            .into_iter()
            .map(|s| Mutex::new(Some(s.resolve_env(&env))))
            .collect();
        let slots: Vec<Mutex<Option<CellResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let hits = AtomicUsize::new(0);
        let cache: Option<&CellCache> = self.cache.then(|| {
            &**self
                .cell_cache
                .get_or_init(|| Arc::new(CellCache::new(self.cache_dir.clone())))
        });
        let warm_on = self.warm;

        // Each worker is seeded a contiguous block of the grid (good
        // locality for warm reuse: neighbouring cells usually share a
        // topology). A worker pops its own deque from the front; when
        // that runs dry it scans the other deques in ring order and
        // steals from the *back*, taking the work its victim would
        // have reached last.
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
            .map(|w| Mutex::new((w * n / threads..(w + 1) * n / threads).collect()))
            .collect();
        let claim = |wid: usize| -> Option<usize> {
            if let Some(i) = queues[wid].lock().unwrap().pop_front() {
                return Some(i);
            }
            (1..threads).find_map(|off| queues[(wid + off) % threads].lock().unwrap().pop_back())
        };

        let work = |wid: usize| {
            // The worker's warm System, carried between its cells.
            let mut warm: Option<System> = None;
            while let Some(i) = claim(wid) {
                let spec = specs[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("each cell claimed once");
                observer.cell_started(i, &spec.label);
                let label = spec.label.clone();
                let sim_cycles = spec.cfg.warmup_cycles + spec.cfg.measure_cycles;
                let start = Instant::now();

                // Cache probe. Instrumented cells key to None and are
                // always simulated.
                let key = cache.and_then(|_| cellcache::cell_key(&spec));
                if let (Some(cache), Some(key)) = (cache, key) {
                    let probe = cache.lookup(key);
                    if let Some(note) = &probe.note {
                        observer.cache_note(&label, note);
                    }
                    if let Some(metrics) = probe.metrics {
                        hits.fetch_add(1, Ordering::Relaxed);
                        let result = CellResult {
                            index: i,
                            label,
                            wall: start.elapsed(),
                            sim_cycles,
                            cached: true,
                            outcome: Ok(metrics),
                        };
                        observer.cell_finished(&result);
                        *slots[i].lock().unwrap() = Some(result);
                        continue;
                    }
                }

                let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                    // Reuse the worker's previous System in place when
                    // allowed; a panic anywhere in here drops the
                    // (possibly half-reset) System with the unwind, so
                    // a poisoned instance is never carried forward.
                    let mut system = match warm.take() {
                        Some(mut s) if warm_on => {
                            s.reset_for_cell_env(spec.cfg, &spec.workload, spec.mode, &pinned);
                            s
                        }
                        _ => System::with_env(spec.cfg, &spec.workload, spec.mode, &pinned),
                    };
                    if let Some(plan) = spec.faults {
                        system.enable_faults(plan);
                    }
                    if let Some(cfg) = spec.audit {
                        system.enable_audit(cfg);
                    }
                    if let Some(cfg) = spec.telemetry {
                        system.enable_telemetry(cfg);
                    }
                    let metrics = system.run();
                    (metrics, system)
                }))
                .map(|(metrics, system)| {
                    warm = Some(system);
                    metrics
                })
                .map_err(|p| CellError::Panicked(panic_message(p)));
                if let Ok(metrics) = &outcome {
                    if let Some(audit) = &metrics.audit {
                        for sample in &audit.samples {
                            observer.audit_violation(&label, sample);
                        }
                    }
                    if let Some(t) = &metrics.telemetry {
                        observer.telemetry_note(&label, &t.digest());
                    }
                    if let (Some(cache), Some(key)) = (cache, key) {
                        if let Err(note) = cache.store(key, metrics) {
                            observer.cache_note(&label, &note);
                        }
                    }
                }
                let result = CellResult {
                    index: i,
                    label,
                    wall: start.elapsed(),
                    sim_cycles: if outcome.is_ok() { sim_cycles } else { 0 },
                    cached: false,
                    outcome,
                };
                observer.cell_finished(&result);
                *slots[i].lock().unwrap() = Some(result);
            }
        };

        if threads <= 1 {
            work(0);
        } else {
            std::thread::scope(|s| {
                for wid in 0..threads {
                    s.spawn(move || work(wid));
                }
            });
        }

        let results: Vec<CellResult> = slots
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("every cell ran"))
            .collect();
        let summary = SweepSummary {
            name: name.to_string(),
            cells: n,
            failed: results.iter().filter(|r| r.outcome.is_err()).count(),
            threads,
            wall: t0.elapsed(),
            cell_wall: results.iter().map(|r| r.wall).sum(),
            sim_cycles: results.iter().map(|r| r.sim_cycles).sum(),
            cache_hits: hits.load(Ordering::Relaxed),
        };
        observer.sweep_finished(&summary);
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use snoc_workload::table3;

    fn tiny(label: &str, app: &str) -> RunSpec {
        let cfg = Scenario::Sram64Tsb
            .config()
            .rebuild()
            .cycles(100, 400)
            .build();
        RunSpec::homogeneous(label, cfg, table3::by_name(app).unwrap())
    }

    #[test]
    fn grid_order_is_preserved() {
        let grid = vec![tiny("a", "tpcc"), tiny("b", "sap"), tiny("c", "lbm")];
        let results = SweepRunner::new().threads(3).run_grid("t", grid);
        let labels: Vec<_> = results.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["a", "b", "c"]);
        assert_eq!(
            results.iter().map(|r| r.index).collect::<Vec<_>>(),
            [0, 1, 2]
        );
    }

    #[test]
    fn empty_grid_is_fine() {
        let results = SweepRunner::new().run_grid("empty", Vec::new());
        assert!(results.is_empty());
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let grid = || vec![tiny("a", "tpcc"), tiny("b", "sap"), tiny("c", "lbm")];
        let serial = SweepRunner::new().threads(1).run_grid("t", grid());
        let parallel = SweepRunner::new().threads(4).run_grid("t", grid());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(
                format!("{:?}", s.outcome),
                format!("{:?}", p.outcome),
                "cell {} must not depend on the schedule",
                s.label
            );
        }
    }

    #[test]
    fn warm_reuse_matches_fresh_systems() {
        // One worker drives the whole grid through a single reused
        // System, crossing scenario boundaries (different path modes,
        // arbitration policies, write-buffer setups); the metrics must
        // be bit-identical to building a fresh System per cell.
        let grid = || {
            let mut g = vec![tiny("a", "tpcc"), tiny("b", "sap")];
            for sc in [Scenario::SttRam4TsbWb, Scenario::SttRam64Tsb] {
                let cfg = sc.config().rebuild().cycles(100, 400).build();
                g.push(RunSpec::homogeneous(
                    sc.name(),
                    cfg,
                    table3::by_name("lbm").unwrap(),
                ));
            }
            g
        };
        let fresh = SweepRunner::new()
            .cache(false)
            .warm_reuse(false)
            .run_grid("t", grid());
        let warm = SweepRunner::new()
            .cache(false)
            .warm_reuse(true)
            .run_grid("t", grid());
        for (f, w) in fresh.iter().zip(&warm) {
            assert_eq!(
                format!("{:?}", f.outcome),
                format!("{:?}", w.outcome),
                "cell {} must not see the previous cell's state",
                f.label
            );
        }
    }

    #[test]
    fn the_memo_map_outlives_a_single_run_grid_call() {
        // Rerunning a grid on the *same* runner must be served entirely
        // from the in-process map — no disk store involved. (A bench
        // once measured "warm" reruns at cold speed because the map was
        // rebuilt per call.)
        struct Spy(std::sync::Arc<AtomicUsize>);
        impl RunObserver for Spy {
            fn sweep_finished(&self, s: &SweepSummary) {
                self.0.store(s.cache_hits, Ordering::Relaxed);
            }
        }
        let hits = std::sync::Arc::new(AtomicUsize::new(0));
        let runner = SweepRunner::new().observer(Spy(std::sync::Arc::clone(&hits)));
        let grid = || vec![tiny("a", "tpcc"), tiny("b", "sap")];
        let first = runner.run_grid("t", grid());
        assert_eq!(hits.load(Ordering::Relaxed), 0);
        let second = runner.run_grid("t", grid());
        assert_eq!(
            hits.load(Ordering::Relaxed),
            second.len(),
            "a rerun on the same runner must hit the in-process map"
        );
        for (f, s) in first.iter().zip(&second) {
            assert_eq!(format!("{:?}", f.outcome), format!("{:?}", s.outcome));
        }
    }

    #[test]
    fn warm_reuse_recovers_after_a_panicked_cell() {
        // A panic mid-cell drops the (possibly half-reset) System; the
        // worker must fall back to a fresh build for the next cell and
        // still produce the schedule-independent result.
        let mut bad = tiny("bad", "sap");
        bad.cfg.regions = 5; // fails validation -> panic
        let grid = vec![tiny("a", "tpcc"), bad, tiny("c", "lbm")];
        let results = SweepRunner::new()
            .cache(false)
            .warm_reuse(true)
            .run_grid("t", grid);
        assert!(results[0].outcome.is_ok());
        assert!(matches!(results[1].outcome, Err(CellError::Panicked(_))));
        let fresh = SweepRunner::new()
            .cache(false)
            .warm_reuse(false)
            .run_grid("t", vec![tiny("c", "lbm")]);
        assert_eq!(
            format!("{:?}", results[2].outcome),
            format!("{:?}", fresh[0].outcome),
        );
    }

    #[test]
    fn programmatic_audit_and_telemetry_reach_the_metrics() {
        // The env-race-free opt-ins must produce the same artefacts the
        // `SNOC_AUDIT` / `SNOC_TELEMETRY` variables would, per cell.
        let grid = vec![
            tiny("plain", "tpcc"),
            tiny("instrumented", "tpcc")
                .with_audit(AuditConfig::default())
                .with_telemetry(TelemetryConfig::default()),
        ];
        let results = SweepRunner::new().threads(2).run_grid("t", grid);
        let plain = results[0].metrics();
        assert!(plain.audit.is_none() && plain.telemetry.is_none());
        let m = results[1].metrics();
        let audit = m.audit.as_ref().expect("audit report attached");
        assert!(audit.clean(), "violations: {:?}", audit.samples);
        let telemetry = m.telemetry.as_ref().expect("telemetry attached");
        assert!(telemetry.epochs_sampled > 0);
    }

    #[test]
    fn a_panicking_cell_does_not_kill_the_sweep() {
        let mut bad = tiny("bad", "sap");
        bad.cfg.regions = 5; // fails validation → System::new panics
        let grid = vec![tiny("a", "tpcc"), bad, tiny("c", "lbm")];
        let results = SweepRunner::new().threads(2).run_grid("t", grid);
        assert_eq!(results.len(), 3);
        assert!(results[0].outcome.is_ok());
        assert!(matches!(results[1].outcome, Err(CellError::Panicked(_))));
        assert_eq!(results[1].sim_cycles, 0);
        assert!(results[2].outcome.is_ok());
    }

    #[test]
    #[should_panic(expected = "cell 'bad'")]
    fn metrics_accessor_reraises_with_label() {
        let r = CellResult {
            index: 0,
            label: "bad".into(),
            wall: Duration::ZERO,
            sim_cycles: 0,
            cached: false,
            outcome: Err(CellError::Panicked("boom".into())),
        };
        r.metrics();
    }

    #[test]
    fn from_env_reads_thread_count() {
        // Can't mutate the environment safely under the parallel test
        // harness; just check the default path produces a runner.
        let _ = SweepRunner::from_env();
    }
}
