//! Instruction streams feeding the core model.

/// One dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// A non-memory instruction (1-cycle execute).
    NonMem,
    /// A load from `addr`.
    Load {
        /// Byte address.
        addr: u64,
    },
    /// A store to `addr`.
    Store {
        /// Byte address.
        addr: u64,
    },
}

impl Instr {
    /// `true` for loads and stores.
    pub fn is_mem(self) -> bool {
        !matches!(self, Instr::NonMem)
    }

    /// `true` for stores.
    pub fn is_write(self) -> bool {
        matches!(self, Instr::Store { .. })
    }

    /// The access address for memory instructions.
    pub fn addr(self) -> Option<u64> {
        match self {
            Instr::NonMem => None,
            Instr::Load { addr } | Instr::Store { addr } => Some(addr),
        }
    }
}

/// An endless supply of dynamic instructions (the workload crate
/// provides calibrated implementations).
pub trait InstructionStream {
    /// Produces the next instruction in program order.
    fn next_instr(&mut self) -> Instr;
}

/// A fixed repeating pattern, for tests.
#[derive(Debug, Clone)]
pub struct PatternStream {
    pattern: Vec<Instr>,
    pos: usize,
}

impl PatternStream {
    /// Creates a stream cycling through `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is empty.
    pub fn new(pattern: Vec<Instr>) -> Self {
        assert!(!pattern.is_empty(), "pattern must be non-empty");
        Self { pattern, pos: 0 }
    }
}

impl InstructionStream for PatternStream {
    fn next_instr(&mut self) -> Instr {
        let i = self.pattern[self.pos];
        self.pos = (self.pos + 1) % self.pattern.len();
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instr_predicates() {
        assert!(!Instr::NonMem.is_mem());
        assert!(Instr::Load { addr: 8 }.is_mem());
        assert!(Instr::Store { addr: 8 }.is_write());
        assert!(!Instr::Load { addr: 8 }.is_write());
        assert_eq!(Instr::Load { addr: 8 }.addr(), Some(8));
        assert_eq!(Instr::NonMem.addr(), None);
    }

    #[test]
    fn pattern_cycles() {
        let mut s = PatternStream::new(vec![Instr::NonMem, Instr::Load { addr: 1 }]);
        assert_eq!(s.next_instr(), Instr::NonMem);
        assert_eq!(s.next_instr(), Instr::Load { addr: 1 });
        assert_eq!(s.next_instr(), Instr::NonMem);
    }
}
