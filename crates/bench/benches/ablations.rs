//! Bench for the paper's ablations: prints the quick-scale reproduction
//! once, then times one representative simulation run on the
//! dependency-free harness.
use snoc_bench::harness;
use snoc_core::experiments::{ablations, Scale};
use snoc_core::scenario::plus_one_vc_config;
use snoc_core::system::System;
use snoc_workload::table3 as t3;

fn main() {
    // Print the reproduced figure/table (quick scale) once.
    println!("{}", ablations::run(Scale::Quick));
    let app = t3::by_name("lbm").unwrap();
    harness::bench("ablations/run/lbm/plus_one_vc", || {
        System::homogeneous(Scale::Quick.apply(plus_one_vc_config()), app).run()
    });
}
