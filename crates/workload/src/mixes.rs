//! Multiprogrammed workload compositions (Section 4.2's case studies).

use crate::profile::{BenchmarkProfile, Suite};
use crate::table3;
use snoc_common::rng::SimRng;

/// An assignment of one benchmark per core.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Display name.
    pub name: String,
    /// Per-core profiles, in core order.
    pub apps: Vec<&'static BenchmarkProfile>,
}

impl Workload {
    /// All 64 cores run the same application (the paper's standard
    /// SPEC methodology and the "alone" baseline of the weighted
    /// speedup metric).
    pub fn homogeneous(name: &str, cores: usize) -> Option<Workload> {
        let p = table3::by_name(name)?;
        Some(Workload {
            name: name.to_string(),
            apps: vec![p; cores],
        })
    }

    /// One copy of `name` on core 0 with every other core idle — the
    /// "alone" baseline of the weighted-speedup and slowdown metrics.
    pub fn solo(name: &str, cores: usize) -> Option<Workload> {
        let p = table3::by_name(name)?;
        let mut apps: Vec<&'static BenchmarkProfile> = vec![&crate::profile::IDLE; cores];
        apps[0] = p;
        Some(Workload {
            name: format!("{name}-solo"),
            apps,
        })
    }

    /// Interleaves `names` across `cores` cores: core `i` runs
    /// `names[i % names.len()]` — `cores/len` copies of each.
    ///
    /// # Panics
    ///
    /// Panics if any name is unknown.
    pub fn mix(label: &str, names: &[&str], cores: usize) -> Workload {
        assert!(!names.is_empty());
        let profiles: Vec<_> = names
            .iter()
            .map(|n| table3::by_name(n).unwrap_or_else(|| panic!("unknown benchmark {n}")))
            .collect();
        Workload {
            name: label.to_string(),
            apps: (0..cores).map(|i| profiles[i % profiles.len()]).collect(),
        }
    }

    /// The distinct applications in this workload, in first-appearance
    /// order.
    pub fn distinct(&self) -> Vec<&'static BenchmarkProfile> {
        let mut seen = Vec::new();
        for &p in &self.apps {
            if !seen.iter().any(|&q: &&BenchmarkProfile| std::ptr::eq(q, p)) {
                seen.push(p);
            }
        }
        seen
    }

    /// Core indices running `name`.
    pub fn cores_running(&self, name: &str) -> Vec<usize> {
        self.apps
            .iter()
            .enumerate()
            .filter(|(_, p)| p.name == name)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Case-1: 16 copies each of four write-intensive applications — the
/// worst case for a plain SRAM->STT-RAM swap.
pub fn case1(cores: usize) -> Workload {
    Workload::mix("case1", &["soplex", "cactus", "lbm", "hmmer"], cores)
}

/// Case-2: two bursty write-intensive apps mixed with two
/// read-intensive ones (the fairness study of Figure 10).
pub fn case2(cores: usize) -> Workload {
    Workload::mix("case2", &["lbm", "hmmer", "bzip2", "libqntm"], cores)
}

/// Case-3: 32 mixes of 8 applications each (8 copies per app):
/// 8 read-intensive mixes, 8 write-intensive mixes, 16 mixed ones,
/// drawn deterministically from `seed`.
pub fn case3(cores: usize, seed: u64) -> Vec<Workload> {
    let mut rng = SimRng::for_stream(seed, 0xCA5E3);
    let spec: Vec<&BenchmarkProfile> = table3::suite(Suite::Spec).collect();
    let read_heavy: Vec<_> = spec
        .iter()
        .filter(|p| !p.is_write_intensive())
        .copied()
        .collect();
    let write_heavy: Vec<_> = spec
        .iter()
        .filter(|p| p.is_write_intensive())
        .copied()
        .collect();

    let pick = |pool: &[&'static BenchmarkProfile], n: usize, rng: &mut SimRng| {
        (0..n)
            .map(|_| pool[rng.below(pool.len())])
            .collect::<Vec<_>>()
    };

    let mut out = Vec::with_capacity(32);
    for i in 0..32 {
        let chosen: Vec<&'static BenchmarkProfile> = if i < 8 {
            pick(&read_heavy, 8, &mut rng)
        } else if i < 16 {
            pick(&write_heavy, 8, &mut rng)
        } else {
            let mut v = pick(&read_heavy, 3, &mut rng);
            v.extend(pick(&write_heavy, 3, &mut rng));
            v.extend(pick(&spec, 2, &mut rng));
            v
        };
        out.push(Workload {
            name: format!("mix{i:02}"),
            apps: (0..cores).map(|c| chosen[c % chosen.len()]).collect(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case1_is_16_copies_of_each() {
        let w = case1(64);
        assert_eq!(w.apps.len(), 64);
        for name in ["soplex", "cactus", "lbm", "hmmer"] {
            assert_eq!(w.cores_running(name).len(), 16, "{name}");
        }
    }

    #[test]
    fn case2_composition() {
        let w = case2(64);
        assert_eq!(w.distinct().len(), 4);
        assert_eq!(w.cores_running("libqntm").len(), 16);
    }

    #[test]
    fn case3_has_32_mixes_of_8_apps() {
        let mixes = case3(64, 99);
        assert_eq!(mixes.len(), 32);
        for m in &mixes {
            assert_eq!(m.apps.len(), 64);
            assert!(m.distinct().len() <= 8);
        }
        // Read-intensive mixes contain no write-intensive app.
        for m in &mixes[..8] {
            assert!(
                m.distinct().iter().all(|p| !p.is_write_intensive()),
                "{}",
                m.name
            );
        }
        for m in &mixes[8..16] {
            assert!(
                m.distinct().iter().all(|p| p.is_write_intensive()),
                "{}",
                m.name
            );
        }
    }

    #[test]
    fn case3_is_deterministic() {
        let a = case3(64, 7);
        let b = case3(64, 7);
        assert_eq!(a, b);
        let c = case3(64, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn solo_puts_the_app_on_core_zero() {
        let w = Workload::solo("lbm", 64).unwrap();
        assert_eq!(w.apps[0].name, "lbm");
        assert!(w.apps[1..].iter().all(|p| p.name == "idle"));
        assert!(Workload::solo("nope", 64).is_none());
    }

    #[test]
    fn homogeneous_lookup() {
        let w = Workload::homogeneous("lbm", 64).unwrap();
        assert_eq!(w.distinct().len(), 1);
        assert!(Workload::homogeneous("nope", 64).is_none());
    }
}
