//! Regenerates the paper's Table 3 (benchmark characterization).
fn main() {
    let scale = snoc_bench::scale_from_args();
    snoc_bench::emit("table3", &snoc_core::experiments::table3::run(scale));
}
