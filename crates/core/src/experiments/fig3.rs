//! Figure 3: distribution of consecutive accesses to STT-RAM banks
//! following a write access, plus the average number of buffered
//! request packets two hops from their destination bank.

use crate::experiments::Scale;
use crate::scenario::Scenario;
use crate::system::System;
use snoc_common::stats::Histogram;
use snoc_workload::table3::{self, figures};
use snoc_workload::Suite;
use std::fmt;

/// One application's panel.
#[derive(Debug, Clone)]
pub struct Fig3Panel {
    /// Application name.
    pub name: String,
    /// Gap histogram (bins 16/33/66/99/132/165+).
    pub gaps: Histogram,
    /// Fraction of post-write arrivals within the write window.
    pub delayable: f64,
    /// The inset "#Req": mean buffered requests two hops from their
    /// destination, sampled at write forwards.
    pub two_hop_requests: f64,
}

/// The full figure: 12 applications plus per-suite averages.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Per-application panels in the paper's order.
    pub panels: Vec<Fig3Panel>,
    /// Aggregates for (PARSEC, SPEC, SERVER).
    pub suite_averages: Vec<Fig3Panel>,
}

/// Runs the characterization on the 4-region STT-RAM platform.
pub fn run(scale: Scale) -> Fig3Result {
    let apps = scale.take_apps(figures::FIG3);
    let mut panels = Vec::new();
    for name in apps {
        let p = table3::by_name(name).expect("known app");
        // The region platform gives every request a two-hops-away
        // parent, matching the paper's measurement point.
        let cfg = scale.apply(Scenario::SttRam4Tsb.config());
        let mut sys = System::homogeneous(cfg, p);
        let m = sys.run();
        panels.push(Fig3Panel {
            name: name.to_string(),
            gaps: m.post_write_gaps.clone(),
            delayable: m.delayable_fraction,
            two_hop_requests: m.child_queue_mean,
        });
    }
    let mut suite_averages = Vec::new();
    for suite in [Suite::Parsec, Suite::Spec, Suite::Server] {
        let members: Vec<&Fig3Panel> = panels
            .iter()
            .filter(|p| {
                table3::by_name(&p.name).map(|b| b.suite == suite).unwrap_or(false)
            })
            .collect();
        if members.is_empty() {
            continue;
        }
        let mut gaps = Histogram::fig3();
        for m in &members {
            gaps.merge(&m.gaps);
        }
        let delayable = members.iter().map(|m| m.delayable).sum::<f64>() / members.len() as f64;
        let two_hop =
            members.iter().map(|m| m.two_hop_requests).sum::<f64>() / members.len() as f64;
        suite_averages.push(Fig3Panel {
            name: format!("{suite:?}"),
            gaps,
            delayable,
            two_hop_requests: two_hop,
        });
    }
    Fig3Result { panels, suite_averages }
}

fn write_panel(f: &mut fmt::Formatter<'_>, p: &Fig3Panel) -> fmt::Result {
    let fr = p.gaps.fractions();
    write!(f, "{:10} #Req:{:5.2} |", p.name, p.two_hop_requests)?;
    let labels = ["<16", "16-33", "33-66", "66-99", "99-132", "132-165", "165+"];
    for (i, l) in labels.iter().enumerate() {
        write!(f, " {l}:{:4.1}%", fr[i] * 100.0)?;
    }
    writeln!(f, " | delayable {:4.1}%", p.delayable * 100.0)
}

impl fmt::Display for Fig3Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 3: post-write access gap distribution per application")?;
        for p in &self.panels {
            write_panel(f, p)?;
        }
        writeln!(f, "-- suite averages --")?;
        for p in &self.suite_averages {
            write_panel(f, p)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_panels() {
        let r = run(Scale::Quick);
        assert_eq!(r.panels.len(), 3);
        for p in &r.panels {
            assert!(p.gaps.total() > 0, "{} has samples", p.name);
            assert!((0.0..=1.0).contains(&p.delayable));
        }
        let s = r.to_string();
        assert!(s.contains("delayable"));
    }
}
