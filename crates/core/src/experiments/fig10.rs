//! Figure 10: maximum slowdown of each application in the Case-2 mix
//! under MRAM-64TSB vs MRAM-4TSB-WB — the fairness result: the WB
//! scheme keeps bursty write applications from starving the
//! read-intensive ones.

use crate::experiments::Scale;
use crate::report::Rows;
use crate::scenario::Scenario;
use crate::sweep::{CellResult, Experiment, RunSpec, SweepRunner};
use crate::system::DriveMode;
use snoc_workload::mixes::{self, Workload};
use std::fmt;

/// The two scenarios compared, as indices into [`Scenario::ALL`].
pub const FIG10_SCENARIOS: [usize; 2] = [1, 5]; // MRAM-64TSB, MRAM-4TSB-WB

/// Per-application maximum slowdown under both scenarios.
#[derive(Debug, Clone)]
pub struct Fig10Result {
    /// Application names (lbm, hmmer, bzip2, libqntm).
    pub apps: Vec<&'static str>,
    /// `slowdown[s][a]` = slowdown of app `a` under scenario
    /// `FIG10_SCENARIOS[s]`.
    pub slowdown: [Vec<f64>; 2],
}

impl Fig10Result {
    /// The worst (maximum) slowdown per scenario.
    pub fn max_slowdown(&self, s: usize) -> f64 {
        self.slowdown[s].iter().fold(0.0, |a, &b| a.max(b))
    }
}

fn case2_apps() -> Vec<&'static str> {
    mixes::case2(64).distinct().iter().map(|p| p.name).collect()
}

/// The fairness measurement on the Case-2 mix: one shared cell per
/// compared scenario, then each app's alone cell per scenario.
pub struct Fig10;

impl Experiment for Fig10 {
    type Output = Fig10Result;

    fn name(&self) -> &str {
        "fig10"
    }

    fn grid(&self, scale: Scale) -> Vec<RunSpec> {
        let w = mixes::case2(64);
        let mut grid: Vec<RunSpec> = FIG10_SCENARIOS
            .iter()
            .map(|&sc_idx| {
                RunSpec::mixed(
                    format!("case2/{}", Scenario::ALL[sc_idx].name()),
                    scale.apply(Scenario::ALL[sc_idx].config()),
                    w.clone(),
                    DriveMode::Profile,
                )
            })
            .collect();
        for &sc_idx in &FIG10_SCENARIOS {
            for app in case2_apps() {
                grid.push(RunSpec::mixed(
                    format!("alone/{app}/{}", Scenario::ALL[sc_idx].name()),
                    scale.apply(Scenario::ALL[sc_idx].config()),
                    Workload::solo(app, 64).expect("known app"),
                    DriveMode::Profile,
                ));
            }
        }
        grid
    }

    fn assemble(&self, _scale: Scale, cells: Vec<CellResult>) -> Fig10Result {
        let w = mixes::case2(64);
        let apps = case2_apps();
        let mut slowdown: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
        let mut alone = cells[FIG10_SCENARIOS.len()..].iter();
        for (si, _) in FIG10_SCENARIOS.iter().enumerate() {
            let m = cells[si].metrics();
            for app in &apps {
                let shared = m.ipc_of_cores(&w.cores_running(app));
                let alone_ipc = alone
                    .next()
                    .expect("one alone cell per app")
                    .metrics()
                    .ipc(0);
                slowdown[si].push(if shared > 0.0 {
                    alone_ipc / shared
                } else {
                    f64::INFINITY
                });
            }
        }
        Fig10Result { apps, slowdown }
    }
}

/// Runs the fairness measurement through the [`SweepRunner`].
pub fn run(scale: Scale) -> Fig10Result {
    SweepRunner::from_env().run(&Fig10, scale)
}

impl fmt::Display for Fig10Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 10: per-application slowdown in Case-2 (lower is fairer)"
        )?;
        write!(f, "{:10}", "app")?;
        for &i in &FIG10_SCENARIOS {
            write!(f, " {:>14}", Scenario::ALL[i].name())?;
        }
        writeln!(f)?;
        for (a, app) in self.apps.iter().enumerate() {
            writeln!(
                f,
                "{:10} {:>14.2} {:>14.2}",
                app, self.slowdown[0][a], self.slowdown[1][a]
            )?;
        }
        writeln!(
            f,
            "max slowdown: {:.2} -> {:.2}",
            self.max_slowdown(0),
            self.max_slowdown(1)
        )
    }
}

impl Rows for Fig10Result {
    fn header(&self) -> Vec<String> {
        FIG10_SCENARIOS
            .iter()
            .map(|&i| Scenario::ALL[i].name().to_string())
            .collect()
    }

    fn rows(&self) -> Vec<(String, Vec<f64>)> {
        let mut out: Vec<(String, Vec<f64>)> = self
            .apps
            .iter()
            .enumerate()
            .map(|(a, app)| {
                (
                    app.to_string(),
                    vec![self.slowdown[0][a], self.slowdown[1][a]],
                )
            })
            .collect();
        out.push((
            "max".into(),
            vec![self.max_slowdown(0), self.max_slowdown(1)],
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdowns_are_finite_and_positive() {
        let r = run(Scale::Quick);
        assert_eq!(r.apps.len(), 4);
        for s in &r.slowdown {
            for &v in s {
                assert!(v.is_finite() && v > 0.0, "slowdown {v}");
            }
        }
        assert!(r.max_slowdown(0) >= 1.0 || r.max_slowdown(1) >= 0.5);
        assert_eq!(r.rows().last().unwrap().0, "max");
    }
}
