//! Intra-run mesh partitioning for the sharded network stepper.
//!
//! [`PartitionMap`] carves the flat router index space (core layer
//! first, then cache, row-major within each layer) into contiguous
//! partitions aligned to *bands* of two mesh rows — i.e. rows of the
//! 2x2 router blocks the stepper phases over. Contiguity is the load
//! bearing property: because every partition is a contiguous,
//! ascending range of router indices, replaying each partition's
//! cross-partition mailbox in (partition, collection) order is exactly
//! the global ascending-index order the serial stepper uses, so run
//! fingerprints are byte-identical at any shard count.
//!
//! The requested shard count is clamped to the number of bands (and
//! floored at one); bands are distributed as evenly as possible, so
//! e.g. 8 bands over 3 shards split 3/3/2.

/// Contiguous, band-aligned partitions of the router index space.
#[derive(Debug, Clone)]
pub(crate) struct PartitionMap {
    /// Start router index of each partition, plus a final sentinel
    /// equal to the total router count.
    starts: Vec<u32>,
    /// Partition index of each router (O(1) cross-partition dispatch
    /// on the mailbox merge path).
    of: Vec<u16>,
}

impl PartitionMap {
    /// Partitions `routers` routers into up to `requested` contiguous
    /// groups aligned to bands of `band` routers (two mesh rows). A
    /// `requested` of zero means serial (one partition).
    pub fn new(routers: usize, band: usize, requested: usize) -> Self {
        assert!(routers > 0 && band > 0);
        let bands = routers.div_ceil(band);
        let parts = requested.clamp(1, bands);
        let mut starts = Vec::with_capacity(parts + 1);
        for p in 0..parts {
            // Even band distribution; the final band absorbs any
            // short remainder of the router space.
            starts.push(((p * bands / parts) * band).min(routers) as u32);
        }
        starts.push(routers as u32);
        let mut of = vec![0u16; routers];
        for p in 0..parts {
            of[starts[p] as usize..starts[p + 1] as usize].fill(p as u16);
        }
        Self { starts, of }
    }

    /// Number of partitions.
    pub fn parts(&self) -> usize {
        self.starts.len() - 1
    }

    /// First router index of partition `p`.
    #[inline]
    pub fn start(&self, p: usize) -> usize {
        self.starts[p] as usize
    }

    /// Router count of partition `p`.
    #[inline]
    pub fn len(&self, p: usize) -> usize {
        (self.starts[p + 1] - self.starts[p]) as usize
    }

    /// The partition owning `router`.
    #[inline]
    pub fn of(&self, router: usize) -> usize {
        self.of[router] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranges(m: &PartitionMap) -> Vec<(usize, usize)> {
        (0..m.parts()).map(|p| (m.start(p), m.len(p))).collect()
    }

    #[test]
    fn serial_is_one_partition_covering_everything() {
        for requested in [0, 1] {
            let m = PartitionMap::new(128, 16, requested);
            assert_eq!(ranges(&m), vec![(0, 128)]);
            assert_eq!(m.of(0), 0);
            assert_eq!(m.of(127), 0);
        }
    }

    #[test]
    fn four_shards_split_the_default_mesh_evenly() {
        // 128 routers, 16-router bands (two 8-wide rows): 8 bands.
        let m = PartitionMap::new(128, 16, 4);
        assert_eq!(ranges(&m), vec![(0, 32), (32, 32), (64, 32), (96, 32)]);
        for r in 0..128 {
            let p = m.of(r);
            assert!(m.start(p) <= r && r < m.start(p) + m.len(p));
        }
    }

    #[test]
    fn uneven_band_counts_distribute_without_gaps() {
        for requested in 1..=10 {
            let m = PartitionMap::new(128, 16, requested);
            assert!(m.parts() <= 8, "clamped to the band count");
            let mut next = 0;
            for p in 0..m.parts() {
                assert_eq!(m.start(p), next, "contiguous");
                assert!(m.len(p) > 0, "no empty partitions");
                assert_eq!(m.len(p) % 16, 0, "band aligned");
                next += m.len(p);
            }
            assert_eq!(next, 128, "covers every router");
        }
    }

    #[test]
    fn oversubscribed_requests_clamp_to_the_band_count() {
        let m = PartitionMap::new(128, 16, 1000);
        assert_eq!(m.parts(), 8);
        // A short final band still belongs to the last partition.
        let m = PartitionMap::new(24, 16, 4);
        assert_eq!(ranges(&m), vec![(0, 16), (16, 8)]);
    }
}
