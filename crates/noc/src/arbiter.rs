//! Round-robin arbitration helpers.
//!
//! Routers use rotating-priority (round-robin) arbiters for VC and
//! switch allocation; the bank-aware policy layers a two-level priority
//! on top (high-priority candidates always beat low-priority ones, with
//! round-robin within each level).

/// Picks the first index `i` in rotating order starting *after*
/// `last` (wrapping over `n`) for which `eligible(i)` holds.
pub fn rr_pick(last: usize, n: usize, mut eligible: impl FnMut(usize) -> bool) -> Option<usize> {
    if n == 0 {
        return None;
    }
    for off in 1..=n {
        let i = (last + off) % n;
        if eligible(i) {
            return Some(i);
        }
    }
    None
}

/// Two-level prioritized round robin: picks among high-priority
/// candidates first, falling back to low-priority ones. `priority(i)`
/// returns `None` when `i` is not a candidate at all.
pub fn rr_pick_prioritized(
    last: usize,
    n: usize,
    mut priority: impl FnMut(usize) -> Option<bool>,
) -> Option<usize> {
    let mut fallback = None;
    if n == 0 {
        return None;
    }
    for off in 1..=n {
        let i = (last + off) % n;
        match priority(i) {
            Some(true) => return Some(i),
            Some(false) if fallback.is_none() => fallback = Some(i),
            _ => {}
        }
    }
    fallback
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rr_rotates_fairly() {
        // With everything eligible, successive picks cycle through all
        // indices.
        let mut last = 0;
        let mut seen = Vec::new();
        for _ in 0..4 {
            last = rr_pick(last, 4, |_| true).unwrap();
            seen.push(last);
        }
        assert_eq!(seen, vec![1, 2, 3, 0]);
    }

    #[test]
    fn rr_skips_ineligible() {
        assert_eq!(rr_pick(0, 4, |i| i == 3), Some(3));
        assert_eq!(rr_pick(3, 4, |i| i == 3), Some(3));
        assert_eq!(rr_pick(0, 4, |_| false), None);
        assert_eq!(rr_pick(0, 0, |_| true), None);
    }

    #[test]
    fn prioritized_prefers_high() {
        // Index 1 is low priority, index 3 high: 3 wins even though 1
        // comes first in rotation order.
        let pick = rr_pick_prioritized(0, 4, |i| match i {
            1 => Some(false),
            3 => Some(true),
            _ => None,
        });
        assert_eq!(pick, Some(3));
    }

    #[test]
    fn prioritized_falls_back_to_low() {
        let pick = rr_pick_prioritized(0, 4, |i| (i == 2).then_some(false));
        assert_eq!(pick, Some(2));
        assert_eq!(rr_pick_prioritized(0, 4, |_| None), None);
    }

    #[test]
    fn prioritized_is_round_robin_within_a_level() {
        // All high priority: rotates like plain round robin.
        let mut last = 2;
        last = rr_pick_prioritized(last, 3, |_| Some(true)).unwrap();
        assert_eq!(last, 0);
        last = rr_pick_prioritized(last, 3, |_| Some(true)).unwrap();
        assert_eq!(last, 1);
    }
}
