//! Deterministic fault injection and graceful degradation for the NoC.
//!
//! A stacked design concentrates traffic on a handful of shared
//! structures — the region TSBs above all — so a single hard fault can
//! take out a quarter of the cache layer unless the interconnect
//! degrades gracefully. This module injects faults into exactly those
//! structures and pairs each fault class with the recovery machinery it
//! demands:
//!
//! * **Transient TSB / mesh-link / router-port outages** block the
//!   affected output port in switch allocation for a bounded number of
//!   cycles. Buffered flits simply wait in their virtual channels as
//!   ordinary backpressure — no credit moves, no flit is lost — so
//!   every packet- and credit-conservation invariant the auditor checks
//!   holds *while faults are firing*.
//! * **L2 bank faults** come in two flavours. *Stuck-busy* wedges the
//!   parent router's predicted busy horizon far into the future; the
//!   periodic [`crate::busy::BusyTable::expire_stale`] sweep clamps it
//!   back so held requests release instead of waiting out a phantom
//!   service chain. *Dropped-ack* episodes make the bank lose requests
//!   after network delivery (and swallow its WB estimator tag acks);
//!   the requester's NI-level timeout fires and re-injects the request
//!   with bounded exponential backoff, up to a retry cap, after which
//!   the request is abandoned and counted. Swallowed tag acks are
//!   recovered by the window-based estimator's existing stale-tag
//!   expiry, so congestion predictions do not wedge either.
//! * **Permanent TSB death** (`kill_tsb_at`) triggers *region
//!   re-homing*: the victim region's request traffic is re-routed
//!   through the nearest surviving TSB, which rebuilds the routing
//!   table, the parent/child serialization points and the busy/WB
//!   prediction state (see [`crate::Network::rehome_region`]).
//!
//! All of it is opt-in and zero-cost when off, following the
//! audit/telemetry pattern: a [`FaultPlan`] in
//! [`crate::NetworkParams::faults`] (or the `SNOC_FAULTS` environment
//! variable) allocates a boxed [`FaultState`] whose absence costs the
//! hot path one cold-pointer branch. Every stochastic decision draws
//! from a [`SimRng`] stream derived from the plan's own seed, so a
//! faulty run is byte-reproducible: same plan, same seed, same faults,
//! same final metrics.

use crate::packet::{Packet, PacketKind};
use snoc_common::geom::{Coord, Direction, Mesh};
use snoc_common::ids::BankId;
use snoc_common::rng::SimRng;
use snoc_common::Cycle;

/// The lateral directions a mesh-link fault can pick from.
const LATERAL: [Direction; 4] = [
    Direction::East,
    Direction::West,
    Direction::North,
    Direction::South,
];

/// A deterministic fault-injection campaign description.
///
/// Rates are per-cycle event probabilities: each cycle, each fault
/// class independently fires at most one event, with a uniformly drawn
/// victim. The defaults describe a modest mixed campaign; `SNOC_FAULTS=1`
/// enables exactly these values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the injector's private RNG stream (independent of the
    /// workload seed, so the same fault schedule can replay against
    /// different traffic).
    pub seed: u64,
    /// Per-cycle probability of a transient TSB outage.
    pub tsb_rate: f64,
    /// Per-cycle probability of a transient mesh-link outage.
    pub link_rate: f64,
    /// Per-cycle probability of a transient router-port outage.
    pub port_rate: f64,
    /// Per-cycle probability of an L2 bank fault episode
    /// (stuck-busy or dropped-ack, chosen by a fair draw).
    pub bank_rate: f64,
    /// Probability that a request (or tag ack) reaching a faulted bank
    /// during a dropped-ack episode is lost.
    pub drop_rate: f64,
    /// Duration of transient outages and dropped-ack episodes.
    pub outage_cycles: Cycle,
    /// Busy horizon injected by a stuck-busy bank fault.
    pub stuck_cycles: Cycle,
    /// Horizons further than this past `now` are treated as wedged by
    /// the periodic busy-table expiry sweep.
    pub busy_cap: Cycle,
    /// Cycle at which one region TSB dies permanently (`None` = never).
    pub kill_tsb_at: Option<Cycle>,
    /// Base of the NI request-retry exponential backoff.
    pub retry_base: Cycle,
    /// Upper bound on a single backoff interval.
    pub retry_cap: Cycle,
    /// Drops of one request before it is abandoned.
    pub max_retries: u32,
    /// Period of the busy-table expiry sweep.
    pub expiry_period: Cycle,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0xFA17,
            tsb_rate: 1e-4,
            link_rate: 2e-4,
            port_rate: 2e-4,
            bank_rate: 5e-4,
            drop_rate: 0.5,
            outage_cycles: 64,
            stuck_cycles: 2_000,
            busy_cap: 800,
            kill_tsb_at: None,
            retry_base: 128,
            retry_cap: 2_048,
            max_retries: 6,
            expiry_period: 512,
        }
    }
}

impl FaultPlan {
    /// Reads the `SNOC_FAULTS` environment hook: `None` when fault
    /// injection is off.
    ///
    /// `1`/`true`/`on` enables the default campaign; otherwise the
    /// value is a comma-separated `key=value` list overriding the
    /// defaults, e.g.
    /// `SNOC_FAULTS=seed=7,tsb=1e-3,bank=2e-3,kill_tsb=50000`.
    /// Recognized keys: `seed`, `tsb`, `link`, `port`, `bank`, `drop`,
    /// `outage`, `stuck`, `busy_cap`, `kill_tsb`, `retry_base`,
    /// `retry_cap`, `max_retries`, `expiry`. Unknown keys and
    /// unparsable values are ignored.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("SNOC_FAULTS").ok()?;
        Self::parse(&raw)
    }

    /// Parses a `SNOC_FAULTS`-style specification string.
    pub fn parse(raw: &str) -> Option<Self> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "" | "0" | "off" | "false" => return None,
            "1" | "true" | "on" => return Some(Self::default()),
            _ => {}
        }
        let mut plan = Self::default();
        for pair in raw.split(',') {
            let Some((key, value)) = pair.split_once('=') else {
                continue;
            };
            let (key, value) = (key.trim(), value.trim());
            macro_rules! set {
                ($field:ident) => {
                    if let Ok(v) = value.parse() {
                        plan.$field = v;
                    }
                };
            }
            match key {
                "seed" => set!(seed),
                "tsb" => set!(tsb_rate),
                "link" => set!(link_rate),
                "port" => set!(port_rate),
                "bank" => set!(bank_rate),
                "drop" => set!(drop_rate),
                "outage" => set!(outage_cycles),
                "stuck" => set!(stuck_cycles),
                "busy_cap" => set!(busy_cap),
                "kill_tsb" => {
                    if let Ok(v) = value.parse() {
                        plan.kill_tsb_at = Some(v);
                    }
                }
                "retry_base" => set!(retry_base),
                "retry_cap" => set!(retry_cap),
                "max_retries" => set!(max_retries),
                "expiry" => set!(expiry_period),
                _ => {}
            }
        }
        Some(plan)
    }
}

/// What a fault campaign did to a run, surfaced through the run
/// metrics next to the audit and telemetry reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Transient TSB outages injected.
    pub tsb_faults: u64,
    /// Transient mesh-link outages injected.
    pub link_faults: u64,
    /// Transient router-port outages injected.
    pub port_faults: u64,
    /// L2 bank fault episodes injected (both flavours).
    pub bank_faults: u64,
    /// Requests lost at a faulted bank after network delivery.
    pub dropped: u64,
    /// WB estimator tag acks swallowed by a faulted bank.
    pub dropped_acks: u64,
    /// Requests re-injected by the NI timeout/backoff machinery.
    pub retries: u64,
    /// Requests dropped more than `max_retries` times and given up on.
    pub abandoned: u64,
    /// Regions re-homed onto a surviving TSB.
    pub rehomed_regions: u64,
    /// Cycles with at least one fault episode (or a dead TSB) active.
    pub degraded_cycles: u64,
    /// Wedged busy horizons clamped by the expiry sweep.
    pub busy_expiries: u64,
}

impl FaultSummary {
    /// Total fault events injected across all classes.
    pub fn injected(&self) -> u64 {
        self.tsb_faults + self.link_faults + self.port_faults + self.bank_faults
    }
}

/// One transient outage: a blocked-output-port mask on one router.
#[derive(Debug, Clone, Copy)]
struct Outage {
    router: u32,
    mask: u8,
    until: Cycle,
}

/// A request the injector dropped and scheduled for re-injection.
#[derive(Debug, Clone, Copy)]
struct RetrySlot {
    due: Cycle,
    kind: PacketKind,
    src: Coord,
    dst: Coord,
    addr: u64,
    token: u64,
}

/// Retry bookkeeping for one lost request, keyed by what the source NI
/// knows about it.
#[derive(Debug, Clone, Copy)]
struct TrackedReq {
    src: Coord,
    addr: u64,
    token: u64,
    attempts: u32,
}

/// The live state of a fault campaign (boxed off the network's hot
/// state, present only while injection is on).
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    rng: SimRng,
    /// Active transient outages.
    outages: Vec<Outage>,
    /// Per-router blocked-output-port masks, rebuilt whenever
    /// `outages` changes (hot-path lookup is one byte load).
    blocked: Vec<u8>,
    /// Banks currently in a dropped-ack episode.
    dropping: Vec<(BankId, Cycle)>,
    /// Scheduled re-injections.
    retries: Vec<RetrySlot>,
    /// Attempt counters for requests the campaign has dropped.
    tracked: Vec<TrackedReq>,
    /// `true` once the permanent TSB kill fired.
    pub killed: bool,
    /// Running campaign counters.
    pub summary: FaultSummary,
}

impl FaultState {
    /// RNG stream label of the injector (disjoint from every workload
    /// stream, which derive from the *system* seed).
    const STREAM: u64 = 0xFA017;

    /// Creates the campaign state for a network of `routers` routers.
    pub fn new(plan: FaultPlan, routers: usize) -> Self {
        Self {
            plan,
            rng: SimRng::for_stream(plan.seed, Self::STREAM),
            outages: Vec::new(),
            blocked: vec![0; routers],
            dropping: Vec::new(),
            retries: Vec::new(),
            tracked: Vec::new(),
            killed: false,
            summary: FaultSummary::default(),
        }
    }

    /// The campaign description.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The injector's RNG (all draws of a step happen in a fixed
    /// order, so the schedule replays byte-for-byte per seed).
    pub(crate) fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Blocked-output-port mask for router `idx` this cycle.
    #[cfg(test)]
    fn blocked(&self, idx: usize) -> u8 {
        self.blocked[idx]
    }

    /// The per-router blocked masks (hoisted once per step).
    #[inline]
    pub(crate) fn blocked_masks(&self) -> &[u8] {
        &self.blocked
    }

    fn rebuild_blocked(&mut self) {
        self.blocked.iter_mut().for_each(|b| *b = 0);
        for o in &self.outages {
            self.blocked[o.router as usize] |= o.mask;
        }
    }

    /// Expires finished episodes; returns `true` while any fault
    /// effect is still active (degraded-mode accounting).
    pub(crate) fn expire(&mut self, now: Cycle) -> bool {
        let before = self.outages.len();
        self.outages.retain(|o| o.until > now);
        if self.outages.len() != before {
            self.rebuild_blocked();
        }
        self.dropping.retain(|&(_, until)| until > now);
        self.killed
            || !self.outages.is_empty()
            || !self.dropping.is_empty()
            || !self.retries.is_empty()
    }

    /// Starts a transient outage blocking `mask` output ports of
    /// router `router` until `until`.
    pub(crate) fn push_outage(&mut self, router: usize, mask: u8, until: Cycle) {
        self.outages.push(Outage {
            router: router as u32,
            mask,
            until,
        });
        self.rebuild_blocked();
    }

    /// Starts (or extends) a dropped-ack episode on `bank`.
    pub(crate) fn push_dropping(&mut self, bank: BankId, until: Cycle) {
        match self.dropping.iter_mut().find(|(b, _)| *b == bank) {
            Some(slot) => slot.1 = slot.1.max(until),
            None => self.dropping.push((bank, until)),
        }
    }

    /// `true` if `bank` is currently losing requests and acks.
    pub(crate) fn bank_is_dropping(&self, bank: BankId) -> bool {
        self.dropping.iter().any(|&(b, _)| b == bank)
    }

    /// Pops every retry due at `now` or earlier (ascending schedule
    /// order, so re-injection order is deterministic).
    pub(crate) fn due_retries(&mut self, now: Cycle, out: &mut Vec<Packet>) {
        let mut i = 0;
        while i < self.retries.len() {
            if self.retries[i].due <= now {
                let r = self.retries.remove(i);
                out.push(Packet::new(r.kind, r.src, r.dst, r.addr, r.token));
                self.summary.retries += 1;
            } else {
                i += 1;
            }
        }
    }

    /// Decides the fate of a packet the network just delivered at a
    /// bank-side NI. Returns `true` to hand it to the endpoint,
    /// `false` to lose it (the bank's fault ate it after delivery — the
    /// network conserved the packet, the protocol did not).
    ///
    /// A lost request schedules an NI-level re-injection at
    /// `now + min(retry_base << attempts, retry_cap)`, modelling the
    /// requester's timeout with bounded exponential backoff; after
    /// `max_retries` drops the request is abandoned.
    pub(crate) fn filter_delivery(&mut self, p: &Packet, mesh: Mesh, now: Cycle) -> bool {
        let Some(bank) = p.dest_bank(mesh) else {
            return true;
        };
        let episode = self.bank_is_dropping(bank);
        let tracked = self
            .tracked
            .iter()
            .position(|t| t.src == p.src && t.addr == p.addr && t.token == p.token);
        if episode && self.rng.chance(self.plan.drop_rate) {
            self.summary.dropped += 1;
            let attempts = match tracked {
                Some(i) => {
                    self.tracked[i].attempts += 1;
                    self.tracked[i].attempts
                }
                None => {
                    self.tracked.push(TrackedReq {
                        src: p.src,
                        addr: p.addr,
                        token: p.token,
                        attempts: 1,
                    });
                    1
                }
            };
            if attempts > self.plan.max_retries {
                self.summary.abandoned += 1;
                if let Some(i) = self
                    .tracked
                    .iter()
                    .position(|t| t.src == p.src && t.addr == p.addr && t.token == p.token)
                {
                    self.tracked.remove(i);
                }
            } else {
                let backoff = self
                    .plan
                    .retry_base
                    .saturating_shl(attempts.saturating_sub(1).min(16))
                    .min(self.plan.retry_cap);
                self.retries.push(RetrySlot {
                    due: now + backoff,
                    kind: p.kind,
                    src: p.src,
                    dst: p.dst,
                    addr: p.addr,
                    token: p.token,
                });
            }
            false
        } else {
            if let Some(i) = tracked {
                // The (possibly retried) request made it through: the
                // source NI's timeout is disarmed.
                self.tracked.remove(i);
            }
            true
        }
    }

    /// Decides whether a faulted bank swallows a WB estimator tag ack.
    pub(crate) fn swallow_ack(&mut self, child: BankId) -> bool {
        if self.bank_is_dropping(child) && self.rng.chance(self.plan.drop_rate) {
            self.summary.dropped_acks += 1;
            true
        } else {
            false
        }
    }

    /// `true` if any request drop state exists (cheap guard before the
    /// per-delivery filtering pass).
    pub(crate) fn may_drop(&self) -> bool {
        !self.dropping.is_empty() || !self.tracked.is_empty()
    }

    /// The four per-class event draws of one cycle, in fixed order.
    /// Returns which classes fired: `(tsb, link, port, bank)`.
    pub(crate) fn draw_events(&mut self) -> (bool, bool, bool, bool) {
        let tsb = self.plan.tsb_rate > 0.0 && self.rng.chance(self.plan.tsb_rate);
        let link = self.plan.link_rate > 0.0 && self.rng.chance(self.plan.link_rate);
        let port = self.plan.port_rate > 0.0 && self.rng.chance(self.plan.port_rate);
        let bank = self.plan.bank_rate > 0.0 && self.rng.chance(self.plan.bank_rate);
        (tsb, link, port, bank)
    }

    /// A uniformly drawn lateral direction (mesh-link faults).
    pub(crate) fn draw_lateral(&mut self) -> Direction {
        LATERAL[self.rng.below(LATERAL.len())]
    }
}

/// `u64 << n` that saturates instead of overflowing (backoff doubling
/// stays monotone even for absurd retry counts).
trait SaturatingShl {
    fn saturating_shl(self, n: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, n: u32) -> Self {
        if self == 0 {
            0
        } else if n > self.leading_zeros() {
            u64::MAX
        } else {
            self << n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoc_common::geom::Layer;

    #[test]
    fn parse_accepts_switches_and_overrides() {
        assert!(FaultPlan::parse("0").is_none());
        assert!(FaultPlan::parse("off").is_none());
        assert!(FaultPlan::parse("").is_none());
        assert_eq!(FaultPlan::parse("1"), Some(FaultPlan::default()));
        assert_eq!(FaultPlan::parse("on"), Some(FaultPlan::default()));

        let p = FaultPlan::parse("seed=7,tsb=0.001,kill_tsb=5000,max_retries=3").unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(p.tsb_rate, 0.001);
        assert_eq!(p.kill_tsb_at, Some(5_000));
        assert_eq!(p.max_retries, 3);
        // Untouched keys keep their defaults.
        assert_eq!(p.retry_base, FaultPlan::default().retry_base);

        // Unknown keys and garbage values are ignored, not fatal.
        let q = FaultPlan::parse("bogus=1,drop=not_a_number,bank=0.01").unwrap();
        assert_eq!(q.drop_rate, FaultPlan::default().drop_rate);
        assert_eq!(q.bank_rate, 0.01);
    }

    #[test]
    fn same_seed_replays_the_event_schedule() {
        let plan = FaultPlan {
            tsb_rate: 0.02,
            link_rate: 0.05,
            port_rate: 0.05,
            bank_rate: 0.1,
            ..FaultPlan::default()
        };
        let draw = || {
            let mut f = FaultState::new(plan, 128);
            (0..10_000).map(|_| f.draw_events()).collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn outages_expire_and_clear_the_blocked_masks() {
        let mut f = FaultState::new(FaultPlan::default(), 4);
        f.push_outage(1, 0b10, 100);
        f.push_outage(1, 0b100, 200);
        f.push_outage(3, 0b1, 100);
        assert_eq!(f.blocked(1), 0b110);
        assert_eq!(f.blocked(3), 0b1);
        assert_eq!(f.blocked(0), 0);
        assert!(f.expire(99), "still active");
        assert_eq!(f.blocked(1), 0b110);
        assert!(f.expire(100));
        assert_eq!(f.blocked(1), 0b100, "expired outage unblocks its port");
        assert_eq!(f.blocked(3), 0);
        assert!(!f.expire(200), "all clear");
        assert_eq!(f.blocked(1), 0);
    }

    fn request(addr: u64, token: u64) -> Packet {
        Packet::new(
            PacketKind::BankRead,
            Coord::new(0, 0, Layer::Core),
            Coord::new(3, 3, Layer::Cache),
            addr,
            token,
        )
    }

    #[test]
    fn dropped_request_backs_off_exponentially_then_abandons() {
        let plan = FaultPlan {
            drop_rate: 1.0, // every delivery during the episode is lost
            retry_base: 8,
            retry_cap: 64,
            max_retries: 3,
            ..FaultPlan::default()
        };
        let mesh = Mesh::new(8, 8);
        let mut f = FaultState::new(plan, 128);
        let p = request(0x100, 9);
        let bank = p.dest_bank(mesh).unwrap();
        f.push_dropping(bank, u64::MAX);

        let mut out = Vec::new();
        let mut now = 0;
        for attempt in 1..=3u64 {
            assert!(!f.filter_delivery(&p, mesh, now), "drop #{attempt}");
            // Backoff doubles: 8, 16, 32 — capped at 64.
            let backoff = (8u64 << (attempt - 1)).min(64);
            f.due_retries(now + backoff - 1, &mut out);
            assert!(out.is_empty(), "not due yet (attempt {attempt})");
            f.due_retries(now + backoff, &mut out);
            assert_eq!(out.len(), 1, "retry fires on its deadline");
            let r = out.pop().unwrap();
            assert_eq!((r.addr, r.token, r.kind), (0x100, 9, PacketKind::BankRead));
            now += backoff;
        }
        // Fourth drop exceeds max_retries: abandoned, no retry queued.
        assert!(!f.filter_delivery(&p, mesh, now));
        f.due_retries(u64::MAX - 1, &mut out);
        assert!(out.is_empty());
        assert_eq!(f.summary.dropped, 4);
        assert_eq!(f.summary.retries, 3);
        assert_eq!(f.summary.abandoned, 1);
        assert!(f.tracked.is_empty(), "abandoned request is forgotten");
    }

    #[test]
    fn successful_delivery_disarms_the_timeout() {
        let plan = FaultPlan {
            drop_rate: 1.0,
            ..FaultPlan::default()
        };
        let mesh = Mesh::new(8, 8);
        let mut f = FaultState::new(plan, 128);
        let p = request(0x200, 4);
        let bank = p.dest_bank(mesh).unwrap();
        f.push_dropping(bank, 50);
        assert!(!f.filter_delivery(&p, mesh, 10), "lost during the episode");
        assert_eq!(f.tracked.len(), 1);
        // The episode ends; the retried request gets through.
        assert!(!f.expire(60) || f.dropping.is_empty());
        assert!(f.filter_delivery(&p, mesh, 200));
        assert!(f.tracked.is_empty(), "attempt counter cleared on success");
    }

    #[test]
    fn non_requests_and_healthy_banks_pass_untouched() {
        let plan = FaultPlan {
            drop_rate: 1.0,
            ..FaultPlan::default()
        };
        let mesh = Mesh::new(8, 8);
        let mut f = FaultState::new(plan, 128);
        // A response-class packet is never dropped even mid-episode.
        let reply = Packet::new(
            PacketKind::DataReply,
            Coord::new(3, 3, Layer::Cache),
            Coord::new(0, 0, Layer::Core),
            0x300,
            1,
        );
        f.push_dropping(BankId::new(27), u64::MAX);
        assert!(f.filter_delivery(&reply, mesh, 0));
        // A request to a different, healthy bank passes too.
        let p = request(0x400, 2); // dest bank 27? (3,3) => bank 27
        assert!(!f.filter_delivery(&p, mesh, 0), "faulted bank drops");
        let healthy = Packet::new(
            PacketKind::BankRead,
            Coord::new(0, 0, Layer::Core),
            Coord::new(5, 5, Layer::Cache),
            0x500,
            3,
        );
        assert!(f.filter_delivery(&healthy, mesh, 0));
        assert_eq!(f.summary.dropped, 1);
    }

    #[test]
    fn ack_swallowing_is_confined_to_the_episode() {
        let plan = FaultPlan {
            drop_rate: 1.0,
            ..FaultPlan::default()
        };
        let mut f = FaultState::new(plan, 128);
        assert!(!f.swallow_ack(BankId::new(5)), "healthy bank acks pass");
        f.push_dropping(BankId::new(5), 100);
        assert!(f.swallow_ack(BankId::new(5)));
        assert!(!f.swallow_ack(BankId::new(6)), "other banks unaffected");
        f.expire(100);
        assert!(!f.swallow_ack(BankId::new(5)), "episode over");
        assert_eq!(f.summary.dropped_acks, 1);
    }

    #[test]
    fn backoff_shift_saturates() {
        assert_eq!(u64::MAX.saturating_shl(1), u64::MAX);
        assert_eq!(1u64.saturating_shl(63), 1 << 63);
        assert_eq!(1u64.saturating_shl(64), u64::MAX);
        assert_eq!(8u64.saturating_shl(2), 32);
    }
}
