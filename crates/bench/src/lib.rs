//! Benchmark harness for the STT-RAM NoC reproduction.
//!
//! One `repro-*` binary per table/figure regenerates the paper's
//! rows/series at full scale (pass `--quick` for a fast pass), and one
//! Criterion bench per table/figure prints the quick-scale result and
//! times a representative kernel.

use snoc_core::experiments::Scale;

/// Parses the experiment scale from the command line (`--quick` for
/// the reduced configuration; full scale otherwise).
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    }
}
