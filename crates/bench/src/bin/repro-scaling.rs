//! Scaling study: the paper's design points at a 16x16 / 256-bank mesh
//! and a 2-layer cache stack, anchored by the 8x8 point.
//!
//! Runs through the same SweepRunner/cell-cache machinery as every
//! figure (`SNOC_THREADS`, `SNOC_SHARDS`, `SNOC_SWEEP_CACHE` all
//! apply). Results land under `<SNOC_RESULTS_DIR|results>/scaling/`.
//!
//! `--smoke` (or `--quick`) runs the Quick scale for CI.

use snoc_core::experiments::{scaling, Scale};
use snoc_core::report;

fn main() {
    let smoke = !snoc_bench::strict_flags(&["--smoke", "--quick"]).is_empty();
    let scale = if smoke { Scale::Quick } else { Scale::Full };
    let result = scaling::run(scale);
    println!("{result}");
    let base = std::env::var("SNOC_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let dir = format!("{base}/scaling");
    match report::save(&dir, "scaling_study", &result) {
        Ok((txt, csv)) => eprintln!("wrote {} and {}", txt.display(), csv.display()),
        Err(e) => {
            eprintln!("error: could not write results under {dir}: {e}");
            std::process::exit(1);
        }
    }
}
