//! `snoc-serve`: sweep simulation as a long-running service.
//!
//! A [`Server`] listens on a Unix-domain socket and speaks the
//! newline-delimited JSON protocol of [`protocol`]: clients submit
//! [`RunSpec`] grids (checked-in experiments by name, or raw cell
//! lists), the server enqueues them in an async FIFO job queue, and an
//! executor thread runs one job at a time on the work-stealing
//! [`SweepRunner`] worker pool. The design goals, in order:
//!
//! * **Idempotent submission** — a job's identity is the
//!   [`jobs::job_key`] fingerprint of its resolved grid. Submitting
//!   the same grid twice (same client or not) returns the same job,
//!   running or already finished, without re-simulating anything.
//! * **Shared incremental state** — every job's runner is handed the
//!   same [`CellCache`] `Arc`, so a cell one client simulated is a
//!   memory hit for every later client, and an on-disk store (when
//!   configured) persists across server restarts.
//! * **Crash isolation** — a panicking cell is caught on its worker
//!   (the runner's per-cell `catch_unwind`); the job completes with
//!   that cell marked failed and the server keeps serving. A defensive
//!   second `catch_unwind` around the whole job protects the executor
//!   itself.
//! * **Environment pinning** — the `SNOC_*` fallbacks are resolved
//!   *once*, when [`ServeOptions::new`] captures a [`NocEnv`], and
//!   folded into each accepted grid's explicit fields at submission.
//!   Workers never read the environment, so nothing one client does to
//!   the process environment (or any mid-flight mutation) can alter
//!   another client's accepted job.
//!
//! Progress streams to subscribed clients as it happens
//! ([`RunObserver`] events rendered to protocol lines); results are
//! served on demand in the exact [`cellcache`] text codec, so a client
//! round-trips bit-identical [`RunMetrics`](crate::metrics::RunMetrics).

pub mod jobs;
pub mod json;
pub mod protocol;

use crate::cellcache::{self, CellCache};
use crate::observer::RunObserver;
use crate::sweep::{CellResult, RunSpec, SweepRunner};
use protocol::{Request, WireState};
use snoc_common::fingerprint::{Fingerprint, StableHasher};
use snoc_noc::NocEnv;
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Unix-domain socket path to listen on (a stale file from a dead
    /// server is removed at startup).
    pub socket: PathBuf,
    /// Worker threads per job sweep.
    pub threads: usize,
    /// Whether cell results are cached and served across jobs.
    pub cache: bool,
    /// Optional on-disk root for the shared cell cache.
    pub cache_dir: Option<PathBuf>,
    /// The NoC environment snapshot folded into every accepted job.
    /// [`ServeOptions::new`] captures the live environment *once*,
    /// here, at startup; tests pass `NocEnv::default()` for hermetic
    /// servers.
    pub env: NocEnv,
    /// Log job lifecycle lines to stderr.
    pub verbose: bool,
}

impl ServeOptions {
    /// Defaults: single worker, caching on (in-process only), the
    /// environment resolved now.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        Self {
            socket: socket.into(),
            threads: 1,
            cache: true,
            cache_dir: None,
            env: NocEnv::capture(),
            verbose: false,
        }
    }
}

/// Everything a job carries through its lifecycle.
struct Job {
    key: Fingerprint,
    name: String,
    cells: usize,
    /// Taken (once) by the executor when the job starts.
    grid: Mutex<Option<Vec<RunSpec>>>,
    inner: Mutex<JobInner>,
    cv: Condvar,
}

struct JobInner {
    state: WireState,
    done: usize,
    failed: usize,
    cache_hits: usize,
    results: Option<Vec<CellResult>>,
    /// Every event line the job has emitted, in order. A subscriber
    /// that arrives mid-run — or after a fast job already finished —
    /// replays this backlog first, so `submit`+`wait` always observes
    /// one event per cell plus the terminator, never a truncated
    /// stream. (Bounded by the grid size; jobs are never evicted, so
    /// a long-lived server trades memory for replayability.)
    events: Vec<String>,
    /// Live progress subscribers; cleared when the job finishes (the
    /// drop disconnects each receiver, ending its stream).
    subscribers: Vec<mpsc::Sender<String>>,
}

/// Recovers a poisoned guard: the server must keep serving other
/// clients even if one observer callback panicked mid-update.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Job {
    fn new(key: Fingerprint, name: String, grid: Vec<RunSpec>) -> Self {
        Self {
            key,
            name,
            cells: grid.len(),
            grid: Mutex::new(Some(grid)),
            inner: Mutex::new(JobInner {
                state: WireState::Queued,
                done: 0,
                failed: 0,
                cache_hits: 0,
                results: None,
                events: Vec::new(),
                subscribers: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn status(&self) -> (WireState, usize, usize, usize) {
        let inner = relock(&self.inner);
        (inner.state, inner.done, inner.failed, inner.cache_hits)
    }

    fn broadcast(inner: &mut JobInner, line: &str) {
        inner.events.push(line.to_string());
        inner
            .subscribers
            .retain(|tx| tx.send(line.to_string()).is_ok());
    }

    fn on_cell(&self, r: &CellResult) {
        let mut inner = relock(&self.inner);
        inner.done += 1;
        if r.outcome.is_err() {
            inner.failed += 1;
        }
        if r.cached {
            inner.cache_hits += 1;
        }
        let line = protocol::cell_event(self.key, r);
        Self::broadcast(&mut inner, &line);
    }

    fn on_note(&self, label: &str, note: &str) {
        let mut inner = relock(&self.inner);
        let line = protocol::note_event(self.key, label, note);
        Self::broadcast(&mut inner, &line);
    }

    /// Transitions to a terminal state, broadcasts the `done` event to
    /// every subscriber and disconnects them, and wakes blocked
    /// `results` waiters — all under one lock, so a subscriber
    /// registered concurrently either receives the event or observes
    /// the terminal state up front.
    fn finish(&self, state: WireState, results: Option<Vec<CellResult>>) {
        let mut inner = relock(&self.inner);
        if let Some(results) = &results {
            inner.done = results.len();
            inner.failed = results.iter().filter(|r| r.outcome.is_err()).count();
            inner.cache_hits = results.iter().filter(|r| r.cached).count();
        }
        inner.state = state;
        inner.results = results;
        let line = self.done_line(&inner);
        Self::broadcast(&mut inner, &line);
        inner.subscribers.clear();
        drop(inner);
        self.cv.notify_all();
    }

    fn done_line(&self, inner: &JobInner) -> String {
        protocol::done_event(
            self.key,
            inner.state,
            self.cells,
            inner.failed,
            inner.cache_hits,
        )
    }

    /// Blocks until the job reaches a terminal state.
    fn await_done(&self) -> WireState {
        let mut inner = relock(&self.inner);
        while !matches!(inner.state, WireState::Done | WireState::Aborted) {
            inner = self.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
        inner.state
    }
}

/// Routes runner progress into the job's subscriber streams.
struct JobObserver(Arc<Job>);

impl RunObserver for JobObserver {
    fn cell_finished(&self, result: &CellResult) {
        self.0.on_cell(result);
    }

    fn cache_note(&self, label: &str, note: &str) {
        self.0.on_note(label, note);
    }

    fn audit_violation(&self, label: &str, message: &str) {
        self.0
            .on_note(label, &format!("audit violation: {message}"));
    }
}

struct Shared {
    socket: PathBuf,
    threads: usize,
    cache_on: bool,
    env: NocEnv,
    verbose: bool,
    cache: Arc<CellCache>,
    jobs: Mutex<HashMap<Fingerprint, Arc<Job>>>,
    queue: Mutex<VecDeque<Arc<Job>>>,
    queue_cv: Condvar,
    stop: AtomicBool,
}

impl Shared {
    fn log(&self, line: &str) {
        if self.verbose {
            eprintln!("snoc-serve: {line}");
        }
    }

    /// Registers a grid under its key, or returns the already-known
    /// job — the idempotency point. The jobs-map lock makes racing
    /// submissions of one grid intern exactly one job.
    fn intern(&self, key: Fingerprint, name: String, grid: Vec<RunSpec>) -> (Arc<Job>, bool) {
        let mut jobs = relock(&self.jobs);
        if let Some(existing) = jobs.get(&key) {
            return (Arc::clone(existing), true);
        }
        let job = Arc::new(Job::new(key, name, grid));
        jobs.insert(key, Arc::clone(&job));
        relock(&self.queue).push_back(Arc::clone(&job));
        self.queue_cv.notify_one();
        (job, false)
    }

    fn lookup(&self, key: Fingerprint) -> Option<Arc<Job>> {
        relock(&self.jobs).get(&key).cloned()
    }

    fn begin_shutdown(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        self.log("shutdown requested");
        self.queue_cv.notify_all();
        // Wake the accept loop with a throwaway connection.
        let _ = UnixStream::connect(&self.socket);
    }
}

/// A running sweep server. Dropping it (or calling
/// [`Server::shutdown`]) stops the listener, lets the executor finish
/// the job in flight, aborts anything still queued, and joins both
/// threads.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    exec: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the socket and starts the accept and executor threads.
    ///
    /// # Errors
    ///
    /// Fails if the socket path cannot be bound (e.g. the directory
    /// does not exist and cannot be created, or another live server
    /// holds it — a *stale* socket file is removed and rebound).
    pub fn start(opts: ServeOptions) -> io::Result<Server> {
        if let Some(parent) = opts.socket.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        if opts.socket.exists() {
            // A live server would still answer; a stale file from a
            // crashed one just blocks the bind. Probe before removing.
            if UnixStream::connect(&opts.socket).is_ok() {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("another server is live on {}", opts.socket.display()),
                ));
            }
            std::fs::remove_file(&opts.socket)?;
        }
        let listener = UnixListener::bind(&opts.socket)?;
        let shared = Arc::new(Shared {
            socket: opts.socket,
            threads: opts.threads.max(1),
            cache_on: opts.cache,
            env: opts.env,
            verbose: opts.verbose,
            cache: Arc::new(CellCache::new(opts.cache_dir)),
            jobs: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        shared.log(&format!(
            "listening on {} ({} worker thread(s), cache {})",
            shared.socket.display(),
            shared.threads,
            if shared.cache_on { "on" } else { "off" }
        ));
        let accept = std::thread::spawn({
            let shared = Arc::clone(&shared);
            move || accept_loop(&shared, listener)
        });
        let exec = std::thread::spawn({
            let shared = Arc::clone(&shared);
            move || executor(&shared)
        });
        Ok(Server {
            shared,
            accept: Some(accept),
            exec: Some(exec),
        })
    }

    /// The socket clients should connect to.
    pub fn socket(&self) -> &Path {
        &self.shared.socket
    }

    /// Initiates shutdown and joins the server threads (equivalent to
    /// dropping, but explicit at call sites).
    pub fn shutdown(self) {}

    /// Blocks until the server stops (a client sent `shutdown`).
    pub fn wait(mut self) {
        for h in [self.accept.take(), self.exec.take()].into_iter().flatten() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
        for h in [self.accept.take(), self.exec.take()].into_iter().flatten() {
            let _ = h.join();
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: UnixListener) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            let _ = client_loop(&shared, stream);
        });
    }
    let _ = std::fs::remove_file(&shared.socket);
    shared.log("listener stopped");
}

/// The executor: one job at a time, FIFO, on a fresh per-job
/// [`SweepRunner`] that shares the server-wide cell cache.
fn executor(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = relock(&shared.queue);
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    break None;
                }
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                queue = shared
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(job) = job else { break };
        relock(&job.inner).state = WireState::Running;
        shared.log(&format!("job {} running ({} cells)", job.key, job.cells));
        let grid = relock(&job.grid).take().expect("grid taken exactly once");
        let runner = SweepRunner::new()
            .threads(shared.threads)
            // Specs were env-resolved at submission; the runner itself
            // must stay hermetic no matter what the environment says
            // by the time the job reaches the front of the queue.
            .noc_env(NocEnv::default())
            .cache(shared.cache_on)
            .shared_cache(Arc::clone(&shared.cache))
            .observer(JobObserver(Arc::clone(&job)));
        // Per-cell panics are already isolated inside `run_grid`; this
        // outer guard is the last line of defence for the executor
        // itself (a bug in an observer, an allocation failure): the
        // job is marked aborted and the server keeps serving.
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| runner.run_grid(&job.name, grid)));
        match outcome {
            Ok(results) => {
                shared.log(&format!("job {} done", job.key));
                job.finish(WireState::Done, Some(results));
            }
            Err(_) => {
                shared.log(&format!("job {} aborted (runner panicked)", job.key));
                job.finish(WireState::Aborted, None);
            }
        }
    }
    // Unblock clients waiting on jobs that will now never run.
    let rest: Vec<_> = relock(&shared.queue).drain(..).collect();
    for job in rest {
        job.finish(WireState::Aborted, None);
    }
    shared.log("executor stopped");
}

fn client_loop(shared: &Arc<Shared>, stream: UnixStream) -> io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let keep_serving = match protocol::parse_request(&line) {
            Err(e) => {
                writeln!(writer, "{}", protocol::error_line(&e))?;
                true
            }
            Ok(req) => dispatch(shared, &mut writer, req)?,
        };
        writer.flush()?;
        if !keep_serving {
            break;
        }
    }
    Ok(())
}

/// Handles one request; returns `false` when the connection should
/// close (shutdown).
fn dispatch(shared: &Arc<Shared>, writer: &mut impl Write, req: Request) -> io::Result<bool> {
    match req {
        Request::Ping => writeln!(writer, "{}", protocol::pong_line())?,
        Request::Shutdown => {
            writeln!(writer, "{}", protocol::shutdown_line())?;
            writer.flush()?;
            shared.begin_shutdown();
            return Ok(false);
        }
        Request::Status(key) => match shared.lookup(key) {
            None => writeln!(writer, "{}", protocol::error_line("unknown job"))?,
            Some(job) => {
                let (state, done, failed, hits) = job.status();
                writeln!(
                    writer,
                    "{}",
                    protocol::status_line(key, state, job.cells, done, failed, hits)
                )?;
            }
        },
        Request::Wait(key) => match shared.lookup(key) {
            None => writeln!(writer, "{}", protocol::error_line("unknown job"))?,
            Some(job) => stream_job(writer, &job)?,
        },
        Request::Results(key) => match shared.lookup(key) {
            None => writeln!(writer, "{}", protocol::error_line("unknown job"))?,
            Some(job) => write_results(writer, &job)?,
        },
        Request::Submit { job: req, wait } => {
            if shared.stop.load(Ordering::SeqCst) {
                writeln!(
                    writer,
                    "{}",
                    protocol::error_line("server is shutting down")
                )?;
                return Ok(true);
            }
            match jobs::build_grid(&req) {
                Err(e) => writeln!(writer, "{}", protocol::error_line(&e))?,
                Ok((name, grid)) => {
                    // Environment pinning: the startup snapshot becomes
                    // explicit spec fields *now*, so the job the client
                    // is acknowledged for is the job that runs.
                    let grid: Vec<RunSpec> = grid
                        .into_iter()
                        .map(|s| s.resolve_env(&shared.env))
                        .collect();
                    let key = jobs::job_key(&grid);
                    let cells = grid.len();
                    let (job, deduped) = shared.intern(key, name, grid);
                    let (state, ..) = job.status();
                    if !deduped {
                        shared.log(&format!("job {key} queued ({cells} cells)"));
                    }
                    writeln!(
                        writer,
                        "{}",
                        protocol::submit_line(key, state, deduped, job.cells)
                    )?;
                    if wait {
                        writer.flush()?;
                        stream_job(writer, &job)?;
                    }
                }
            }
        }
    }
    Ok(true)
}

/// Streams progress events until the job reaches a terminal state.
///
/// The backlog snapshot and the subscription happen under one lock, so
/// the client sees every event exactly once no matter how the stream
/// races the job: an already-finished job replays its whole history
/// (ending in the `done` terminator), a running one replays what it
/// missed and then follows live.
fn stream_job(writer: &mut impl Write, job: &Job) -> io::Result<()> {
    let (backlog, rx) = {
        let mut inner = relock(&job.inner);
        let backlog = inner.events.clone();
        if matches!(inner.state, WireState::Done | WireState::Aborted) {
            (backlog, None)
        } else {
            let (tx, rx) = mpsc::channel();
            inner.subscribers.push(tx);
            (backlog, Some(rx))
        }
    };
    for line in &backlog {
        writeln!(writer, "{line}")?;
    }
    writer.flush()?;
    // The sender side is dropped right after the `done` event is
    // broadcast, so this loop always terminates.
    for line in rx.into_iter().flatten() {
        writeln!(writer, "{line}")?;
        writer.flush()?;
    }
    Ok(())
}

/// Per-cell metrics payloads, in the cell-cache text codec, each
/// sealed under a key derived from the job key and cell index.
fn write_results(writer: &mut impl Write, job: &Job) -> io::Result<()> {
    let state = job.await_done();
    if state == WireState::Aborted {
        writeln!(
            writer,
            "{}",
            protocol::error_line("job aborted by server shutdown")
        )?;
        return Ok(());
    }
    let inner = relock(&job.inner);
    let results = inner.results.as_ref().expect("done jobs carry results");
    for r in results {
        let payload = match &r.outcome {
            Ok(m) => {
                let instrumented = m.audit.is_some() || m.telemetry.is_some() || m.faults.is_some();
                let mut plain = m.clone();
                plain.audit = None;
                plain.telemetry = None;
                plain.faults = None;
                let mkey = result_key(job.key, r.index);
                Ok((mkey, cellcache::encode_metrics(&plain, mkey), instrumented))
            }
            Err(e) => Err(e.to_string()),
        };
        writeln!(
            writer,
            "{}",
            protocol::result_event(job.key, r.index, &r.label, &payload)
        )?;
    }
    let line = job.done_line(&inner);
    drop(inner);
    writeln!(writer, "{line}")?;
    Ok(())
}

/// The fingerprint a result payload is sealed under (echoed on the
/// wire so clients can verify the document).
pub fn result_key(job: Fingerprint, index: usize) -> Fingerprint {
    let mut h = StableHasher::new();
    h.write_str("snoc-result/1");
    h.write_str(&job.to_hex());
    h.write_usize(index);
    h.finish()
}
