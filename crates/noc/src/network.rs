//! The assembled 3D network: 128 routers in two stacked 8x8 meshes,
//! their network interfaces, the routing/region/parent machinery and
//! the congestion estimators, advanced cycle by cycle.

use crate::arena::Arena;
use crate::audit::{AuditConfig, AuditReport, NetAuditor};
use crate::estimator::{EstimatorState, RcaState, WbEstimator};
use crate::fault::{FaultPlan, FaultState, FaultSummary};
use crate::nic::{DeliveryEvent, Nic};
use crate::packet::{Flit, Packet, TrafficClass, WbTag};
use crate::parent::ParentMap;
use crate::partition::PartitionMap;
use crate::regions::RegionMap;
use crate::router::{NetView, Router, StepParams, SwitchMove, MAX_BURST, PORTS};
use crate::routing::RoutingTable;
use crate::telemetry::{NetTelemetry, TelemetryConfig, TelemetrySummary};
use crate::workspace::{NocWorkspace, WsView};
use snoc_common::config::{
    ArbitrationPolicy, Estimator, NocConfig, RequestPathMode, SystemConfig, TsbPlacement,
};
use snoc_common::geom::{Coord, Direction, Layer, Mesh};
use snoc_common::ids::{BankId, NodeId, PacketId, RegionId};
use snoc_common::stats::Accumulator;
use snoc_common::Cycle;

/// Construction parameters for a [`Network`].
#[derive(Debug, Clone, Copy)]
pub struct NetworkParams {
    /// Router/topology parameters.
    pub noc: NocConfig,
    /// How core->cache requests cross between dies.
    pub path_mode: RequestPathMode,
    /// Number of logical cache-layer regions.
    pub regions: usize,
    /// TSB placement rule.
    pub placement: TsbPlacement,
    /// Parent-child re-ordering distance (hops).
    pub parent_hops: u32,
    /// Arbitration policy.
    pub arbitration: ArbitrationPolicy,
    /// WB estimator sampling window.
    pub wb_window: u32,
    /// Bank read service latency (for busy prediction).
    pub bank_read_latency: u64,
    /// Bank write service latency (for busy prediction).
    pub bank_write_latency: u64,
    /// NI outbox capacity at cache-layer nodes (bounded: busy banks
    /// push back into the network).
    pub cache_outbox_cap: usize,
    /// NI outbox capacity at core-layer nodes.
    pub core_outbox_cap: usize,
    /// Livelock guard: maximum hold duration at a parent.
    pub max_hold: Cycle,
    /// Release slack for held packets (cycles).
    pub hold_slack: Cycle,
    /// Invariant auditing configuration (`None` = off).
    pub audit: Option<AuditConfig>,
    /// Telemetry collection configuration (`None` = off).
    pub telemetry: Option<TelemetryConfig>,
    /// Fault-injection campaign (`None` = off).
    pub faults: Option<FaultPlan>,
}

/// A one-time snapshot of the NoC environment fallbacks
/// (`SNOC_AUDIT`, `SNOC_TELEMETRY`, `SNOC_FAULTS`, `SNOC_SHARDS`).
///
/// [`NetworkParams::from_config`] historically read those variables at
/// *construction time*, i.e. once per simulation cell. In a
/// long-running multi-tenant process (the sweep server) that is
/// cross-job contamination: an environment mutation between accepting
/// a job and running its cells would alter the accepted job. Capturing
/// the environment once into a `NocEnv` and resolving parameters
/// through [`NetworkParams::resolve`] pins every cell to the snapshot
/// taken at startup. `NocEnv::default()` is the hermetic "no
/// environment" snapshot (everything off, serial stepping).
#[derive(Debug, Clone, Copy, Default)]
pub struct NocEnv {
    /// `SNOC_AUDIT` resolution (`None` = off).
    pub audit: Option<AuditConfig>,
    /// `SNOC_TELEMETRY` resolution (`None` = off).
    pub telemetry: Option<TelemetryConfig>,
    /// `SNOC_FAULTS` resolution (`None` = off).
    pub faults: Option<FaultPlan>,
    /// `SNOC_SHARDS` resolution (`None` = unset, i.e. serial).
    pub shards: Option<usize>,
}

impl NocEnv {
    /// Reads all four fallback variables, once, now.
    pub fn capture() -> Self {
        Self {
            audit: AuditConfig::from_env(),
            telemetry: TelemetryConfig::from_env(),
            faults: FaultPlan::from_env(),
            shards: std::env::var("SNOC_SHARDS")
                .ok()
                .and_then(|v| v.parse().ok()),
        }
    }
}

impl NetworkParams {
    /// Derives the network parameters from a full system
    /// configuration, reading the environment fallbacks *now* (the
    /// historical per-cell behaviour; single-shot binaries and direct
    /// [`Network::new`] users keep it). Multi-cell engines should
    /// capture a [`NocEnv`] once and call [`NetworkParams::resolve`].
    pub fn from_config(cfg: &SystemConfig) -> Self {
        Self::resolve(cfg, &NocEnv::capture())
    }

    /// Derives the network parameters from a full system
    /// configuration, with every environment fallback taken from the
    /// pre-captured `env` snapshot instead of the live process
    /// environment.
    pub fn resolve(cfg: &SystemConfig, env: &NocEnv) -> Self {
        let mut noc = cfg.noc;
        if noc.shards == 0 {
            // Unset in the config: the captured `SNOC_SHARDS` knob
            // decides, defaulting to the serial single partition.
            noc.shards = env.shards.unwrap_or(1);
        }
        Self {
            noc,
            path_mode: cfg.path_mode,
            regions: cfg.regions,
            placement: cfg.tsb_placement,
            parent_hops: cfg.parent_hops,
            arbitration: cfg.arbitration,
            wb_window: cfg.wb_window,
            bank_read_latency: cfg.l2_read_service_latency(),
            bank_write_latency: cfg.l2_write_latency(),
            cache_outbox_cap: 4,
            core_outbox_cap: 64,
            max_hold: 3 * cfg.mem.stt_write_latency,
            hold_slack: cfg.noc.hold_slack,
            audit: env.audit,
            telemetry: env.telemetry,
            faults: env.faults,
        }
    }
}

/// Aggregate network statistics.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// Packets handed to `inject`.
    pub offered: u64,
    /// Packets delivered to endpoint outboxes.
    pub delivered: u64,
    /// End-to-end latency of delivered packets.
    pub latency: Accumulator,
    /// Latency of request-class packets.
    pub request_latency: Accumulator,
    /// Latency of response-class packets.
    pub response_latency: Accumulator,
    /// Latency of coherence-class packets.
    pub coherence_latency: Accumulator,
    /// Flits over horizontal (in-layer) links.
    pub lateral_flits: u64,
    /// Flits over vertical TSV/TSB links.
    pub vertical_flits: u64,
    /// Vertical flits that rode the second lane of a wide TSB.
    pub wide_tsb_flits: u64,
    /// Window-based estimator acks processed.
    pub tag_acks: u64,
}

/// A wake list over `n` indexed components, stored as a bitmask so
/// membership updates are O(1) and iteration visits members in
/// ascending index order — exactly the order the former full scans
/// used, which keeps activity-driven stepping byte-identical to
/// stepping everything and skipping the idle.
#[derive(Debug, Clone)]
struct WakeMask {
    bits: Vec<u64>,
}

impl WakeMask {
    fn new(n: usize) -> Self {
        Self {
            bits: vec![0; n.div_ceil(64)],
        }
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.bits[i >> 6] |= 1 << (i & 63);
    }

    #[inline]
    fn clear(&mut self, i: usize) {
        self.bits[i >> 6] &= !(1 << (i & 63));
    }

    fn words(&self) -> usize {
        self.bits.len()
    }

    /// Puts every member back to sleep (warm-state reset).
    fn zero(&mut self) {
        self.bits.fill(0);
    }

    /// Snapshot of one 64-bit word (safe to take while clearing bits
    /// of the same mask or setting bits of *other* masks).
    #[inline]
    fn word(&self, w: usize) -> u64 {
        self.bits[w]
    }
}

/// The network view handed to routers.
struct View<'a> {
    arena: &'a Arena,
    routing: &'a RoutingTable,
    mesh: Mesh,
}

impl NetView for View<'_> {
    fn packet(&self, id: PacketId) -> &Packet {
        self.arena.get(id)
    }
    fn route(&self, at: Coord, packet: &Packet) -> Direction {
        self.routing.next_hop(at, packet)
    }
    fn dest_bank(&self, packet: &Packet) -> Option<BankId> {
        packet.dest_bank(self.mesh)
    }
}

/// Minimum total buffered flits before the partition phase spawns
/// threads: below this the scope/spawn overhead dwarfs the work.
/// Gating on load cannot change outputs — the merge phase replays the
/// partition mailboxes in the same canonical order either way.
const SPAWN_THRESHOLD: usize = 768;

/// Read-only state shared by every partition during the parallel
/// phase of a cycle.
struct StepShared<'a> {
    view: View<'a>,
    now: Cycle,
    router_stages: u64,
    policy: ArbitrationPolicy,
    max_hold: Cycle,
    hold_slack: Cycle,
    tsb_extra: usize,
    wide_down: &'a [bool],
    fault_blocked: Option<&'a [u8]>,
}

/// One partition's mutable slice of the network: its workspace shard,
/// its routers and NICs, its wake masks (local bit indices) and its
/// outbound mailboxes (`moves`, `stamps`), merged serially at the
/// cycle boundary.
struct PartCtx<'a> {
    /// First global router index of the partition.
    start: usize,
    ws: &'a mut NocWorkspace,
    routers: &'a mut [Router],
    nics: &'a mut [Nic],
    inject_wake: &'a mut WakeMask,
    router_wake: &'a mut WakeMask,
    moves: &'a mut Vec<(usize, SwitchMove)>,
    stamps: &'a mut Vec<PacketId>,
}

/// Per-partition mailbox scratch, persistent across cycles.
#[derive(Debug, Default)]
struct PartScratch {
    /// Granted switch moves, in local VA/SA visit order.
    moves: Vec<(usize, SwitchMove)>,
    /// Packets whose head flit entered the network this cycle
    /// (`injected_at` is stamped after the partition barrier).
    stamps: Vec<PacketId>,
}

/// The intra-cycle work of one partition: injection at its NICs, then
/// VC and switch allocation at its routers, all against its own
/// workspace shard. Granted moves land in the partition mailbox; the
/// serial merge phase applies them in (partition, collection) order,
/// which — partitions being contiguous ascending index ranges — is
/// exactly the global ascending order of the serial stepper.
fn step_partition(ctx: &mut PartCtx<'_>, sh: &StepShared<'_>) {
    // Injection: one flit per woken NI per cycle.
    for w in 0..ctx.inject_wake.words() {
        let mut word = ctx.inject_wake.word(w);
        while word != 0 {
            let li = (w << 6) + word.trailing_zeros() as usize;
            word &= word - 1;
            if ctx.nics[li].inject_backlog() == 0 {
                ctx.inject_wake.clear(li);
                continue;
            }
            if ctx.nics[li].inject_step(
                &mut ctx.routers[li],
                ctx.ws,
                sh.view.arena,
                sh.now,
                sh.router_stages,
                ctx.stamps,
            ) {
                ctx.router_wake.set(li);
            }
            if ctx.nics[li].inject_backlog() == 0 {
                ctx.inject_wake.clear(li);
            }
        }
    }

    // VC allocation and switch allocation at every active router.
    for w in 0..ctx.router_wake.words() {
        let mut word = ctx.router_wake.word(w);
        while word != 0 {
            let li = (w << 6) + word.trailing_zeros() as usize;
            word &= word - 1;
            let idx = ctx.start + li;
            if ctx.ws.buffered(idx) == 0 {
                ctx.router_wake.clear(li);
                continue;
            }
            let p = StepParams {
                now: sh.now,
                policy: sh.policy,
                max_hold: sh.max_hold,
                hold_slack: sh.hold_slack,
                wide_down: sh.wide_down[idx],
                tsb_extra: sh.tsb_extra,
                blocked: sh.fault_blocked.map_or(0, |b| b[idx]),
            };
            ctx.routers[li].step_va(ctx.ws, &sh.view, p);
            for m in ctx.routers[li].step_sa(ctx.ws, &sh.view, p) {
                ctx.moves.push((idx, *m));
            }
        }
    }
}

/// The cycle-level 3D NoC simulator.
#[derive(Debug)]
pub struct Network {
    params: NetworkParams,
    mesh: Mesh,
    pub(crate) routing: RoutingTable,
    parents: ParentMap,
    pub(crate) routers: Vec<Router>,
    /// Contiguous band-aligned partitions of the router index space.
    parts: PartitionMap,
    /// The structure-of-arrays stores holding every router's VC
    /// buffer, credit and hold lanes — one shard per partition, each
    /// indexed by *global* router index.
    pub(crate) shards: Vec<NocWorkspace>,
    pub(crate) nics: Vec<Nic>,
    pub(crate) arena: Arena,
    estimator: EstimatorState,
    wide_down: Vec<bool>,
    now: Cycle,
    stats: NetStats,
    /// Per-partition wake lists (local bit indices). Routers that may
    /// have work: a router is woken when a flit enters it and put back
    /// to sleep when visited empty.
    router_wake: Vec<WakeMask>,
    /// NICs with injection backlog (woken on enqueue), per partition.
    nic_inject_wake: Vec<WakeMask>,
    /// NICs with buffered ejection flits (woken on ejection), per
    /// partition.
    nic_eject_wake: Vec<WakeMask>,
    /// Per-partition mailbox scratch, persistent across cycles.
    scratch: Vec<PartScratch>,
    /// Whether the partition phase may use scoped threads (more than
    /// one partition and more than one host core).
    spawn_threads: bool,
    /// Cycles whose partition phase actually ran on spawned threads
    /// (diagnostics: the work gate keeps light cycles inline).
    spawned_cycles: u64,
    /// Indices of parent routers (non-empty child list), ascending.
    parent_idxs: Vec<u32>,
    /// Persistent scratch for the NIC drain credit sink.
    eject_credits: Vec<(usize, u8)>,
    /// Persistent scratch for the NIC drain event sink.
    eject_events: Vec<DeliveryEvent>,
    /// Optional invariant checker, boxed off the hot state.
    auditor: Option<Box<NetAuditor>>,
    /// Optional telemetry collector, boxed off the hot state.
    telemetry: Option<Box<NetTelemetry>>,
    /// Optional fault-injection campaign, boxed off the hot state.
    faults: Option<Box<FaultState>>,
}

impl Network {
    /// Builds the network.
    ///
    /// # Panics
    ///
    /// Panics if the region count cannot tile the mesh.
    pub fn new(params: NetworkParams) -> Self {
        assert!(
            params.noc.tsb_width_factor <= MAX_BURST,
            "tsb_width_factor {} exceeds the supported burst bound {MAX_BURST}",
            params.noc.tsb_width_factor
        );
        let mesh = Mesh::new(params.noc.width, params.noc.height);
        let regions = RegionMap::new(mesh, params.regions, params.placement);
        let parents = ParentMap::new(
            mesh,
            &regions,
            params.parent_hops,
            params.noc.router_stages,
            params.noc.link_latency,
        );
        let n = mesh.nodes_per_layer();

        let mut routers = Vec::with_capacity(2 * n);
        let mut nics = Vec::with_capacity(2 * n);
        let mut wide_down = vec![false; 2 * n];
        for layer in [Layer::Core, Layer::Cache] {
            for node in mesh.nodes() {
                let coord = mesh.coord(node, layer);
                let children = parents
                    .children_of(coord)
                    .map(<[_]>::to_vec)
                    .unwrap_or_default();
                routers.push(Router::new(
                    routers.len(),
                    coord,
                    params.noc.vcs_per_port,
                    params.noc.vc_depth,
                    children,
                ));
                let cap = match layer {
                    Layer::Core => params.core_outbox_cap,
                    Layer::Cache => params.cache_outbox_cap,
                };
                nics.push(Nic::new(
                    coord,
                    params.noc.vcs_per_port,
                    params.noc.vc_depth,
                    params.noc.data_flits,
                    cap,
                ));
            }
        }

        if params.path_mode == RequestPathMode::RegionTsbs {
            for r in 0..regions.regions() {
                let t = regions.tsb_node(snoc_common::ids::RegionId::new(r as u16));
                wide_down[t.index()] = true; // core-layer router above the TSB
            }
        }

        let estimator = match params.arbitration {
            ArbitrationPolicy::BankAware {
                estimator: Estimator::Rca,
            } => EstimatorState::Rca(RcaState::new(2 * n)),
            ArbitrationPolicy::BankAware {
                estimator: Estimator::WindowBased,
            } => {
                let map = parents
                    .parents()
                    .map(|p| {
                        let kids = parents.children_of(p).unwrap().iter().map(|c| c.bank);
                        (p, WbEstimator::new(kids))
                    })
                    .collect();
                EstimatorState::WindowBased(map)
            }
            _ => EstimatorState::Simple,
        };

        let routing = RoutingTable::new(mesh, params.path_mode, regions);
        let parent_idxs = routers
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.children().is_empty())
            .map(|(i, _)| i as u32)
            .collect();
        let telemetry = params.telemetry.map(|cfg| {
            Box::new(NetTelemetry::new(
                cfg,
                routers.len(),
                params.noc.vcs_per_port,
            ))
        });
        if telemetry.is_some() {
            // Routers report VA grants and closed holds through their
            // taps only while a collector is listening.
            for r in &mut routers {
                r.tap = Some(Box::default());
            }
        }
        // Partitions align to bands of two mesh rows (rows of the 2x2
        // router blocks); a `shards` of 0 or 1 is the serial single
        // partition.
        let parts = PartitionMap::new(
            routers.len(),
            2 * params.noc.width as usize,
            params.noc.shards,
        );
        let shards = (0..parts.parts())
            .map(|p| {
                NocWorkspace::with_base(
                    parts.start(p),
                    parts.len(p),
                    params.noc.vcs_per_port,
                    params.noc.vc_depth,
                )
            })
            .collect();
        let spawn_threads = parts.parts() > 1
            && std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) > 1;
        Self {
            params,
            mesh,
            routing,
            parents,
            router_wake: (0..parts.parts())
                .map(|p| WakeMask::new(parts.len(p)))
                .collect(),
            nic_inject_wake: (0..parts.parts())
                .map(|p| WakeMask::new(parts.len(p)))
                .collect(),
            nic_eject_wake: (0..parts.parts())
                .map(|p| WakeMask::new(parts.len(p)))
                .collect(),
            scratch: (0..parts.parts()).map(|_| PartScratch::default()).collect(),
            spawn_threads,
            spawned_cycles: 0,
            parent_idxs,
            eject_credits: Vec::new(),
            eject_events: Vec::new(),
            shards,
            parts,
            routers,
            nics,
            arena: Arena::new(),
            estimator,
            wide_down,
            now: 0,
            stats: NetStats::default(),
            auditor: params.audit.map(|cfg| Box::new(NetAuditor::new(cfg))),
            telemetry,
            faults: params
                .faults
                .map(|plan| Box::new(FaultState::new(plan, 2 * n))),
        }
    }

    /// Returns the network to cycle 0 under `params`, reusing the
    /// allocated workspace shards, packet arena, routers, NICs and
    /// per-partition scratch instead of reconstructing them.
    ///
    /// When the new parameters share this network's physical geometry
    /// (mesh dimensions, VC count/depth, flits per data packet, outbox
    /// capacities and partition count), every component is rewound in
    /// place and all *derived* structures — region map, parent map,
    /// routing table, congestion estimators, wide-TSB flags, parent
    /// index list — are rebuilt from `params` exactly as construction
    /// builds them. The unconditional rebuild matters: a fault
    /// campaign's [`Network::rehome_region`] permanently rewires those
    /// structures, and a reset must not leak that wiring into the next
    /// cell. Auditor, telemetry and fault state are re-derived from
    /// `params` the same way [`Network::new`] derives them, so a reset
    /// network is observably identical to a freshly constructed one
    /// (the lockstep test in `workspace_diff.rs` drives both
    /// move-for-move).
    ///
    /// Geometry changes fall back to full reconstruction.
    pub fn reset(&mut self, params: NetworkParams) {
        let old = &self.params.noc;
        let compatible = old.width == params.noc.width
            && old.height == params.noc.height
            && old.vcs_per_port == params.noc.vcs_per_port
            && old.vc_depth == params.noc.vc_depth
            && old.data_flits == params.noc.data_flits
            && old.shards == params.noc.shards
            && self.params.cache_outbox_cap == params.cache_outbox_cap
            && self.params.core_outbox_cap == params.core_outbox_cap;
        if !compatible {
            *self = Network::new(params);
            return;
        }
        assert!(
            params.noc.tsb_width_factor <= MAX_BURST,
            "tsb_width_factor {} exceeds the supported burst bound {MAX_BURST}",
            params.noc.tsb_width_factor
        );

        // Derived wiring, rebuilt from scratch (never carried over).
        let regions = RegionMap::new(self.mesh, params.regions, params.placement);
        let parents = ParentMap::new(
            self.mesh,
            &regions,
            params.parent_hops,
            params.noc.router_stages,
            params.noc.link_latency,
        );
        for r in &mut self.routers {
            let children = parents
                .children_of(r.coord())
                .map(<[_]>::to_vec)
                .unwrap_or_default();
            r.reset(children);
        }
        self.wide_down.iter_mut().for_each(|w| *w = false);
        if params.path_mode == RequestPathMode::RegionTsbs {
            for r in 0..regions.regions() {
                let t = regions.tsb_node(RegionId::new(r as u16));
                self.wide_down[t.index()] = true;
            }
        }
        self.estimator = match params.arbitration {
            ArbitrationPolicy::BankAware {
                estimator: Estimator::Rca,
            } => EstimatorState::Rca(RcaState::new(self.routers.len())),
            ArbitrationPolicy::BankAware {
                estimator: Estimator::WindowBased,
            } => {
                let map = parents
                    .parents()
                    .map(|p| {
                        let kids = parents.children_of(p).unwrap().iter().map(|c| c.bank);
                        (p, WbEstimator::new(kids))
                    })
                    .collect();
                EstimatorState::WindowBased(map)
            }
            _ => EstimatorState::Simple,
        };
        self.parent_idxs = self
            .routers
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.children().is_empty())
            .map(|(i, _)| i as u32)
            .collect();
        self.routing = RoutingTable::new(self.mesh, params.path_mode, regions);
        self.parents = parents;

        // Allocated state, rewound in place.
        for ws in &mut self.shards {
            ws.reset();
        }
        for nic in &mut self.nics {
            nic.reset(params.noc.vc_depth);
        }
        self.arena.reset();
        for mask in self
            .router_wake
            .iter_mut()
            .chain(&mut self.nic_inject_wake)
            .chain(&mut self.nic_eject_wake)
        {
            mask.zero();
        }
        for s in &mut self.scratch {
            s.moves.clear();
            s.stamps.clear();
        }
        self.eject_credits.clear();
        self.eject_events.clear();
        self.now = 0;
        self.spawned_cycles = 0;
        self.stats = NetStats::default();

        // Instrumentation, re-derived exactly as `new` derives it.
        self.auditor = params.audit.map(|cfg| Box::new(NetAuditor::new(cfg)));
        self.telemetry = params.telemetry.map(|cfg| {
            Box::new(NetTelemetry::new(
                cfg,
                self.routers.len(),
                params.noc.vcs_per_port,
            ))
        });
        if self.telemetry.is_some() {
            for r in &mut self.routers {
                r.tap = Some(Box::default());
            }
        }
        self.faults = params
            .faults
            .map(|plan| Box::new(FaultState::new(plan, self.routers.len())));
        self.params = params;
    }

    /// The mesh geometry.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// The region map in force.
    pub fn regions(&self) -> &RegionMap {
        self.routing.regions()
    }

    /// The parent/child mapping in force.
    pub fn parents(&self) -> &ParentMap {
        &self.parents
    }

    /// The construction parameters.
    pub fn params(&self) -> &NetworkParams {
        &self.params
    }

    /// Current simulation cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Packets currently in flight (injected or queued, not yet
    /// consumed by an endpoint).
    pub fn in_flight(&self) -> usize {
        self.arena.live()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Cycles whose partition phase ran on spawned threads
    /// (diagnostics; zero when serial or when every cycle stayed under
    /// the work gate).
    pub fn spawned_cycles(&self) -> u64 {
        self.spawned_cycles
    }

    /// The audit report, when auditing is enabled.
    pub fn audit_report(&self) -> Option<&AuditReport> {
        self.auditor.as_deref().map(NetAuditor::report)
    }

    /// Router index for a coordinate.
    pub(crate) fn ridx(&self, c: Coord) -> usize {
        let n = self.mesh.nodes_per_layer();
        let base = if c.layer == Layer::Cache { n } else { 0 };
        base + self.mesh.node(c).index()
    }

    /// Read access to the router at a coordinate.
    pub fn router(&self, c: Coord) -> &Router {
        &self.routers[self.ridx(c)]
    }

    /// The workspace shard owning `router` (global index).
    pub(crate) fn shard(&self, router: usize) -> &NocWorkspace {
        &self.shards[self.parts.of(router)]
    }

    /// A read view over every workspace shard, dispatching global
    /// router indices (instrumentation and conformance tests).
    pub fn ws_view(&self) -> WsView<'_> {
        WsView::new(&self.shards)
    }

    /// Partition of a router, with a branch instead of a table walk on
    /// the serial path (the common case, and the one the perf baseline
    /// gates).
    #[inline]
    fn part_of(&self, idx: usize) -> usize {
        if self.shards.len() == 1 {
            0
        } else {
            self.parts.of(idx)
        }
    }

    #[inline]
    fn wake_router(&mut self, idx: usize) {
        if self.router_wake.len() == 1 {
            self.router_wake[0].set(idx);
        } else {
            let p = self.parts.of(idx);
            self.router_wake[p].set(idx - self.parts.start(p));
        }
    }

    #[inline]
    fn wake_nic_inject(&mut self, idx: usize) {
        if self.nic_inject_wake.len() == 1 {
            self.nic_inject_wake[0].set(idx);
        } else {
            let p = self.parts.of(idx);
            self.nic_inject_wake[p].set(idx - self.parts.start(p));
        }
    }

    #[inline]
    fn wake_nic_eject(&mut self, idx: usize) {
        if self.nic_eject_wake.len() == 1 {
            self.nic_eject_wake[0].set(idx);
        } else {
            let p = self.parts.of(idx);
            self.nic_eject_wake[p].set(idx - self.parts.start(p));
        }
    }

    /// Iterates all routers.
    pub fn routers(&self) -> impl Iterator<Item = &Router> {
        self.routers.iter()
    }

    /// Packets waiting in the injection queues of the NI at `at`
    /// (endpoint back-pressure probe).
    pub fn inject_backlog(&self, at: Coord) -> usize {
        self.nics[self.ridx(at)].inject_backlog()
    }

    /// Queues a packet for injection at its source NI; returns its id.
    pub fn inject(&mut self, packet: Packet) -> PacketId {
        let src = packet.src;
        let class = packet.kind.class();
        let id = self.arena.insert(packet);
        if let Some(a) = &mut self.auditor {
            a.note_offered(self.arena.get(id).uid, self.now);
        }
        if let Some(t) = &mut self.telemetry {
            t.note_inject(self.arena.get(id).uid, src, self.now);
        }
        let idx = self.ridx(src);
        self.nics[idx].enqueue(id, class);
        self.wake_nic_inject(idx);
        self.stats.offered += 1;
        id
    }

    /// Takes the packets delivered at a node since the last drain.
    pub fn drain_delivered(&mut self, at: Coord) -> Vec<Packet> {
        self.drain_delivered_up_to(at, usize::MAX)
    }

    /// Takes at most `max` delivered packets at a node; the remainder
    /// stays in the NI outbox and back-pressures the network (the
    /// paper's "queued at the network interface").
    pub fn drain_delivered_up_to(&mut self, at: Coord, max: usize) -> Vec<Packet> {
        let idx = self.ridx(at);
        let mut delivered = self.nics[idx].pop_delivered_up_to(&mut self.arena, max);
        for p in &delivered {
            if let Some(a) = &mut self.auditor {
                a.note_delivered(p.uid, self.now);
            }
            let lat = p.net_latency() as f64;
            self.stats.delivered += 1;
            self.stats.latency.record(lat);
            match p.kind.class() {
                TrafficClass::Request => self.stats.request_latency.record(lat),
                TrafficClass::Response => self.stats.response_latency.record(lat),
                TrafficClass::Coherence => self.stats.coherence_latency.record(lat),
            }
            if let Some(t) = &mut self.telemetry {
                let hops = p.src.manhattan(p.dst) + u32::from(p.src.layer != p.dst.layer);
                t.note_deliver(p.uid, at, p.kind.class(), hops, p.net_latency(), self.now);
            }
        }
        // Fault injection: a bank in a dropped-ack episode may lose a
        // request *after* network delivery (the network conserved the
        // packet — the auditor and latency stats above already saw it —
        // but the endpoint never does; the NI timeout re-injects it).
        if let Some(f) = &mut self.faults {
            if f.may_drop() {
                let (mesh, now) = (self.mesh, self.now);
                delivered.retain(|p| f.filter_delivery(p, mesh, now));
            }
        }
        delivered
    }

    /// Advances the network by one cycle.
    ///
    /// The cycle runs in phases. The partition phase — injection plus
    /// VC/switch allocation — touches only partition-local state and
    /// may run one scoped thread per partition; everything that
    /// crosses a partition boundary (link flit transfers, credit
    /// returns, `injected_at` stamps, telemetry taps) is exchanged
    /// through per-partition mailboxes replayed serially in
    /// (partition, collection) order, which equals the global
    /// ascending-index order of the serial stepper — so run
    /// fingerprints are byte-identical at any shard count.
    ///
    /// Each phase walks its wake list instead of every component: the
    /// lists hold a superset of the components with work, are visited
    /// in ascending index order (identical to the former full scans),
    /// and members found idle are dropped — so quiescent corners of
    /// the two meshes cost zero work per cycle.
    pub fn step(&mut self) {
        self.fault_tick();
        let now = self.now;
        self.refresh_child_cong();

        self.step_partitions(now);
        self.merge_partitions(now);
        self.drain_ejection(now);

        // Estimator upkeep.
        if let EstimatorState::Rca(rca) = &mut self.estimator {
            let routers = &self.routers;
            let ws = WsView::new(&self.shards);
            let mesh = self.mesh;
            let n = mesh.nodes_per_layer();
            rca.propagate(
                |i| ws.occupancy_byte(i),
                |i, dir| {
                    let coord = routers[i].coord();
                    mesh.neighbour(coord, dir).map(|c| {
                        let base = if c.layer == Layer::Cache { n } else { 0 };
                        base + mesh.node(c).index()
                    })
                },
            );
        }
        if now.is_multiple_of(self.params.noc.wb_expire_period) {
            if let EstimatorState::WindowBased(map) = &mut self.estimator {
                for wb in map.values_mut() {
                    wb.expire_stale(now, self.params.noc.wb_tag_timeout);
                }
            }
        }

        // Telemetry sees the same end-of-step state the auditor checks.
        if let Some(t) = &mut self.telemetry {
            t.on_cycle_end(
                now,
                &self.routers,
                &WsView::new(&self.shards),
                self.arena.live(),
                self.stats.delivered,
                &self.wide_down,
            );
        }

        // Invariants hold at end-of-step: flit movement and credit
        // returns are synchronous, so there is no on-the-wire state.
        if let Some(mut a) = self.auditor.take() {
            a.audit_cycle(self);
            self.auditor = Some(a);
        }

        self.now += 1;
    }

    /// The parallel phase: injection and VC/switch allocation per
    /// partition. With one partition (or one host core, or too little
    /// buffered work to amortize a spawn) the partitions step inline
    /// on this thread — same code, same mailboxes, same results.
    #[inline]
    fn step_partitions(&mut self, now: Cycle) {
        let np = self.parts.parts();
        if np == 1 {
            self.step_serial(now);
            return;
        }
        let shared = StepShared {
            view: View {
                arena: &self.arena,
                routing: &self.routing,
                mesh: self.mesh,
            },
            now,
            router_stages: self.params.noc.router_stages,
            policy: self.params.arbitration,
            max_hold: self.params.max_hold,
            hold_slack: self.params.hold_slack,
            tsb_extra: self.params.noc.tsb_width_factor.saturating_sub(1),
            wide_down: &self.wide_down,
            fault_blocked: self.faults.as_deref().map(FaultState::blocked_masks),
        };

        let run_parallel = self.spawn_threads
            && self
                .shards
                .iter()
                .map(NocWorkspace::total_buffered)
                .sum::<usize>()
                >= SPAWN_THRESHOLD;
        let mut ctxs = Vec::with_capacity(np);
        let mut routers = self.routers.as_mut_slice();
        let mut nics = self.nics.as_mut_slice();
        let rest = self
            .shards
            .iter_mut()
            .zip(&mut self.nic_inject_wake)
            .zip(&mut self.router_wake)
            .zip(&mut self.scratch);
        for (p, (((ws, iw), rw), sc)) in rest.enumerate() {
            let len = self.parts.len(p);
            let (r, tail) = std::mem::take(&mut routers).split_at_mut(len);
            routers = tail;
            let (n, tail) = std::mem::take(&mut nics).split_at_mut(len);
            nics = tail;
            ctxs.push(PartCtx {
                start: self.parts.start(p),
                ws,
                routers: r,
                nics: n,
                inject_wake: iw,
                router_wake: rw,
                moves: &mut sc.moves,
                stamps: &mut sc.stamps,
            });
        }
        if run_parallel {
            self.spawned_cycles += 1;
            let sh = &shared;
            std::thread::scope(|s| {
                for ctx in &mut ctxs {
                    s.spawn(move || step_partition(ctx, sh));
                }
            });
        } else {
            for ctx in &mut ctxs {
                step_partition(ctx, &shared);
            }
        }
    }

    /// The single-partition step, inlined over the network's own
    /// fields: the same injection and VA/SA loops as
    /// [`step_partition`] (same visit order, same mailboxes), without
    /// the context indirection — this is the serial hot path the perf
    /// baseline gates.
    #[inline]
    fn step_serial(&mut self, now: Cycle) {
        let ws = &mut self.shards[0];
        let sc = &mut self.scratch[0];
        let iw = &mut self.nic_inject_wake[0];
        let rw = &mut self.router_wake[0];
        let router_stages = self.params.noc.router_stages;

        // Injection: one flit per woken NI per cycle.
        for w in 0..iw.words() {
            let mut word = iw.word(w);
            while word != 0 {
                let i = (w << 6) + word.trailing_zeros() as usize;
                word &= word - 1;
                if self.nics[i].inject_backlog() == 0 {
                    iw.clear(i);
                    continue;
                }
                if self.nics[i].inject_step(
                    &mut self.routers[i],
                    ws,
                    &self.arena,
                    now,
                    router_stages,
                    &mut sc.stamps,
                ) {
                    rw.set(i);
                }
                if self.nics[i].inject_backlog() == 0 {
                    iw.clear(i);
                }
            }
        }

        // VC allocation and switch allocation at every active router.
        let view = View {
            arena: &self.arena,
            routing: &self.routing,
            mesh: self.mesh,
        };
        let tsb_extra = self.params.noc.tsb_width_factor.saturating_sub(1);
        let fault_blocked = self.faults.as_deref().map(FaultState::blocked_masks);
        for w in 0..rw.words() {
            let mut word = rw.word(w);
            while word != 0 {
                let idx = (w << 6) + word.trailing_zeros() as usize;
                word &= word - 1;
                if ws.buffered(idx) == 0 {
                    rw.clear(idx);
                    continue;
                }
                let p = StepParams {
                    now,
                    policy: self.params.arbitration,
                    max_hold: self.params.max_hold,
                    hold_slack: self.params.hold_slack,
                    wide_down: self.wide_down[idx],
                    tsb_extra,
                    blocked: fault_blocked.map_or(0, |b| b[idx]),
                };
                self.routers[idx].step_va(ws, &view, p);
                for m in self.routers[idx].step_sa(ws, &view, p) {
                    sc.moves.push((idx, *m));
                }
            }
        }
    }

    /// The serial merge at the cycle boundary: apply every partition's
    /// mailbox in (partition, collection) order. Contiguous ascending
    /// partitions make this exactly the order the serial stepper
    /// produces: stamps partition-major = NIC-ascending, taps drained
    /// router-ascending (idle routers hold empty taps), moves
    /// partition-major = VA/SA visit order.
    #[inline]
    fn merge_partitions(&mut self, now: Cycle) {
        for sc in &mut self.scratch {
            for &pid in &sc.stamps {
                self.arena.get_mut(pid).injected_at = now;
            }
            sc.stamps.clear();
        }

        if let Some(t) = &mut self.telemetry {
            for (idx, r) in self.routers.iter_mut().enumerate() {
                let coord = r.coord();
                if let Some(tap) = r.tap.as_mut() {
                    for &(pid, dir, vc) in &tap.va_grants {
                        t.note_va(self.arena.get(pid).uid, coord, dir, vc, now);
                    }
                    for &delay in &tap.hold_delays {
                        t.note_hold(idx, delay);
                    }
                    tap.clear();
                }
            }
        }

        for p in 0..self.scratch.len() {
            let mut moves = std::mem::take(&mut self.scratch[p].moves);
            for (idx, m) in moves.drain(..) {
                self.apply_move(idx, m, now);
            }
            self.scratch[p].moves = moves;
        }
    }

    /// Ejection, assembly and estimator events, partition-major (=
    /// global NIC-ascending order).
    #[inline]
    fn drain_ejection(&mut self, now: Cycle) {
        let mut credits = std::mem::take(&mut self.eject_credits);
        let mut events = std::mem::take(&mut self.eject_events);
        for p in 0..self.parts.parts() {
            let start = self.parts.start(p);
            for w in 0..self.nic_eject_wake[p].words() {
                let mut word = self.nic_eject_wake[p].word(w);
                while word != 0 {
                    let li = (w << 6) + word.trailing_zeros() as usize;
                    word &= word - 1;
                    let i = start + li;
                    credits.clear();
                    self.nics[i].drain_eject(&mut self.arena, now, &mut credits, &mut events);
                    for &(vc, k) in &credits {
                        self.routers[i].return_credit(&mut self.shards[p], Direction::Local, vc, k);
                    }
                    for e in events.drain(..) {
                        self.handle_event(e);
                    }
                    // Draining may have enqueued a tag ack for injection.
                    if self.nics[i].inject_backlog() > 0 {
                        self.nic_inject_wake[p].set(li);
                    }
                    // Back-pressured tails stay buffered and keep the NI
                    // on the wake list.
                    if self.nics[i].eject_buffered() == 0 {
                        self.nic_eject_wake[p].clear(li);
                    }
                }
            }
        }
        self.eject_credits = credits;
        self.eject_events = events;
    }

    /// Runs `cycles` network cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// One cycle of the fault campaign: expire finished episodes, draw
    /// this cycle's events (fixed order, so the schedule is a pure
    /// function of the plan seed), fire the permanent TSB kill, sweep
    /// wedged busy horizons and re-inject due retries. No-op when
    /// injection is off.
    fn fault_tick(&mut self) {
        let Some(mut f) = self.faults.take() else {
            return;
        };
        let now = self.now;
        let plan = *f.plan();
        let n = self.mesh.nodes_per_layer();
        let mut degraded = f.expire(now);

        let (tsb, link, port, bank) = f.draw_events();
        if tsb {
            // A TSB outage severs the vertical hop in both directions:
            // the Down port of the core-layer router above it and the
            // Up port of the cache-layer router below it.
            f.summary.tsb_faults += 1;
            let regions = self.routing.regions();
            let r = f.rng().below(regions.regions());
            let t = regions.tsb_node(RegionId::new(r as u16));
            let until = now + plan.outage_cycles;
            f.push_outage(t.index(), 1 << Direction::Down.port(), until);
            f.push_outage(n + t.index(), 1 << Direction::Up.port(), until);
            degraded = true;
        }
        if link {
            f.summary.link_faults += 1;
            let r = f.rng().below(2 * n);
            let dir = f.draw_lateral();
            f.push_outage(r, 1 << dir.port(), now + plan.outage_cycles);
            degraded = true;
        }
        if port {
            f.summary.port_faults += 1;
            let r = f.rng().below(2 * n);
            let p = f.rng().below(PORTS);
            f.push_outage(r, 1 << p, now + plan.outage_cycles);
            degraded = true;
        }
        if bank {
            f.summary.bank_faults += 1;
            let b = BankId::new(f.rng().below(n) as u16);
            if f.rng().chance(0.5) {
                // Stuck-busy: the parent's prediction wedges far out;
                // the periodic expiry sweep below is what un-wedges it.
                let idx = self.ridx(self.parents.parent_of(b));
                self.routers[idx]
                    .busy
                    .force_busy(b, now + plan.stuck_cycles);
            } else {
                f.push_dropping(b, now + plan.outage_cycles);
            }
            degraded = true;
        }

        if !f.killed {
            if let Some(at) = plan.kill_tsb_at {
                if now >= at
                    && self.params.path_mode == RequestPathMode::RegionTsbs
                    && self.params.regions > 1
                {
                    let regions = self.routing.regions();
                    let victim = RegionId::new(f.rng().below(regions.regions()) as u16);
                    let dead = self.mesh.coord(regions.tsb_node(victim), Layer::Cache);
                    // Re-home onto the nearest surviving TSB (ties break
                    // towards the lowest region index).
                    let survivor = (0..regions.regions() as u16)
                        .filter(|&r| r != victim.raw())
                        .map(|r| regions.tsb_node(RegionId::new(r)))
                        .min_by_key(|&t| dead.manhattan(self.mesh.coord(t, Layer::Cache)));
                    if let Some(survivor) = survivor {
                        self.rehome_region(victim, survivor);
                        f.killed = true;
                        f.summary.rehomed_regions += 1;
                    }
                }
            }
        }

        if plan.expiry_period > 0 && now > 0 && now.is_multiple_of(plan.expiry_period) {
            for &idx in &self.parent_idxs {
                let clamped = self.routers[idx as usize]
                    .busy
                    .expire_stale(now, plan.busy_cap);
                f.summary.busy_expiries += clamped as u64;
            }
        }

        let mut due = Vec::new();
        f.due_retries(now, &mut due);
        for p in due {
            self.inject(p);
        }

        if degraded || f.killed {
            f.summary.degraded_cycles += 1;
        }
        self.faults = Some(f);
    }

    /// Re-homes `region`'s request traffic onto the TSB at `new_tsb`
    /// (fail-stop degradation after a permanent TSB death).
    ///
    /// Rebuilds everything derived from the region map: the memoized
    /// routing table, the parent/child serialization points (and each
    /// router's busy/congestion tables via
    /// [`Router::set_children`]), the wide-TSB lane set and the
    /// window-based estimator state. Router VC and credit state is
    /// untouched, so traffic already in flight drains normally — routes
    /// are recomputed per-position at each VC allocation, stale WB tag
    /// acks are ignored by the estimator's stamp check, and packets
    /// held at a router that stops being a parent release at its next
    /// allocation pass. The dead TSB's port is deliberately *not*
    /// blocked: already-switched flits must drain, and new requests no
    /// longer route through it.
    pub fn rehome_region(&mut self, region: RegionId, new_tsb: NodeId) {
        let mut regions = self.routing.regions().clone();
        regions.retarget_tsb(region, new_tsb);
        let parents = ParentMap::new(
            self.mesh,
            &regions,
            self.params.parent_hops,
            self.params.noc.router_stages,
            self.params.noc.link_latency,
        );
        for r in &mut self.routers {
            let children = parents
                .children_of(r.coord())
                .map(<[_]>::to_vec)
                .unwrap_or_default();
            r.set_children(children);
        }
        self.wide_down.iter_mut().for_each(|w| *w = false);
        if self.params.path_mode == RequestPathMode::RegionTsbs {
            for r in 0..regions.regions() {
                let t = regions.tsb_node(RegionId::new(r as u16));
                self.wide_down[t.index()] = true;
            }
        }
        self.parent_idxs = self
            .routers
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.children().is_empty())
            .map(|(i, _)| i as u32)
            .collect();
        if matches!(self.estimator, EstimatorState::WindowBased(_)) {
            let map = parents
                .parents()
                .map(|p| {
                    let kids = parents.children_of(p).unwrap().iter().map(|c| c.bank);
                    (p, WbEstimator::new(kids))
                })
                .collect();
            self.estimator = EstimatorState::WindowBased(map);
        }
        self.parents = parents;
        self.routing = RoutingTable::new(self.mesh, self.params.path_mode, regions);
    }

    /// Switches fault injection on mid-construction (programmatic
    /// alternative to `SNOC_FAULTS`, race-free under parallel sweeps).
    pub fn enable_faults(&mut self, plan: FaultPlan) {
        self.params.faults = Some(plan);
        self.faults = Some(Box::new(FaultState::new(plan, self.routers.len())));
    }

    /// Switches invariant auditing on mid-construction (programmatic
    /// alternative to `SNOC_AUDIT`, race-free under parallel sweeps).
    pub fn enable_audit(&mut self, cfg: AuditConfig) {
        self.params.audit = Some(cfg);
        self.auditor = Some(Box::new(NetAuditor::new(cfg)));
    }

    /// Switches telemetry collection on mid-construction (programmatic
    /// alternative to `SNOC_TELEMETRY`, race-free under parallel
    /// sweeps). Also installs the per-router taps the collector drains.
    pub fn enable_telemetry(&mut self, cfg: TelemetryConfig) {
        self.params.telemetry = Some(cfg);
        self.telemetry = Some(Box::new(NetTelemetry::new(
            cfg,
            self.routers.len(),
            self.params.noc.vcs_per_port,
        )));
        for r in &mut self.routers {
            r.tap = Some(Box::default());
        }
    }

    /// The fault campaign's summary so far, when injection is enabled.
    pub fn fault_summary(&self) -> Option<FaultSummary> {
        self.faults.as_deref().map(|f| f.summary.clone())
    }

    fn refresh_child_cong(&mut self) {
        if !self.params.arbitration.is_bank_aware() {
            return;
        }
        match &self.estimator {
            EstimatorState::Simple => {}
            EstimatorState::Rca(rca) => {
                let per_hop = self.params.noc.vc_depth * self.params.noc.vcs_per_port;
                for &idx in &self.parent_idxs {
                    let idx = idx as usize;
                    self.routers[idx].refresh_child_cong_with(|c| {
                        rca.estimate_cycles(idx, c.first_hop, per_hop, c.hops)
                            .min(3 * c.base_latency)
                    });
                }
            }
            EstimatorState::WindowBased(map) => {
                for &idx in &self.parent_idxs {
                    let idx = idx as usize;
                    let coord = self.routers[idx].coord();
                    let Some(wb) = map.get(&coord) else { continue };
                    self.routers[idx]
                        .refresh_child_cong_with(|c| wb.estimate(c.bank).min(3 * c.base_latency));
                }
            }
        }
    }

    fn apply_move(&mut self, idx: usize, m: SwitchMove, now: Cycle) {
        let coord = self.routers[idx].coord();
        let nflits = m.flits.len() as u8;

        // Parent bookkeeping: busy-table update and WB tagging happen
        // when the head flit of a bank request is forwarded by the
        // destination bank's parent.
        if m.flits[0].head {
            let pid = m.flits[0].packet;
            let (kind, bank) = {
                let p = self.arena.get(pid);
                (p.kind, p.dest_bank(self.mesh))
            };
            if let Some(bank) = bank {
                if self.routers[idx].manages(bank) {
                    if let EstimatorState::WindowBased(map) = &mut self.estimator {
                        if let Some(wb) = map.get_mut(&coord) {
                            if let Some(stamp) = wb.on_forward(bank, now, self.params.wb_window) {
                                self.arena.get_mut(pid).wb_tag = Some(WbTag {
                                    stamp,
                                    parent: coord,
                                    child: bank,
                                });
                            }
                        }
                    }
                    let service = if kind.is_bank_write() {
                        self.params.bank_write_latency
                    } else {
                        self.params.bank_read_latency
                    };
                    let extra = (kind.flits(self.params.noc.data_flits) - 1) as u64;
                    let view = View {
                        arena: &self.arena,
                        routing: &self.routing,
                        mesh: self.mesh,
                    };
                    let ws = &self.shards[self.part_of(idx)];
                    self.routers[idx].note_forward(
                        ws,
                        bank,
                        kind.is_bank_write(),
                        service,
                        extra,
                        now,
                        &view,
                    );
                }
            }
        }

        if let Some(t) = &mut self.telemetry {
            let uid = self.arena.get(m.flits[0].packet).uid;
            t.note_link(idx, coord, uid, m.out_dir, m.out_vc as u8, nflits, now);
        }

        // Return credits upstream for the freed buffer slots.
        let in_dir = Direction::ALL[m.in_port];
        if in_dir == Direction::Local {
            self.nics[idx].return_credit(m.in_vc, nflits);
        } else {
            let up = self
                .mesh
                .neighbour(coord, in_dir)
                .expect("input port has an upstream");
            let uidx = self.ridx(up);
            let up_part = self.part_of(uidx);
            let ws = &mut self.shards[up_part];
            self.routers[uidx].return_credit(ws, in_dir.arrival_port(), m.in_vc, nflits);
        }

        // Deliver the flits.
        match m.out_dir {
            Direction::Local => {
                for f in &m.flits {
                    self.nics[idx].accept_eject(m.out_vc, *f);
                }
                self.wake_nic_eject(idx);
            }
            dir => {
                let to = self
                    .mesh
                    .neighbour(coord, dir)
                    .expect("route stays on chip");
                let tidx = self.ridx(to);
                let in_port = dir.arrival_port().port();
                let ready = now + self.params.noc.link_latency + self.params.noc.router_stages;
                let to_part = self.part_of(tidx);
                let ws = &mut self.shards[to_part];
                for f in &m.flits {
                    self.routers[tidx].accept(
                        ws,
                        in_port,
                        m.out_vc,
                        Flit {
                            ready_at: ready,
                            ..*f
                        },
                    );
                }
                self.wake_router(tidx);
                if matches!(dir, Direction::Up | Direction::Down) {
                    self.stats.vertical_flits += nflits as u64;
                    if nflits > 1 {
                        self.stats.wide_tsb_flits += (nflits - 1) as u64;
                    }
                } else {
                    self.stats.lateral_flits += nflits as u64;
                }
            }
        }
    }

    fn handle_event(&mut self, event: DeliveryEvent) {
        match event {
            DeliveryEvent::TagAck(tag, when) => {
                // A bank mid dropped-ack episode may swallow its
                // estimator acks; the WB estimator's periodic stale-tag
                // expiry unwedges the prediction.
                if let Some(f) = &mut self.faults {
                    if f.swallow_ack(tag.child) {
                        return;
                    }
                }
                self.stats.tag_acks += 1;
                let base = self
                    .parents
                    .child_info(tag.parent, tag.child)
                    .map(|c| c.base_latency)
                    .unwrap_or(0);
                if let EstimatorState::WindowBased(map) = &mut self.estimator {
                    if let Some(wb) = map.get_mut(&tag.parent) {
                        let before = wb.estimate(tag.child);
                        let sample = wb.on_ack(tag.child, tag.stamp, when, base);
                        if let (Some(sample), Some(t)) = (sample, &mut self.telemetry) {
                            t.note_estimator(before, sample);
                        }
                    }
                }
            }
        }
    }

    /// Clears all statistics (end of warm-up); in-flight traffic is
    /// unaffected.
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::default();
        for r in &mut self.routers {
            r.reset_stats();
        }
        if let Some(t) = &mut self.telemetry {
            t.reset();
        }
    }

    /// The collected telemetry so far, when telemetry is enabled.
    pub fn telemetry_summary(&self) -> Option<TelemetrySummary> {
        self.telemetry.as_deref().map(NetTelemetry::summary)
    }

    /// Total packets held at parent routers so far.
    pub fn held_packets(&self) -> u64 {
        self.routers.iter().map(|r| r.stats.held_packets).sum()
    }

    /// Total hold cycles accumulated at parent routers.
    pub fn held_cycles(&self) -> u64 {
        self.routers.iter().map(|r| r.stats.held_cycles).sum()
    }

    /// Bank requests forwarded by parent routers.
    pub fn forwarded_requests(&self) -> u64 {
        self.routers
            .iter()
            .map(|r| r.stats.forwarded_to_children)
            .sum()
    }

    /// Mean number of request packets buffered in a sampled router
    /// whose destination is exactly `hops` (1..=3) away, sampled at
    /// write forwards (Figure 3 inset / Figure 13a).
    pub fn queue_mean_at_hops(&self, hops: u32) -> f64 {
        assert!((1..=3).contains(&hops));
        let sum: u64 = self
            .routers
            .iter()
            .map(|r| r.stats.queue_by_hops[(hops - 1) as usize])
            .sum();
        let n: u64 = self
            .routers
            .iter()
            .map(|r| r.stats.child_queue_samples)
            .sum();
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// [`Network::queue_mean_at_hops`] at the paper's default H = 2.
    pub fn child_queue_mean(&self) -> f64 {
        self.queue_mean_at_hops(2)
    }

    /// Total flits written into router buffers (energy accounting).
    pub fn buffer_writes(&self) -> u64 {
        self.routers.iter().map(|r| r.stats.buffer_writes).sum()
    }

    /// Total crossbar traversals (energy accounting).
    pub fn switch_traversals(&self) -> u64 {
        self.routers.iter().map(|r| r.stats.switch_traversals).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;

    fn params(mode: RequestPathMode, arbitration: ArbitrationPolicy) -> NetworkParams {
        NetworkParams {
            noc: NocConfig::default(),
            path_mode: mode,
            regions: 4,
            placement: TsbPlacement::Corner,
            parent_hops: 2,
            arbitration,
            wb_window: 100,
            bank_read_latency: 3,
            bank_write_latency: 33,
            cache_outbox_cap: 4,
            core_outbox_cap: 64,
            max_hold: 99,
            hold_slack: 0,
            audit: None,
            telemetry: None,
            faults: None,
        }
    }

    fn core(net: &Network, node: u16) -> Coord {
        net.mesh()
            .coord(snoc_common::ids::NodeId::new(node), Layer::Core)
    }

    fn cache(net: &Network, node: u16) -> Coord {
        net.mesh()
            .coord(snoc_common::ids::NodeId::new(node), Layer::Cache)
    }

    fn deliver(net: &mut Network, at: Coord, max_cycles: u64) -> Vec<Packet> {
        for _ in 0..max_cycles {
            net.step();
            let got = net.drain_delivered(at);
            if !got.is_empty() {
                return got;
            }
        }
        panic!("nothing delivered at {at} within {max_cycles} cycles");
    }

    #[test]
    fn read_request_crosses_the_chip() {
        let mut net = Network::new(params(
            RequestPathMode::AllTsvs,
            ArbitrationPolicy::RoundRobin,
        ));
        let src = core(&net, 0);
        let dst = cache(&net, 63);
        net.inject(Packet::new(PacketKind::BankRead, src, dst, 0x1000, 5));
        let got = deliver(&mut net, dst, 200);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].token, 5);
        assert_eq!(got[0].addr, 0x1000);
        // 15 hops * 3 cycles + endpoint overheads: sane bounds.
        let lat = got[0].net_latency();
        assert!((45..90).contains(&lat), "latency {lat}");
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.stats().delivered, 1);
    }

    #[test]
    fn data_packet_arrives_intact() {
        let mut net = Network::new(params(
            RequestPathMode::AllTsvs,
            ArbitrationPolicy::RoundRobin,
        ));
        let src = cache(&net, 9);
        let dst = core(&net, 54);
        net.inject(Packet::new(PacketKind::DataReply, src, dst, 0xBEEF, 9));
        let got = deliver(&mut net, dst, 300);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].addr, 0xBEEF);
    }

    #[test]
    fn region_tsb_requests_ride_the_wide_tsb() {
        // Flit combining needs back-to-back flits buffered at the TSB
        // router, which only happens under contention: converge
        // several writebacks from different cores on one region.
        let mut net = Network::new(params(
            RequestPathMode::RegionTsbs,
            ArbitrationPolicy::RoundRobin,
        ));
        let banks = [25u16, 18, 11, 24, 17, 10, 9, 16];
        for (i, &b) in banks.iter().enumerate() {
            let src = core(&net, (i * 9) as u16);
            let dst = cache(&net, b); // all in region 0
            net.inject(Packet::new(
                PacketKind::Writeback,
                src,
                dst,
                i as u64,
                i as u64,
            ));
        }
        net.run(1500);
        let delivered: usize = banks
            .iter()
            .map(|&b| net.drain_delivered(cache(&net, b)).len())
            .sum();
        assert_eq!(delivered, banks.len());
        assert!(
            net.stats().wide_tsb_flits > 0,
            "contended TSB should combine flits"
        );
    }

    #[test]
    fn many_packets_all_arrive_exactly_once() {
        let mut net = Network::new(params(
            RequestPathMode::RegionTsbs,
            ArbitrationPolicy::RoundRobin,
        ));
        let n = 200;
        for i in 0..n {
            let src = core(&net, (i * 7) % 64);
            let dst = cache(&net, (i * 13) % 64);
            net.inject(Packet::new(
                PacketKind::BankRead,
                src,
                dst,
                i as u64,
                i as u64,
            ));
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..3000 {
            net.step();
            for node in 0..64u16 {
                let at = cache(&net, node);
                for p in net.drain_delivered(at) {
                    assert!(seen.insert(p.token), "duplicate delivery of {}", p.token);
                }
            }
            if seen.len() == n as usize {
                break;
            }
        }
        assert_eq!(seen.len(), n as usize, "all packets delivered");
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn bank_aware_holds_back_to_back_writes() {
        let aware = ArbitrationPolicy::BankAware {
            estimator: Estimator::Simple,
        };
        let mut net = Network::new(params(RequestPathMode::RegionTsbs, aware));
        let src = core(&net, 7);
        let dst = cache(&net, 25); // managed by parent chip node 91
        for i in 0..4 {
            net.inject(Packet::new(PacketKind::Writeback, src, dst, i, i));
        }
        let mut delivered = 0;
        for _ in 0..2000 {
            net.step();
            delivered += net.drain_delivered(dst).len();
            if delivered == 4 {
                break;
            }
        }
        assert_eq!(delivered, 4);
        assert!(
            net.held_packets() >= 1,
            "later writes must be held at the parent"
        );
        assert!(net.held_cycles() > 0);
    }

    #[test]
    fn round_robin_never_holds() {
        let mut net = Network::new(params(
            RequestPathMode::RegionTsbs,
            ArbitrationPolicy::RoundRobin,
        ));
        let src = core(&net, 7);
        let dst = cache(&net, 25);
        for i in 0..4 {
            net.inject(Packet::new(PacketKind::Writeback, src, dst, i, i));
        }
        net.run(1500);
        assert_eq!(net.held_packets(), 0);
    }

    #[test]
    fn wb_estimator_closes_the_tag_loop() {
        let aware = ArbitrationPolicy::BankAware {
            estimator: Estimator::WindowBased,
        };
        let mut p = params(RequestPathMode::RegionTsbs, aware);
        p.wb_window = 2; // tag frequently so the test is quick
        let mut net = Network::new(p);
        let src = core(&net, 7);
        let dst = cache(&net, 25);
        let mut injected = 0u64;
        let mut drained = 0;
        for cycle in 0..3000 {
            if cycle % 20 == 0 && injected < 30 {
                net.inject(Packet::new(
                    PacketKind::BankRead,
                    src,
                    dst,
                    injected,
                    injected,
                ));
                injected += 1;
            }
            net.step();
            drained += net.drain_delivered(dst).len();
        }
        assert_eq!(drained, 30);
        assert!(
            net.stats().tag_acks > 0,
            "acks must flow back to the parent"
        );
        assert_eq!(net.in_flight(), 0, "tag acks are consumed internally");
    }

    #[test]
    fn outbox_backpressure_throttles_delivery() {
        // Never drain the destination: deliveries stop at the outbox
        // cap while the network holds the rest without losing packets.
        let mut net = Network::new(params(
            RequestPathMode::RegionTsbs,
            ArbitrationPolicy::RoundRobin,
        ));
        let dst = cache(&net, 25);
        for i in 0..40 {
            let src = core(&net, (i % 64) as u16);
            net.inject(Packet::new(
                PacketKind::BankRead,
                src,
                dst,
                i as u64,
                i as u64,
            ));
        }
        net.run(2000);
        assert_eq!(net.stats().delivered, 0, "nothing drained yet");
        let got = net.drain_delivered(dst);
        assert_eq!(got.len(), 4, "outbox cap bounds undrained deliveries");
        net.run(500);
        let got2 = net.drain_delivered_up_to(dst, 2);
        assert_eq!(got2.len(), 2, "partial drain respects the bound");
        net.run(500);
        let got3 = net.drain_delivered(dst);
        assert!(
            !got3.is_empty(),
            "backpressured packets flow after draining"
        );
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let aware = ArbitrationPolicy::BankAware {
                estimator: Estimator::WindowBased,
            };
            let mut net = Network::new(params(RequestPathMode::RegionTsbs, aware));
            for i in 0..100u64 {
                let src = core(&net, ((i * 11) % 64) as u16);
                let dst = cache(&net, ((i * 29) % 64) as u16);
                let kind = if i % 3 == 0 {
                    PacketKind::Writeback
                } else {
                    PacketKind::BankRead
                };
                net.inject(Packet::new(kind, src, dst, i, i));
            }
            net.run(2500);
            for node in 0..64u16 {
                let at = cache(&net, node);
                net.drain_delivered(at);
            }
            (
                net.stats().delivered,
                net.stats().latency.mean(),
                net.held_packets(),
                net.stats().vertical_flits,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn audited_mixed_run_is_clean() {
        let aware = ArbitrationPolicy::BankAware {
            estimator: Estimator::WindowBased,
        };
        let mut p = params(RequestPathMode::RegionTsbs, aware);
        p.wb_window = 2;
        p.audit = Some(AuditConfig::default());
        let mut net = Network::new(p);
        for i in 0..100u64 {
            let src = core(&net, ((i * 11) % 64) as u16);
            let dst = cache(&net, ((i * 29) % 64) as u16);
            let kind = if i % 3 == 0 {
                PacketKind::Writeback
            } else {
                PacketKind::BankRead
            };
            net.inject(Packet::new(kind, src, dst, i, i));
        }
        let mut delivered = 0;
        for _ in 0..2500 {
            net.step();
            for node in 0..64u16 {
                let at = cache(&net, node);
                delivered += net.drain_delivered(at).len();
            }
        }
        assert_eq!(delivered, 100);
        let report = net.audit_report().expect("auditor is on");
        assert!(report.violations == 0, "violations: {:?}", report.samples);
        assert!(report.clean());
        assert!(report.checked_cycles == 2500);
    }

    #[test]
    fn auditor_flags_a_packet_past_the_age_bound() {
        let mut p = params(RequestPathMode::RegionTsbs, ArbitrationPolicy::RoundRobin);
        p.audit = Some(AuditConfig {
            max_age: 50,
            ..AuditConfig::default()
        });
        let mut net = Network::new(p);
        let src = core(&net, 7);
        let dst = cache(&net, 25);
        net.inject(Packet::new(PacketKind::BankRead, src, dst, 0, 0));
        // Never drain the destination: the packet sits in the outbox
        // and trips the watchdog.
        net.run(200);
        let report = net.audit_report().unwrap();
        assert_eq!(report.violations, 1, "age bound reported exactly once");
        assert!(report.samples[0].contains("age bound"));
    }

    #[test]
    fn outbox_backpressure_never_drops_a_delivery() {
        // Satellite regression: with the auditor on, saturate one
        // cache NI (cap 4) far beyond its outbox capacity, drain
        // slowly, and verify every offered packet is delivered exactly
        // once with zero conservation violations.
        let mut p = params(RequestPathMode::RegionTsbs, ArbitrationPolicy::RoundRobin);
        p.audit = Some(AuditConfig::default());
        let mut net = Network::new(p);
        let dst = cache(&net, 25);
        for i in 0..40u64 {
            let src = core(&net, (i % 64) as u16);
            net.inject(Packet::new(PacketKind::BankRead, src, dst, i, i));
        }
        let mut seen = std::collections::HashSet::new();
        for cycle in 0..6000 {
            net.step();
            // Drain at most one packet every 16 cycles: the outbox
            // stays pinned at its cap most of the time.
            if cycle % 16 == 0 {
                for packet in net.drain_delivered_up_to(dst, 1) {
                    assert!(seen.insert(packet.token), "duplicate {}", packet.token);
                }
            }
        }
        for packet in net.drain_delivered(dst) {
            assert!(seen.insert(packet.token), "duplicate {}", packet.token);
        }
        assert_eq!(seen.len(), 40, "every offered packet delivered");
        assert_eq!(net.in_flight(), 0);
        let report = net.audit_report().unwrap();
        assert!(report.violations == 0, "violations: {:?}", report.samples);
    }

    #[test]
    fn telemetry_collects_without_changing_the_run() {
        let aware = ArbitrationPolicy::BankAware {
            estimator: Estimator::WindowBased,
        };
        let run = |telemetry: Option<TelemetryConfig>| {
            let mut p = params(RequestPathMode::RegionTsbs, aware);
            p.wb_window = 2;
            p.telemetry = telemetry;
            let mut net = Network::new(p);
            for i in 0..100u64 {
                let src = core(&net, ((i * 11) % 64) as u16);
                let dst = cache(&net, ((i * 29) % 64) as u16);
                let kind = if i % 3 == 0 {
                    PacketKind::Writeback
                } else {
                    PacketKind::BankRead
                };
                net.inject(Packet::new(kind, src, dst, i, i));
            }
            let mut delivered = 0;
            for _ in 0..2500 {
                net.step();
                for node in 0..64u16 {
                    delivered += net.drain_delivered(cache(&net, node)).len();
                }
            }
            let fp = (
                delivered,
                net.stats().latency.mean(),
                net.held_packets(),
                net.stats().vertical_flits,
                net.stats().tag_acks,
            );
            (fp, net.telemetry_summary())
        };
        let (fp_off, none) = run(None);
        let (fp_on, summary) = run(Some(TelemetryConfig::default()));
        assert!(none.is_none());
        assert_eq!(fp_off, fp_on, "collection must not perturb the run");
        let s = summary.expect("telemetry was on");
        assert!(s.epochs_sampled > 0);
        assert_eq!(s.router_util.len(), 128);
        assert_eq!(
            s.class_latency.iter().map(|h| h.total()).sum::<u64>(),
            100,
            "every delivery lands in a class histogram"
        );
        assert_eq!(
            s.hop_latency.iter().map(|h| h.total()).sum::<u64>(),
            100,
            "and in a hop histogram"
        );
        assert!(s.hold_delay.total() > 0, "bank-aware holds were recorded");
        assert!(
            s.trace
                .iter()
                .any(|e| e.stage == crate::telemetry::TraceStage::Deliver),
            "the trace retains deliveries"
        );
        assert!(
            s.link_flits.iter().flatten().sum::<u64>() > 0,
            "link counters move"
        );
    }

    #[test]
    fn blocked_port_outage_delays_but_never_loses_traffic() {
        use crate::fault::FaultPlan;
        // A long outage on the TSB's Down port while requests stream
        // through it: everything still arrives (as backpressure, not
        // loss), and an identical fault-free run is strictly faster.
        let run = |faults: Option<FaultPlan>| {
            let mut p = params(RequestPathMode::RegionTsbs, ArbitrationPolicy::RoundRobin);
            p.faults = faults;
            let mut net = Network::new(p);
            let mut tokens = std::collections::HashSet::new();
            let mut injected = 0u64;
            for cycle in 0..4000u64 {
                // Stream requests so the outages always overlap live
                // traffic somewhere on the chip.
                if cycle % 10 == 0 && injected < 100 {
                    let src = core(&net, ((injected * 7) % 64) as u16);
                    let dst = cache(&net, ((injected * 5) % 64) as u16);
                    net.inject(Packet::new(
                        PacketKind::BankRead,
                        src,
                        dst,
                        injected,
                        injected,
                    ));
                    injected += 1;
                }
                net.step();
                for node in 0..64u16 {
                    for p in net.drain_delivered(cache(&net, node)) {
                        tokens.insert(p.token);
                    }
                }
            }
            (tokens.len(), net.stats().latency.mean(), net.in_flight())
        };
        let plan = FaultPlan {
            tsb_rate: 0.02, // dozens of outages across the run
            link_rate: 0.0,
            port_rate: 0.0,
            bank_rate: 0.0,
            outage_cycles: 100,
            ..FaultPlan::default()
        };
        let (clean_n, clean_lat, clean_flight) = run(None);
        let (fault_n, fault_lat, fault_flight) = run(Some(plan));
        assert_eq!(clean_n, 100);
        assert_eq!(fault_n, 100, "outages delay, never drop");
        assert_eq!((clean_flight, fault_flight), (0, 0));
        assert!(
            fault_lat > clean_lat,
            "outages must cost latency: {fault_lat} vs {clean_lat}"
        );
    }

    #[test]
    fn dropped_requests_are_retried_to_completion() {
        use crate::fault::FaultPlan;
        let mut p = params(RequestPathMode::RegionTsbs, ArbitrationPolicy::RoundRobin);
        // No random events: drive the dropped-ack machinery directly so
        // the retry path is exercised deterministically.
        p.faults = Some(FaultPlan {
            tsb_rate: 0.0,
            link_rate: 0.0,
            port_rate: 0.0,
            bank_rate: 0.0,
            drop_rate: 1.0,
            retry_base: 32,
            retry_cap: 256,
            ..FaultPlan::default()
        });
        p.audit = Some(AuditConfig::default());
        let mut net = Network::new(p);
        let dst = cache(&net, 25);
        let bank = BankId::new(25);
        // The bank drops everything for 300 cycles.
        {
            let f = net.faults.as_mut().unwrap();
            f.push_dropping(bank, 300);
        }
        let src = core(&net, 7);
        net.inject(Packet::new(PacketKind::BankRead, src, dst, 0xAB, 1));
        let mut got = Vec::new();
        for _ in 0..3000 {
            net.step();
            got.extend(net.drain_delivered(dst));
            if !got.is_empty() {
                break;
            }
        }
        assert_eq!(got.len(), 1, "the retried request eventually lands");
        assert_eq!((got[0].addr, got[0].token), (0xAB, 1));
        let s = net.fault_summary().unwrap();
        assert!(s.dropped >= 1, "at least the first attempt was eaten");
        assert_eq!(s.retries, s.dropped, "every drop scheduled a retry");
        assert_eq!(s.abandoned, 0);
        assert!(s.degraded_cycles > 0);
        let report = net.audit_report().unwrap();
        assert!(report.violations == 0, "violations: {:?}", report.samples);
    }

    #[test]
    fn rehoming_moves_request_traffic_onto_the_survivor() {
        let mut net = Network::new(params(
            RequestPathMode::RegionTsbs,
            ArbitrationPolicy::RoundRobin,
        ));
        let victim_bank = NodeId::new(0); // SW region, TSB at node 27
        let victim = net.regions().region_of(victim_bank);
        let dead = net.regions().tsb_node(victim);
        let survivor_region = (0..4u16).map(RegionId::new).find(|&r| r != victim).unwrap();
        let survivor = net.regions().tsb_node(survivor_region);
        net.rehome_region(victim, survivor);
        assert_eq!(net.regions().tsb_node(victim), survivor);
        assert!(!net.regions().is_tsb_node(dead));
        // The dead TSB's core-layer router lost its wide-down lane.
        assert!(!net.wide_down[dead.index()]);
        assert!(net.wide_down[survivor.index()]);
        // Requests into the victim region still arrive, via the
        // survivor's vertical hop.
        let src = core(&net, 63);
        let dst = cache(&net, 0);
        net.inject(Packet::new(PacketKind::BankRead, src, dst, 0xF, 3));
        let got = deliver(&mut net, dst, 400);
        assert_eq!(got.len(), 1);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn killing_a_tsb_mid_run_degrades_gracefully() {
        use crate::fault::FaultPlan;
        let aware = ArbitrationPolicy::BankAware {
            estimator: Estimator::WindowBased,
        };
        let mut p = params(RequestPathMode::RegionTsbs, aware);
        p.wb_window = 2;
        p.faults = Some(FaultPlan {
            tsb_rate: 0.0,
            link_rate: 0.0,
            port_rate: 0.0,
            bank_rate: 0.0,
            kill_tsb_at: Some(500),
            ..FaultPlan::default()
        });
        p.audit = Some(AuditConfig::default());
        let mut net = Network::new(p);
        let mut seen = std::collections::HashSet::new();
        let mut injected = 0u64;
        for cycle in 0..6000u64 {
            // Keep a steady trickle flowing across the kill boundary.
            if cycle % 25 == 0 && injected < 120 {
                let src = core(&net, ((injected * 11) % 64) as u16);
                let dst = cache(&net, ((injected * 29) % 64) as u16);
                let kind = if injected.is_multiple_of(3) {
                    PacketKind::Writeback
                } else {
                    PacketKind::BankRead
                };
                net.inject(Packet::new(kind, src, dst, injected, injected));
                injected += 1;
            }
            net.step();
            for node in 0..64u16 {
                for p in net.drain_delivered(cache(&net, node)) {
                    assert!(seen.insert(p.token), "duplicate {}", p.token);
                }
            }
        }
        assert_eq!(seen.len(), 120, "traffic survives the TSB death");
        assert_eq!(net.in_flight(), 0);
        let s = net.fault_summary().unwrap();
        assert_eq!(s.rehomed_regions, 1);
        assert!(s.degraded_cycles > 0);
        let report = net.audit_report().unwrap();
        assert!(report.violations == 0, "violations: {:?}", report.samples);
    }

    #[test]
    fn faulty_runs_replay_byte_identically_per_seed() {
        use crate::fault::FaultPlan;
        let run = |seed: u64| {
            let aware = ArbitrationPolicy::BankAware {
                estimator: Estimator::WindowBased,
            };
            let mut p = params(RequestPathMode::RegionTsbs, aware);
            p.wb_window = 2;
            p.faults = Some(FaultPlan {
                seed,
                tsb_rate: 2e-3,
                link_rate: 4e-3,
                port_rate: 4e-3,
                bank_rate: 8e-3,
                kill_tsb_at: Some(400),
                ..FaultPlan::default()
            });
            let mut net = Network::new(p);
            for i in 0..100u64 {
                let src = core(&net, ((i * 11) % 64) as u16);
                let dst = cache(&net, ((i * 29) % 64) as u16);
                let kind = if i % 3 == 0 {
                    PacketKind::Writeback
                } else {
                    PacketKind::BankRead
                };
                net.inject(Packet::new(kind, src, dst, i, i));
            }
            let mut tokens: Vec<u64> = Vec::new();
            for _ in 0..4000 {
                net.step();
                for node in 0..64u16 {
                    tokens.extend(
                        net.drain_delivered(cache(&net, node))
                            .iter()
                            .map(|p| p.token),
                    );
                }
            }
            let s = net.fault_summary().unwrap();
            (
                tokens,
                net.stats().latency.mean(),
                net.stats().vertical_flits,
                s.injected(),
                s.dropped,
                s.retries,
                s.degraded_cycles,
            )
        };
        let a = run(7);
        let b = run(7);
        assert!(a.3 > 0, "the campaign injected something");
        assert_eq!(a, b, "same seed, same faults, same run");
        let c = run(8);
        assert_ne!(a, c, "a different seed draws a different schedule");
    }

    #[test]
    fn threaded_partitions_match_the_serial_stepper() {
        // Heavy enough traffic to clear the spawn work gate, so the
        // scoped-thread branch itself is exercised (the host may have
        // one core; `spawn_threads` is forced on to cover it anyway).
        let run = |shards: usize, force_threads: bool| {
            let mut p = params(
                RequestPathMode::RegionTsbs,
                ArbitrationPolicy::BankAware {
                    estimator: Estimator::WindowBased,
                },
            );
            p.wb_window = 2;
            p.noc.shards = shards;
            let mut net = Network::new(p);
            net.spawn_threads = force_threads;
            for i in 0..600u64 {
                let src = core(&net, ((i * 7) % 64) as u16);
                let dst = cache(&net, ((i * 13) % 64) as u16);
                let kind = if i % 2 == 0 {
                    PacketKind::Writeback
                } else {
                    PacketKind::DataReply
                };
                net.inject(Packet::new(kind, src, dst, i, i));
            }
            let mut tokens: Vec<u64> = Vec::new();
            for _ in 0..6000 {
                net.step();
                for node in 0..64u16 {
                    tokens.extend(
                        net.drain_delivered(cache(&net, node))
                            .iter()
                            .map(|p| p.token),
                    );
                }
            }
            assert_eq!(net.in_flight(), 0);
            (
                tokens,
                net.stats().latency.mean(),
                net.stats().vertical_flits,
                net.stats().wide_tsb_flits,
                net.spawned_cycles(),
            )
        };
        let serial = run(1, false);
        let threaded = run(4, true);
        assert_eq!(serial.4, 0, "one partition never spawns");
        assert!(threaded.4 > 0, "the threaded branch must have run");
        assert_eq!(
            (&serial.0, serial.1, serial.2, serial.3),
            (&threaded.0, threaded.1, threaded.2, threaded.3),
            "threaded partitions diverged from the serial stepper"
        );
    }

    #[test]
    fn coherence_traffic_reaches_cores() {
        let mut net = Network::new(params(
            RequestPathMode::RegionTsbs,
            ArbitrationPolicy::RoundRobin,
        ));
        let src = cache(&net, 12);
        let dst = core(&net, 51);
        net.inject(Packet::new(PacketKind::Inv, src, dst, 0xA, 1));
        let got = deliver(&mut net, dst, 200);
        assert_eq!(got[0].kind, PacketKind::Inv);
        assert!(net.stats().coherence_latency.count() == 1);
    }
}
