//! Synthetic workload substrate calibrated to the paper's Table 3.
//!
//! The paper drives its simulator with traces of 42 applications
//! (4 commercial server workloads, 13 PARSEC benchmarks, 25 SPEC 2006
//! benchmarks). Those traces are proprietary, so this crate generates
//! synthetic instruction streams whose *characterization* matches
//! Table 3: L1 misses per kilo-instruction, L2 read/write intensity,
//! and the burstiness class — the properties the paper's network-level
//! mechanism actually responds to.
//!
//! Two stream families exist:
//!
//! * [`generator::ProfileStream`] — profile-driven: L2 events are drawn
//!   directly at the Table 3 rates (with a two-state burst modulator),
//!   encoded into addresses the system's memory port decodes. Matches
//!   the characterization by construction.
//! * [`generator::FullStackStream`] — address streams over hot/warm/
//!   cold/shared working sets that drive the real L1/L2/MESI stack,
//!   approximating the characterization organically.
//!
//! # Example
//!
//! ```
//! use snoc_workload::table3;
//!
//! let tpcc = table3::by_name("tpcc").unwrap();
//! assert_eq!(tpcc.l2_wpki, 40.9); // the most write-intensive app
//! assert_eq!(table3::all().len(), 42);
//! ```

pub mod burst;
pub mod generator;
pub mod mixes;
pub mod profile;
pub mod table3;

pub use generator::{FullStackStream, ProfileAccess, ProfileStream};
pub use profile::{BenchmarkProfile, Burstiness, Suite};
