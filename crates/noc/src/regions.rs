//! Logical partitioning of the cache layer into regions, each served by
//! one wide through-silicon bus (Section 3.4, Figures 4, 5 and 11).
//!
//! The cache layer is tiled into `R` equal rectangles. Every core->cache
//! *request* must descend through the region's single TSB, which —
//! combined with X-Y routing inside the cache layer — makes the route to
//! every bank unique and creates the serialization points the busy-time
//! prediction relies on.

use snoc_common::config::TsbPlacement;
use snoc_common::geom::{Coord, Geometry, Layer, Mesh};
use snoc_common::ids::{BankId, NodeId, RegionId};

/// The region tiling and TSB positions for one configuration.
#[derive(Debug, Clone)]
pub struct RegionMap {
    mesh: Mesh,
    regions: usize,
    placement: TsbPlacement,
    region_of: Vec<RegionId>,
    tsb_of: Vec<NodeId>,
    tile_w: u8,
    tile_h: u8,
}

impl RegionMap {
    /// Builds the tiling for `regions` regions with the given TSB
    /// placement.
    ///
    /// # Panics
    ///
    /// Panics if the mesh cannot be tiled into `regions` equal
    /// rectangles (see [`Geometry::try_new`]).
    pub fn new(mesh: Mesh, regions: usize, placement: TsbPlacement) -> Self {
        Self::from_geometry(&Geometry::new(mesh, regions, placement, 1))
    }

    /// Builds the map from an already-resolved [`Geometry`] — the
    /// tiling and TSB positions are read off the geometry, so every
    /// consumer of the same geometry agrees on them.
    pub fn from_geometry(geom: &Geometry) -> Self {
        let mesh = geom.mesh();
        let region_of = mesh
            .nodes()
            .map(|node| geom.region_of(node))
            .collect::<Vec<_>>();
        Self {
            mesh,
            regions: geom.regions(),
            placement: geom.placement(),
            region_of,
            tsb_of: geom.tsb_nodes().to_vec(),
            tile_w: geom.tile_width(),
            tile_h: geom.tile_height(),
        }
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// The placement rule in use.
    pub fn placement(&self) -> TsbPlacement {
        self.placement
    }

    /// Tile width in nodes.
    pub fn tile_width(&self) -> u8 {
        self.tile_w
    }

    /// Tile height in nodes.
    pub fn tile_height(&self) -> u8 {
        self.tile_h
    }

    /// The region containing a cache-layer node.
    pub fn region_of(&self, node: NodeId) -> RegionId {
        self.region_of[node.index()]
    }

    /// The region containing a bank.
    pub fn region_of_bank(&self, bank: BankId) -> RegionId {
        self.region_of(bank.node())
    }

    /// The cache-layer node holding a region's TSB.
    pub fn tsb_node(&self, region: RegionId) -> NodeId {
        self.tsb_of[region.index()]
    }

    /// The TSB node (cache layer) serving a destination bank node.
    pub fn tsb_for(&self, dest: NodeId) -> NodeId {
        self.tsb_node(self.region_of(dest))
    }

    /// `true` if `node` hosts a region TSB.
    pub fn is_tsb_node(&self, node: NodeId) -> bool {
        self.tsb_of.contains(&node)
    }

    /// Re-homes `region` onto `new_tsb` (fail-stop degradation: when a
    /// TSB dies permanently, its region's request traffic is re-routed
    /// through a surviving TSB — normally a neighbouring region's, so
    /// the victim region keeps a unique descent point and the busy-time
    /// serialization property survives the fault).
    ///
    /// Only the TSB assignment moves; the region tiling itself is
    /// fixed in silicon. After the call, [`RegionMap::tsb_node`] and
    /// [`RegionMap::tsb_for`] report the survivor for the victim
    /// region, so a routing table rebuilt from this map sends the
    /// region's requests through the new descent point.
    pub fn retarget_tsb(&mut self, region: RegionId, new_tsb: NodeId) {
        self.tsb_of[region.index()] = new_tsb;
    }

    /// All banks in a region.
    pub fn banks_in(&self, region: RegionId) -> impl Iterator<Item = BankId> + '_ {
        self.mesh
            .nodes()
            .filter(move |n| self.region_of[n.index()] == region)
            .map(|n| BankId::new(n.raw()))
    }

    /// Renders the cache layer as ASCII art, marking TSB nodes with `#`
    /// and labelling every node with its region (Figure 11 rendering).
    pub fn ascii_art(&self) -> String {
        let mut out = String::new();
        for y in (0..self.mesh.height()).rev() {
            for x in 0..self.mesh.width() {
                let node = self.mesh.node(Coord::new(x, y, Layer::Cache));
                let r = self.region_of(node).index();
                if self.is_tsb_node(node) {
                    out.push('#');
                } else {
                    out.push(char::from_digit((r % 16) as u32, 16).unwrap());
                }
                out.push(' ');
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(8, 8)
    }

    #[test]
    fn four_regions_are_quadrants() {
        let m = RegionMap::new(mesh(), 4, TsbPlacement::Corner);
        // Paper numbering: chip node 64+i = cache node i.
        // Bank 0 (chip 64) is in the SW quadrant, bank 63 (chip 127) NE.
        assert_eq!(m.region_of(NodeId::new(0)), m.region_of(NodeId::new(27)));
        assert_ne!(m.region_of(NodeId::new(0)), m.region_of(NodeId::new(63)));
        for r in 0..4 {
            assert_eq!(m.banks_in(RegionId::new(r)).count(), 16);
        }
    }

    #[test]
    fn paper_region0_tsb_is_node_27() {
        // Figure 4/5: the SW region's TSB connects core-layer node 27
        // to cache-layer node 91 (= cache node 27).
        let m = RegionMap::new(mesh(), 4, TsbPlacement::Corner);
        let r0 = m.region_of(NodeId::new(0));
        assert_eq!(m.tsb_node(r0), NodeId::new(27));
    }

    #[test]
    fn corner_tsbs_are_innermost() {
        let m = RegionMap::new(mesh(), 4, TsbPlacement::Corner);
        let expected = [27, 28, 35, 36]; // (3,3), (4,3), (3,4), (4,4)
        let mut got: Vec<_> = (0..4)
            .map(|r| m.tsb_node(RegionId::new(r)).index())
            .collect();
        got.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn staggered_tsbs_use_distinct_columns_for_4_and_8_regions() {
        for regions in [4usize, 8] {
            let m = RegionMap::new(mesh(), regions, TsbPlacement::Staggered);
            let mut cols: Vec<_> = (0..regions)
                .map(|r| {
                    let n = m.tsb_node(RegionId::new(r as u16));
                    mesh().coord(n, Layer::Cache).x
                })
                .collect();
            cols.sort_unstable();
            cols.dedup();
            assert_eq!(
                cols.len(),
                regions,
                "{regions} regions share TSB columns: {cols:?}"
            );
        }
    }

    #[test]
    fn tsb_lies_inside_its_region() {
        for regions in [4usize, 8, 16] {
            for placement in [TsbPlacement::Corner, TsbPlacement::Staggered] {
                let m = RegionMap::new(mesh(), regions, placement);
                for r in 0..regions {
                    let rid = RegionId::new(r as u16);
                    let t = m.tsb_node(rid);
                    assert_eq!(m.region_of(t), rid, "{regions} regions, {placement:?}");
                }
            }
        }
    }

    #[test]
    fn sixteen_regions_have_four_banks_each() {
        let m = RegionMap::new(mesh(), 16, TsbPlacement::Corner);
        for r in 0..16 {
            assert_eq!(m.banks_in(RegionId::new(r)).count(), 4);
        }
    }

    #[test]
    fn retarget_tsb_moves_one_region_onto_a_survivor() {
        let mut m = RegionMap::new(mesh(), 4, TsbPlacement::Corner);
        let victim = m.region_of(NodeId::new(0)); // SW region, TSB 27
        let survivor_region = m.region_of(NodeId::new(63)); // NE region
        let survivor = m.tsb_node(survivor_region);
        m.retarget_tsb(victim, survivor);
        assert_eq!(m.tsb_node(victim), survivor);
        assert_eq!(m.tsb_for(NodeId::new(0)), survivor);
        // The tiling itself is untouched: node 0 still belongs to the
        // victim region, and the other regions keep their own TSBs.
        assert_eq!(m.region_of(NodeId::new(0)), victim);
        assert_eq!(m.tsb_node(survivor_region), survivor);
        assert!(!m.is_tsb_node(NodeId::new(27)), "dead TSB no longer listed");
    }

    #[test]
    fn region_count_must_tile_mesh() {
        let result = std::panic::catch_unwind(|| RegionMap::new(mesh(), 3, TsbPlacement::Corner));
        assert!(result.is_err());
    }

    #[test]
    fn ascii_art_has_one_tsb_mark_per_region() {
        let m = RegionMap::new(mesh(), 8, TsbPlacement::Staggered);
        let art = m.ascii_art();
        assert_eq!(art.matches('#').count(), 8);
        assert_eq!(art.lines().count(), 8);
    }
}
