//! Tier-1 fault campaign: the headline fig6 cell runs under the NoC
//! invariant auditor *while faults are firing* — transient TSB, link,
//! port and bank faults plus a permanent mid-run TSB death — and must
//! finish with zero packet/credit-conservation violations, zero panics
//! and a byte-identical fingerprint across two same-seed runs.
//!
//! Faults are protocol-level by construction (a blocked port is
//! credit-safe backpressure; a dropped request is lost *after* the
//! network delivered it), so every invariant the auditor checks holds
//! in degraded mode with no auditor special-casing.

use snoc_core::experiments::Scale;
use snoc_core::metrics::RunMetrics;
use snoc_core::scenario::Scenario;
use snoc_core::system::System;
use snoc_noc::fault::FaultSummary;
use snoc_noc::FaultPlan;
use snoc_workload::table3 as t3;

fn campaign_plan() -> FaultPlan {
    FaultPlan {
        seed: 0xC0DE,
        // Rates scaled so a 3.5k-cycle Quick run sees a healthy number
        // of events of every class.
        tsb_rate: 2e-3,
        link_rate: 4e-3,
        port_rate: 4e-3,
        bank_rate: 8e-3,
        // And one permanent TSB death early in measurement.
        kill_tsb_at: Some(1_000),
        ..FaultPlan::default()
    }
}

fn run_campaign() -> RunMetrics {
    let cfg = Scale::Quick.apply(Scenario::SttRam4TsbWb.config());
    let app = t3::by_name("sap").expect("table 3 has sap");
    let mut system = System::homogeneous(cfg, app);
    system.enable_faults(campaign_plan());
    system.run()
}

#[derive(Debug, PartialEq)]
struct Fingerprint {
    committed: Vec<u64>,
    net_request_latency: f64,
    net_response_latency: f64,
    bank_reads: u64,
    bank_writes: u64,
    held_packets: u64,
    held_cycles: u64,
    faults: FaultSummary,
}

fn fingerprint(m: &RunMetrics) -> Fingerprint {
    Fingerprint {
        committed: m.per_core_committed.clone(),
        net_request_latency: m.net_request_latency,
        net_response_latency: m.net_response_latency,
        bank_reads: m.bank_reads,
        bank_writes: m.bank_writes,
        held_packets: m.held_packets,
        held_cycles: m.held_cycles,
        faults: m.faults.clone().expect("campaign was on"),
    }
}

#[test]
fn audited_fault_campaign_is_conservation_clean_and_deterministic() {
    // SAFETY-equivalent caveat: this is the only test in this binary
    // that reads SNOC_AUDIT, and integration-test binaries get their
    // own process, so setting it here races with nothing.
    std::env::set_var("SNOC_AUDIT", "1");

    let first = run_campaign();

    let audit = first.audit.as_ref().expect("auditor was on");
    assert!(
        audit.clean(),
        "invariants violated while faults were firing over {} cycles: {:?}",
        audit.checked_cycles,
        audit.samples
    );

    let faults = first.faults.as_ref().expect("campaign was on");
    assert!(
        faults.tsb_faults > 0 && faults.link_faults > 0 && faults.bank_faults > 0,
        "the campaign must exercise every fault class: {faults:?}"
    );
    assert_eq!(faults.rehomed_regions, 1, "the TSB kill re-homed a region");
    assert!(faults.degraded_cycles > 0);
    assert!(
        first.instruction_throughput() > 0.0,
        "the chip keeps committing instructions in degraded mode"
    );

    // Same plan, same seed, same everything.
    let second = run_campaign();
    assert_eq!(
        fingerprint(&first),
        fingerprint(&second),
        "a faulty run must replay byte-identically per seed"
    );
}
