//! Property tests for the congestion estimators (hand-rolled with
//! [`SimRng`]; the workspace carries no external property-testing
//! dependency).
//!
//! Two families of properties:
//!
//! * the window-based scheme's 8-bit stamp encode/decode round-trips
//!   for arbitrary RTTs, and the full [`WbEstimator`] agrees with an
//!   independently written reference model over random forward/ack
//!   sequences;
//! * the double-buffered [`RcaState::propagate`] is equivalent to a
//!   naive reference that clones the whole value table every cycle.

use snoc_common::geom::Direction;
use snoc_common::ids::BankId;
use snoc_common::rng::SimRng;
use snoc_noc::estimator::{stamp_elapsed, stamp_of, RcaState, WbEstimator};

/// Slot order the RCA side wires propagate on (all but `Local`).
const DIRS: [Direction; 6] = [
    Direction::East,
    Direction::West,
    Direction::North,
    Direction::South,
    Direction::Down,
    Direction::Up,
];

#[test]
fn stamp_round_trips_for_arbitrary_rtts() {
    let mut rng = SimRng::for_stream(0xE57, 1);
    for _ in 0..10_000 {
        // Send cycles anywhere in the first 2^48 cycles; RTTs from 0 to
        // well past the 8-bit horizon.
        let sent = rng.bits() >> 16;
        let rtt = rng.bits() >> 52; // 0..4096
        let now = sent + rtt;
        let decoded = stamp_elapsed(stamp_of(sent), now);
        // The 8-bit decode is exactly the RTT modulo 256: short RTTs
        // round-trip losslessly, longer ones alias into the low byte.
        assert_eq!(decoded, rtt % 256, "sent={sent} rtt={rtt}");
        if rtt < 256 {
            assert_eq!(decoded, rtt);
        }
    }
}

#[test]
fn stamp_decode_is_exact_across_the_wrap_boundary() {
    // Deterministic sweep of every (stamp, elapsed) pair — the full
    // input space of the hardware decode is small enough to enumerate.
    for sent in (0..256u64).map(|s| s + 0xABCD00) {
        for elapsed in 0..256u64 {
            assert_eq!(stamp_elapsed(stamp_of(sent), sent + elapsed), elapsed);
        }
    }
}

/// Independent reference model of one parent->child WB lane, written
/// straight from the paper's description rather than the production
/// code: count requests, tag every `window`-th when the lane is idle,
/// and on a matching ack fold `max(0, rtt/2 - base)` into a 3:1
/// smoothed estimate using only the 8-bit stamp arithmetic.
#[derive(Default)]
struct RefLane {
    since_tag: u32,
    outstanding: Option<(u8, u64)>,
    estimate: u64,
}

impl RefLane {
    fn forward(&mut self, now: u64, window: u32) -> Option<u8> {
        self.since_tag += 1;
        if self.since_tag >= window && self.outstanding.is_none() {
            self.since_tag = 0;
            let stamp = (now % 256) as u8;
            self.outstanding = Some((stamp, now));
            Some(stamp)
        } else {
            None
        }
    }

    fn ack(&mut self, stamp: u8, now: u64, base: u64) -> Option<u64> {
        let (expected, sent) = self.outstanding?;
        if expected != stamp {
            return None;
        }
        self.outstanding = None;
        // The stamp only carries 8 bits, so the decoded RTT is the wide
        // RTT modulo 256 — exact below 256 cycles, clamped above.
        let sample = ((now - sent) % 256 / 2).saturating_sub(base);
        self.estimate = if self.estimate == 0 {
            sample
        } else {
            (3 * self.estimate + sample) / 4
        };
        Some(sample)
    }

    fn expire(&mut self, now: u64, timeout: u64) {
        if let Some((_, sent)) = self.outstanding {
            if now - sent > timeout {
                self.outstanding = None;
            }
        }
    }
}

#[test]
fn wb_estimator_matches_the_reference_model() {
    let children = [BankId::new(3), BankId::new(7), BankId::new(11)];
    for seed in 0..20u64 {
        let mut rng = SimRng::for_stream(0x3B, seed);
        let mut wb = WbEstimator::new(children);
        let mut reference: Vec<RefLane> = children.iter().map(|_| RefLane::default()).collect();
        let window = 1 + rng.below(8) as u32;
        let base = rng.below(6) as u64;
        let mut now = 0u64;
        let mut pending: Vec<(usize, u8)> = Vec::new();

        for _ in 0..2_000 {
            // Occasionally jump far enough to wrap the 8-bit stamp.
            now += if rng.chance(0.05) {
                200 + rng.below(400) as u64
            } else {
                1 + rng.below(16) as u64
            };
            let lane = rng.below(children.len());
            let child = children[lane];
            match rng.below(10) {
                0..=5 => {
                    let got = wb.on_forward(child, now, window);
                    let want = reference[lane].forward(now, window);
                    assert_eq!(got, want, "forward lane {lane} at {now}");
                    if let Some(stamp) = got {
                        pending.push((lane, stamp));
                    }
                }
                6..=7 if !pending.is_empty() => {
                    let (lane, stamp) = pending.swap_remove(rng.below(pending.len()));
                    let child = children[lane];
                    let got = wb.on_ack(child, stamp, now, base);
                    let want = reference[lane].ack(stamp, now, base);
                    assert_eq!(got, want, "ack lane {lane} at {now}");
                }
                8 => {
                    // Corrupted or unsolicited acks must change nothing.
                    let stamp = (rng.bits() % 256) as u8;
                    let before = wb.estimate(child);
                    if reference[lane].outstanding.map(|(s, _)| s) != Some(stamp) {
                        assert_eq!(wb.on_ack(child, stamp, now, base), None);
                        assert_eq!(wb.estimate(child), before);
                    }
                    assert_eq!(wb.on_ack(BankId::new(999), stamp, now, base), None);
                }
                _ => {
                    let timeout = 100 + rng.below(400) as u64;
                    wb.expire_stale(now, timeout);
                    for (lane, r) in reference.iter_mut().enumerate() {
                        r.expire(now, timeout);
                        if r.outstanding.is_none() {
                            pending.retain(|&(l, _)| l != lane);
                        }
                    }
                }
            }
            for (lane, child) in children.iter().enumerate() {
                assert_eq!(
                    wb.estimate(*child),
                    reference[lane].estimate,
                    "estimate lane {lane} at {now} (seed {seed})"
                );
            }
        }
    }
}

/// Naive RCA reference: identical blend, but cloning the whole table
/// every cycle instead of double-buffering.
struct NaiveRca {
    values: Vec<[u8; 6]>,
}

impl NaiveRca {
    fn new(routers: usize) -> Self {
        Self {
            values: vec![[0; 6]; routers],
        }
    }

    fn propagate(
        &mut self,
        occupancy: impl Fn(usize) -> u8,
        neighbour: impl Fn(usize, Direction) -> Option<usize>,
    ) {
        let prev = self.values.clone();
        for i in 0..self.values.len() {
            for (slot, dir) in DIRS.into_iter().enumerate() {
                self.values[i][slot] = match neighbour(i, dir) {
                    Some(n) => (occupancy(n) as u16 + prev[n][slot] as u16).div_ceil(2) as u8,
                    None => 0,
                };
            }
        }
    }
}

#[test]
fn rca_double_buffer_matches_the_cloning_reference() {
    for seed in 0..10u64 {
        let mut rng = SimRng::for_stream(0xCA, seed);
        let routers = 4 + rng.below(20);

        // A random (not necessarily mesh-shaped) neighbour table: the
        // propagation rule must hold for any wiring, including cycles
        // and self-referential tangles.
        let mut links = vec![[None; 6]; routers];
        for row in links.iter_mut() {
            for slot in row.iter_mut() {
                if rng.chance(0.7) {
                    *slot = Some(rng.below(routers));
                }
            }
        }

        let mut rca = RcaState::new(routers);
        let mut naive = NaiveRca::new(routers);
        for _ in 0..200 {
            let occ: Vec<u8> = (0..routers).map(|_| (rng.bits() % 256) as u8).collect();
            let occupancy = |i: usize| occ[i];
            let neighbour =
                |i: usize, d: Direction| links[i][DIRS.iter().position(|&x| x == d).unwrap()];
            rca.propagate(occupancy, neighbour);
            naive.propagate(occupancy, neighbour);
            for i in 0..routers {
                for (slot, dir) in DIRS.into_iter().enumerate() {
                    assert_eq!(
                        rca.value(i, dir),
                        naive.values[i][slot],
                        "router {i} {dir:?} (seed {seed})"
                    );
                }
            }
        }
    }
}
