//! `snoc-sim`: run one configuration of the 3D STT-RAM CMP from the
//! command line.
//!
//! ```text
//! snoc-sim [--app NAME | --mix case1|case2] [--scenario NAME]
//!          [--cycles N] [--warmup N] [--seed N]
//!          [--mode profile|fullstack]
//!          [--regions 4|8|16] [--placement corner|stagger] [--hops H]
//!          [--list]
//! ```
//!
//! Defaults: `--app tpcc --scenario MRAM-4TSB-WB --cycles 20000
//! --warmup 2000 --mode profile`.

use snoc_core::scenario::Scenario;
use snoc_core::system::{DriveMode, System};
use snoc_workload::mixes::{self, Workload};
use snoc_workload::table3;

fn usage() -> ! {
    eprintln!(
        "usage: snoc-sim [--app NAME | --mix case1|case2] [--scenario NAME]\n\
         \x20               [--cycles N] [--warmup N] [--seed N]\n\
         \x20               [--mode profile|fullstack]\n\
         \x20               [--regions 4|8|16] [--placement corner|stagger] [--hops H]\n\
         \x20               [--list]\n\
         scenarios: {}",
        Scenario::ALL.map(|s| s.name()).join(", ")
    );
    std::process::exit(2)
}

fn main() {
    let mut app = "tpcc".to_string();
    let mut mix: Option<String> = None;
    let mut scenario = Scenario::SttRam4TsbWb;
    let mut cycles = 20_000u64;
    let mut warmup = 2_000u64;
    let mut seed: Option<u64> = None;
    let mut mode = DriveMode::Profile;
    let mut regions: Option<usize> = None;
    let mut placement: Option<&str> = None;
    let mut hops: Option<u32> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let take = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--app" => app = take(&mut i),
            "--mix" => mix = Some(take(&mut i)),
            "--scenario" => {
                let name = take(&mut i);
                scenario = Scenario::ALL
                    .into_iter()
                    .find(|s| s.name().eq_ignore_ascii_case(&name))
                    .unwrap_or_else(|| usage());
            }
            "--cycles" => cycles = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--warmup" => warmup = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = Some(take(&mut i).parse().unwrap_or_else(|_| usage())),
            "--mode" => {
                mode = match take(&mut i).as_str() {
                    "profile" => DriveMode::Profile,
                    "fullstack" => DriveMode::FullStack,
                    _ => usage(),
                }
            }
            "--regions" => regions = Some(take(&mut i).parse().unwrap_or_else(|_| usage())),
            "--placement" => {
                placement = match take(&mut i).as_str() {
                    "corner" => Some("corner"),
                    "stagger" | "staggered" => Some("stagger"),
                    _ => usage(),
                }
            }
            "--hops" => hops = Some(take(&mut i).parse().unwrap_or_else(|_| usage())),
            "--list" => {
                for p in table3::all() {
                    println!(
                        "{:12} {:8?} rpki {:6.2} wpki {:6.2} {:?}",
                        p.name, p.suite, p.l2_rpki, p.l2_wpki, p.bursty
                    );
                }
                return;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other}");
                usage()
            }
        }
        i += 1;
    }

    let mut cfg = scenario.config();
    cfg.warmup_cycles = warmup;
    cfg.measure_cycles = cycles;
    if let Some(s) = seed {
        cfg.seed = s;
    }
    if let Some(r) = regions {
        cfg.regions = r;
    }
    if let Some(p) = placement {
        cfg.tsb_placement = match p {
            "corner" => snoc_common::config::TsbPlacement::Corner,
            _ => snoc_common::config::TsbPlacement::Staggered,
        };
    }
    if let Some(h) = hops {
        cfg.parent_hops = h;
    }
    if let Err(e) = cfg.validate() {
        eprintln!("invalid configuration: {e}");
        std::process::exit(2);
    }

    let workload: Workload = match mix.as_deref() {
        None => Workload::homogeneous(&app, cfg.cores()).unwrap_or_else(|| {
            eprintln!("unknown application {app}; try --list");
            std::process::exit(2)
        }),
        Some("case1") => mixes::case1(cfg.cores()),
        Some("case2") => mixes::case2(cfg.cores()),
        Some(other) => {
            eprintln!("unknown mix {other} (case1|case2)");
            std::process::exit(2)
        }
    };

    println!(
        "running {} on {} for {}+{} cycles ({:?} mode, {} regions, H={})",
        workload.name,
        scenario.name(),
        warmup,
        cycles,
        mode,
        cfg.regions,
        cfg.parent_hops
    );
    let mut system = System::new(cfg, &workload, mode);
    let m = system.run();
    println!(
        "instruction throughput : {:8.2}",
        m.instruction_throughput()
    );
    println!(
        "avg / slowest core IPC : {:8.3} / {:.3}",
        m.avg_ipc(),
        m.slowest_ipc()
    );
    println!(
        "uncore round trip      : {:8.1} cycles (p95 {:.0})",
        m.uncore_rtt, m.uncore_rtt_p95
    );
    println!(
        "net latency (req/resp) : {:8.1} / {:.1} cycles",
        m.net_request_latency, m.net_response_latency
    );
    println!(
        "bank queue / service   : {:8.1} / {:.1} cycles",
        m.bank_queue_wait, m.bank_service
    );
    println!(
        "bank reads / writes    : {:8} / {}",
        m.bank_reads, m.bank_writes
    );
    println!("memory fetches         : {:8}", m.mem_fetches);
    println!(
        "held at parents        : {:8} packets / {} cycles",
        m.held_packets, m.held_cycles
    );
    println!(
        "delayable fraction     : {:8.1}%",
        m.delayable_fraction * 100.0
    );
    println!(
        "uncore energy          : {:8.2} uJ",
        m.uncore_energy_nj() / 1000.0
    );
}
