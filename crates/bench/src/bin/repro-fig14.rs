//! Regenerates the paper's Figure 14 (write-buffer comparison).
fn main() {
    let scale = snoc_bench::scale_from_args();
    snoc_bench::emit("fig14", &snoc_core::experiments::fig14::run(scale));
}
