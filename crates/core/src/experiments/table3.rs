//! Table 3: benchmark characterization. Each application runs alone on
//! the STT-RAM baseline and the measured L2-side rates are compared to
//! the Table 3 targets (the profile-driven generator should match them
//! by construction).

use crate::experiments::Scale;
use crate::report::Rows;
use crate::scenario::Scenario;
use crate::sweep::{CellResult, Experiment, RunSpec, SweepRunner};
use snoc_workload::{table3, BenchmarkProfile, Burstiness};
use std::fmt;

/// One characterized application.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Application name.
    pub name: &'static str,
    /// Target L2 reads per kilo-instruction (Table 3).
    pub target_rpki: f64,
    /// Target L2 writes per kilo-instruction (Table 3).
    pub target_wpki: f64,
    /// Measured L2 reads per kilo-instruction.
    pub measured_rpki: f64,
    /// Measured L2 writes per kilo-instruction.
    pub measured_wpki: f64,
    /// Measured fraction of post-write arrivals within the write
    /// window (burstiness proxy).
    pub delayable: f64,
    /// Target class.
    pub bursty: Burstiness,
}

/// The regenerated characterization.
#[derive(Debug, Clone)]
pub struct Table3Result {
    /// Rows in Table 3 order.
    pub rows: Vec<Table3Row>,
}

fn apps(scale: Scale) -> Vec<&'static BenchmarkProfile> {
    let all = table3::all();
    match scale {
        Scale::Quick => all.iter().take(6).collect(),
        Scale::Full => all.iter().collect(),
    }
}

/// The characterization sweep: every selected app alone on the STT-RAM
/// baseline.
pub struct Table3;

impl Experiment for Table3 {
    type Output = Table3Result;

    fn name(&self) -> &str {
        "table3"
    }

    fn grid(&self, scale: Scale) -> Vec<RunSpec> {
        apps(scale)
            .into_iter()
            .map(|p| {
                RunSpec::homogeneous(
                    format!("table3/{}", p.name),
                    scale.apply(Scenario::SttRam64Tsb.config()),
                    p,
                )
            })
            .collect()
    }

    fn assemble(&self, scale: Scale, cells: Vec<CellResult>) -> Table3Result {
        let rows = apps(scale)
            .into_iter()
            .zip(&cells)
            .map(|(p, cell)| {
                let m = cell.metrics();
                let kilo_instr = m.per_core_committed.iter().sum::<u64>() as f64 / 1000.0;
                Table3Row {
                    name: p.name,
                    target_rpki: p.l2_rpki,
                    target_wpki: p.l2_wpki,
                    measured_rpki: m.bank_reads as f64 / kilo_instr.max(1e-9),
                    // Bank write jobs include memory fills; Table 3
                    // counts demand writes only.
                    measured_wpki: m.bank_writes.saturating_sub(m.mem_fetches) as f64
                        / kilo_instr.max(1e-9),
                    delayable: m.delayable_fraction,
                    bursty: p.bursty,
                }
            })
            .collect();
        Table3Result { rows }
    }
}

/// Characterizes the applications through the [`SweepRunner`] (6 at
/// quick scale, all 42 at full scale).
pub fn run(scale: Scale) -> Table3Result {
    SweepRunner::from_env().run(&Table3, scale)
}

impl fmt::Display for Table3Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 3: measured vs target characterization (STT-RAM baseline)"
        )?;
        writeln!(
            f,
            "{:12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>7}",
            "benchmark", "rpki(tgt)", "rpki(got)", "wpki(tgt)", "wpki(got)", "delayable", "bursty"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:12} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>9.1}% {:>7}",
                r.name,
                r.target_rpki,
                r.measured_rpki,
                r.target_wpki,
                r.measured_wpki,
                r.delayable * 100.0,
                match r.bursty {
                    Burstiness::High => "High",
                    Burstiness::Low => "Low",
                }
            )?;
        }
        let avg: f64 =
            self.rows.iter().map(|r| r.delayable).sum::<f64>() / self.rows.len().max(1) as f64;
        let max = self.rows.iter().map(|r| r.delayable).fold(0.0, f64::max);
        writeln!(
            f,
            "delayable accesses: avg {:.1}% / max {:.1}%  (paper: avg 17%, up to 27%)",
            avg * 100.0,
            max * 100.0
        )
    }
}

impl Rows for Table3Result {
    fn header(&self) -> Vec<String> {
        [
            "rpki target",
            "rpki measured",
            "wpki target",
            "wpki measured",
            "delayable (%)",
            "bursty",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    fn rows(&self) -> Vec<(String, Vec<f64>)> {
        self.rows
            .iter()
            .map(|r| {
                (
                    r.name.to_string(),
                    vec![
                        r.target_rpki,
                        r.measured_rpki,
                        r.target_wpki,
                        r.measured_wpki,
                        r.delayable * 100.0,
                        match r.bursty {
                            Burstiness::High => 1.0,
                            Burstiness::Low => 0.0,
                        },
                    ],
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_characterization_tracks_targets() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 6);
        for r in &t.rows {
            // Within 35% at quick scale (short runs are noisy).
            let rel = (r.measured_rpki - r.target_rpki).abs() / r.target_rpki.max(0.1);
            assert!(
                rel < 0.35,
                "{}: rpki {} vs {}",
                r.name,
                r.measured_rpki,
                r.target_rpki
            );
        }
        // Bursty apps cluster more than non-bursty ones on average.
        let hi: Vec<f64> = t
            .rows
            .iter()
            .filter(|r| r.bursty == Burstiness::High)
            .map(|r| r.delayable)
            .collect();
        let lo: Vec<f64> = t
            .rows
            .iter()
            .filter(|r| r.bursty == Burstiness::Low)
            .map(|r| r.delayable)
            .collect();
        if !hi.is_empty() && !lo.is_empty() {
            let hi_avg = hi.iter().sum::<f64>() / hi.len() as f64;
            let lo_avg = lo.iter().sum::<f64>() / lo.len() as f64;
            assert!(hi_avg > lo_avg, "bursty {hi_avg} vs low {lo_avg}");
        }
    }
}
