//! Bench for Table 2: prints the regenerated table and times the
//! analytic model on the dependency-free harness.
use snoc_bench::harness;
use snoc_core::experiments::table2;

fn main() {
    println!("{}", table2::run());
    harness::bench("table2/cacti_lite", table2::run);
}
