//! Figure 6: system throughput of every benchmark under the six design
//! scenarios, normalized to SRAM-64TSB — IPC for the multi-threaded
//! suites (reported for the slowest thread, as in the paper),
//! instruction throughput for the multi-programmed SPEC suite.

use crate::experiments::{norm, Scale};
use crate::report::Rows;
use crate::scenario::Scenario;
use crate::sweep::{CellResult, Experiment, RunSpec, SweepRunner};
use snoc_workload::table3::{self, figures};
use snoc_workload::Suite;
use std::fmt;

/// Per-application, per-scenario measurements.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Application name.
    pub app: &'static str,
    /// Suite.
    pub suite: Suite,
    /// One entry per [`Scenario::ALL`]: instruction throughput.
    pub throughput: Vec<f64>,
    /// One entry per scenario: slowest-thread IPC.
    pub slowest_ipc: Vec<f64>,
    /// One entry per scenario: uncore energy in nJ.
    pub energy_nj: Vec<f64>,
    /// One entry per scenario: mean uncore round trip (cycles).
    pub uncore_latency: Vec<f64>,
}

impl SweepRow {
    /// The paper's Figure 6 metric for this row, per scenario:
    /// slowest-thread IPC for multi-threaded suites, instruction
    /// throughput for SPEC.
    pub fn fig6_metric(&self) -> &[f64] {
        if self.suite == Suite::Spec {
            &self.throughput
        } else {
            &self.slowest_ipc
        }
    }
}

/// The app × [`Scenario::ALL`] grid shared by Figures 6 and 8: row
/// major (all six scenarios of the first app, then the next app).
pub(crate) fn scenario_grid(scale: Scale, apps: &[&str]) -> Vec<RunSpec> {
    apps.iter()
        .flat_map(|name| {
            let p = table3::by_name(name).expect("known app");
            Scenario::ALL.iter().map(move |sc| {
                RunSpec::homogeneous(format!("{}/{name}", sc.name()), scale.apply(sc.config()), p)
            })
        })
        .collect()
}

/// Folds a [`scenario_grid`] result set (grid order) back into
/// per-application rows.
pub(crate) fn rows_from_cells(apps: &[&str], cells: &[CellResult]) -> Vec<SweepRow> {
    let n = Scenario::ALL.len();
    assert_eq!(cells.len(), apps.len() * n, "one cell per app x scenario");
    apps.iter()
        .enumerate()
        .map(|(a, name)| {
            let p = table3::by_name(name).expect("known app");
            let ms: Vec<_> = (0..n).map(|s| cells[a * n + s].metrics()).collect();
            SweepRow {
                app: p.name,
                suite: p.suite,
                throughput: ms.iter().map(|m| m.instruction_throughput()).collect(),
                slowest_ipc: ms.iter().map(|m| m.slowest_ipc()).collect(),
                energy_nj: ms.iter().map(|m| m.uncore_energy_nj()).collect(),
                uncore_latency: ms.iter().map(|m| m.uncore_latency()).collect(),
            }
        })
        .collect()
}

/// The Figure 6 application list at this scale.
pub(crate) fn fig6_apps(scale: Scale) -> Vec<&'static str> {
    let mut apps: Vec<&str> = Vec::new();
    apps.extend(scale.take_apps(figures::FIG6_SERVER));
    apps.extend(scale.take_apps(figures::FIG6_PARSEC));
    apps.extend(scale.take_apps(figures::FIG6_SPEC));
    apps
}

/// Runs every scenario for each named application (one sweep).
pub fn sweep(scale: Scale, apps: &[&str]) -> Vec<SweepRow> {
    let cells = SweepRunner::from_env().run_grid("fig6/sweep", scenario_grid(scale, apps));
    rows_from_cells(apps, &cells)
}

/// The figure: three suite panels.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// All measured rows.
    pub rows: Vec<SweepRow>,
}

impl Fig6Result {
    /// Rows of one suite.
    pub fn suite(&self, s: Suite) -> impl Iterator<Item = &SweepRow> {
        self.rows.iter().filter(move |r| r.suite == s)
    }

    /// Suite-average normalized metric per scenario.
    pub fn suite_average(&self, s: Suite) -> Vec<f64> {
        let rows: Vec<&SweepRow> = self.suite(s).collect();
        let mut avg = vec![0.0; Scenario::ALL.len()];
        for r in &rows {
            let m = r.fig6_metric();
            for (i, v) in m.iter().enumerate() {
                avg[i] += norm(*v, m[0]);
            }
        }
        for v in &mut avg {
            *v /= rows.len().max(1) as f64;
        }
        avg
    }
}

/// The Figure 6 panels (server + PARSEC + SPEC subsets shown in the
/// paper's plot; at full scale the averages cover them all).
pub struct Fig6;

impl Experiment for Fig6 {
    type Output = Fig6Result;

    fn name(&self) -> &str {
        "fig6"
    }

    fn grid(&self, scale: Scale) -> Vec<RunSpec> {
        scenario_grid(scale, &fig6_apps(scale))
    }

    fn assemble(&self, scale: Scale, cells: Vec<CellResult>) -> Fig6Result {
        Fig6Result {
            rows: rows_from_cells(&fig6_apps(scale), &cells),
        }
    }
}

/// Runs the figure through the [`SweepRunner`].
pub fn run(scale: Scale) -> Fig6Result {
    SweepRunner::from_env().run(&Fig6, scale)
}

impl fmt::Display for Fig6Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 6: throughput normalized to SRAM-64TSB (IPC of slowest thread for\nserver/PARSEC; instruction throughput for SPEC)"
        )?;
        write!(f, "{:12}", "benchmark")?;
        for sc in Scenario::ALL {
            write!(f, " {:>14}", sc.name())?;
        }
        writeln!(f)?;
        for suite in [Suite::Server, Suite::Parsec, Suite::Spec] {
            writeln!(f, "--- {suite:?} ---")?;
            for r in self.suite(suite) {
                write!(f, "{:12}", r.app)?;
                let m = r.fig6_metric();
                for v in m {
                    write!(f, " {:>14.3}", norm(*v, m[0]))?;
                }
                writeln!(f)?;
            }
            write!(f, "{:12}", "Avg.")?;
            for v in self.suite_average(suite) {
                write!(f, " {:>14.3}", v)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl Rows for Fig6Result {
    fn header(&self) -> Vec<String> {
        Scenario::ALL.iter().map(|s| s.name().to_string()).collect()
    }

    fn rows(&self) -> Vec<(String, Vec<f64>)> {
        let mut out = Vec::new();
        for suite in [Suite::Server, Suite::Parsec, Suite::Spec] {
            let mut any = false;
            for r in self.suite(suite) {
                any = true;
                let m = r.fig6_metric();
                out.push((
                    r.app.to_string(),
                    m.iter().map(|v| norm(*v, m[0])).collect(),
                ));
            }
            if any {
                out.push((format!("Avg. {suite:?}"), self.suite_average(suite)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_covers_scenarios() {
        let r = run(Scale::Quick);
        assert!(!r.rows.is_empty());
        for row in &r.rows {
            assert_eq!(row.throughput.len(), 6);
            assert!(row.throughput.iter().all(|&t| t > 0.0), "{}", row.app);
        }
        let s = r.to_string();
        assert!(s.contains("SRAM-64TSB"));
        assert_eq!(r.rows().first().unwrap().1.len(), 6);
    }
}
