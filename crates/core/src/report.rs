//! Uniform tabular access to experiment results.
//!
//! Every figure/table result type implements [`Rows`] alongside its
//! pretty [`std::fmt::Display`]: `rows()` yields the same numbers the
//! figure plots as labelled series, and `csv()` renders them in one
//! consistent machine-readable shape. [`save`] dumps both renderings
//! (`<name>.txt` from `Display`, `<name>.csv` from [`Rows::csv`]) into
//! a results directory — the `repro-*` binaries use it for their
//! `results/` output.

use std::fmt::Display;
use std::io;
use std::path::{Path, PathBuf};

/// Tabular view of an experiment result: labelled numeric rows under a
/// shared header.
///
/// Rows are in presentation order and each carries exactly one value
/// per header column, so `rows()` round-trips through CSV without any
/// per-figure knowledge.
pub trait Rows {
    /// Column labels (one per value in every row).
    fn header(&self) -> Vec<String>;

    /// The labelled rows, in the figure's presentation order.
    fn rows(&self) -> Vec<(String, Vec<f64>)>;

    /// CSV rendering: a header line, then `label,v1,v2,...` per row.
    fn csv(&self) -> String {
        let mut out = String::from("label");
        for h in self.header() {
            out.push(',');
            // Keep the CSV single-token per cell.
            out.push_str(&h.replace(',', ";"));
        }
        out.push('\n');
        for (label, values) in self.rows() {
            out.push_str(&label.replace(',', ";"));
            for v in values {
                out.push(',');
                out.push_str(&format!("{v:.6}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Writes `<dir>/<name>.txt` (the `Display` rendering) and
/// `<dir>/<name>.csv` (the [`Rows::csv`] rendering), creating `dir` if
/// needed. Returns the two paths.
pub fn save<R: Rows + Display>(
    dir: impl AsRef<Path>,
    name: &str,
    result: &R,
) -> io::Result<(PathBuf, PathBuf)> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let txt = dir.join(format!("{name}.txt"));
    let csv = dir.join(format!("{name}.csv"));
    std::fs::write(&txt, format!("{result}"))?;
    std::fs::write(&csv, result.csv())?;
    Ok((txt, csv))
}

/// Writes `<dir>/<name>.<ext>` verbatim, creating `dir` if needed —
/// for non-tabular artifacts such as JSONL traces. Returns the path.
pub fn save_raw(
    dir: impl AsRef<Path>,
    name: &str,
    ext: &str,
    contents: &str,
) -> io::Result<PathBuf> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.{ext}"));
    std::fs::write(&path, contents)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fmt;

    struct Dummy;

    impl Rows for Dummy {
        fn header(&self) -> Vec<String> {
            vec!["a".into(), "b,b".into()]
        }
        fn rows(&self) -> Vec<(String, Vec<f64>)> {
            vec![
                ("x".into(), vec![1.0, 2.5]),
                ("y,z".into(), vec![0.0, -1.0]),
            ]
        }
    }

    impl fmt::Display for Dummy {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "dummy")
        }
    }

    #[test]
    fn csv_escapes_commas_and_keeps_shape() {
        let csv = Dummy.csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("label,a,b;b"));
        assert_eq!(lines.next(), Some("x,1.000000,2.500000"));
        assert_eq!(lines.next(), Some("y;z,0.000000,-1.000000"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn save_writes_both_files() {
        let dir = std::env::temp_dir().join("snoc-report-test");
        let (txt, csv) = save(&dir, "dummy", &Dummy).unwrap();
        assert_eq!(std::fs::read_to_string(&txt).unwrap(), "dummy");
        assert!(std::fs::read_to_string(&csv).unwrap().starts_with("label,"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_raw_writes_verbatim() {
        let dir = std::env::temp_dir().join("snoc-report-raw-test");
        let path = save_raw(&dir, "trace", "jsonl", "{\"a\":1}\n").unwrap();
        assert!(path.ends_with("trace.jsonl"));
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"a\":1}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
