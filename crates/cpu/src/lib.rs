//! Trace/stream-driven out-of-order core model.
//!
//! Table 1: 3 GHz, 128-entry instruction window, 2-wide fetch/commit,
//! at most one memory operation issued per cycle. The model captures
//! what the paper's evaluation needs from a core: IPC is limited by
//! the window filling up with outstanding long-latency L2/memory
//! accesses, so reductions in uncore round-trip latency translate into
//! IPC gains.
//!
//! # Example
//!
//! ```
//! use snoc_cpu::{Instr, InstructionStream, Issue, MemPort, OooCore};
//! use snoc_common::config::CoreConfig;
//! use snoc_common::ids::CoreId;
//!
//! // A stream of pure compute retires at the full width of 2 IPC.
//! struct Compute;
//! impl InstructionStream for Compute {
//!     fn next_instr(&mut self) -> Instr {
//!         Instr::NonMem
//!     }
//! }
//! struct NoMem;
//! impl MemPort for NoMem {
//!     fn issue(&mut self, _: CoreId, _: u64, _: bool, _: u64, _: u64) -> Issue {
//!         unreachable!("compute-only stream")
//!     }
//! }
//! let mut core = OooCore::new(CoreId::new(0), CoreConfig::default());
//! let (mut stream, mut port) = (Compute, NoMem);
//! for now in 0..1000 {
//!     core.tick(now, &mut stream, &mut port);
//! }
//! assert!(core.committed() >= 1990);
//! ```

pub mod core_model;
pub mod stream;

pub use core_model::{CoreStats, Issue, MemPort, OooCore};
pub use stream::{Instr, InstructionStream};
