//! Lightweight statistics containers used throughout the simulator.

use std::fmt;

/// A running mean/min/max accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Accumulator {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, or 0.0 with no samples.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0.0 with no samples.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Accumulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.min(),
            self.max()
        )
    }
}

/// A histogram over fixed, caller-supplied bin upper edges.
///
/// Bin `i` counts samples `edge[i-1] <= x < edge[i]` (with an implicit
/// `-inf` lower edge for bin 0); samples at or above the last edge fall
/// into the overflow bin. This matches the paper's Figure 3 binning:
/// edges `[16, 33, 66, 99, 132, 165]` with a `165+` overflow bin.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    edges: Vec<u64>,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with the given strictly increasing upper
    /// edges.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly increasing.
    pub fn new(edges: &[u64]) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly increasing"
        );
        Self {
            edges: edges.to_vec(),
            counts: vec![0; edges.len() + 1],
        }
    }

    /// The Figure 3 binning: 16, 33, 66, 99, 132, 165+.
    pub fn fig3() -> Self {
        Self::new(&[16, 33, 66, 99, 132, 165])
    }

    /// Reconstructs a histogram from previously extracted edges and
    /// counts (the cell-cache codec's deserialization path).
    ///
    /// # Errors
    ///
    /// Returns a message if `edges` is empty or not strictly
    /// increasing, or if `counts` is not exactly one longer than
    /// `edges` — the invariants [`Histogram::new`] establishes.
    pub fn from_parts(edges: Vec<u64>, counts: Vec<u64>) -> Result<Self, String> {
        if edges.is_empty() {
            return Err("histogram needs at least one edge".into());
        }
        if !edges.windows(2).all(|w| w[0] < w[1]) {
            return Err("edges must be strictly increasing".into());
        }
        if counts.len() != edges.len() + 1 {
            return Err(format!(
                "expected {} counts for {} edges, got {}",
                edges.len() + 1,
                edges.len(),
                counts.len()
            ));
        }
        Ok(Self { edges, counts })
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bin = self.edges.partition_point(|&e| e <= value);
        self.counts[bin] += 1;
    }

    /// The bin upper edges.
    pub fn edges(&self) -> &[u64] {
        &self.edges
    }

    /// Raw bin counts; the final entry is the overflow bin.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Bin fractions in `[0, 1]`; all zeros when empty.
    pub fn fractions(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Fraction of samples strictly below `threshold` (which must be
    /// one of the edges).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not an edge.
    pub fn fraction_below(&self, threshold: u64) -> f64 {
        let idx = self
            .edges
            .iter()
            .position(|&e| e == threshold)
            .expect("threshold must be a histogram edge");
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let below: u64 = self.counts[..=idx].iter().sum();
        below as f64 / total as f64
    }

    /// Merges another histogram with identical edges.
    ///
    /// # Panics
    ///
    /// Panics if the edges differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.edges, other.edges, "histogram edges must match");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

/// A bounded reservoir for tail-latency percentiles.
///
/// Keeps a uniform random sample of up to `capacity` observations
/// (Vitter's Algorithm R with a deterministic LCG) and computes exact
/// quantiles of the sample on demand.
#[derive(Debug, Clone, PartialEq)]
pub struct Reservoir {
    samples: Vec<f64>,
    capacity: usize,
    seen: u64,
    state: u64,
}

impl Reservoir {
    /// Creates a reservoir of `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir needs capacity");
        Self {
            samples: Vec::with_capacity(capacity),
            capacity,
            seen: 0,
            state: 0x9E3779B97F4A7C15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64 step: deterministic, seed-independent of config.
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.seen += 1;
        if self.samples.len() < self.capacity {
            self.samples.push(value);
        } else {
            let j = self.next_u64() % self.seen;
            if (j as usize) < self.capacity {
                self.samples[j as usize] = value;
            }
        }
    }

    /// Observations recorded (not just retained).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The `q`-quantile (0.0..=1.0) of the retained sample; 0.0 when
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut v = self.samples.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
        let idx = ((v.len() - 1) as f64 * q).round() as usize;
        v[idx]
    }

    /// Convenience: the 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }
}

/// A simple event counter keyed by a caller-chosen enum-like index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSet {
    counts: Vec<u64>,
}

impl CounterSet {
    /// Creates `n` zeroed counters.
    pub fn new(n: usize) -> Self {
        Self { counts: vec![0; n] }
    }

    /// Increments counter `idx` by 1.
    pub fn bump(&mut self, idx: usize) {
        self.add(idx, 1);
    }

    /// Increments counter `idx` by `by`.
    pub fn add(&mut self, idx: usize, by: u64) {
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += by;
    }

    /// Reads counter `idx` (0 if never touched).
    pub fn get(&self, idx: usize) -> u64 {
        self.counts.get(idx).copied().unwrap_or(0)
    }

    /// Sum of all counters.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterates `(index, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts.iter().copied().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_tracks_extremes() {
        let mut a = Accumulator::new();
        assert_eq!(a.mean(), 0.0);
        for v in [3.0, 1.0, 2.0] {
            a.record(v);
        }
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), 2.0);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.max(), 3.0);
    }

    #[test]
    fn accumulator_merge() {
        let mut a = Accumulator::new();
        a.record(1.0);
        let mut b = Accumulator::new();
        b.record(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), 3.0);
        assert_eq!(a.max(), 5.0);
        let mut empty = Accumulator::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
    }

    #[test]
    fn fig3_histogram_bins_match_paper() {
        let mut h = Histogram::fig3();
        // One sample per bin: <16, [16,33), [33,66), ..., >=165.
        for v in [5, 20, 40, 70, 100, 140, 200] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[1, 1, 1, 1, 1, 1, 1]);
        assert_eq!(h.total(), 7);
        // "Delayable" accesses are those arriving within the 33-cycle
        // write service time.
        let delayable = h.fraction_below(33);
        assert!((delayable - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_edge_values_go_to_next_bin() {
        let mut h = Histogram::new(&[10, 20]);
        h.record(10);
        assert_eq!(h.counts(), &[0, 1, 0]);
        h.record(20);
        assert_eq!(h.counts(), &[0, 1, 1]);
        h.record(9);
        assert_eq!(h.counts(), &[1, 1, 1]);
    }

    #[test]
    fn histogram_merge_and_fractions() {
        let mut a = Histogram::new(&[10]);
        let mut b = Histogram::new(&[10]);
        a.record(5);
        b.record(15);
        a.merge(&b);
        assert_eq!(a.fractions(), vec![0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_bad_edges() {
        Histogram::new(&[10, 10]);
    }

    #[test]
    fn histogram_from_parts_round_trips_and_validates() {
        let mut h = Histogram::fig3();
        for v in [5, 20, 40, 200] {
            h.record(v);
        }
        let rebuilt =
            Histogram::from_parts(h.edges().to_vec(), h.counts().to_vec()).expect("valid parts");
        assert_eq!(rebuilt, h);
        assert!(Histogram::from_parts(vec![], vec![0]).is_err());
        assert!(Histogram::from_parts(vec![10, 10], vec![0, 0, 0]).is_err());
        assert!(Histogram::from_parts(vec![10, 20], vec![0, 0]).is_err());
    }

    #[test]
    fn reservoir_quantiles_are_exact_below_capacity() {
        let mut r = Reservoir::new(1000);
        for v in 0..100 {
            r.record(v as f64);
        }
        assert_eq!(r.seen(), 100);
        assert_eq!(r.quantile(0.0), 0.0);
        assert_eq!(r.quantile(1.0), 99.0);
        assert!((r.quantile(0.5) - 50.0).abs() <= 1.0);
        assert!((r.p95() - 94.0).abs() <= 2.0);
    }

    #[test]
    fn reservoir_subsamples_long_streams() {
        let mut r = Reservoir::new(64);
        for v in 0..100_000 {
            r.record((v % 1000) as f64);
        }
        assert_eq!(r.seen(), 100_000);
        // The uniform 0..999 stream's median lands near 500.
        let med = r.quantile(0.5);
        assert!((250.0..750.0).contains(&med), "median {med}");
    }

    #[test]
    fn empty_reservoir_is_zero() {
        let r = Reservoir::new(8);
        assert_eq!(r.p95(), 0.0);
    }

    #[test]
    fn counters_grow_on_demand() {
        let mut c = CounterSet::new(2);
        c.bump(0);
        c.add(5, 3);
        assert_eq!(c.get(0), 1);
        assert_eq!(c.get(5), 3);
        assert_eq!(c.get(9), 0);
        assert_eq!(c.total(), 4);
        assert_eq!(c.iter().count(), 6);
    }
}
